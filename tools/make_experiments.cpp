// Stitches the report fragments written by the reproduction benches
// (`bench_* --report-dir report`) into EXPERIMENTS.md, in the fixed order
// of trace::experiments_manifest(). Modes:
//
//   make_experiments --report-dir report --out EXPERIMENTS.md   # write
//   make_experiments --report-dir report --check EXPERIMENTS.md # CI drift
//
// --check exits 1 (and prints a unified hint) when the stitched text is
// not byte-identical to the file on disk, so CI fails on stale docs.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "base/diagnostics.hpp"
#include "trace/report.hpp"

using namespace buffy;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --report-dir DIR (--out FILE | --check FILE)\n"
               "\n"
               "Stitches DIR/<fragment>.md, in manifest order, into the\n"
               "generated EXPERIMENTS.md. --out writes the file; --check\n"
               "exits nonzero when FILE differs from the stitched text.\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string report_dir;
  std::string out_path;
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report-dir") == 0 && i + 1 < argc) {
      report_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (report_dir.empty() || (out_path.empty() == check_path.empty())) {
    return usage(argv[0]);
  }

  try {
    const std::string stitched = trace::stitch_experiments(report_dir);

    if (!out_path.empty()) {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     out_path.c_str());
        return 1;
      }
      out << stitched;
      std::printf("wrote %s (%zu bytes, %zu fragments)\n", out_path.c_str(),
                  stitched.size(), trace::experiments_manifest().size());
      return 0;
    }

    std::ifstream in(check_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", check_path.c_str());
      return 1;
    }
    std::ostringstream have;
    have << in.rdbuf();
    if (have.str() == stitched) {
      std::printf("%s is up to date\n", check_path.c_str());
      return 0;
    }
    std::fprintf(stderr,
                 "%s is stale: regenerate it with\n"
                 "  make_experiments --report-dir %s --out %s\n"
                 "(run every bench_* with --report-dir %s first; see the\n"
                 "file header for the exact commands)\n",
                 check_path.c_str(), report_dir.c_str(), check_path.c_str(),
                 report_dir.c_str());
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}
