// Shared include-graph extraction for the architecture tools.
//
// arch_dot renders the module dependency graph of src/ as GraphViz DOT;
// layer_lint enforces the DESIGN.md §9 layering over the same graph. Both
// need the identical notion of "module" (a top-level directory under
// src/) and "cross-module include" (a quoted `#include "module/..."`
// whose first path component names another module), so the scan lives
// here and the tools stay byte-for-byte consistent about what an edge is.
#pragma once

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

namespace buffy_tools {

/// One quoted cross-module (or same-module) include, with its position
/// for file:line diagnostics.
struct IncludeRef {
  std::string file;        // path as scanned (under src_dir)
  int line = 0;            // 1-based line of the #include
  std::string from_module; // module of the including file
  std::string to_module;   // first path component of the included path
  std::string included;    // the full quoted path
};

/// First path component of a quoted include like
/// `#include "buffer/dse.hpp"` -> "buffer". Empty for system includes and
/// non-include lines.
inline std::string include_module(const std::string& line) {
  const std::size_t first = line.find_first_not_of(" \t");
  if (first == std::string::npos || line[first] != '#') return "";
  if (line.find("include", first) == std::string::npos) return "";
  const std::size_t q1 = line.find('"');
  if (q1 == std::string::npos) return "";
  const std::size_t q2 = line.find('"', q1 + 1);
  if (q2 == std::string::npos) return "";
  const std::string path = line.substr(q1 + 1, q2 - q1 - 1);
  const std::size_t slash = path.find('/');
  if (slash == std::string::npos) return "";
  return path.substr(0, slash);
}

/// Full quoted path of an include line ("" when not a quoted include).
inline std::string include_path(const std::string& line) {
  const std::size_t q1 = line.find('"');
  if (q1 == std::string::npos) return "";
  const std::size_t q2 = line.find('"', q1 + 1);
  if (q2 == std::string::npos) return "";
  return line.substr(q1 + 1, q2 - q1 - 1);
}

/// True for the C++ source/header extensions the tools scan.
inline bool is_cpp_file(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

/// The module set: every top-level directory under src_dir.
inline std::set<std::string> list_modules(const std::string& src_dir) {
  std::set<std::string> modules;
  for (const auto& entry : std::filesystem::directory_iterator(src_dir)) {
    if (entry.is_directory()) {
      modules.insert(entry.path().filename().string());
    }
  }
  return modules;
}

/// Every quoted include in src_dir whose first path component is a known
/// module (same-module includes are reported too; callers filter).
inline std::vector<IncludeRef> scan_includes(
    const std::string& src_dir, const std::set<std::string>& modules) {
  std::vector<IncludeRef> refs;
  for (const std::string& mod : modules) {
    for (const auto& entry : std::filesystem::recursive_directory_iterator(
             src_dir + "/" + mod)) {
      if (!entry.is_regular_file() || !is_cpp_file(entry.path())) continue;
      std::ifstream in(entry.path());
      std::string line;
      int lineno = 0;
      while (std::getline(in, line)) {
        ++lineno;
        const std::string dep = include_module(line);
        if (dep.empty() || modules.count(dep) == 0) continue;
        refs.push_back(IncludeRef{entry.path().string(), lineno, mod, dep,
                                  include_path(line)});
      }
    }
  }
  return refs;
}

}  // namespace buffy_tools
