#!/usr/bin/env bash
# clang-tidy ratchet runner (DESIGN.md §9).
#
# Runs clang-tidy (config pinned in .clang-tidy) over every src/ and
# tools/ translation unit using the compile database in $BUILD_DIR, then
# normalises each warning to `relative/path:line: check-name` and compares
# the sorted set against tools/tidy_baseline.txt:
#
#   * a warning not in the baseline  -> FAIL (new debt is rejected)
#   * a baseline entry that no longer fires -> FAIL (stale entry: shrink
#     the baseline so the ratchet only ever tightens)
#
#   tools/run_clang_tidy.sh [BUILD_DIR]           # check (default: build)
#   tools/run_clang_tidy.sh --update [BUILD_DIR]  # rewrite the baseline
set -u -o pipefail

cd "$(dirname "$0")/.."

UPDATE=0
if [ "${1:-}" = "--update" ]; then
  UPDATE=1
  shift
fi
BUILD_DIR="${1:-build}"
BASELINE=tools/tidy_baseline.txt
TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: $TIDY not found (set CLANG_TIDY to override)" >&2
  exit 2
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile database; configure with" >&2
  echo "  cmake -B $BUILD_DIR -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

mapfile -t SOURCES < <(find src tools -name '*.cpp' | sort)

RAW=$(mktemp)
CURRENT=$(mktemp)
trap 'rm -f "$RAW" "$CURRENT"' EXIT

# clang-tidy exits non-zero when it emits warnings; the ratchet compare
# below is the pass/fail signal, so the tool's own exit code is ignored.
"$TIDY" -p "$BUILD_DIR" --quiet "${SOURCES[@]}" >"$RAW" 2>/dev/null || true

# "…/src/state/engine.cpp:42:7: warning: … [bugprone-use-after-move]"
#   -> "src/state/engine.cpp:42: bugprone-use-after-move"
sed -n 's|^.*/\(\(src\|tools\)/[^:]*\):\([0-9]*\):[0-9]*: warning: .*\[\([a-z0-9.-]*\)\]$|\1:\3: \4|p' \
  "$RAW" | sort -u >"$CURRENT"

if [ "$UPDATE" -eq 1 ]; then
  {
    grep '^#' "$BASELINE"
    cat "$CURRENT"
  } >"$BASELINE.tmp" && mv "$BASELINE.tmp" "$BASELINE"
  echo "run_clang_tidy: baseline rewritten ($(wc -l <"$CURRENT") warnings)"
  exit 0
fi

EXPECTED=$(mktemp)
trap 'rm -f "$RAW" "$CURRENT" "$EXPECTED"' EXIT
grep -v '^#' "$BASELINE" | grep -v '^$' | sort -u >"$EXPECTED"

NEW=$(comm -23 "$CURRENT" "$EXPECTED")
STALE=$(comm -13 "$CURRENT" "$EXPECTED")

FAIL=0
if [ -n "$NEW" ]; then
  echo "run_clang_tidy: NEW warnings (not in $BASELINE):" >&2
  echo "$NEW" >&2
  FAIL=1
fi
if [ -n "$STALE" ]; then
  echo "run_clang_tidy: STALE baseline entries (fixed; remove them so the" >&2
  echo "baseline only shrinks — or run tools/run_clang_tidy.sh --update):" >&2
  echo "$STALE" >&2
  FAIL=1
fi
if [ "$FAIL" -eq 0 ]; then
  echo "run_clang_tidy: clean ($(wc -l <"$CURRENT") warnings, all baselined)"
fi
exit "$FAIL"
