// buffy_bounds — derive and check static magnitude certificates
// (DESIGN.md §16) from the command line.
//
//   buffy_bounds --models            all bundled benchmark models
//   buffy_bounds FILE...             graph files (XML or DSL, sniffed the
//                                    same way buffyd sniffs payloads: the
//                                    first non-whitespace '<' means XML)
//
// For every graph the tool prints one JSON object per line: the full
// certificate (envelopes, budget, repetition vector) plus the verdict of
// verify_certificate(), the independent overflow-checked re-derivation.
// Malformed inputs produce a structured JSON diagnostic on stdout and an
// explanatory line on stderr — never a crash; the CI bounds job drives
// the tool over the parser fuzz corpus and asserts exactly that.
//
// Exit code is the worst outcome across all inputs:
//   0  every certificate exact (fits_i64) and independently verified
//   1  some graph's envelopes left i64, was inconsistent, or failed the
//      independent verification
//   2  usage error, unreadable file, or graph parse error
#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "io/dsl.hpp"
#include "io/sdf_xml.hpp"
#include "models/models.hpp"
#include "sdf/graph.hpp"
#include "service/json.hpp"

namespace {

using buffy::i64;
using buffy::service::JsonValue;

JsonValue int_array(const std::vector<i64>& values) {
  JsonValue arr = JsonValue::array();
  for (const i64 v : values) arr.push_back(JsonValue::integer(v));
  return arr;
}

// Certificate + verification verdict as one JSON object. Returns the
// per-graph exit code (0 exact and verified, 1 otherwise).
int report(const std::string& source, const buffy::sdf::Graph& graph) {
  const buffy::analysis::BoundsCertificate cert =
      buffy::analysis::derive_bounds(graph);
  const std::vector<std::string> violations =
      buffy::analysis::verify_certificate(graph, cert);

  JsonValue out = JsonValue::object();
  out.set("source", JsonValue::string(source));
  out.set("graph", JsonValue::string(cert.graph_name));
  out.set("actors", JsonValue::integer(static_cast<i64>(cert.num_actors)));
  out.set("channels", JsonValue::integer(static_cast<i64>(cert.num_channels)));
  out.set("consistent", JsonValue::boolean(cert.consistent));
  out.set("fits_i64", JsonValue::boolean(cert.fits_i64));
  if (!cert.overflow_detail.empty()) {
    out.set("overflow_detail", JsonValue::string(cert.overflow_detail));
  }
  out.set("repetitions", int_array(cert.repetitions));
  out.set("storage_budget", int_array(cert.storage_budget));
  out.set("max_execution_time", JsonValue::integer(cert.max_execution_time));
  out.set("max_rate", JsonValue::integer(cert.max_rate));
  out.set("max_initial_tokens", JsonValue::integer(cert.max_initial_tokens));
  out.set("total_initial_tokens",
          JsonValue::integer(cert.total_initial_tokens));
  out.set("magnitude_bound", JsonValue::integer(cert.magnitude_bound));
  out.set("step_sum_bound", JsonValue::integer(cert.step_sum_bound));
  out.set("period_work", JsonValue::integer(cert.period_work));
  out.set("max_steps", JsonValue::integer(static_cast<i64>(cert.max_steps)));
  out.set("timestamp_bound", JsonValue::integer(cert.timestamp_bound));
  out.set("lp_coeff_bound", JsonValue::integer(cert.lp_coeff_bound));
  out.set("verified", JsonValue::boolean(violations.empty()));
  if (!violations.empty()) {
    JsonValue arr = JsonValue::array();
    for (const std::string& v : violations) arr.push_back(JsonValue::string(v));
    out.set("violations", arr);
  }
  std::printf("%s\n", out.dump().c_str());
  return (cert.fits_i64 && violations.empty()) ? 0 : 1;
}

// Structured diagnostic for an input that never produced a graph.
int report_error(const std::string& source, const char* kind,
                 const std::string& message) {
  JsonValue out = JsonValue::object();
  out.set("source", JsonValue::string(source));
  out.set("error", JsonValue::string(kind));
  out.set("message", JsonValue::string(message));
  std::printf("%s\n", out.dump().c_str());
  std::fprintf(stderr, "buffy_bounds: %s: %s: %s\n", source.c_str(), kind,
               message.c_str());
  return 2;
}

// The buffyd payload sniff (service/server.cpp): first non-whitespace
// '<' selects the XML reader, anything else the DSL reader.
buffy::sdf::Graph parse_text(const std::string& text) {
  bool xml = false;
  for (const char c : text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') continue;
    xml = c == '<';
    break;
  }
  return xml ? buffy::io::read_sdf_xml(text) : buffy::io::read_dsl(text);
}

int run_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return report_error(path, "io_error", "cannot open file");
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  try {
    return report(path, parse_text(text));
  } catch (const std::exception& e) {
    return report_error(path, "parse_error", e.what());
  }
}

int run_models() {
  int worst = 0;
  std::vector<buffy::models::NamedModel> all = buffy::models::table2_models();
  std::vector<buffy::models::NamedModel> extended =
      buffy::models::extended_models();
  for (buffy::models::NamedModel& m : extended) all.push_back(std::move(m));
  for (const buffy::models::NamedModel& m : all) {
    worst = std::max(worst, report(m.display_name, m.graph));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  bool models = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--models") {
      models = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: buffy_bounds --models | FILE...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "buffy_bounds: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (!models && files.empty()) {
    std::fprintf(stderr, "usage: buffy_bounds --models | FILE...\n");
    return 2;
  }
  try {
    int worst = 0;
    if (models) worst = std::max(worst, run_models());
    for (const std::string& f : files) worst = std::max(worst, run_file(f));
    return worst;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "buffy_bounds: internal error: %s\n", e.what());
    return 2;
  }
}
