#include "sdf/validate.hpp"

#include <unordered_set>

#include "base/diagnostics.hpp"

namespace buffy::sdf {

void validate(const Graph& graph) {
  std::unordered_set<std::string> actor_names;
  for (const ActorId id : graph.actor_ids()) {
    const Actor& a = graph.actor(id);
    if (a.name.empty()) {
      throw GraphError("graph '" + graph.name() + "': actor with empty name");
    }
    if (!actor_names.insert(a.name).second) {
      throw GraphError("graph '" + graph.name() + "': duplicate actor name '" +
                       a.name + "'");
    }
    if (a.execution_time < 1) {
      throw GraphError("actor '" + a.name +
                       "': execution time must be >= 1 time step");
    }
  }

  std::unordered_set<std::string> channel_names;
  for (const ChannelId id : graph.channel_ids()) {
    const Channel& c = graph.channel(id);
    if (c.name.empty()) {
      throw GraphError("graph '" + graph.name() +
                       "': channel with empty name");
    }
    if (!channel_names.insert(c.name).second) {
      throw GraphError("graph '" + graph.name() +
                       "': duplicate channel name '" + c.name + "'");
    }
    if (c.production < 1) {
      throw GraphError("channel '" + c.name + "': production rate must be >= 1");
    }
    if (c.consumption < 1) {
      throw GraphError("channel '" + c.name +
                       "': consumption rate must be >= 1");
    }
    if (c.initial_tokens < 0) {
      throw GraphError("channel '" + c.name +
                       "': initial tokens must be >= 0");
    }
    if (c.is_self_loop() && c.production != c.consumption) {
      throw GraphError("channel '" + c.name +
                       "': self-loop with unbalanced rates can never be "
                       "consistent");
    }
  }
}

}  // namespace buffy::sdf
