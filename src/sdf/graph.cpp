#include "sdf/graph.hpp"

#include "base/diagnostics.hpp"

namespace buffy::sdf {

Graph::Graph(std::string name) : name_(std::move(name)) {}

ActorId Graph::add_actor(Actor actor) {
  const ActorId id(actors_.size());
  actors_.push_back(std::move(actor));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

ChannelId Graph::add_channel(Channel channel) {
  BUFFY_REQUIRE(channel.src.valid() && channel.src.index() < actors_.size(),
                "channel '" + channel.name + "' has an invalid source actor");
  BUFFY_REQUIRE(channel.dst.valid() && channel.dst.index() < actors_.size(),
                "channel '" + channel.name +
                    "' has an invalid destination actor");
  const ChannelId id(channels_.size());
  out_[channel.src.index()].push_back(id);
  in_[channel.dst.index()].push_back(id);
  channels_.push_back(std::move(channel));
  return id;
}

const Actor& Graph::actor(ActorId id) const {
  BUFFY_REQUIRE(id.valid() && id.index() < actors_.size(), "invalid actor id");
  return actors_[id.index()];
}

const Channel& Graph::channel(ChannelId id) const {
  BUFFY_REQUIRE(id.valid() && id.index() < channels_.size(),
                "invalid channel id");
  return channels_[id.index()];
}

Actor& Graph::actor(ActorId id) {
  BUFFY_REQUIRE(id.valid() && id.index() < actors_.size(), "invalid actor id");
  return actors_[id.index()];
}

Channel& Graph::channel(ChannelId id) {
  BUFFY_REQUIRE(id.valid() && id.index() < channels_.size(),
                "invalid channel id");
  return channels_[id.index()];
}

std::span<const ChannelId> Graph::out_channels(ActorId id) const {
  BUFFY_REQUIRE(id.valid() && id.index() < actors_.size(), "invalid actor id");
  return out_[id.index()];
}

std::span<const ChannelId> Graph::in_channels(ActorId id) const {
  BUFFY_REQUIRE(id.valid() && id.index() < actors_.size(), "invalid actor id");
  return in_[id.index()];
}

std::optional<ActorId> Graph::find_actor(const std::string& name) const {
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    if (actors_[i].name == name) return ActorId(i);
  }
  return std::nullopt;
}

std::optional<ChannelId> Graph::find_channel(const std::string& name) const {
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    if (channels_[i].name == name) return ChannelId(i);
  }
  return std::nullopt;
}

std::vector<ActorId> Graph::actor_ids() const {
  std::vector<ActorId> ids;
  ids.reserve(actors_.size());
  for (std::size_t i = 0; i < actors_.size(); ++i) ids.emplace_back(i);
  return ids;
}

std::vector<ChannelId> Graph::channel_ids() const {
  std::vector<ChannelId> ids;
  ids.reserve(channels_.size());
  for (std::size_t i = 0; i < channels_.size(); ++i) ids.emplace_back(i);
  return ids;
}

}  // namespace buffy::sdf
