#include "sdf/builder.hpp"

#include "sdf/validate.hpp"

namespace buffy::sdf {

GraphBuilder::GraphBuilder(std::string graph_name)
    : graph_(std::move(graph_name)) {}

ActorId GraphBuilder::actor(const std::string& name, i64 execution_time) {
  return graph_.add_actor(Actor{.name = name, .execution_time = execution_time});
}

ChannelId GraphBuilder::channel(const std::string& name, ActorId src,
                                i64 production, ActorId dst, i64 consumption,
                                i64 initial_tokens) {
  return graph_.add_channel(Channel{
      .name = name,
      .src = src,
      .dst = dst,
      .production = production,
      .consumption = consumption,
      .initial_tokens = initial_tokens,
      .src_port = name + "_out",
      .dst_port = name + "_in",
  });
}

Graph GraphBuilder::build() {
  validate(graph_);
  return std::move(graph_);
}

}  // namespace buffy::sdf
