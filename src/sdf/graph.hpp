// The timed SDF graph model (paper Sec. 2).
//
// An SDF graph is a pair (A, C) of actors and point-to-point channels. Every
// firing of an actor consumes a fixed number of tokens from each input
// channel and produces a fixed number on each output channel (the port
// rates); a firing takes a fixed number of discrete time steps (the
// execution time). Channels may carry initial tokens.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/checked_math.hpp"
#include "sdf/ids.hpp"

namespace buffy::sdf {

/// A node of the graph: a function fired atomically on its token rates.
struct Actor {
  /// Unique, non-empty name.
  std::string name;
  /// Discrete time steps per firing; >= 1 (see validate()).
  i64 execution_time = 1;
};

/// A point-to-point FIFO carrying tokens from src to dst.
struct Channel {
  /// Unique, non-empty name.
  std::string name;
  ActorId src;
  ActorId dst;
  /// Tokens produced per firing of src; >= 1.
  i64 production = 1;
  /// Tokens consumed per firing of dst; >= 1.
  i64 consumption = 1;
  /// Tokens present before the first firing; >= 0.
  i64 initial_tokens = 0;
  /// Name of the producing port on src (informational; kept for IO fidelity).
  std::string src_port;
  /// Name of the consuming port on dst (informational; kept for IO fidelity).
  std::string dst_port;

  [[nodiscard]] bool is_self_loop() const { return src == dst; }
};

/// An SDF graph: owns actors and channels and their adjacency.
///
/// Graph is a regular value type; analyses never mutate it. Construction
/// normally goes through GraphBuilder, which validates on build().
///
/// Thread-safety: const access is safe from any number of threads (the
/// whole analysis stack shares one `const Graph&` across DSE workers);
/// mutation is not synchronised and must happen-before any concurrent
/// read.
///
/// Every id-taking accessor requires an id obtained from *this* graph
/// (`add_actor`/`add_channel`/`find_*`/`*_ids`) and throws
/// buffy::Error on an invalid or out-of-range id — ids are never
/// silently reinterpreted across graphs.
class Graph {
 public:
  explicit Graph(std::string name = "sdf");

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Appends an actor and returns its dense id. Name uniqueness is not
  /// checked here — it is checked by validate() on the finished graph.
  ActorId add_actor(Actor actor);

  /// Appends a channel and returns its dense id. Both endpoints must
  /// already exist in this graph; throws buffy::Error otherwise. Rate
  /// and token invariants are checked by validate(), not here.
  ChannelId add_channel(Channel channel);

  [[nodiscard]] std::size_t num_actors() const { return actors_.size(); }
  [[nodiscard]] std::size_t num_channels() const { return channels_.size(); }

  /// The actor / channel for an id of this graph. References stay valid
  /// until the next add_actor / add_channel (vector reallocation).
  [[nodiscard]] const Actor& actor(ActorId id) const;
  [[nodiscard]] const Channel& channel(ChannelId id) const;

  /// Mutable access (used by IO round-tripping and the graph generator).
  /// The caller is responsible for re-running validate() after edits.
  [[nodiscard]] Actor& actor(ActorId id);
  [[nodiscard]] Channel& channel(ChannelId id);

  /// Channels produced into by the given actor (self-loops included).
  [[nodiscard]] std::span<const ChannelId> out_channels(ActorId id) const;
  /// Channels consumed from by the given actor (self-loops included).
  [[nodiscard]] std::span<const ChannelId> in_channels(ActorId id) const;

  /// Id of the actor / channel with the given name, or nullopt when no
  /// such element exists. Linear scan — fine for setup, not for hot loops.
  [[nodiscard]] std::optional<ActorId> find_actor(
      const std::string& name) const;
  [[nodiscard]] std::optional<ChannelId> find_channel(
      const std::string& name) const;

  /// All actor ids in index order.
  [[nodiscard]] std::vector<ActorId> actor_ids() const;
  /// All channel ids in index order.
  [[nodiscard]] std::vector<ChannelId> channel_ids() const;

 private:
  std::string name_;
  std::vector<Actor> actors_;
  std::vector<Channel> channels_;
  std::vector<std::vector<ChannelId>> out_;
  std::vector<std::vector<ChannelId>> in_;
};

}  // namespace buffy::sdf
