// Typed identifiers for actors and channels.
//
// Analyses index many parallel arrays (clocks, token counts, capacities,
// rates); typed ids prevent an actor index from being used as a channel
// index. Ids are dense indices into the owning Graph's storage.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace buffy::sdf {

namespace detail {

template <typename Tag>
class Id {
 public:
  /// Default-constructed ids are invalid.
  constexpr Id() = default;

  constexpr explicit Id(std::size_t index)
      : value_(static_cast<std::uint32_t>(index)) {}

  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  /// Dense index into the owning graph's storage; requires valid().
  [[nodiscard]] constexpr std::size_t index() const { return value_; }

  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  static constexpr std::uint32_t kInvalid =
      std::numeric_limits<std::uint32_t>::max();

  std::uint32_t value_ = kInvalid;
};

}  // namespace detail

struct ActorTag;
struct ChannelTag;

/// Identifies an actor within one Graph. Ids are only meaningful for the
/// graph that issued them; comparing or mixing ids across graphs is a
/// logic error the type system cannot catch.
using ActorId = detail::Id<ActorTag>;
/// Identifies a channel within one Graph (same ownership rule as ActorId).
using ChannelId = detail::Id<ChannelTag>;

}  // namespace buffy::sdf

template <typename Tag>
struct std::hash<buffy::sdf::detail::Id<Tag>> {
  std::size_t operator()(buffy::sdf::detail::Id<Tag> id) const noexcept {
    return id.valid() ? id.index() : static_cast<std::size_t>(-1);
  }
};
