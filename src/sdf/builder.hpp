// Fluent construction of SDF graphs.
//
//   GraphBuilder b("example");
//   const auto a = b.actor("a", 1);
//   const auto bb = b.actor("b", 2);
//   const auto c = b.actor("c", 2);
//   b.channel("alpha", a, 2, bb, 3);       // a -2-> alpha -3-> b
//   b.channel("beta", bb, 1, c, 2);
//   sdf::Graph g = b.build();              // validated
#pragma once

#include <string>

#include "sdf/graph.hpp"

namespace buffy::sdf {

/// Builds and validates a Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::string graph_name);

  /// Adds an actor with the given execution time (discrete time steps per
  /// firing; must be >= 1, enforced at build()).
  ActorId actor(const std::string& name, i64 execution_time);

  /// Adds a channel src -production-> name -consumption-> dst with the given
  /// number of initial tokens. Port names are auto-generated. `src` and
  /// `dst` must be ids returned by this builder's actor() (throws
  /// buffy::Error otherwise); rates >= 1 and initial_tokens >= 0 are
  /// enforced at build().
  ChannelId channel(const std::string& name, ActorId src, i64 production,
                    ActorId dst, i64 consumption, i64 initial_tokens = 0);

  /// Validates (see sdf::validate, which throws GraphError on the first
  /// structural problem) and returns the finished graph. The builder is
  /// left in a moved-from state; reuse after build() is undefined.
  [[nodiscard]] Graph build();

  /// Access to the graph under construction (used by the generator).
  [[nodiscard]] Graph& graph() { return graph_; }

 private:
  Graph graph_;
};

}  // namespace buffy::sdf
