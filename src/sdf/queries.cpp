#include "sdf/queries.hpp"

#include <algorithm>

#include "base/diagnostics.hpp"

namespace buffy::sdf {

bool is_weakly_connected(const Graph& graph) {
  const std::size_t n = graph.num_actors();
  if (n == 0) return true;
  std::vector<bool> seen(n, false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::size_t cur = stack.back();
    stack.pop_back();
    const ActorId id(cur);
    auto visit = [&](ActorId next) {
      if (!seen[next.index()]) {
        seen[next.index()] = true;
        ++visited;
        stack.push_back(next.index());
      }
    };
    for (const ChannelId c : graph.out_channels(id)) {
      visit(graph.channel(c).dst);
    }
    for (const ChannelId c : graph.in_channels(id)) {
      visit(graph.channel(c).src);
    }
  }
  return visited == n;
}

namespace {

// Iterative three-colour DFS; returns true when a back edge exists.
bool dfs_finds_cycle(const Graph& graph) {
  enum class Colour { White, Grey, Black };
  const std::size_t n = graph.num_actors();
  std::vector<Colour> colour(n, Colour::White);
  // Stack holds (actor index, next out-channel position).
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  for (std::size_t root = 0; root < n; ++root) {
    if (colour[root] != Colour::White) continue;
    colour[root] = Colour::Grey;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [node, pos] = stack.back();
      const auto outs = graph.out_channels(ActorId(node));
      if (pos == outs.size()) {
        colour[node] = Colour::Black;
        stack.pop_back();
        continue;
      }
      const ActorId next = graph.channel(outs[pos]).dst;
      ++pos;
      if (colour[next.index()] == Colour::Grey) return true;
      if (colour[next.index()] == Colour::White) {
        colour[next.index()] = Colour::Grey;
        stack.emplace_back(next.index(), 0);
      }
    }
  }
  return false;
}

}  // namespace

bool has_directed_cycle(const Graph& graph) { return dfs_finds_cycle(graph); }

std::vector<ActorId> topological_order(const Graph& graph) {
  const std::size_t n = graph.num_actors();
  std::vector<std::size_t> indegree(n, 0);
  for (const ChannelId c : graph.channel_ids()) {
    ++indegree[graph.channel(c).dst.index()];
  }
  std::vector<ActorId> order;
  order.reserve(n);
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    const std::size_t cur = ready.back();
    ready.pop_back();
    order.emplace_back(cur);
    for (const ChannelId c : graph.out_channels(ActorId(cur))) {
      const std::size_t next = graph.channel(c).dst.index();
      if (--indegree[next] == 0) ready.push_back(next);
    }
  }
  if (order.size() != n) {
    throw GraphError("graph '" + graph.name() +
                     "' is cyclic; no topological order exists");
  }
  return order;
}

std::vector<ChannelId> channels_between(const Graph& graph, ActorId src,
                                        ActorId dst) {
  std::vector<ChannelId> out;
  for (const ChannelId c : graph.out_channels(src)) {
    if (graph.channel(c).dst == dst) out.push_back(c);
  }
  return out;
}

i64 total_initial_tokens(const Graph& graph) {
  i64 total = 0;
  for (const ChannelId c : graph.channel_ids()) {
    total = checked_add(total, graph.channel(c).initial_tokens);
  }
  return total;
}

GraphStats stats(const Graph& graph) {
  return GraphStats{
      .num_actors = graph.num_actors(),
      .num_channels = graph.num_channels(),
      .initial_tokens = total_initial_tokens(graph),
      .weakly_connected = is_weakly_connected(graph),
      .cyclic = has_directed_cycle(graph),
  };
}

}  // namespace buffy::sdf
