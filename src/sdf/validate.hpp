// Structural validation of SDF graphs.
//
// validate() checks everything that can be checked without analysis:
// non-empty unique names, positive rates, execution times >= 1 (the timed
// execution model of the paper advances in whole time steps; zero-time
// firings would admit unbounded same-instant firing cascades), and
// non-negative initial tokens. Consistency (existence of a repetition
// vector) is a separate analysis, see analysis/consistency.hpp.
#pragma once

#include "sdf/graph.hpp"

namespace buffy::sdf {

/// Throws GraphError describing the first problem found; no-op when valid.
void validate(const Graph& graph);

}  // namespace buffy::sdf
