// Structural queries on SDF graphs used across the analyses.
//
// All functions here are pure over a const Graph — no caching, no
// mutation — so they are safe to call concurrently on the same graph.
#pragma once

#include <vector>

#include "sdf/graph.hpp"

namespace buffy::sdf {

/// True when the graph, viewed as undirected, is connected
/// (the empty graph counts as connected).
[[nodiscard]] bool is_weakly_connected(const Graph& graph);

/// True when the directed graph contains a cycle (self-loops count).
[[nodiscard]] bool has_directed_cycle(const Graph& graph);

/// Actors in a topological order of the directed graph; throws GraphError
/// when the graph is cyclic.
[[nodiscard]] std::vector<ActorId> topological_order(const Graph& graph);

/// Channels from src to dst (there can be several parallel ones).
[[nodiscard]] std::vector<ChannelId> channels_between(const Graph& graph,
                                                      ActorId src,
                                                      ActorId dst);

/// Sum of initial tokens over all channels.
[[nodiscard]] i64 total_initial_tokens(const Graph& graph);

/// Summary used by reports.
struct GraphStats {
  std::size_t num_actors = 0;
  std::size_t num_channels = 0;
  i64 initial_tokens = 0;
  bool weakly_connected = false;
  bool cyclic = false;
};

[[nodiscard]] GraphStats stats(const Graph& graph);

}  // namespace buffy::sdf
