#include "mapping/binding.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/repetition_vector.hpp"
#include "base/diagnostics.hpp"

namespace buffy::mapping {

std::size_t Binding::num_processors() const {
  std::size_t max_proc = 0;
  for (const std::size_t p : processor_of) max_proc = std::max(max_proc, p);
  return processor_of.empty() ? 0 : max_proc + 1;
}

std::vector<sdf::ActorId> Binding::actors_on(std::size_t processor) const {
  std::vector<sdf::ActorId> out;
  for (std::size_t a = 0; a < processor_of.size(); ++a) {
    if (processor_of[a] == processor) out.emplace_back(a);
  }
  return out;
}

std::string Binding::str(const sdf::Graph& graph) const {
  std::ostringstream os;
  os << '{';
  for (std::size_t p = 0; p < num_processors(); ++p) {
    if (p != 0) os << " | ";
    os << 'p' << p << ':';
    for (const sdf::ActorId a : actors_on(p)) {
      os << ' ' << graph.actor(a).name;
    }
  }
  os << '}';
  return os.str();
}

void validate_binding(const sdf::Graph& graph, const Binding& binding) {
  BUFFY_REQUIRE(binding.processor_of.size() == graph.num_actors(),
                "binding must assign every actor a processor");
}

Binding round_robin_binding(const sdf::Graph& graph,
                            std::size_t num_processors) {
  BUFFY_REQUIRE(num_processors >= 1, "need at least one processor");
  Binding binding;
  binding.processor_of.resize(graph.num_actors());
  for (std::size_t a = 0; a < graph.num_actors(); ++a) {
    binding.processor_of[a] = a % num_processors;
  }
  return binding;
}

Binding load_balanced_binding(const sdf::Graph& graph,
                              std::size_t num_processors) {
  BUFFY_REQUIRE(num_processors >= 1, "need at least one processor");
  const auto q = analysis::repetition_vector(graph);
  // (work per iteration, actor), heaviest first; ties by actor index for
  // determinism.
  std::vector<std::pair<i64, std::size_t>> work;
  for (const sdf::ActorId a : graph.actor_ids()) {
    work.emplace_back(checked_mul(q[a], graph.actor(a).execution_time),
                      a.index());
  }
  std::sort(work.begin(), work.end(), [](const auto& x, const auto& y) {
    return x.first > y.first || (x.first == y.first && x.second < y.second);
  });
  Binding binding;
  binding.processor_of.resize(graph.num_actors());
  std::vector<i64> load(num_processors, 0);
  for (const auto& [w, actor] : work) {
    const std::size_t p = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    binding.processor_of[actor] = p;
    load[p] += w;
  }
  return binding;
}

state::ThroughputResult throughput_under_binding(
    const sdf::Graph& graph, const state::Capacities& capacities,
    const Binding& binding, sdf::ActorId target, u64 max_steps) {
  validate_binding(graph, binding);
  state::ThroughputOptions opts{.target = target, .max_steps = max_steps};
  opts.processor_of = binding.processor_of;
  return state::compute_throughput(graph, capacities, opts);
}

std::vector<SweepPoint> processor_sweep(const sdf::Graph& graph,
                                        const state::Capacities& capacities,
                                        sdf::ActorId target,
                                        std::size_t max_processors,
                                        u64 max_steps) {
  std::vector<SweepPoint> out;
  for (std::size_t p = 1; p <= max_processors; ++p) {
    SweepPoint point;
    point.processors = p;
    point.binding = load_balanced_binding(graph, p);
    point.throughput =
        throughput_under_binding(graph, capacities, point.binding, target,
                                 max_steps)
            .throughput;
    out.push_back(std::move(point));
  }
  return out;
}

}  // namespace buffy::mapping
