// Processor bindings — the paper's multiprocessor system-on-chip context
// (Sec. 1/3 and the [PBB+03] design-flow objective in the conclusions).
//
// A binding assigns every actor to a processor; actors on the same
// processor execute mutually exclusively (no preemption), with ties among
// simultaneously-ready actors broken by actor index (fixed-priority list
// scheduling). Under a binding, buffer requirements change: serialised
// producers need less pipelining headroom, while cross-processor channels
// become the real stores. The incremental DSE sizes buffers for the mapped
// system by passing the binding through DseOptions::binding.
#pragma once

#include <string>
#include <vector>

#include "base/rational.hpp"
#include "sdf/graph.hpp"
#include "state/throughput.hpp"

namespace buffy::mapping {

/// An actor-to-processor assignment.
struct Binding {
  /// processor_of[i] is the processor index of actor i; processors are
  /// numbered 0..num_processors()-1 (gaps allowed but pointless).
  std::vector<std::size_t> processor_of;

  [[nodiscard]] std::size_t num_processors() const;
  /// Actors assigned to the given processor, in index order.
  [[nodiscard]] std::vector<sdf::ActorId> actors_on(
      std::size_t processor) const;
  /// "{p0: a c | p1: b}" for reports.
  [[nodiscard]] std::string str(const sdf::Graph& graph) const;
};

/// Throws Error unless the binding covers exactly the graph's actors.
void validate_binding(const sdf::Graph& graph, const Binding& binding);

/// Actors dealt round-robin over the processors in index order.
[[nodiscard]] Binding round_robin_binding(const sdf::Graph& graph,
                                          std::size_t num_processors);

/// Longest-processing-time-first load balancing on the per-iteration work
/// q(a) * execution_time(a): heaviest actors first, each onto the
/// currently least-loaded processor. A classic makespan heuristic; needs a
/// consistent graph for q.
[[nodiscard]] Binding load_balanced_binding(const sdf::Graph& graph,
                                            std::size_t num_processors);

/// Self-timed throughput of the target actor under capacities + binding.
[[nodiscard]] state::ThroughputResult throughput_under_binding(
    const sdf::Graph& graph, const state::Capacities& capacities,
    const Binding& binding, sdf::ActorId target,
    u64 max_steps = 100'000'000);

/// One row of a processor-count sweep.
struct SweepPoint {
  std::size_t processors = 0;
  Binding binding;
  Rational throughput;
};

/// Throughput as a function of the processor count (1..max_processors)
/// under load-balanced bindings and fixed capacities: the classic
/// resource/throughput curve that frames the buffer/throughput trade-off
/// in a mapped system.
[[nodiscard]] std::vector<SweepPoint> processor_sweep(
    const sdf::Graph& graph, const state::Capacities& capacities,
    sdf::ActorId target, std::size_t max_processors,
    u64 max_steps = 100'000'000);

}  // namespace buffy::mapping
