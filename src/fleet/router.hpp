// buffyd-router: the sharded multi-process front-end of the buffy
// analysis fleet (DESIGN.md §17).
//
// A Router supervises a pool of worker `buffyd` processes — fork/exec'd,
// health-checked, and restarted with exponential backoff when they crash
// or stall — and speaks the same newline-delimited JSON protocol as a
// single buffyd on its client-facing sockets, so clients need no fleet
// awareness:
//
//  * analyze_throughput / explore_pareto / explore_slice are routed by
//    graph fingerprint to the graph's home shard (fingerprint mod
//    workers), so repeated queries on one graph keep hitting the same
//    worker's warm ThroughputCache;
//  * explore_pareto with `"scatter":true` and the exhaustive engine is
//    split at the router: it replicates the engine's divide-and-conquer
//    driver over the size dimension and dispatches each per-size
//    evaluation as an `explore_slice` request across the fleet in wave
//    batches, re-dispatching slices lost to a worker crash, then merges
//    the partial outcomes into a front byte-identical to a
//    single-process exploration (the SizeOutcome purity contract of
//    buffer::explore_size_slice);
//  * per-shard admission is bounded: beyond `shard_queue_capacity`
//    outstanding requests a shard answers `overloaded` with a
//    `retry_after_ms` hint instead of queueing unboundedly;
//  * status aggregates router counters with per-shard supervision state
//    (pid, restarts, queue depth) and each worker's own status
//    (refreshed by the health pings), so affinity and backpressure are
//    observable from the outside.
//
// Worker connections and client connections both ride the paged wire
// path (service::PagedBuffer / LineFramer): responses are adopted
// zero-copy as buffer pages and receive buffers are filled in place.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "base/checked_math.hpp"
#include "service/json.hpp"

namespace buffy::fleet {

/// Everything a Router can be configured with.
struct RouterOptions {
  /// Client-facing Unix-domain listener; empty = none.
  std::string unix_socket_path;
  /// Client-facing TCP listener on loopback; nullopt = none, 0 =
  /// ephemeral (read back via Router::tcp_port()).
  std::optional<int> tcp_port;
  /// Path of the worker `buffyd` binary to spawn.
  std::string worker_binary;
  /// Worker processes in the fleet (>= 1).
  unsigned workers = 4;
  /// Directory for the per-worker Unix sockets (worker-N.sock); created
  /// when missing.
  std::string runtime_dir;
  /// Outstanding requests a shard accepts before answering `overloaded`.
  u64 shard_queue_capacity = 32;
  /// Deadline applied to requests that carry none (0 = none).
  i64 default_deadline_ms = 0;
  /// Upper bound on one request or response line.
  u64 max_request_bytes = 8u << 20;
  /// Supervision cadence: health pings per shard at this interval.
  i64 health_interval_ms = 100;
  /// A worker that has not answered a health ping for this long is
  /// declared stalled and SIGKILLed (the supervisor then respawns it).
  i64 health_timeout_ms = 2000;
  /// Respawn backoff after a worker death: first wait, doubling per
  /// consecutive failure up to the cap.
  i64 backoff_base_ms = 50;
  i64 backoff_max_ms = 2000;
  /// `--threads` handed to each worker.
  unsigned worker_threads = 2;
  /// `--queue` handed to each worker.
  u64 worker_queue_capacity = 64;
  /// Test hook: invoked after every scatter wave's slice requests have
  /// been written to the workers and before the router waits for their
  /// outcomes — the deterministic point to kill a worker mid-wave.
  /// Arguments: wave index (0 = the lo/hi endpoint wave) and the number
  /// of slices the wave dispatched.
  std::function<void(unsigned wave, std::size_t slices)> after_wave_dispatch;
};

/// Routing decision for one client request forwarded to a worker.
struct ForwardPlan {
  /// Preferred (home) shard; failover walks the fleet from here.
  unsigned home = 0;
  /// The client's request id (absent = fire-and-forget semantics).
  std::optional<i64> client_id;
  /// Absolute router-side deadline (backstop against stalled workers).
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Remaining re-dispatch budget when a worker dies mid-request.
  int attempts = 3;
};

/// The fleet front-end; see file comment.
class Router {
 public:
  explicit Router(RouterOptions options);
  /// Initiates shutdown and waits for the drain if still running.
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds the client listeners, spawns the worker fleet, and starts the
  /// supervisor. Throws Error when no listener is configured or a bind
  /// fails. Workers come up asynchronously: requests arriving before a
  /// shard connected are answered `overloaded` (retry) rather than held.
  void start();

  /// Begins the drain (idempotent, any thread): client listeners close,
  /// in-flight work completes, then the workers are shut down.
  void shutdown();

  /// Blocks until a drain completes, then reaps every thread and worker.
  void wait();

  /// Port the TCP listener actually bound (0 when TCP is off).
  [[nodiscard]] int tcp_port() const { return tcp_port_; }

  [[nodiscard]] unsigned num_workers() const;

  /// Home shard of a graph fingerprint (affinity routing).
  [[nodiscard]] unsigned shard_of(u64 fingerprint) const;

  /// Pid of shard `index`'s current worker process (-1 when down).
  /// Test hook for fault injection: the pid to SIGKILL or SIGSTOP.
  [[nodiscard]] i64 worker_pid(unsigned index) const;

  /// Completed respawns of shard `index` (0 until its first crash).
  [[nodiscard]] u64 worker_restarts(unsigned index) const;

  /// The status endpoint's "result" object (also reachable over the
  /// protocol via a `status` request).
  [[nodiscard]] service::JsonValue status_json() const;

 private:
  struct Shard;
  struct Connection;
  struct Reply;
  class ScatterJob;

  void accept_loop(int listen_fd);
  void reader_loop(Connection* conn);
  void handle_line(Connection* conn, const std::string& line);
  void respond(Connection* conn, std::string line, bool ok);

  void supervisor_loop();
  void shard_tick(Shard& s);
  void spawn_worker(Shard& s);
  void teardown_worker(Shard& s, bool kill);
  void worker_reader_loop(Shard* s, int fd, u64 epoch);
  void handle_worker_line(Shard* s, u64 epoch, const std::string& line);
  std::optional<i64> send_to_shard_locked(
      Shard& s, service::JsonValue request, bool counts_as_job,
      std::optional<std::chrono::steady_clock::time_point> deadline,
      std::function<void(Reply)> on_reply);
  void drain_workers();
  void finish_job(Connection* conn);

  void dispatch_forward(Connection* conn,
                        std::shared_ptr<service::JsonValue> doc,
                        ForwardPlan plan);
  void scatter_explore(Connection* conn, std::shared_ptr<ScatterJob> job);

  RouterOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::chrono::steady_clock::time_point started_at_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = 0;
  std::vector<std::thread> accept_threads_;
  std::thread supervisor_;

  mutable std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> reaped_{false};
  std::atomic<i64> next_internal_id_{1};
  std::atomic<unsigned> round_robin_{0};

  mutable std::mutex sup_mu_;
  std::condition_variable sup_cv_;

  // Scatter jobs in flight (drain barrier).
  mutable std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  u64 jobs_in_system_ = 0;    // guarded by jobs_mu_
  u64 inline_shutdowns_ = 0;  // shutdown handlers awaiting their response,
                              // guarded by jobs_mu_ (see handle_line)

  // Counters (relaxed; metrics only).
  std::atomic<u64> requests_total_{0};
  std::atomic<u64> analyze_requests_{0};
  std::atomic<u64> explore_requests_{0};
  std::atomic<u64> slice_requests_{0};
  std::atomic<u64> scatter_requests_{0};
  std::atomic<u64> status_requests_{0};
  std::atomic<u64> cancel_requests_{0};
  std::atomic<u64> shutdown_requests_{0};
  std::atomic<u64> responses_ok_{0};
  std::atomic<u64> responses_error_{0};
  std::atomic<u64> overloaded_{0};
  std::atomic<u64> forwarded_{0};
  std::atomic<u64> redispatches_{0};
  std::atomic<u64> worker_restarts_total_{0};
  std::atomic<u64> connections_accepted_{0};
  std::atomic<u64> connections_open_{0};
};

}  // namespace buffy::fleet
