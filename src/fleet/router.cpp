#include "fleet/router.hpp"

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <span>
#include <unordered_map>
#include <utility>

#include "analysis/bounds.hpp"
#include "base/diagnostics.hpp"
#include "base/rational.hpp"
#include "buffer/bounds.hpp"
#include "buffer/dse.hpp"
#include "buffer/dse_exact.hpp"
#include "buffer/pareto.hpp"
#include "exec/cancellation.hpp"
#include "exec/subprocess.hpp"
#include "io/dsl.hpp"
#include "io/sdf_xml.hpp"
#include "service/cache_registry.hpp"
#include "service/paged_buffer.hpp"
#include "service/protocol.hpp"

namespace buffy::fleet {

using service::ErrorCode;
using service::JsonValue;
using service::LineFramer;
using service::PagedBuffer;
using service::ProtocolError;
using service::Request;

using Clock = std::chrono::steady_clock;

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

/// Same payload decoding as the worker daemon (service/server.cpp): Auto
/// sniffs XML by a leading '<'. The router parses the graph once to
/// compute its routing fingerprint and (for scatter jobs) to plan the
/// divide and conquer.
sdf::Graph parse_graph(const Request& req) {
  service::GraphFormat format = req.format;
  if (format == service::GraphFormat::Auto) {
    format = service::GraphFormat::Dsl;
    for (const char c : req.graph_text) {
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') continue;
      if (c == '<') format = service::GraphFormat::Xml;
      break;
    }
  }
  return format == service::GraphFormat::Xml ? io::read_sdf_xml(req.graph_text)
                                             : io::read_dsl(req.graph_text);
}

sdf::ActorId resolve_target(const sdf::Graph& graph, const std::string& name) {
  if (graph.num_actors() == 0) {
    throw ProtocolError(ErrorCode::GraphInvalid, "the graph has no actors");
  }
  if (name.empty()) return sdf::ActorId(graph.num_actors() - 1);
  const std::optional<sdf::ActorId> id = graph.find_actor(name);
  if (!id.has_value()) {
    throw ProtocolError(ErrorCode::GraphInvalid,
                        "no actor named '" + name + "'");
  }
  return *id;
}

/// Magnitude admission mirroring the worker's (DESIGN.md §16): a scatter
/// job plans the d&c locally, so it must reject oversized graphs with the
/// same structured code a worker would.
void admit_magnitudes(const sdf::Graph& graph) {
  const analysis::BoundsCertificate cert = analysis::derive_bounds(graph);
  if (cert.consistent && !cert.fits_i64) {
    throw ProtocolError(ErrorCode::MagnitudeOverflow,
                        "graph '" + graph.name() +
                            "' rejected at admission: " +
                            cert.overflow_detail);
  }
}

std::optional<i64> try_extract_id(const std::string& line) {
  try {
    const JsonValue doc = JsonValue::parse(line);
    const JsonValue* id = doc.find("id");
    if (id != nullptr && id->is_int()) return id->as_int();
  } catch (const std::exception&) {
  }
  return std::nullopt;
}

/// An `overloaded` error response carrying the backpressure hint.
std::string overloaded_response(std::optional<i64> id,
                                const std::string& message,
                                i64 retry_after_ms) {
  JsonValue err = JsonValue::object();
  err.set("code", JsonValue::string(service::error_code_name(
                      ErrorCode::Overloaded)));
  err.set("message", JsonValue::string(message));
  err.set("retry_after_ms", JsonValue::integer(retry_after_ms));
  JsonValue resp = JsonValue::object();
  if (id.has_value()) resp.set("id", JsonValue::integer(*id));
  resp.set("ok", JsonValue::boolean(false));
  resp.set("error", err);
  return resp.dump();
}

/// Rebuilds a worker response under the client's id (or without one),
/// preserving the id/ok/result|error member order the worker emits.
std::string rewrite_response_id(const JsonValue& doc,
                                std::optional<i64> client_id, bool* ok_out) {
  JsonValue out = JsonValue::object();
  if (client_id.has_value()) {
    out.set("id", JsonValue::integer(*client_id));
  }
  bool ok = false;
  if (const JsonValue* okv = doc.find("ok"); okv != nullptr && okv->is_bool()) {
    ok = okv->as_bool();
    out.set("ok", *okv);
  } else {
    out.set("ok", JsonValue::boolean(false));
  }
  if (const JsonValue* res = doc.find("result")) out.set("result", *res);
  if (const JsonValue* err = doc.find("error")) out.set("error", *err);
  if (ok_out != nullptr) *ok_out = ok;
  return out.dump();
}

const char* format_name(service::GraphFormat format) {
  switch (format) {
    case service::GraphFormat::Dsl:
      return "dsl";
    case service::GraphFormat::Xml:
      return "xml";
    case service::GraphFormat::Auto:
      break;
  }
  return "auto";
}

/// Worker-reported error on a scattered slice, forwarded to the client
/// with the worker's structured code preserved.
struct ScatterFailure {
  std::string code;
  std::string message;
};

std::string scatter_error_response(std::optional<i64> id,
                                   const ScatterFailure& failure) {
  JsonValue err = JsonValue::object();
  err.set("code", JsonValue::string(failure.code));
  err.set("message", JsonValue::string(failure.message));
  JsonValue resp = JsonValue::object();
  if (id.has_value()) resp.set("id", JsonValue::integer(*id));
  resp.set("ok", JsonValue::boolean(false));
  resp.set("error", err);
  return resp.dump();
}

/// One per-size outcome received from a worker (the remote SizeOutcome).
struct SliceResult {
  Rational throughput;
  std::vector<i64> capacities;
  u64 distributions_explored = 0;
  u64 max_states_stored = 0;
  u64 simulations_run = 0;
  u64 cache_hits = 0;
  u64 dominance_skips = 0;
  u64 lp_prunes = 0;
  u64 lp_cuts = 0;
  bool static_narrow = false;
  bool cached_graph = false;
};

u64 result_u64(const JsonValue& result, const char* key) {
  const JsonValue* v = result.find(key);
  return v != nullptr && v->is_int() ? static_cast<u64>(v->as_int()) : 0;
}

SliceResult parse_slice_result(const JsonValue& result) {
  SliceResult out;
  const JsonValue* tput = result.find("throughput");
  const JsonValue* caps = result.find("capacities");
  if (tput == nullptr || !tput->is_string() || caps == nullptr ||
      !caps->is_array()) {
    throw ScatterFailure{"internal_error",
                         "worker returned a malformed slice result"};
  }
  out.throughput = parse_rational(tput->as_string());
  for (const JsonValue& c : caps->as_array()) {
    if (!c.is_int()) {
      throw ScatterFailure{"internal_error",
                           "worker returned non-integer slice capacities"};
    }
    out.capacities.push_back(c.as_int());
  }
  out.distributions_explored = result_u64(result, "distributions_explored");
  out.max_states_stored = result_u64(result, "max_states_stored");
  out.simulations_run = result_u64(result, "simulations_run");
  out.cache_hits = result_u64(result, "cache_hits");
  out.dominance_skips = result_u64(result, "dominance_skips");
  out.lp_prunes = result_u64(result, "lp_prunes");
  out.lp_cuts = result_u64(result, "lp_cuts");
  const JsonValue* narrow = result.find("static_narrow");
  out.static_narrow = narrow != nullptr && narrow->is_bool() &&
                      narrow->as_bool();
  const JsonValue* cached = result.find("cached_graph");
  out.cached_graph = cached != nullptr && cached->is_bool() &&
                     cached->as_bool();
  return out;
}

}  // namespace

/// Worker replies as the router's dispatch layer sees them: a protocol
/// response line, the worker died with the request in flight, or the
/// router-side deadline backstop fired (stalled worker).
struct Router::Reply {
  enum class Kind { Response, Lost, Deadline };
  Kind kind = Kind::Lost;
  JsonValue doc;  ///< The parsed response object when kind == Response.
};

/// One worker process slot of the fleet. All mutable state is guarded by
/// `mu`; reply callbacks are always invoked with `mu` released.
struct Router::Shard {
  enum class State { Down, Starting, Up };

  unsigned index = 0;
  std::string socket_path;

  mutable std::mutex mu;
  exec::Subprocess proc;
  int fd = -1;
  State state = State::Down;
  /// Bumped on every teardown; late replies and the previous reader
  /// epoch's exit report are matched against it and dropped when stale.
  u64 epoch = 0;
  bool conn_broken = false;
  bool spawned_before = false;
  u64 restarts = 0;
  exec::ExponentialBackoff backoff;
  Clock::time_point respawn_at{};
  Clock::time_point spawn_started{};
  bool ping_inflight = false;
  Clock::time_point last_ping{};
  /// Reset the backoff on the first health pong of this epoch: the worker
  /// demonstrably serves requests, so the next crash is a fresh incident.
  bool backoff_reset_pending = false;
  /// Outstanding client work on this shard (the bounded "queue": past
  /// shard_queue_capacity new requests are answered `overloaded`).
  u64 inflight_jobs = 0;

  struct Pending {
    std::function<void(Reply)> fn;
    std::optional<Clock::time_point> deadline;
    bool job = false;
  };
  std::map<i64, Pending> pending;
  std::thread reader;

  JsonValue last_status;
  bool has_status = false;

  Shard(i64 backoff_base_ms, i64 backoff_max_ms)
      : backoff(backoff_base_ms, backoff_max_ms) {}
};

/// One accepted client connection (mirrors service::Server::Connection).
struct Router::Connection {
  int fd = -1;
  std::thread reader;
  std::mutex write_mu;
  std::atomic<bool> open{true};
  std::atomic<bool> done{false};
  /// Jobs (forwarded requests + scatter explorations) still holding this
  /// connection; it is reclaimed only when the reader exited AND no job
  /// references it.
  std::atomic<u64> jobs{0};

  /// client request id -> where it went, for `cancel` routing.
  struct Route {
    bool scatter = false;
    unsigned shard = 0;
    i64 internal_id = 0;
    exec::CancellationToken token;  ///< scatter only
  };
  std::mutex routes_mu;
  std::unordered_map<i64, Route> routes;
};

/// Everything a scatter exploration needs off the reader thread.
class Router::ScatterJob {
 public:
  Request req;
  std::optional<i64> client_id;
  sdf::Graph graph;
  sdf::ActorId target;
  /// The client-cancellable parent (cancel requests fire this) and the
  /// deadline-composed token the wave loop polls.
  exec::CancellationToken parent;
  exec::CancellationToken token;
  std::optional<Clock::time_point> deadline;
};

Router::Router(RouterOptions options) : options_(std::move(options)) {
  BUFFY_REQUIRE(options_.workers >= 1, "RouterOptions::workers must be >= 1");
  BUFFY_REQUIRE(!options_.worker_binary.empty(),
                "RouterOptions::worker_binary must name the buffyd binary");
  BUFFY_REQUIRE(!options_.runtime_dir.empty(),
                "RouterOptions::runtime_dir must be set");
  BUFFY_REQUIRE(options_.shard_queue_capacity >= 1,
                "RouterOptions::shard_queue_capacity must be >= 1");
  started_at_ = Clock::now();
  for (unsigned i = 0; i < options_.workers; ++i) {
    auto shard = std::make_unique<Shard>(options_.backoff_base_ms,
                                         options_.backoff_max_ms);
    shard->index = i;
    shard->socket_path =
        options_.runtime_dir + "/worker-" + std::to_string(i) + ".sock";
    BUFFY_REQUIRE(shard->socket_path.size() < sizeof(sockaddr_un{}.sun_path),
                  "runtime_dir produces worker socket paths longer than "
                  "sockaddr_un allows");
    shards_.push_back(std::move(shard));
  }
}

Router::~Router() {
  shutdown();
  wait();
}

unsigned Router::num_workers() const {
  return static_cast<unsigned>(shards_.size());
}

unsigned Router::shard_of(u64 fingerprint) const {
  return static_cast<unsigned>(fingerprint % shards_.size());
}

i64 Router::worker_pid(unsigned index) const {
  BUFFY_REQUIRE(index < shards_.size(), "worker_pid: shard out of range");
  const Shard& s = *shards_[index];
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.proc.valid() ? static_cast<i64>(s.proc.pid()) : -1;
}

u64 Router::worker_restarts(unsigned index) const {
  BUFFY_REQUIRE(index < shards_.size(), "worker_restarts: shard out of range");
  const Shard& s = *shards_[index];
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.restarts;
}

void Router::start() {
  BUFFY_REQUIRE(!started_.exchange(true), "Router::start() called twice");
  BUFFY_REQUIRE(
      !options_.unix_socket_path.empty() || options_.tcp_port.has_value(),
      "no listener configured: set unix_socket_path and/or tcp_port");
  ::mkdir(options_.runtime_dir.c_str(), 0700);  // may already exist
  try {
    if (!options_.unix_socket_path.empty()) {
      const std::string& path = options_.unix_socket_path;
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (path.size() >= sizeof(addr.sun_path)) {
        throw Error("unix socket path too long: '" + path + "'");
      }
      std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
      unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (unix_fd_ < 0) throw_errno("socket(AF_UNIX)");
      ::unlink(path.c_str());
      if (::bind(unix_fd_, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        throw_errno("bind('" + path + "')");
      }
      if (::listen(unix_fd_, 128) != 0) throw_errno("listen('" + path + "')");
    }
    if (options_.tcp_port.has_value()) {
      BUFFY_REQUIRE(*options_.tcp_port >= 0 && *options_.tcp_port <= 65535,
                    "tcp_port must be in [0, 65535]");
      tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      if (tcp_fd_ < 0) throw_errno("socket(AF_INET)");
      const int one = 1;
      ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<std::uint16_t>(*options_.tcp_port));
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (::bind(tcp_fd_, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        throw_errno("bind(tcp port " + std::to_string(*options_.tcp_port) +
                    ")");
      }
      if (::listen(tcp_fd_, 128) != 0) throw_errno("listen(tcp)");
      socklen_t len = sizeof(addr);
      if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
          0) {
        throw_errno("getsockname(tcp)");
      }
      tcp_port_ = ntohs(addr.sin_port);
    }
  } catch (...) {
    if (unix_fd_ >= 0) ::close(unix_fd_);
    if (tcp_fd_ >= 0) ::close(tcp_fd_);
    unix_fd_ = tcp_fd_ = -1;
    throw;
  }
  if (unix_fd_ >= 0) {
    accept_threads_.emplace_back([this] { accept_loop(unix_fd_); });
  }
  if (tcp_fd_ >= 0) {
    accept_threads_.emplace_back([this] { accept_loop(tcp_fd_); });
  }
  supervisor_ = std::thread([this] { supervisor_loop(); });
}

void Router::shutdown() {
  if (!draining_.exchange(true)) {
    if (unix_fd_ >= 0) ::shutdown(unix_fd_, SHUT_RDWR);
    if (tcp_fd_ >= 0) ::shutdown(tcp_fd_, SHUT_RDWR);
  }
  jobs_cv_.notify_all();
  sup_cv_.notify_all();
}

void Router::wait() {
  if (!started_.load(std::memory_order_acquire)) return;
  {
    std::unique_lock<std::mutex> lock(jobs_mu_);
    jobs_cv_.wait(lock, [this] {
      return draining_.load(std::memory_order_relaxed) &&
             jobs_in_system_ == 0 && inline_shutdowns_ == 0;
    });
  }
  if (reaped_.exchange(true)) return;
  for (std::thread& t : accept_threads_) t.join();
  accept_threads_.clear();
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    ::unlink(options_.unix_socket_path.c_str());
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  // The supervisor notices the drain, waits for in-flight worker traffic
  // to settle, shuts the fleet down, and exits.
  if (supervisor_.joinable()) supervisor_.join();
  {
    const std::lock_guard<std::mutex> lock(conns_mu_);
    for (const std::unique_ptr<Connection>& c : conns_) {
      c->open.store(false, std::memory_order_relaxed);
      ::shutdown(c->fd, SHUT_RDWR);
    }
    for (const std::unique_ptr<Connection>& c : conns_) {
      if (c->reader.joinable()) c->reader.join();
      ::close(c->fd);
    }
    conns_.clear();
  }
}

// ---------------------------------------------------------------------------
// Worker supervision

void Router::spawn_worker(Shard& s) {  // requires s.mu held
  const std::vector<std::string> argv = {
      options_.worker_binary,
      "--socket",
      s.socket_path,
      "--threads",
      std::to_string(options_.worker_threads),
      "--queue",
      std::to_string(options_.worker_queue_capacity),
  };
  ::unlink(s.socket_path.c_str());  // never connect to a dead worker's socket
  try {
    s.proc = exec::Subprocess::spawn(argv);
  } catch (const Error&) {
    s.state = Shard::State::Down;
    s.respawn_at = Clock::now() +
                   std::chrono::milliseconds(s.backoff.next_ms());
    return;
  }
  if (s.spawned_before) {
    ++s.restarts;
    worker_restarts_total_.fetch_add(1, std::memory_order_relaxed);
  }
  s.spawned_before = true;
  s.backoff_reset_pending = true;
  s.state = Shard::State::Starting;
  s.spawn_started = Clock::now();
}

void Router::teardown_worker(Shard& s, bool kill) {
  std::thread reader;
  int fd = -1;
  std::vector<std::function<void(Reply)>> lost;
  {
    const std::lock_guard<std::mutex> lock(s.mu);
    if (kill && s.proc.valid()) {
      s.proc.kill(SIGKILL);
      s.proc.wait();
    }
    fd = s.fd;
    s.fd = -1;
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);  // wakes the blocked reader
    ++s.epoch;
    s.conn_broken = false;
    s.ping_inflight = false;
    s.has_status = false;
    s.state = Shard::State::Down;
    s.respawn_at = Clock::now() +
                   std::chrono::milliseconds(s.backoff.next_ms());
    for (auto& [id, pending] : s.pending) {
      lost.push_back(std::move(pending.fn));
      if (pending.job) --s.inflight_jobs;
    }
    s.pending.clear();
    reader = std::move(s.reader);
  }
  if (reader.joinable()) reader.join();
  if (fd >= 0) ::close(fd);
  for (auto& fn : lost) fn(Reply{Reply::Kind::Lost, {}});
}

void Router::shard_tick(Shard& s) {
  const auto now = Clock::now();
  bool dead = false;
  bool stalled = false;
  bool broken = false;
  {
    const std::lock_guard<std::mutex> lock(s.mu);
    if (s.proc.valid() && s.proc.try_wait().has_value()) dead = true;
    broken = s.conn_broken;
    if (s.state == Shard::State::Up && s.ping_inflight &&
        now - s.last_ping >
            std::chrono::milliseconds(options_.health_timeout_ms)) {
      stalled = true;  // the worker stopped answering: SIGKILL + respawn
    }
    if (s.state == Shard::State::Starting &&
        now - s.spawn_started > std::chrono::seconds(10)) {
      stalled = true;  // spawned but never came up
    }
  }
  if (dead || broken || stalled) {
    teardown_worker(s, /*kill=*/!dead);
    return;
  }

  std::vector<std::function<void(Reply)>> expired;
  {
    const std::lock_guard<std::mutex> lock(s.mu);
    switch (s.state) {
      case Shard::State::Down:
        if (!draining_.load(std::memory_order_relaxed) &&
            now >= s.respawn_at) {
          spawn_worker(s);
        }
        break;
      case Shard::State::Starting: {
        // One connect attempt per tick until the worker has bound its
        // socket; ENOENT/ECONNREFUSED just mean "not yet". The path fits
        // sun_path (checked in the constructor).
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, s.socket_path.c_str(),
                    s.socket_path.size() + 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) break;
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) != 0) {
          ::close(fd);
          break;
        }
        // A stalled worker must not wedge senders: bound every send by the
        // health timeout, after which the send fails and the shard is torn
        // down (the request is re-dispatched by its owner).
        timeval tv{};
        tv.tv_sec = options_.health_timeout_ms / 1000;
        tv.tv_usec = static_cast<suseconds_t>(
            (options_.health_timeout_ms % 1000) * 1000);
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        s.fd = fd;
        s.state = Shard::State::Up;
        s.conn_broken = false;
        s.ping_inflight = false;
        s.last_ping = now - std::chrono::milliseconds(
                                options_.health_interval_ms);
        Shard* sp = &s;
        const u64 epoch = s.epoch;
        s.reader = std::thread(
            [this, sp, fd, epoch] { worker_reader_loop(sp, fd, epoch); });
        break;
      }
      case Shard::State::Up: {
        if (!s.ping_inflight &&
            now - s.last_ping >=
                std::chrono::milliseconds(options_.health_interval_ms)) {
          JsonValue ping = JsonValue::object();
          ping.set("method", JsonValue::string("status"));
          s.ping_inflight = true;
          s.last_ping = now;
          Shard* sp = &s;
          // No pending deadline on pings: stall detection is exactly
          // "ping_inflight for longer than the health timeout".
          send_to_shard_locked(
              s, std::move(ping), /*counts_as_job=*/false, std::nullopt,
              [sp](Reply reply) {
                const std::lock_guard<std::mutex> lock(sp->mu);
                sp->ping_inflight = false;
                if (reply.kind != Reply::Kind::Response) return;
                if (const JsonValue* res = reply.doc.find("result")) {
                  sp->last_status = *res;
                  sp->has_status = true;
                }
                if (sp->backoff_reset_pending) {
                  sp->backoff.reset();
                  sp->backoff_reset_pending = false;
                }
              });
        }
        // Deadline backstop: a request on a stalled worker answers
        // deadline_exceeded instead of hanging the client forever.
        for (auto it = s.pending.begin(); it != s.pending.end();) {
          if (it->second.deadline.has_value() &&
              now >= *it->second.deadline) {
            expired.push_back(std::move(it->second.fn));
            if (it->second.job) --s.inflight_jobs;
            it = s.pending.erase(it);
          } else {
            ++it;
          }
        }
        break;
      }
    }
  }
  for (auto& fn : expired) fn(Reply{Reply::Kind::Deadline, {}});
}

void Router::supervisor_loop() {
  for (;;) {
    for (const std::unique_ptr<Shard>& shard : shards_) shard_tick(*shard);
    const bool draining = draining_.load(std::memory_order_relaxed);
    if (draining) {
      // Keep the fleet alive until in-flight work delivered its
      // responses, then take it down.
      bool idle = true;
      {
        const std::lock_guard<std::mutex> lock(jobs_mu_);
        idle = jobs_in_system_ == 0;
      }
      if (idle) break;
    }
    std::unique_lock<std::mutex> lock(sup_mu_);
    sup_cv_.wait_for(lock, std::chrono::milliseconds(20));
  }
  drain_workers();
}

void Router::drain_workers() {
  for (const std::unique_ptr<Shard>& sp : shards_) {
    Shard& s = *sp;
    const std::lock_guard<std::mutex> lock(s.mu);
    if (s.state == Shard::State::Up) {
      JsonValue sd = JsonValue::object();
      sd.set("method", JsonValue::string("shutdown"));
      send_to_shard_locked(s, std::move(sd), /*counts_as_job=*/false,
                           std::nullopt, [](Reply) {});
    }
  }
  const auto deadline = Clock::now() + std::chrono::seconds(3);
  for (const std::unique_ptr<Shard>& sp : shards_) {
    Shard& s = *sp;
    for (;;) {
      {
        const std::lock_guard<std::mutex> lock(s.mu);
        if (!s.proc.valid() || s.proc.try_wait().has_value()) break;
      }
      if (Clock::now() >= deadline) {
        const std::lock_guard<std::mutex> lock(s.mu);
        if (s.proc.valid()) {
          s.proc.kill(SIGKILL);
          s.proc.wait();
        }
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    teardown_worker(s, /*kill=*/false);
    ::unlink(s.socket_path.c_str());
  }
}

std::optional<i64> Router::send_to_shard_locked(
    Shard& s, JsonValue request, bool counts_as_job,
    std::optional<Clock::time_point> deadline,
    std::function<void(Reply)> on_reply) {
  if (s.state != Shard::State::Up || s.fd < 0) return std::nullopt;
  const i64 id = next_internal_id_.fetch_add(1, std::memory_order_relaxed);
  request.set("id", JsonValue::integer(id));
  std::string line = request.dump();
  s.pending.emplace(
      id, Shard::Pending{std::move(on_reply), deadline, counts_as_job});
  if (counts_as_job) ++s.inflight_jobs;
  // Zero-copy outbound: the serialised request is adopted as a page.
  PagedBuffer out;
  out.add_reference(std::move(line));
  out.append("\n");
  while (!out.empty()) {
    if (out.flush_to(s.fd) < 0) {
      if (errno == EINTR) continue;
      // Send failure (including a SNDTIMEO expiry against a stalled
      // worker): this connection epoch is done for.
      const auto it = s.pending.find(id);
      if (it != s.pending.end()) {
        if (it->second.job) --s.inflight_jobs;
        s.pending.erase(it);
      }
      s.conn_broken = true;
      sup_cv_.notify_all();
      return std::nullopt;
    }
  }
  return id;
}

void Router::worker_reader_loop(Shard* s, int fd, u64 epoch) {
  LineFramer framer(options_.max_request_bytes);
  std::string line;
  bool broken = false;
  while (!broken) {
    const std::span<char> space = framer.buffer().peek_space(4096);
    const ssize_t n = ::recv(fd, space.data(), space.size(), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    framer.buffer().commit_space(static_cast<std::size_t>(n));
    for (;;) {
      const LineFramer::Status status = framer.next_line(line);
      if (status == LineFramer::Status::NeedMore) break;
      if (status == LineFramer::Status::Overflow) {
        broken = true;
        break;
      }
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      handle_worker_line(s, epoch, line);
    }
  }
  {
    const std::lock_guard<std::mutex> lock(s->mu);
    if (s->epoch == epoch) s->conn_broken = true;
  }
  sup_cv_.notify_all();
}

void Router::handle_worker_line(Shard* s, u64 epoch, const std::string& line) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(line);
  } catch (const std::exception&) {
    const std::lock_guard<std::mutex> lock(s->mu);
    if (s->epoch == epoch) s->conn_broken = true;
    return;
  }
  const JsonValue* id = doc.find("id");
  if (id == nullptr || !id->is_int()) return;  // unsolicited; drop
  std::function<void(Reply)> fn;
  {
    const std::lock_guard<std::mutex> lock(s->mu);
    if (s->epoch != epoch) return;  // reply from a torn-down epoch
    const auto it = s->pending.find(id->as_int());
    if (it == s->pending.end()) return;  // already failed (lost/deadline)
    fn = std::move(it->second.fn);
    if (it->second.job) --s->inflight_jobs;
    s->pending.erase(it);
  }
  fn(Reply{Reply::Kind::Response, std::move(doc)});
}

// ---------------------------------------------------------------------------
// Client side

void Router::accept_loop(int listen_fd) {
  for (;;) {
    const int client_fd = ::accept(listen_fd, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (draining_.load(std::memory_order_relaxed)) {
      ::close(client_fd);
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_open_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Connection>();
    conn->fd = client_fd;
    Connection* raw = conn.get();
    {
      const std::lock_guard<std::mutex> lock(conns_mu_);
      // Reap finished connections no job references anymore.
      for (std::size_t i = 0; i < conns_.size();) {
        Connection& c = *conns_[i];
        if (c.done.load(std::memory_order_acquire) &&
            c.jobs.load(std::memory_order_acquire) == 0) {
          c.reader.join();
          ::close(c.fd);
          conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
      conns_.push_back(std::move(conn));
      raw->reader = std::thread([this, raw] { reader_loop(raw); });
    }
  }
}

void Router::reader_loop(Connection* conn) {
  LineFramer framer(options_.max_request_bytes);
  std::string line;
  bool overflowed = false;
  while (!overflowed) {
    const std::span<char> space = framer.buffer().peek_space(4096);
    const ssize_t n = ::recv(conn->fd, space.data(), space.size(), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    framer.buffer().commit_space(static_cast<std::size_t>(n));
    for (;;) {
      const LineFramer::Status status = framer.next_line(line);
      if (status == LineFramer::Status::NeedMore) break;
      if (status == LineFramer::Status::Overflow) {
        respond(conn,
                service::error_response(
                    std::nullopt, ErrorCode::BadRequest,
                    "request line exceeds " +
                        std::to_string(options_.max_request_bytes) + " bytes"),
                /*ok=*/false);
        overflowed = true;
        break;
      }
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      handle_line(conn, line);
    }
  }
  conn->open.store(false, std::memory_order_relaxed);
  ::shutdown(conn->fd, SHUT_RDWR);
  {
    // A disconnected client cannot receive results: cancel its scatter
    // jobs and tell the workers to stop burning time on its forwarded
    // requests (best effort).
    std::vector<std::pair<unsigned, i64>> forwarded;
    {
      const std::lock_guard<std::mutex> lock(conn->routes_mu);
      for (const auto& [id, route] : conn->routes) {
        if (route.scatter) {
          route.token.cancel();
        } else {
          forwarded.emplace_back(route.shard, route.internal_id);
        }
      }
      conn->routes.clear();
    }
    for (const auto& [shard, internal_id] : forwarded) {
      Shard& s = *shards_[shard];
      JsonValue cancel = JsonValue::object();
      cancel.set("method", JsonValue::string("cancel"));
      cancel.set("target_id", JsonValue::integer(internal_id));
      const std::lock_guard<std::mutex> lock(s.mu);
      send_to_shard_locked(
          s, std::move(cancel), /*counts_as_job=*/false,
          Clock::now() + std::chrono::milliseconds(options_.health_timeout_ms),
          [](Reply) {});
    }
  }
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
  conn->done.store(true, std::memory_order_release);
}

void Router::respond(Connection* conn, std::string line, bool ok) {
  (ok ? responses_ok_ : responses_error_)
      .fetch_add(1, std::memory_order_relaxed);
  if (!conn->open.load(std::memory_order_relaxed)) return;
  const std::lock_guard<std::mutex> lock(conn->write_mu);
  PagedBuffer out;
  out.add_reference(std::move(line));
  out.append("\n");
  while (!out.empty()) {
    if (out.flush_to(conn->fd) < 0) {
      if (errno == EINTR) continue;
      conn->open.store(false, std::memory_order_relaxed);
      return;
    }
  }
}

void Router::finish_job(Connection* conn) {
  conn->jobs.fetch_sub(1, std::memory_order_release);
  // Notify while holding the mutex: finish_job runs on detached scatter
  // threads, and a waiter in wait() may destroy the Router (and this cv)
  // the moment the count hits zero. Holding the lock across the notify
  // keeps the waiter from returning until the broadcast has completed.
  const std::lock_guard<std::mutex> lock(jobs_mu_);
  --jobs_in_system_;
  jobs_cv_.notify_all();
}

void Router::handle_line(Connection* conn, const std::string& line) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  Request req;
  try {
    req = service::parse_request(line);
  } catch (const ProtocolError& e) {
    respond(conn,
            service::error_response(try_extract_id(line), e.code(), e.what()),
            /*ok=*/false);
    return;
  }

  switch (req.method) {
    case service::Method::Status: {
      status_requests_.fetch_add(1, std::memory_order_relaxed);
      respond(conn, service::ok_response(req.id, status_json()), /*ok=*/true);
      return;
    }
    case service::Method::Cancel: {
      cancel_requests_.fetch_add(1, std::memory_order_relaxed);
      bool scatter_cancelled = false;
      std::optional<std::pair<unsigned, i64>> forwarded;
      {
        const std::lock_guard<std::mutex> lock(conn->routes_mu);
        const auto it = conn->routes.find(*req.cancel_id);
        if (it != conn->routes.end()) {
          if (it->second.scatter) {
            it->second.token.cancel();
            scatter_cancelled = true;
          } else {
            forwarded = {it->second.shard, it->second.internal_id};
          }
        }
      }
      if (forwarded.has_value()) {
        // Relay to the worker holding the request; its answer comes back
        // under the client's cancel id.
        JsonValue cancel = JsonValue::object();
        cancel.set("method", JsonValue::string("cancel"));
        cancel.set("target_id", JsonValue::integer(forwarded->second));
        Shard& s = *shards_[forwarded->first];
        const std::optional<i64> client_id = req.id;
        bool sent = false;
        {
          const std::lock_guard<std::mutex> lock(s.mu);
          sent = send_to_shard_locked(
                     s, std::move(cancel), /*counts_as_job=*/false,
                     Clock::now() + std::chrono::milliseconds(
                                        options_.health_timeout_ms),
                     [this, conn, client_id](Reply reply) {
                       if (reply.kind == Reply::Kind::Response) {
                         bool ok = false;
                         std::string text = rewrite_response_id(
                             reply.doc, client_id, &ok);
                         respond(conn, std::move(text), ok);
                         return;
                       }
                       JsonValue result = JsonValue::object();
                       result.set("cancelled", JsonValue::boolean(false));
                       respond(conn, service::ok_response(client_id, result),
                               /*ok=*/true);
                     })
                     .has_value();
        }
        if (!sent) {
          JsonValue result = JsonValue::object();
          result.set("cancelled", JsonValue::boolean(false));
          respond(conn, service::ok_response(req.id, result), /*ok=*/true);
        }
        return;
      }
      JsonValue result = JsonValue::object();
      result.set("cancelled", JsonValue::boolean(scatter_cancelled));
      respond(conn, service::ok_response(req.id, result), /*ok=*/true);
      return;
    }
    case service::Method::Shutdown: {
      shutdown_requests_.fetch_add(1, std::memory_order_relaxed);
      // The inline_shutdowns_ guard keeps wait() from closing this
      // connection underneath the confirmation we are about to write.
      {
        const std::lock_guard<std::mutex> lock(jobs_mu_);
        ++inline_shutdowns_;
      }
      shutdown();
      {
        // Drain barrier: every in-flight job delivers its response before
        // the confirmation goes out.
        std::unique_lock<std::mutex> lock(jobs_mu_);
        jobs_cv_.wait(lock, [this] { return jobs_in_system_ == 0; });
      }
      JsonValue result = JsonValue::object();
      result.set("drained", JsonValue::boolean(true));
      respond(conn, service::ok_response(req.id, result), /*ok=*/true);
      {
        // Notify under the lock (same destruction-safety rule as
        // finish_job).
        const std::lock_guard<std::mutex> lock(jobs_mu_);
        --inline_shutdowns_;
        jobs_cv_.notify_all();
      }
      return;
    }
    case service::Method::AnalyzeThroughput:
    case service::Method::ExplorePareto:
    case service::Method::ExploreSlice:
      break;
  }

  (req.method == service::Method::AnalyzeThroughput
       ? analyze_requests_
       : req.method == service::Method::ExploreSlice ? slice_requests_
                                                     : explore_requests_)
      .fetch_add(1, std::memory_order_relaxed);

  if (draining_.load(std::memory_order_relaxed)) {
    respond(conn,
            service::error_response(req.id, ErrorCode::ShuttingDown,
                                    "the router is draining"),
            /*ok=*/false);
    return;
  }

  // Affinity routing: the graph's fingerprint picks its home shard, so
  // repeated queries on one graph hit the same worker's warm caches. The
  // parse also surfaces payload diagnostics before any worker is bothered.
  sdf::Graph graph;
  sdf::ActorId target;
  u64 fingerprint = 0;
  try {
    graph = parse_graph(req);
    target = resolve_target(graph, req.target);
    fingerprint =
        service::graph_fingerprint(graph, graph.actor(target).name);
  } catch (const ProtocolError& e) {
    respond(conn, service::error_response(req.id, e.code(), e.what()),
            /*ok=*/false);
    return;
  } catch (const ParseError& e) {
    respond(conn,
            service::error_response(req.id, ErrorCode::GraphParseError,
                                    e.what()),
            /*ok=*/false);
    return;
  } catch (const Error& e) {
    respond(conn,
            service::error_response(req.id, ErrorCode::GraphInvalid, e.what()),
            /*ok=*/false);
    return;
  }

  std::optional<i64> deadline_ms = req.deadline_ms;
  if (!deadline_ms.has_value() && options_.default_deadline_ms > 0) {
    deadline_ms = options_.default_deadline_ms;
  }

  const bool scatter = req.method == service::Method::ExplorePareto &&
                       req.scatter &&
                       req.engine == std::optional<std::string>("exh") &&
                       req.quality != std::optional<std::string>("fast");

  conn->jobs.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    ++jobs_in_system_;
  }

  if (scatter) {
    scatter_requests_.fetch_add(1, std::memory_order_relaxed);
    auto job = std::make_shared<ScatterJob>();
    job->req = std::move(req);
    job->client_id = job->req.id;
    job->graph = std::move(graph);
    job->target = target;
    job->parent = exec::CancellationToken::cancellable();
    job->token = deadline_ms.has_value()
                     ? job->parent.with_deadline(*deadline_ms)
                     : job->parent;
    if (deadline_ms.has_value()) {
      job->deadline =
          Clock::now() + std::chrono::milliseconds(*deadline_ms);
    }
    if (job->client_id.has_value()) {
      const std::lock_guard<std::mutex> lock(conn->routes_mu);
      conn->routes[*job->client_id] =
          Connection::Route{.scatter = true, .token = job->parent};
    }
    std::thread([this, conn, job] {
      scatter_explore(conn, job);
      if (job->client_id.has_value()) {
        const std::lock_guard<std::mutex> lock(conn->routes_mu);
        const auto it = conn->routes.find(*job->client_id);
        if (it != conn->routes.end() && it->second.scatter) {
          conn->routes.erase(it);
        }
      }
      finish_job(conn);
    }).detach();
    return;
  }

  forwarded_.fetch_add(1, std::memory_order_relaxed);
  ForwardPlan plan;
  plan.home = shard_of(fingerprint);
  plan.client_id = req.id;
  if (deadline_ms.has_value()) {
    // Small grace on top of the worker-enforced deadline so the worker's
    // own deadline_exceeded response normally wins the race.
    plan.deadline = Clock::now() +
                    std::chrono::milliseconds(*deadline_ms + 250);
  }
  auto doc = std::make_shared<JsonValue>(JsonValue::parse(line));
  dispatch_forward(conn, std::move(doc), plan);
}

void Router::dispatch_forward(Connection* conn,
                              std::shared_ptr<JsonValue> doc,
                              ForwardPlan plan) {
  const unsigned n = num_workers();
  bool saw_full_queue = false;
  for (unsigned k = 0; k < n; ++k) {
    Shard& s = *shards_[(plan.home + k) % n];
    std::optional<i64> internal;
    {
      const std::lock_guard<std::mutex> lock(s.mu);
      if (s.state != Shard::State::Up) continue;
      if (s.inflight_jobs >= options_.shard_queue_capacity) {
        saw_full_queue = true;
        continue;
      }
      const std::optional<i64> client_id = plan.client_id;
      internal = send_to_shard_locked(
          s, *doc, /*counts_as_job=*/true, plan.deadline,
          [this, conn, doc, plan](Reply reply) {
            switch (reply.kind) {
              case Reply::Kind::Response: {
                if (plan.client_id.has_value()) {
                  const std::lock_guard<std::mutex> lock(conn->routes_mu);
                  conn->routes.erase(*plan.client_id);
                }
                bool ok = false;
                std::string text =
                    rewrite_response_id(reply.doc, plan.client_id, &ok);
                respond(conn, std::move(text), ok);
                finish_job(conn);
                return;
              }
              case Reply::Kind::Lost: {
                if (plan.attempts > 0 &&
                    conn->open.load(std::memory_order_relaxed)) {
                  // The worker died with the request in flight; the
                  // analyses are pure, so replaying on a live shard is
                  // safe and invisible to the client.
                  redispatches_.fetch_add(1, std::memory_order_relaxed);
                  ForwardPlan retry = plan;
                  --retry.attempts;
                  dispatch_forward(conn, doc, retry);
                  return;
                }
                if (plan.client_id.has_value()) {
                  const std::lock_guard<std::mutex> lock(conn->routes_mu);
                  conn->routes.erase(*plan.client_id);
                }
                respond(conn,
                        service::error_response(
                            plan.client_id, ErrorCode::InternalError,
                            "the worker serving this request died"),
                        /*ok=*/false);
                finish_job(conn);
                return;
              }
              case Reply::Kind::Deadline: {
                if (plan.client_id.has_value()) {
                  const std::lock_guard<std::mutex> lock(conn->routes_mu);
                  conn->routes.erase(*plan.client_id);
                }
                respond(conn,
                        service::error_response(
                            plan.client_id, ErrorCode::DeadlineExceeded,
                            "the request deadline expired"),
                        /*ok=*/false);
                finish_job(conn);
                return;
              }
            }
          });
      if (internal.has_value() && client_id.has_value()) {
        const std::lock_guard<std::mutex> routes(conn->routes_mu);
        conn->routes[*client_id] = Connection::Route{
            .scatter = false, .shard = s.index, .internal_id = *internal};
      }
    }
    if (internal.has_value()) return;
  }
  // No shard accepted: structured backpressure with a retry hint.
  overloaded_.fetch_add(1, std::memory_order_relaxed);
  if (plan.client_id.has_value()) {
    const std::lock_guard<std::mutex> lock(conn->routes_mu);
    conn->routes.erase(*plan.client_id);
  }
  respond(conn,
          overloaded_response(
              plan.client_id,
              saw_full_queue ? "every shard queue is at capacity; retry"
                             : "no worker is available; retry",
              saw_full_queue ? 100 : 250),
          /*ok=*/false);
  finish_job(conn);
}

// ---------------------------------------------------------------------------
// Scatter: router-driven divide and conquer over the size dimension

void Router::scatter_explore(Connection* conn,
                             std::shared_ptr<ScatterJob> job) {
  // Rendezvous for one dispatched slice: the reply callback fills it, the
  // scatter thread waits on it. Function-local so it can name the private
  // Reply type.
  struct SliceCall {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Reply reply;
  };
  const auto t0 = Clock::now();
  const Request& req = job->req;
  try {
    admit_magnitudes(job->graph);
    job->token.checkpoint();

    // Engine-effective options, exactly as buffer::explore derives them
    // before dispatching to the exhaustive engine — the other half of
    // this preprocessing runs in every worker's handle_explore_slice, so
    // both sides plan over identical state (the byte-identity contract).
    buffer::DseOptions opts;
    opts.target = job->target;
    opts.engine = buffer::DseEngine::Exhaustive;
    opts.quantization_levels = req.levels;
    opts.max_distribution_size = req.max_size;
    opts.throughput_goal = req.goal;
    opts.min_throughput = req.min_throughput;
    const buffer::DesignSpaceBounds bounds = buffer::design_space_bounds(
        job->graph, job->target, opts.max_steps_per_run, nullptr);

    JsonValue res = JsonValue::object();
    res.set("target",
            JsonValue::string(job->graph.actor(job->target).name));
    res.set("quality", JsonValue::string("exact"));
    res.set("deadlock", JsonValue::boolean(bounds.deadlock));

    if (bounds.deadlock) {
      // Every distribution deadlocks; mirror the single-process response.
      const buffer::ParetoSet empty;
      res.set("front", JsonValue::string(empty.str()));
      res.set("points", JsonValue::array());
      res.set("distributions_explored", JsonValue::integer(0));
      res.set("simulations_run", JsonValue::integer(0));
      res.set("cache_hits", JsonValue::integer(0));
      res.set("dominance_skips", JsonValue::integer(0));
      res.set("lp_prunes", JsonValue::integer(0));
      res.set("lp_cuts", JsonValue::integer(0));
      res.set("static_narrow", JsonValue::boolean(false));
      res.set("max_states_stored", JsonValue::integer(0));
      res.set("seconds",
              JsonValue::number(std::chrono::duration<double>(Clock::now() -
                                                              t0)
                                    .count()));
      res.set("cached_graph", JsonValue::boolean(false));
      res.set("scattered", JsonValue::boolean(true));
      res.set("waves", JsonValue::integer(0));
      res.set("slices", JsonValue::integer(0));
      respond(conn, service::ok_response(job->client_id, res), /*ok=*/true);
      return;
    }

    buffer::apply_quantization_levels(opts, bounds);
    const buffer::SlicePlan plan =
        buffer::exhaustive_slice_plan(job->graph, opts, bounds);

    // One wave item = one explore_slice request; `call` is its rendezvous.
    struct WaveItem {
      i64 size = 0;
      std::optional<std::vector<i64>> seed;
      Rational goal;
      std::shared_ptr<SliceCall> call;
    };

    const auto make_request = [&](const WaveItem& item) {
      JsonValue r = JsonValue::object();
      r.set("method", JsonValue::string("explore_slice"));
      r.set("graph", JsonValue::string(req.graph_text));
      r.set("format", JsonValue::string(format_name(req.format)));
      if (!req.target.empty()) {
        r.set("target", JsonValue::string(req.target));
      }
      r.set("engine", JsonValue::string("exh"));
      if (req.levels.has_value()) {
        r.set("levels", JsonValue::integer(*req.levels));
      }
      if (req.max_size.has_value()) {
        r.set("max_size", JsonValue::integer(*req.max_size));
      }
      if (req.goal.has_value()) {
        r.set("goal", JsonValue::string(req.goal->str()));
      }
      if (req.threads.has_value()) {
        r.set("threads", JsonValue::integer(*req.threads));
      }
      r.set("cache", JsonValue::boolean(req.use_cache));
      r.set("size", JsonValue::integer(item.size));
      r.set("slice_goal", JsonValue::string(item.goal.str()));
      if (item.seed.has_value()) {
        JsonValue seed = JsonValue::array();
        for (const i64 c : *item.seed) {
          seed.push_back(JsonValue::integer(c));
        }
        r.set("seed", seed);
      }
      if (job->deadline.has_value()) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                *job->deadline - Clock::now())
                .count();
        r.set("deadline_ms", JsonValue::integer(std::max<i64>(remaining, 1)));
      }
      return r;
    };

    // Dispatches one slice to some Up shard, round-robin; nullptr when no
    // shard currently accepts (the caller retries with backoff).
    const auto try_dispatch =
        [&](const WaveItem& item) -> std::shared_ptr<SliceCall> {
      const unsigned n = num_workers();
      const unsigned start =
          round_robin_.fetch_add(1, std::memory_order_relaxed) % n;
      for (unsigned k = 0; k < n; ++k) {
        Shard& s = *shards_[(start + k) % n];
        auto call = std::make_shared<SliceCall>();
        const std::lock_guard<std::mutex> lock(s.mu);
        if (s.state != Shard::State::Up) continue;
        const std::optional<i64> sent = send_to_shard_locked(
            s, make_request(item), /*counts_as_job=*/true,
            job->deadline.has_value()
                ? std::optional<Clock::time_point>(*job->deadline +
                                                   std::chrono::milliseconds(
                                                       250))
                : std::nullopt,
            [call](Reply reply) {
              {
                const std::lock_guard<std::mutex> lock(call->mu);
                call->reply = std::move(reply);
                call->done = true;
              }
              call->cv.notify_all();
            });
        if (sent.has_value()) return call;
      }
      return nullptr;
    };

    const auto await = [&](const std::shared_ptr<SliceCall>& call) {
      std::unique_lock<std::mutex> lock(call->mu);
      while (!call->done) {
        call->cv.wait_for(lock, std::chrono::milliseconds(50));
        if (!call->done) job->token.checkpoint();
      }
      return std::move(call->reply);
    };

    std::map<i64, SliceResult> evaluated;
    unsigned waves = 0;
    u64 slices_total = 0;

    // Dispatches a whole wave, invokes the fault-injection hook, then
    // collects outcomes — re-dispatching any slice its worker took to the
    // grave. Lost slices are safe to replay: a slice outcome is a pure
    // function of its request (buffer::explore_size_slice).
    const auto run_wave = [&](std::vector<WaveItem>& items) {
      job->token.checkpoint();
      for (WaveItem& item : items) item.call = try_dispatch(item);
      if (options_.after_wave_dispatch) {
        options_.after_wave_dispatch(waves, items.size());
      }
      ++waves;
      slices_total += items.size();
      for (WaveItem& item : items) {
        for (;;) {
          if (item.call == nullptr) {
            job->token.checkpoint();
            item.call = try_dispatch(item);
            if (item.call == nullptr) {
              // No worker is up (crash storm): wait out a respawn.
              std::this_thread::sleep_for(std::chrono::milliseconds(20));
              continue;
            }
          }
          Reply reply = await(item.call);
          if (reply.kind == Reply::Kind::Lost) {
            redispatches_.fetch_add(1, std::memory_order_relaxed);
            item.call = nullptr;
            continue;
          }
          if (reply.kind == Reply::Kind::Deadline) {
            throw ScatterFailure{
                service::error_code_name(ErrorCode::DeadlineExceeded),
                "the request deadline expired"};
          }
          const JsonValue* ok = reply.doc.find("ok");
          if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
            ScatterFailure failure{"internal_error",
                                   "worker returned a malformed response"};
            if (const JsonValue* err = reply.doc.find("error")) {
              if (const JsonValue* code = err->find("code");
                  code != nullptr && code->is_string()) {
                failure.code = code->as_string();
              }
              if (const JsonValue* message = err->find("message");
                  message != nullptr && message->is_string()) {
                failure.message = message->as_string();
              }
            }
            throw failure;
          }
          const JsonValue* result = reply.doc.find("result");
          if (result == nullptr) {
            throw ScatterFailure{"internal_error",
                                 "worker response carries no result"};
          }
          evaluated.emplace(item.size, parse_slice_result(*result));
          break;
        }
      }
    };

    if (plan.hi_size >= plan.lo_size) {
      // Wave 0: the interval endpoints (the sequential driver's first two
      // evaluations; one slice when the interval is degenerate).
      std::vector<WaveItem> endpoints;
      endpoints.push_back(WaveItem{plan.lo_size, std::nullopt, plan.goal, {}});
      if (plan.hi_size != plan.lo_size) {
        endpoints.push_back(
            WaveItem{plan.hi_size, plan.top_seed, plan.goal, {}});
      }
      run_wave(endpoints);

      // Breadth-first over the interval tree: all of one depth's mids go
      // out as a single wave. The memoised sequential driver evaluates
      // exactly the same (size, seed, slice_goal) triples — outcomes are
      // pure per size, so the fold below is byte-identical to it.
      std::vector<std::pair<i64, i64>> intervals{{plan.lo_size, plan.hi_size}};
      while (!intervals.empty()) {
        std::vector<WaveItem> items;
        std::vector<std::pair<i64, i64>> next;
        for (const auto& [lo, hi] : intervals) {
          if (hi - lo <= 1) continue;
          const SliceResult& at_lo = evaluated.at(lo);
          const SliceResult& at_hi = evaluated.at(hi);
          if (at_lo.throughput == at_hi.throughput ||
              at_lo.throughput >= plan.goal) {
            continue;  // no further Pareto point inside (monotonicity)
          }
          const i64 mid = lo + (hi - lo) / 2;
          items.push_back(WaveItem{
              mid, buffer::pad_to_size(plan, at_lo.capacities, mid),
              std::min(plan.goal, at_hi.throughput), {}});
          next.emplace_back(lo, mid);
          next.emplace_back(mid, hi);
        }
        if (!items.empty()) run_wave(items);
        intervals = std::move(next);
      }
    }

    // Fold in increasing size order — the same order the sequential
    // driver folds its memo map — then apply the same min_throughput
    // post-filter buffer::explore applies.
    buffer::ParetoSet pareto;
    for (const auto& [size, outcome] : evaluated) {
      pareto.add(buffer::ParetoPoint{
          buffer::StorageDistribution(outcome.capacities),
          outcome.throughput});
    }
    if (req.min_throughput.has_value()) {
      buffer::ParetoSet filtered;
      for (const buffer::ParetoPoint& p : pareto.points()) {
        if (p.throughput >= *req.min_throughput) filtered.add(p);
      }
      pareto = std::move(filtered);
    }

    u64 explored = 0, sims = 0, cache_hits = 0, dom = 0, lp_prunes = 0;
    u64 states = 0, lp_cuts = 0;
    bool static_narrow = !evaluated.empty();
    bool cached_graph = false;
    for (const auto& [size, outcome] : evaluated) {
      explored += outcome.distributions_explored;
      sims += outcome.simulations_run;
      cache_hits += outcome.cache_hits;
      dom += outcome.dominance_skips;
      lp_prunes += outcome.lp_prunes;
      states = std::max(states, outcome.max_states_stored);
      lp_cuts = std::max(lp_cuts, outcome.lp_cuts);
      static_narrow = static_narrow && outcome.static_narrow;
      cached_graph = cached_graph || outcome.cached_graph;
    }

    JsonValue bounds_json = JsonValue::object();
    bounds_json.set("lb_size", JsonValue::integer(bounds.lb_size));
    bounds_json.set("ub_size", JsonValue::integer(bounds.ub_size));
    bounds_json.set("max_throughput",
                    JsonValue::string(bounds.max_throughput.str()));
    res.set("bounds", bounds_json);
    // `front` matches a single-process buffyd byte-for-byte — the fleet
    // tests assert exactly that.
    res.set("front", JsonValue::string(pareto.str()));
    JsonValue points = JsonValue::array();
    for (const buffer::ParetoPoint& p : pareto.points()) {
      JsonValue point = JsonValue::object();
      point.set("size", JsonValue::integer(p.size()));
      point.set("throughput", JsonValue::string(p.throughput.str()));
      JsonValue caps = JsonValue::array();
      for (const i64 c : p.distribution.capacities()) {
        caps.push_back(JsonValue::integer(c));
      }
      point.set("capacities", caps);
      points.push_back(point);
    }
    res.set("points", points);
    res.set("distributions_explored",
            JsonValue::integer(static_cast<i64>(explored)));
    res.set("simulations_run", JsonValue::integer(static_cast<i64>(sims)));
    res.set("cache_hits", JsonValue::integer(static_cast<i64>(cache_hits)));
    res.set("dominance_skips", JsonValue::integer(static_cast<i64>(dom)));
    res.set("lp_prunes", JsonValue::integer(static_cast<i64>(lp_prunes)));
    res.set("lp_cuts", JsonValue::integer(static_cast<i64>(lp_cuts)));
    res.set("static_narrow", JsonValue::boolean(static_narrow));
    res.set("max_states_stored",
            JsonValue::integer(static_cast<i64>(states)));
    res.set("seconds",
            JsonValue::number(
                std::chrono::duration<double>(Clock::now() - t0).count()));
    res.set("cached_graph", JsonValue::boolean(cached_graph));
    res.set("scattered", JsonValue::boolean(true));
    res.set("waves", JsonValue::integer(waves));
    res.set("slices", JsonValue::integer(static_cast<i64>(slices_total)));
    respond(conn, service::ok_response(job->client_id, res), /*ok=*/true);
  } catch (const ScatterFailure& failure) {
    respond(conn, scatter_error_response(job->client_id, failure),
            /*ok=*/false);
  } catch (const exec::Cancelled&) {
    const ErrorCode code = job->parent.cancelled() ? ErrorCode::Cancelled
                                                   : ErrorCode::DeadlineExceeded;
    respond(conn,
            service::error_response(job->client_id, code,
                                    code == ErrorCode::Cancelled
                                        ? "the request was cancelled"
                                        : "the request deadline expired"),
            /*ok=*/false);
  } catch (const ProtocolError& e) {
    respond(conn, service::error_response(job->client_id, e.code(), e.what()),
            /*ok=*/false);
  } catch (const ParseError& e) {
    respond(conn,
            service::error_response(job->client_id, ErrorCode::GraphParseError,
                                    e.what()),
            /*ok=*/false);
  } catch (const InternalError& e) {
    respond(conn,
            service::error_response(job->client_id, ErrorCode::InternalError,
                                    e.what()),
            /*ok=*/false);
  } catch (const Error& e) {
    respond(conn,
            service::error_response(job->client_id, ErrorCode::GraphInvalid,
                                    e.what()),
            /*ok=*/false);
  } catch (const std::exception& e) {
    respond(conn,
            service::error_response(job->client_id, ErrorCode::InternalError,
                                    e.what()),
            /*ok=*/false);
  }
}

// ---------------------------------------------------------------------------
// Status

JsonValue Router::status_json() const {
  const auto u = [](u64 v) { return JsonValue::integer(static_cast<i64>(v)); };
  JsonValue o = JsonValue::object();
  o.set("role", JsonValue::string("router"));
  o.set("draining",
        JsonValue::boolean(draining_.load(std::memory_order_relaxed)));
  o.set("uptime_seconds",
        JsonValue::number(
            std::chrono::duration<double>(Clock::now() - started_at_)
                .count()));

  JsonValue requests = JsonValue::object();
  requests.set("total", u(requests_total_.load(std::memory_order_relaxed)));
  requests.set("analyze_throughput",
               u(analyze_requests_.load(std::memory_order_relaxed)));
  requests.set("explore_pareto",
               u(explore_requests_.load(std::memory_order_relaxed)));
  requests.set("explore_slice",
               u(slice_requests_.load(std::memory_order_relaxed)));
  requests.set("scatter",
               u(scatter_requests_.load(std::memory_order_relaxed)));
  requests.set("status", u(status_requests_.load(std::memory_order_relaxed)));
  requests.set("cancel", u(cancel_requests_.load(std::memory_order_relaxed)));
  requests.set("shutdown",
               u(shutdown_requests_.load(std::memory_order_relaxed)));
  o.set("requests", requests);

  JsonValue responses = JsonValue::object();
  responses.set("ok", u(responses_ok_.load(std::memory_order_relaxed)));
  responses.set("error", u(responses_error_.load(std::memory_order_relaxed)));
  responses.set("overloaded", u(overloaded_.load(std::memory_order_relaxed)));
  o.set("responses", responses);

  JsonValue fleet = JsonValue::object();
  fleet.set("workers", u(shards_.size()));
  fleet.set("forwarded", u(forwarded_.load(std::memory_order_relaxed)));
  fleet.set("redispatches", u(redispatches_.load(std::memory_order_relaxed)));
  fleet.set("restarts_total",
            u(worker_restarts_total_.load(std::memory_order_relaxed)));
  fleet.set("shard_queue_capacity", u(options_.shard_queue_capacity));

  unsigned up = 0;
  JsonValue shards = JsonValue::array();
  for (const std::unique_ptr<Shard>& sp : shards_) {
    const Shard& s = *sp;
    const std::lock_guard<std::mutex> lock(s.mu);
    if (s.state == Shard::State::Up) ++up;
    JsonValue shard = JsonValue::object();
    shard.set("index", u(s.index));
    shard.set("pid",
              JsonValue::integer(s.proc.valid()
                                     ? static_cast<i64>(s.proc.pid())
                                     : -1));
    const char* state = s.state == Shard::State::Up         ? "up"
                        : s.state == Shard::State::Starting ? "starting"
                                                            : "down";
    shard.set("state", JsonValue::string(state));
    shard.set("restarts", u(s.restarts));
    shard.set("queue_depth", u(s.inflight_jobs));
    shard.set("inflight", u(s.pending.size()));
    // The worker's own status result (cache occupancy, request counters),
    // as of its last health pong — the observability hook the fleet tests
    // use to assert cache affinity from the outside.
    shard.set("worker", s.has_status ? s.last_status : JsonValue());
    shards.push_back(std::move(shard));
  }
  fleet.set("up", u(up));
  o.set("fleet", fleet);
  o.set("shards", shards);
  return o;
}

}  // namespace buffy::fleet
