// Chrome trace_event JSON sink for exploration traces (DESIGN.md §8).
//
// Renders merged trace events in the Trace Event Format consumed by
// chrome://tracing and Perfetto (https://ui.perfetto.dev): one JSON
// object with a "traceEvents" array, spans as complete events
// (ph == "X", microsecond ts/dur) and instants as ph == "i" with
// thread scope. Thread indices map to tids; the process id is a fixed 1.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace buffy::trace {

/// Writes the events as one Chrome trace_event JSON document. Events
/// should come from Collector::merged() (the writer preserves the given
/// order; chrome://tracing sorts by ts itself, so order only affects the
/// file's readability). The output is valid JSON for any input.
void write_chrome_trace(const std::vector<Event>& events, std::ostream& out);

/// Convenience: renders to a string (tests, small traces).
[[nodiscard]] std::string chrome_trace_json(const std::vector<Event>& events);

}  // namespace buffy::trace
