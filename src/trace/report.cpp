#include "trace/report.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/diagnostics.hpp"

namespace buffy::trace {

ReportFragment::ReportFragment(std::string title, std::string binary)
    : title_(std::move(title)), binary_(std::move(binary)) {}

void ReportFragment::paragraph(const std::string& text) {
  blocks_.push_back(text + "\n");
}

void ReportFragment::bullet(const std::string& text) {
  // Consecutive bullets merge into one list: append to the previous block
  // when it is itself a bullet line.
  if (!blocks_.empty() && blocks_.back().rfind("- ", 0) == 0) {
    blocks_.back() += "- " + text + "\n";
  } else {
    blocks_.push_back("- " + text + "\n");
  }
}

void ReportFragment::table(const std::vector<std::string>& header,
                           const std::vector<std::vector<std::string>>& rows) {
  std::string t = "|";
  for (const std::string& h : header) t += " " + h + " |";
  t += "\n|";
  for (std::size_t i = 0; i < header.size(); ++i) t += "---|";
  t += "\n";
  for (const auto& row : rows) {
    BUFFY_REQUIRE(row.size() == header.size(),
                  "report table row width mismatch");
    t += "|";
    for (const std::string& cell : row) t += " " + cell + " |";
    t += "\n";
  }
  blocks_.push_back(std::move(t));
}

void ReportFragment::code_block(const std::string& text,
                                const std::string& info) {
  std::string b = "```" + info + "\n" + text;
  if (text.empty() || text.back() != '\n') b += "\n";
  b += "```\n";
  blocks_.push_back(std::move(b));
}

std::string ReportFragment::str() const {
  std::string out = "## " + title_ + "\n";
  out += "Binary: `" + binary_ + "`\n";
  for (const std::string& block : blocks_) {
    out += "\n" + block;
  }
  return out;
}

std::string ReportFragment::write(const std::string& dir,
                                  const std::string& name) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + name + ".md";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open report fragment '" + path + "'");
  out << str();
  out.close();
  if (!out) throw Error("failed writing report fragment '" + path + "'");
  return path;
}

std::string summary_table(const std::vector<Event>& events) {
  std::uint64_t count[kNumEventKinds] = {};
  std::int64_t span_ns[kNumEventKinds] = {};
  bool is_span[kNumEventKinds] = {};
  for (const Event& e : events) {
    const auto k = static_cast<std::size_t>(e.kind);
    if (k >= kNumEventKinds) continue;
    ++count[k];
    if (e.dur_ns >= 0) {
      is_span[k] = true;
      span_ns[k] += e.dur_ns;
    }
  }
  std::string out = "| event | kind | count | total span |\n|---|---|---|---|\n";
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    if (count[k] == 0) continue;
    char dur[32] = "—";
    if (is_span[k]) {
      std::snprintf(dur, sizeof dur, "%.3f ms",
                    static_cast<double>(span_ns[k]) / 1e6);
    }
    out += "| " + std::string(kind_name(static_cast<EventKind>(k))) + " | " +
           (is_span[k] ? "span" : "instant") + " | " +
           std::to_string(count[k]) + " | " + dur + " |\n";
  }
  return out;
}

const std::vector<ManifestEntry>& experiments_manifest() {
  static const std::vector<ManifestEntry> manifest = {
      {"table1_schedule", "bench_table1_schedule"},
      {"fig3_4_statespace", "bench_fig3_4_statespace"},
      {"fig5_pareto_example", "bench_fig5_pareto_example"},
      {"fig7_bounds", "bench_fig7_bounds"},
      {"fig13_pareto_modem", "bench_fig13_pareto_modem"},
      {"table2_main", "bench_table2_main"},
      {"quantization_ablation", "bench_quantization_ablation"},
      {"dse_ablation", "bench_dse_ablation"},
      {"lp_prune", "bench_lp_prune"},
      {"memory_models", "bench_memory_models"},
      {"csdf_extension", "bench_csdf_extension"},
      {"mapping", "bench_mapping"},
      {"extended_models", "bench_extended_models"},
      {"parallel_dse", "bench_parallel_dse"},
      {"parallel_scaling", "bench_parallel_scaling"},
      {"throughput_hotpath", "bench_throughput_hotpath"},
      {"simd_lanes", "bench_simd_lanes"},
  };
  return manifest;
}

std::string stitch_experiments(const std::string& report_dir) {
  std::string out =
      "# EXPERIMENTS — paper vs. measured\n"
      "\n"
      "<!-- GENERATED FILE — do not edit by hand.\n"
      "     Each section below is a fragment under report/, emitted by the\n"
      "     named bench binary (run it with --report-dir report); the\n"
      "     make_experiments tool stitches the fragments into this file:\n"
      "         ./build/tools/make_experiments --report-dir report --out "
      "EXPERIMENTS.md\n"
      "     CI regenerates the fast fragments and fails when this file\n"
      "     drifts from the regenerated copy (docs-freshness check). -->\n"
      "\n"
      "Every table and figure of the paper's evaluation maps to one\n"
      "no-argument binary under `bench/` (see DESIGN.md §3 for the full\n"
      "index). Each binary checks its own \"paper shape\" assertions, exits\n"
      "non-zero on a mismatch, and — with `--report-dir DIR` — renders its\n"
      "section of this file as a Markdown fragment.\n"
      "\n"
      "**Reading guide.** The provided scan of the paper has a garbled\n"
      "Table 2 and bitmap figures, so exact numeric entries for the larger\n"
      "graphs are not recoverable from the text; for those rows the\n"
      "comparison is to the paper's *qualitative claims* (which the text\n"
      "states explicitly). Everything the text states numerically — all of\n"
      "it concerns the Fig. 1 running example — is reproduced exactly. The\n"
      "three [BML99] graphs and the H.263 decoder are reconstructions with\n"
      "the published structural sizes (DESIGN.md, \"Substitutions\"); their\n"
      "absolute numbers are therefore *measured references* for this\n"
      "repository, not claims about the 2006 testbed. Fragments carry only\n"
      "machine-independent measurements (fronts, state counts, simulation\n"
      "counts); wall-clock comparisons — the paper used an 800 MHz Pentium\n"
      "III — live in the bench stdout and the micro-benchmarks below.\n";

  std::string missing;
  for (const ManifestEntry& entry : experiments_manifest()) {
    const std::string path =
        report_dir + "/" + std::string(entry.fragment) + ".md";
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      missing += "\n  " + path + "  (regenerate: ./build/bench/" +
                 entry.binary + " --report-dir " + report_dir + ")";
      continue;
    }
    std::ostringstream content;
    content << in.rdbuf();
    out += "\n---\n\n" + content.str();
  }
  if (!missing.empty()) {
    throw Error("missing report fragments:" + missing);
  }

  out +=
      "\n---\n\n"
      "## Micro-benchmarks\n"
      "Binary: `bench_micro` (google-benchmark)\n"
      "\n"
      "Machine-dependent by nature, so not stitched from a fragment:\n"
      "engine event rates, hashing and MCM timings, plus the tracing\n"
      "guard overhead (`BM_throughput_trace_*`: a quiet `trace::enabled()`\n"
      "check must stay within 2% of the untraced throughput run). Run\n"
      "`./build/bench/bench_micro` locally for current numbers.\n";
  return out;
}

}  // namespace buffy::trace
