#include "trace/trace.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

namespace buffy::trace {

namespace detail {
std::atomic<Collector*> g_collector{nullptr};
}  // namespace detail

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread cache of the buffer registered with a specific collector
// incarnation (a process-unique id, so neither clear() nor a new
// collector at a recycled address can alias it). Looked up once per
// emission; registration itself takes the collector mutex.
struct ThreadCache {
  std::uint64_t incarnation = 0;  // 0 = empty
  void* buffer = nullptr;
};
thread_local ThreadCache t_cache;

std::uint64_t next_incarnation() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::Exploration: return "exploration";
    case EventKind::Simulation: return "simulation";
    case EventKind::Wave: return "wave";
    case EventKind::SizeEval: return "size_eval";
    case EventKind::CacheHit: return "cache_hit";
    case EventKind::DominanceSkip: return "dominance_skip";
    case EventKind::EngineReset: return "engine_reset";
    case EventKind::ParetoPoint: return "pareto_point";
    case EventKind::LpPrune: return "lp_prune";
  }
  return "unknown";
}

double Event::arg1_bits_as_double() const {
  return std::bit_cast<double>(static_cast<std::uint64_t>(arg1));
}

Collector::Collector()
    : epoch_ns_(steady_now_ns()), incarnation_(next_incarnation()) {}

Collector::~Collector() {
  // Detach defensively if the owner forgot: a dangling global collector
  // pointer would turn the next emission into a use-after-free.
  Collector* self = this;
  detail::g_collector.compare_exchange_strong(self, nullptr,
                                              std::memory_order_seq_cst);
}

std::int64_t Collector::now_ns() const { return steady_now_ns() - epoch_ns_; }

Collector::ThreadBuffer* Collector::buffer_for_this_thread() {
  if (t_cache.incarnation == incarnation_) {
    return static_cast<ThreadBuffer*>(t_cache.buffer);
  }
  const std::lock_guard<std::mutex> lock(mu_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->index = static_cast<std::uint32_t>(buffers_.size());
  ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  t_cache = ThreadCache{incarnation_, raw};
  return raw;
}

std::vector<Event> Collector::merged() const {
  std::vector<Event> all;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    std::size_t total = 0;
    for (const auto& b : buffers_) total += b->events.size();
    all.reserve(total);
    for (const auto& b : buffers_) {
      all.insert(all.end(), b->events.begin(), b->events.end());
    }
  }
  // Deterministic order: time, then thread index, then per-thread
  // sequence. The key is unique per event (thread, seq), so the sort has
  // exactly one fixed point regardless of buffer registration order.
  std::sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
    if (a.thread != b.thread) return a.thread < b.thread;
    return a.seq < b.seq;
  });
  return all;
}

std::uint64_t Collector::event_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& b : buffers_) {
    total += b->count.load(std::memory_order_relaxed);
  }
  return total;
}

void Collector::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  incarnation_ = next_incarnation();
  epoch_ns_ = steady_now_ns();
}

Collector* attach(Collector* collector) {
  return detail::g_collector.exchange(collector, std::memory_order_seq_cst);
}

// Friend of Collector: the only path that appends events.
struct CollectorAccess {
  static void record(Collector* c, EventKind kind, std::int64_t ts_ns,
                     std::int64_t dur_ns, std::int64_t arg0,
                     std::int64_t arg1) {
    Collector::ThreadBuffer* buffer = c->buffer_for_this_thread();
    Event e;
    e.kind = kind;
    e.thread = buffer->index;
    e.seq = buffer->next_seq++;
    e.ts_ns = ts_ns;
    e.dur_ns = dur_ns;
    e.arg0 = arg0;
    e.arg1 = arg1;
    buffer->events.push_back(e);
    buffer->count.store(buffer->events.size(), std::memory_order_relaxed);
  }
};

namespace {
void record(Collector* c, EventKind kind, std::int64_t ts_ns,
            std::int64_t dur_ns, std::int64_t arg0, std::int64_t arg1) {
  CollectorAccess::record(c, kind, ts_ns, dur_ns, arg0, arg1);
}
}  // namespace

void emit_instant(EventKind kind, std::int64_t arg0, std::int64_t arg1) {
  Collector* c = detail::g_collector.load(std::memory_order_relaxed);
  if (c == nullptr) return;
  record(c, kind, c->now_ns(), /*dur_ns=*/-1, arg0, arg1);
}

void emit_pareto_point(std::int64_t size, double throughput) {
  emit_instant(EventKind::ParetoPoint, size,
               static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(
                   throughput)));
}

Span::Span(EventKind kind, std::int64_t arg0, std::int64_t arg1)
    : collector_(detail::g_collector.load(std::memory_order_relaxed)),
      kind_(kind),
      arg0_(arg0),
      arg1_(arg1) {
  if (collector_ != nullptr) start_ns_ = collector_->now_ns();
}

Span::~Span() {
  // Re-check against the live global: if the collector was detached (or
  // replaced) mid-span, dropping the event is safer than writing into a
  // possibly-destroyed buffer.
  if (collector_ == nullptr ||
      detail::g_collector.load(std::memory_order_relaxed) != collector_) {
    return;
  }
  const std::int64_t end_ns = collector_->now_ns();
  record(collector_, kind_, start_ns_, end_ns - start_ns_, arg0_, arg1_);
}

void Span::set_args(std::int64_t arg0, std::int64_t arg1) {
  if (collector_ == nullptr) return;
  arg0_ = arg0;
  arg1_ = arg1;
}

}  // namespace buffy::trace
