// Markdown report fragments and the EXPERIMENTS.md stitcher (DESIGN.md §8).
//
// Every reproduction bench renders its paper-vs-measured section as a
// *fragment*: one self-contained Markdown file under report/ holding only
// deterministic content (throughputs, sizes, state counts, Pareto fronts,
// Gantt charts — never wall-clock times, which vary per machine). The
// make_experiments tool stitches the fragments, in the fixed manifest
// order below, into EXPERIMENTS.md — so the experiment documentation is a
// generated artifact that CI can regenerate and diff instead of a
// hand-maintained table that drifts.
//
// ReportFragment is a small Markdown builder; the domain-specific table
// renderers (Pareto fronts, Gantt charts) live with the benches
// (bench/report_util.hpp) to keep this module free of upward
// dependencies.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace buffy::trace {

/// Builds one Markdown fragment: a section heading plus paragraphs,
/// pipe tables, bullet lists and fenced code blocks, in insertion order.
class ReportFragment {
 public:
  /// `title` becomes a "## title" heading; `binary` names the bench that
  /// regenerates this fragment (rendered as a "Binary:" line).
  ReportFragment(std::string title, std::string binary);

  void paragraph(const std::string& text);
  void bullet(const std::string& text);
  /// Pipe table; every row must have header.size() cells.
  void table(const std::vector<std::string>& header,
             const std::vector<std::vector<std::string>>& rows);
  /// Fenced code block (empty info string by default).
  void code_block(const std::string& text, const std::string& info = "");

  /// The fragment as Markdown, ending in exactly one newline.
  [[nodiscard]] std::string str() const;

  /// Writes str() to `<dir>/<name>.md`, creating `dir` if needed.
  /// Returns the path written. Throws Error on I/O failure.
  std::string write(const std::string& dir, const std::string& name) const;

 private:
  std::string title_;
  std::string binary_;
  std::vector<std::string> blocks_;
};

/// Per-kind event counts and total span time of a merged trace, as a
/// Markdown table — the state-space statistics block of a report.
[[nodiscard]] std::string summary_table(const std::vector<Event>& events);

/// One entry of the EXPERIMENTS.md manifest: which fragment file a bench
/// produces. Order in the manifest = order of sections in EXPERIMENTS.md.
struct ManifestEntry {
  const char* fragment;  // file stem under report/ (no ".md")
  const char* binary;    // bench target that regenerates it
};

/// The fixed section order of the generated EXPERIMENTS.md.
[[nodiscard]] const std::vector<ManifestEntry>& experiments_manifest();

/// Stitches `<report_dir>/<fragment>.md` for every manifest entry into
/// the full EXPERIMENTS.md text (header + reading guide + fragments).
/// Throws Error naming every missing fragment and the bench to run.
[[nodiscard]] std::string stitch_experiments(const std::string& report_dir);

}  // namespace buffy::trace
