#include "trace/chrome.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace buffy::trace {

namespace {

// Per-kind argument labels, part of the trace schema (DESIGN.md §8).
struct ArgNames {
  const char* arg0;
  const char* arg1;        // null = arg1 unused (not emitted)
  bool arg1_is_double = false;  // arg1 holds IEEE-754 double bits
};

ArgNames arg_names(EventKind kind) {
  switch (kind) {
    case EventKind::Exploration: return {"engine", "channels"};
    case EventKind::Simulation: return {"size", "states"};
    case EventKind::Wave: return {"candidates", "size"};
    case EventKind::SizeEval: return {"size", nullptr};
    case EventKind::CacheHit: return {"size", nullptr};
    case EventKind::DominanceSkip: return {"size", nullptr};
    case EventKind::EngineReset: return {"size", nullptr};
    case EventKind::ParetoPoint: return {"size", "throughput", true};
    case EventKind::LpPrune: return {"size", nullptr};
  }
  return {"arg0", "arg1"};
}

// Microseconds with nanosecond precision, as Chrome expects.
void print_us(std::ostream& out, std::int64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000));
  out << buf;
}

}  // namespace

void write_chrome_trace(const std::vector<Event>& events, std::ostream& out) {
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const Event& e : events) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"name\": \"" << kind_name(e.kind)
        << "\", \"cat\": \"buffy\", \"pid\": 1, \"tid\": " << e.thread
        << ", \"ts\": ";
    print_us(out, e.ts_ns);
    if (e.dur_ns >= 0) {
      out << ", \"ph\": \"X\", \"dur\": ";
      print_us(out, e.dur_ns);
    } else {
      out << ", \"ph\": \"i\", \"s\": \"t\"";
    }
    const ArgNames names = arg_names(e.kind);
    out << ", \"args\": {\"" << names.arg0 << "\": " << e.arg0;
    if (names.arg1 != nullptr) {
      out << ", \"" << names.arg1 << "\": ";
      if (names.arg1_is_double) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", e.arg1_bits_as_double());
        out << buf;
      } else {
        out << e.arg1;
      }
    }
    out << ", \"seq\": " << e.seq << "}}";
  }
  out << "\n]}\n";
}

std::string chrome_trace_json(const std::vector<Event>& events) {
  std::ostringstream out;
  write_chrome_trace(events, out);
  return out.str();
}

}  // namespace buffy::trace
