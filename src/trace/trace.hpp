// Structured exploration tracing (DESIGN.md §8).
//
// The hot layers (state::Engine, state::ThroughputSolver, both DSE
// engines) emit span and instant events describing what the exploration
// did: one span per candidate simulation, one per incremental wave and per
// exhaustive size scan, instants for cache hits, dominance skips, engine
// reconfigurations and Pareto points. Events carry a monotonic timestamp,
// a dense tracer-assigned thread index and a per-thread sequence number;
// they are buffered per thread (no cross-thread synchronisation on the
// emission path) and merged deterministically on demand.
//
// Tracing is compiled in unconditionally but costs one relaxed atomic
// load per emission site when no collector is attached (enabled() below);
// bench_micro pins the overhead of that guard at < 2% of a throughput
// run. Attach a Collector to turn events on:
//
//     trace::Collector collector;
//     trace::attach(&collector);
//     ... run the exploration ...
//     trace::attach(nullptr);
//     trace::write_chrome_trace(collector.merged(), out);  // trace/chrome.hpp
//
// Thread-safety: emission is safe from any number of threads while a
// collector is attached. attach()/merged() are control-plane calls: the
// caller must not detach or destroy a collector while worker threads may
// still emit (in this codebase explorations join their workers before
// returning, so attaching around a buffer::explore call is safe).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/checked_math.hpp"

namespace buffy::trace {

/// What an event describes. The arg0/arg1 meanings per kind are part of
/// the trace schema (DESIGN.md §8) and are rendered with these names by
/// the Chrome sink.
enum class EventKind : std::uint8_t {
  /// Span: one whole design-space exploration. arg0 = engine (0 =
  /// exhaustive, 1 = incremental), arg1 = number of channels.
  Exploration = 0,
  /// Span: one candidate throughput simulation (a full state-space run).
  /// arg0 = distribution size (sum of capacities; -1 when some channel is
  /// unbounded), arg1 = reduced states stored.
  Simulation,
  /// Span: one same-size evaluation wave of the incremental engine.
  /// arg0 = candidates in the wave, arg1 = distribution size of the wave.
  Wave,
  /// Span: one per-size max-throughput scan of the exhaustive engine.
  /// arg0 = distribution size, arg1 = 0.
  SizeEval,
  /// Instant: a candidate answered from the exact-repeat cache.
  /// arg0 = distribution size, arg1 = 0.
  CacheHit,
  /// Instant: a candidate answered by Sec. 8 monotone dominance.
  /// arg0 = distribution size, arg1 = 0.
  DominanceSkip,
  /// Instant: an Engine reset/reconfigure (a new storage distribution
  /// swapped into a warm engine). arg0 = distribution size (-1 when
  /// unbounded), arg1 = 0.
  EngineReset,
  /// Instant: a Pareto point emitted. arg0 = distribution size,
  /// arg1 = throughput as IEEE-754 double bits (see arg1_bits_as_double).
  ParetoPoint,
  /// Instant: a candidate (or subtree envelope) answered by an LP cycle
  /// cut without simulation. arg0 = distribution size, arg1 = 0.
  LpPrune,
};

/// Number of distinct EventKind values (table sizes in the sinks).
inline constexpr std::size_t kNumEventKinds = 9;

/// Stable lower-case name of an event kind ("simulation", "cache_hit"...).
[[nodiscard]] const char* kind_name(EventKind kind);

/// One trace event. Spans have dur_ns >= 0; instants use dur_ns == -1.
struct Event {
  EventKind kind = EventKind::Simulation;
  /// Dense tracer-assigned thread index (0, 1, ...), stable for the
  /// lifetime of one Collector; not an OS thread id.
  std::uint32_t thread = 0;
  /// Per-thread emission sequence number, starting at 0.
  std::uint64_t seq = 0;
  /// Nanoseconds since the collector's epoch (its construction), taken
  /// from a monotonic clock. For spans this is the span's start.
  std::int64_t ts_ns = 0;
  /// Span duration in nanoseconds; -1 marks an instant event.
  std::int64_t dur_ns = -1;
  /// Kind-specific payload; see EventKind.
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;

  /// ParetoPoint stores a throughput in arg1 as double bits.
  [[nodiscard]] double arg1_bits_as_double() const;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Collects events from any number of threads into per-thread buffers.
/// One collector per traced operation; reuse requires clear().
class Collector {
 public:
  Collector();
  ~Collector();
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// All events, merged deterministically: sorted by (ts_ns, thread, seq).
  /// The merge is a pure function of the buffered events — merging the
  /// same collector twice yields identical vectors, and each thread's
  /// events keep their emission order (seq is strictly increasing per
  /// thread). Call only while no thread is emitting.
  [[nodiscard]] std::vector<Event> merged() const;

  /// Total events buffered so far (cheap; safe while emitting).
  [[nodiscard]] std::uint64_t event_count() const;

  /// Nanoseconds since the collector's construction on the monotonic
  /// clock used for every timestamp.
  [[nodiscard]] std::int64_t now_ns() const;

  /// Drops all buffered events and thread registrations. Call only while
  /// detached and no thread is emitting.
  void clear();

 private:
  friend struct CollectorAccess;  // emission path (trace.cpp)
  struct ThreadBuffer {
    std::uint32_t index = 0;
    std::uint64_t next_seq = 0;
    std::vector<Event> events;
    std::atomic<std::uint64_t> count{0};  // events.size(), readable racily
  };

  /// Registers the calling thread (or returns its existing buffer).
  ThreadBuffer* buffer_for_this_thread();

  std::int64_t epoch_ns_ = 0;  // steady_clock at construction
  mutable std::mutex mu_;      // guards buffers_ registration
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  // Process-unique incarnation id, refreshed by clear(): keys the
  // per-thread buffer cache so neither clear() nor a new collector
  // reusing this address can alias a stale cached buffer.
  std::uint64_t incarnation_ = 0;
};

namespace detail {
// The globally attached collector. Emission sites load this with relaxed
// ordering; attach() stores with seq_cst so emissions after an attach see
// the collector (the caller orders attach before the traced work).
extern std::atomic<Collector*> g_collector;
}  // namespace detail

/// Attaches a collector globally (nullptr detaches). The previous
/// collector, if any, is returned so scoped attachments can restore it.
Collector* attach(Collector* collector);

/// True when a collector is attached. This is the whole cost of tracing
/// at a quiet emission site: one relaxed atomic load and a branch.
[[nodiscard]] inline bool enabled() {
  return detail::g_collector.load(std::memory_order_relaxed) != nullptr;
}

/// Emits an instant event (no-op when no collector is attached).
void emit_instant(EventKind kind, std::int64_t arg0 = 0,
                  std::int64_t arg1 = 0);

/// Emits a ParetoPoint instant carrying a throughput (stored as double
/// bits in arg1; the Chrome sink renders it as a number again).
void emit_pareto_point(std::int64_t size, double throughput);

/// RAII span: captures the start time at construction (when tracing is
/// enabled) and emits one span event at destruction — including during
/// exception unwind, so cancelled simulations still appear in the trace.
/// If tracing was disabled at construction the span stays disarmed even
/// if a collector is attached later (a half-timed span would lie).
class Span {
 public:
  explicit Span(EventKind kind, std::int64_t arg0 = 0, std::int64_t arg1 = 0);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Updates the args recorded at destruction (e.g. states stored, known
  /// only when the simulation ends). No-op when disarmed.
  void set_args(std::int64_t arg0, std::int64_t arg1);

 private:
  Collector* collector_;  // null = disarmed
  EventKind kind_;
  std::int64_t start_ns_ = 0;
  std::int64_t arg0_;
  std::int64_t arg1_;
};

}  // namespace buffy::trace
