// DOT export of timed state spaces — the pictures of Fig. 3 and Fig. 4.
//
// The full space draws one node per time instant with the (clocks | tokens)
// tuple; the reduced space draws the stored states with their d_a
// distances. Cycle states are highlighted.
#pragma once

#include <string>

#include "buffer/distribution.hpp"
#include "sdf/graph.hpp"

namespace buffy::io {

/// Fig. 3 style: the full state sequence from time 0 until one full cycle
/// (or the deadlock state), as a DOT chain with the cycle closed by a back
/// edge. `target` selects the actor whose completions define the cycle.
[[nodiscard]] std::string statespace_dot(
    const sdf::Graph& graph, const buffer::StorageDistribution& distribution,
    sdf::ActorId target, u64 max_steps = 1'000'000);

/// Fig. 4 style: the reduced state space (stored states with d distances).
[[nodiscard]] std::string reduced_statespace_dot(
    const sdf::Graph& graph, const buffer::StorageDistribution& distribution,
    sdf::ActorId target, u64 max_steps = 100'000'000);

}  // namespace buffy::io
