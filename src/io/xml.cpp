#include "io/xml.hpp"

#include <cctype>
#include <sstream>

#include "base/diagnostics.hpp"

namespace buffy::io {

void XmlElement::set_attribute(const std::string& key, std::string value) {
  for (auto& [k, v] : attributes_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(key, std::move(value));
}

std::optional<std::string> XmlElement::attribute(const std::string& key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

const std::string& XmlElement::required_attribute(const std::string& key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return v;
  }
  throw ParseError("element <" + name_ + "> is missing attribute '" + key +
                   "'");
}

XmlElement& XmlElement::add_child(std::string name) {
  children_.push_back(std::make_unique<XmlElement>(std::move(name)));
  return *children_.back();
}

XmlElement& XmlElement::adopt_child(std::unique_ptr<XmlElement> child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

std::vector<const XmlElement*> XmlElement::children_named(
    const std::string& name) const {
  std::vector<const XmlElement*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

const XmlElement* XmlElement::child(const std::string& name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

const XmlElement& XmlElement::required_child(const std::string& name) const {
  const XmlElement* c = child(name);
  if (c == nullptr) {
    throw ParseError("element <" + name_ + "> is missing child <" + name +
                     ">");
  }
  return *c;
}

namespace {

/// Character-level cursor with position tracking for error messages.
class Cursor {
 public:
  explicit Cursor(const std::string& input) : input_(input) {}

  [[nodiscard]] bool done() const { return pos_ >= input_.size(); }
  [[nodiscard]] char peek() const { return done() ? '\0' : input_[pos_]; }
  [[nodiscard]] bool looking_at(const std::string& s) const {
    return input_.compare(pos_, s.size(), s) == 0;
  }

  char take() {
    const char c = peek();
    advance();
    return c;
  }

  void advance(std::size_t n = 1) {
    for (std::size_t i = 0; i < n && pos_ < input_.size(); ++i) {
      if (input_[pos_] == '\n') {
        ++line_;
        column_ = 1;
      } else {
        ++column_;
      }
      ++pos_;
    }
  }

  void skip_whitespace() {
    while (!done() && std::isspace(static_cast<unsigned char>(peek()))) {
      advance();
    }
  }

  [[noreturn]] void fail(const std::string& message) const {
    std::ostringstream os;
    os << "XML parse error at line " << line_ << ", column " << column_ << ": "
       << message;
    throw ParseError(os.str());
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    advance();
  }

 private:
  const std::string& input_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

std::string parse_name(Cursor& cur) {
  std::string name;
  while (!cur.done() && is_name_char(cur.peek())) name += cur.take();
  if (name.empty()) cur.fail("expected a name");
  return name;
}

std::string decode_entities(Cursor& cur, const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '&') {
      out += raw[i];
      continue;
    }
    const std::size_t end = raw.find(';', i);
    if (end == std::string::npos) cur.fail("unterminated entity reference");
    const std::string entity = raw.substr(i + 1, end - i - 1);
    if (entity == "amp") {
      out += '&';
    } else if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else if (!entity.empty() && entity[0] == '#') {
      // Numeric character reference; ASCII only (enough for graph files).
      const long code = std::strtol(entity.c_str() + 1, nullptr,
                                    entity.size() > 1 && entity[1] == 'x' ? 0
                                                                          : 10);
      if (code <= 0 || code > 127) cur.fail("unsupported character reference");
      out += static_cast<char>(code);
    } else {
      cur.fail("unknown entity '&" + entity + ";'");
    }
    i = end;
  }
  return out;
}

void skip_misc(Cursor& cur) {
  for (;;) {
    cur.skip_whitespace();
    if (cur.looking_at("<!--")) {
      cur.advance(4);
      while (!cur.done() && !cur.looking_at("-->")) cur.advance();
      if (cur.done()) cur.fail("unterminated comment");
      cur.advance(3);
    } else if (cur.looking_at("<?")) {
      cur.advance(2);
      while (!cur.done() && !cur.looking_at("?>")) cur.advance();
      if (cur.done()) cur.fail("unterminated processing instruction");
      cur.advance(2);
    } else if (cur.looking_at("<!DOCTYPE")) {
      while (!cur.done() && cur.peek() != '>') cur.advance();
      if (cur.done()) cur.fail("unterminated DOCTYPE");
      cur.advance();
    } else {
      return;
    }
  }
}

std::string parse_attribute_value(Cursor& cur) {
  const char quote = cur.peek();
  if (quote != '"' && quote != '\'') cur.fail("expected a quoted value");
  cur.advance();
  std::string raw;
  while (!cur.done() && cur.peek() != quote) raw += cur.take();
  if (cur.done()) cur.fail("unterminated attribute value");
  cur.advance();
  return decode_entities(cur, raw);
}

std::unique_ptr<XmlElement> parse_element(Cursor& cur, int depth) {
  if (depth > 200) cur.fail("element nesting too deep");
  cur.expect('<');
  auto element = std::make_unique<XmlElement>(parse_name(cur));
  for (;;) {
    cur.skip_whitespace();
    if (cur.looking_at("/>")) {
      cur.advance(2);
      return element;
    }
    if (cur.peek() == '>') {
      cur.advance();
      break;
    }
    const std::string key = parse_name(cur);
    cur.skip_whitespace();
    cur.expect('=');
    cur.skip_whitespace();
    element->set_attribute(key, parse_attribute_value(cur));
  }
  // Content: text, children, comments, CDATA, then the closing tag.
  for (;;) {
    if (cur.done()) cur.fail("unterminated element <" + element->name() + ">");
    if (cur.looking_at("<!--")) {
      skip_misc(cur);
      continue;
    }
    if (cur.looking_at("<![CDATA[")) {
      cur.advance(9);
      std::string cdata;
      while (!cur.done() && !cur.looking_at("]]>")) cdata += cur.take();
      if (cur.done()) cur.fail("unterminated CDATA section");
      cur.advance(3);
      element->append_text(cdata);
      continue;
    }
    if (cur.looking_at("</")) {
      cur.advance(2);
      const std::string closing = parse_name(cur);
      if (closing != element->name()) {
        cur.fail("mismatched closing tag </" + closing + "> for <" +
                 element->name() + ">");
      }
      cur.skip_whitespace();
      cur.expect('>');
      return element;
    }
    if (cur.peek() == '<') {
      element->adopt_child(parse_element(cur, depth + 1));
      continue;
    }
    std::string raw;
    while (!cur.done() && cur.peek() != '<') raw += cur.take();
    element->append_text(decode_entities(cur, raw));
  }
}

void write_element(const XmlElement& element, std::ostringstream& os,
                   int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  os << indent << '<' << element.name();
  for (const auto& [k, v] : element.attributes()) {
    os << ' ' << k << "=\"" << xml_escape(v) << '"';
  }
  const std::string text = element.text();
  if (element.children().empty() && text.empty()) {
    os << "/>\n";
    return;
  }
  os << '>';
  if (!text.empty()) os << xml_escape(text);
  if (!element.children().empty()) {
    os << '\n';
    for (const auto& child : element.children()) {
      write_element(*child, os, depth + 1);
    }
    os << indent;
  }
  os << "</" << element.name() << ">\n";
}

}  // namespace

XmlDocument parse_xml(const std::string& input) {
  Cursor cur(input);
  skip_misc(cur);
  if (cur.done() || cur.peek() != '<') cur.fail("expected a root element");
  XmlDocument doc;
  doc.root = parse_element(cur, 0);
  skip_misc(cur);
  if (!cur.done()) cur.fail("content after the root element");
  return doc;
}

std::string write_xml(const XmlElement& root) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  write_element(root, os, 0);
  return os.str();
}

std::string xml_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace buffy::io
