// Minimal dependency-free XML reader/writer.
//
// Supports the subset needed for SDF3-style graph files: elements,
// attributes, text content, comments, processing instructions, CDATA and
// the five predefined entities. No namespaces, DTDs or encodings beyond
// UTF-8 pass-through. Parse errors carry line/column information.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace buffy::io {

/// One XML element: name, attributes in document order, children and the
/// concatenated text content.
class XmlElement {
 public:
  explicit XmlElement(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  void set_attribute(const std::string& key, std::string value);
  [[nodiscard]] std::optional<std::string> attribute(
      const std::string& key) const;
  /// Attribute that must exist; throws ParseError naming the element.
  [[nodiscard]] const std::string& required_attribute(
      const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  attributes() const {
    return attributes_;
  }

  XmlElement& add_child(std::string name);
  /// Takes ownership of an already-built child (used by the parser).
  XmlElement& adopt_child(std::unique_ptr<XmlElement> child);
  [[nodiscard]] const std::vector<std::unique_ptr<XmlElement>>& children()
      const {
    return children_;
  }
  /// All direct children with the given element name.
  [[nodiscard]] std::vector<const XmlElement*> children_named(
      const std::string& name) const;
  /// First direct child with the given name, or nullptr.
  [[nodiscard]] const XmlElement* child(const std::string& name) const;
  /// First direct child that must exist; throws ParseError.
  [[nodiscard]] const XmlElement& required_child(const std::string& name) const;

  void append_text(const std::string& text) { text_ += text; }
  [[nodiscard]] const std::string& text() const { return text_; }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<XmlElement>> children_;
  std::string text_;
};

/// A parsed document owning the root element.
struct XmlDocument {
  std::unique_ptr<XmlElement> root;
};

/// Parses a document; throws ParseError with line/column on malformed input.
[[nodiscard]] XmlDocument parse_xml(const std::string& input);

/// Serialises with 2-space indentation and an XML declaration.
[[nodiscard]] std::string write_xml(const XmlElement& root);

/// Escapes &, <, >, ", ' for use in attribute values and text.
[[nodiscard]] std::string xml_escape(const std::string& raw);

}  // namespace buffy::io
