// Graphviz DOT export of SDF graphs, with rates, initial tokens and
// execution times rendered the way the paper draws them (rates as port
// annotations, execution times above the actors).
#pragma once

#include <string>

#include "buffer/distribution.hpp"
#include "sdf/graph.hpp"

namespace buffy::io {

/// DOT text for the graph alone.
[[nodiscard]] std::string write_dot(const sdf::Graph& graph);

/// DOT text with channel capacities from a storage distribution annotated
/// on the edges.
[[nodiscard]] std::string write_dot(const sdf::Graph& graph,
                                    const buffer::StorageDistribution& dist);

}  // namespace buffy::io
