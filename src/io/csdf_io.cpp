#include "io/csdf_io.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "base/diagnostics.hpp"
#include "base/string_util.hpp"
#include "io/xml.hpp"

namespace buffy::io {

namespace {

std::vector<i64> parse_phase_list(const std::string& text) {
  std::vector<i64> out;
  for (const std::string& item : split(text, ',')) {
    out.push_back(parse_i64(item));
  }
  return out;
}

std::string format_phase_list(const std::vector<i64>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(values[i]);
  }
  return out;
}

struct PortSpec {
  std::string direction;
  std::vector<i64> rates;
};

}  // namespace

csdf::Graph read_csdf_xml(const std::string& xml_text) {
  const XmlDocument doc = parse_xml(xml_text);
  const XmlElement& root = *doc.root;
  if (root.name() != "sdf3") {
    throw ParseError("expected <sdf3> root element, found <" + root.name() +
                     ">");
  }
  const XmlElement& app = root.required_child("applicationGraph");
  const XmlElement& csdf_el = app.required_child("csdf");
  csdf::Graph graph(csdf_el.attribute("name").value_or(
      app.attribute("name").value_or("csdf")));

  std::unordered_map<std::string, csdf::ActorId> actors;
  std::unordered_map<std::string, PortSpec> ports;
  const auto port_key = [](const std::string& actor, const std::string& port) {
    return actor + "\x1f" + port;
  };
  for (const XmlElement* actor_el : csdf_el.children_named("actor")) {
    const std::string& name = actor_el->required_attribute("name");
    const csdf::ActorId id = graph.add_actor(
        csdf::Actor{.name = name, .execution_times = {1}});
    if (!actors.emplace(name, id).second) {
      throw ParseError("duplicate actor '" + name + "'");
    }
    for (const XmlElement* port_el : actor_el->children_named("port")) {
      PortSpec spec;
      spec.direction = port_el->required_attribute("type");
      if (spec.direction != "in" && spec.direction != "out") {
        throw ParseError("port of actor '" + name + "' has type '" +
                         spec.direction + "' (expected in/out)");
      }
      spec.rates = parse_phase_list(port_el->required_attribute("rate"));
      ports[port_key(name, port_el->required_attribute("name"))] = spec;
    }
  }

  for (const XmlElement* ch_el : csdf_el.children_named("channel")) {
    const std::string& name = ch_el->required_attribute("name");
    const auto src_it = actors.find(ch_el->required_attribute("srcActor"));
    const auto dst_it = actors.find(ch_el->required_attribute("dstActor"));
    if (src_it == actors.end() || dst_it == actors.end()) {
      throw ParseError("channel '" + name + "' references unknown actors");
    }
    const auto sp = ports.find(
        port_key(ch_el->required_attribute("srcActor"),
                 ch_el->required_attribute("srcPort")));
    const auto dp = ports.find(
        port_key(ch_el->required_attribute("dstActor"),
                 ch_el->required_attribute("dstPort")));
    if (sp == ports.end() || dp == ports.end()) {
      throw ParseError("channel '" + name + "' references unknown ports");
    }
    if (sp->second.direction != "out" || dp->second.direction != "in") {
      throw ParseError("channel '" + name +
                       "' must connect an out port to an in port");
    }
    i64 tokens = 0;
    if (const auto t = ch_el->attribute("initialTokens")) {
      tokens = parse_i64(*t);
    }
    graph.add_channel(csdf::Channel{
        .name = name,
        .src = src_it->second,
        .dst = dst_it->second,
        .production = sp->second.rates,
        .consumption = dp->second.rates,
        .initial_tokens = tokens,
    });
  }

  if (const XmlElement* props = app.child("csdfProperties")) {
    for (const XmlElement* ap : props->children_named("actorProperties")) {
      const auto it = actors.find(ap->required_attribute("actor"));
      if (it == actors.end()) {
        throw ParseError("actorProperties references unknown actor '" +
                         ap->required_attribute("actor") + "'");
      }
      if (const XmlElement* proc = ap->child("processor")) {
        if (const XmlElement* et = proc->child("executionTime")) {
          graph.actor_mutable(it->second).execution_times =
              parse_phase_list(et->required_attribute("time"));
        }
      }
    }
  }

  csdf::validate(graph);
  return graph;
}

std::string write_csdf_xml(const csdf::Graph& graph) {
  XmlElement root("sdf3");
  root.set_attribute("type", "csdf");
  root.set_attribute("version", "1.0");
  XmlElement& app = root.add_child("applicationGraph");
  app.set_attribute("name", graph.name());
  XmlElement& csdf_el = app.add_child("csdf");
  csdf_el.set_attribute("name", graph.name());
  csdf_el.set_attribute("type", graph.name());

  for (const csdf::ActorId a : graph.actor_ids()) {
    XmlElement& actor_el = csdf_el.add_child("actor");
    actor_el.set_attribute("name", graph.actor(a).name);
    actor_el.set_attribute("type", graph.actor(a).name);
    for (const csdf::ChannelId c : graph.out_channels(a)) {
      const csdf::Channel& ch = graph.channel(c);
      XmlElement& port = actor_el.add_child("port");
      port.set_attribute("name", ch.name + "_out");
      port.set_attribute("type", "out");
      port.set_attribute("rate", format_phase_list(ch.production));
    }
    for (const csdf::ChannelId c : graph.in_channels(a)) {
      const csdf::Channel& ch = graph.channel(c);
      XmlElement& port = actor_el.add_child("port");
      port.set_attribute("name", ch.name + "_in");
      port.set_attribute("type", "in");
      port.set_attribute("rate", format_phase_list(ch.consumption));
    }
  }
  for (const csdf::ChannelId c : graph.channel_ids()) {
    const csdf::Channel& ch = graph.channel(c);
    XmlElement& ch_el = csdf_el.add_child("channel");
    ch_el.set_attribute("name", ch.name);
    ch_el.set_attribute("srcActor", graph.actor(ch.src).name);
    ch_el.set_attribute("srcPort", ch.name + "_out");
    ch_el.set_attribute("dstActor", graph.actor(ch.dst).name);
    ch_el.set_attribute("dstPort", ch.name + "_in");
    if (ch.initial_tokens != 0) {
      ch_el.set_attribute("initialTokens", std::to_string(ch.initial_tokens));
    }
  }
  XmlElement& props = app.add_child("csdfProperties");
  for (const csdf::ActorId a : graph.actor_ids()) {
    XmlElement& ap = props.add_child("actorProperties");
    ap.set_attribute("actor", graph.actor(a).name);
    XmlElement& proc = ap.add_child("processor");
    proc.set_attribute("type", "default");
    proc.set_attribute("default", "true");
    XmlElement& et = proc.add_child("executionTime");
    et.set_attribute("time",
                     format_phase_list(graph.actor(a).execution_times));
  }
  return write_xml(root);
}

csdf::Graph read_csdf_dsl(const std::string& text) {
  csdf::Graph graph("csdf");
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  const auto fail = [&](const std::string& message) {
    throw ParseError("line " + std::to_string(line_no) + ": " + message);
  };
  // Same structure as the SDF DSL but with comma-separated phase lists.
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::vector<std::string> words = split_whitespace(line);
    if (words.empty()) continue;
    if (words[0] == "graph") {
      if (words.size() != 2) fail("expected: graph <name>");
      graph.set_name(words[1]);
    } else if (words[0] == "actor") {
      if (words.size() != 3) fail("expected: actor <name> <times,per,phase>");
      graph.add_actor(csdf::Actor{
          .name = words[1], .execution_times = parse_phase_list(words[2])});
    } else if (words[0] == "channel") {
      if (words.size() != 6 && !(words.size() == 8 && words[6] == "tokens")) {
        fail("expected: channel <name> <src> <prod,..> <dst> <cons,..> "
             "[tokens <n>]");
      }
      const auto src = graph.find_actor(words[2]);
      const auto dst = graph.find_actor(words[4]);
      if (!src) fail("unknown source actor '" + words[2] + "'");
      if (!dst) fail("unknown destination actor '" + words[4] + "'");
      graph.add_channel(csdf::Channel{
          .name = words[1],
          .src = *src,
          .dst = *dst,
          .production = parse_phase_list(words[3]),
          .consumption = parse_phase_list(words[5]),
          .initial_tokens = words.size() == 8 ? parse_i64(words[7]) : 0,
      });
    } else {
      fail("unknown directive '" + words[0] + "'");
    }
  }
  csdf::validate(graph);
  return graph;
}

std::string write_csdf_dsl(const csdf::Graph& graph) {
  std::ostringstream os;
  os << "graph " << graph.name() << '\n';
  for (const csdf::ActorId a : graph.actor_ids()) {
    os << "actor " << graph.actor(a).name << ' '
       << format_phase_list(graph.actor(a).execution_times) << '\n';
  }
  for (const csdf::ChannelId c : graph.channel_ids()) {
    const csdf::Channel& ch = graph.channel(c);
    os << "channel " << ch.name << ' ' << graph.actor(ch.src).name << ' '
       << format_phase_list(ch.production) << ' ' << graph.actor(ch.dst).name
       << ' ' << format_phase_list(ch.consumption);
    if (ch.initial_tokens != 0) os << " tokens " << ch.initial_tokens;
    os << '\n';
  }
  return os.str();
}

csdf::Graph load_csdf_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".xml") {
    return read_csdf_xml(buffer.str());
  }
  return read_csdf_dsl(buffer.str());
}

}  // namespace buffy::io
