#include "io/sdf_xml.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "base/diagnostics.hpp"
#include "base/string_util.hpp"
#include "io/xml.hpp"
#include "sdf/validate.hpp"

namespace buffy::io {

namespace {

struct PortSpec {
  std::string direction;  // "in" or "out"
  i64 rate = 1;
};

}  // namespace

sdf::Graph read_sdf_xml(const std::string& xml_text) {
  const XmlDocument doc = parse_xml(xml_text);
  const XmlElement& root = *doc.root;
  if (root.name() != "sdf3") {
    throw ParseError("expected <sdf3> root element, found <" + root.name() +
                     ">");
  }
  const XmlElement& app = root.required_child("applicationGraph");
  const XmlElement& sdf_el = app.required_child("sdf");
  sdf::Graph graph(sdf_el.attribute("name").value_or(
      app.attribute("name").value_or("sdf")));

  // Actors and their ports.
  std::unordered_map<std::string, sdf::ActorId> actors;
  // (actor, port) -> rate/direction, consulted when wiring channels.
  std::unordered_map<std::string, PortSpec> ports;
  const auto port_key = [](const std::string& actor, const std::string& port) {
    return actor + "\x1f" + port;
  };
  for (const XmlElement* actor_el : sdf_el.children_named("actor")) {
    const std::string& name = actor_el->required_attribute("name");
    const sdf::ActorId id = graph.add_actor(sdf::Actor{.name = name});
    if (!actors.emplace(name, id).second) {
      throw ParseError("duplicate actor '" + name + "'");
    }
    for (const XmlElement* port_el : actor_el->children_named("port")) {
      PortSpec spec;
      spec.direction = port_el->required_attribute("type");
      if (spec.direction != "in" && spec.direction != "out") {
        throw ParseError("port '" + port_el->required_attribute("name") +
                         "' of actor '" + name +
                         "' has type '" + spec.direction +
                         "' (expected in/out)");
      }
      spec.rate = parse_i64(port_el->required_attribute("rate"));
      ports[port_key(name, port_el->required_attribute("name"))] = spec;
    }
  }

  // Channels; rates come from the connected ports.
  for (const XmlElement* ch_el : sdf_el.children_named("channel")) {
    const std::string& name = ch_el->required_attribute("name");
    const std::string& src_actor = ch_el->required_attribute("srcActor");
    const std::string& src_port = ch_el->required_attribute("srcPort");
    const std::string& dst_actor = ch_el->required_attribute("dstActor");
    const std::string& dst_port = ch_el->required_attribute("dstPort");
    const auto src_it = actors.find(src_actor);
    const auto dst_it = actors.find(dst_actor);
    if (src_it == actors.end() || dst_it == actors.end()) {
      throw ParseError("channel '" + name + "' references unknown actors");
    }
    const auto sp = ports.find(port_key(src_actor, src_port));
    const auto dp = ports.find(port_key(dst_actor, dst_port));
    if (sp == ports.end() || dp == ports.end()) {
      throw ParseError("channel '" + name + "' references unknown ports");
    }
    if (sp->second.direction != "out" || dp->second.direction != "in") {
      throw ParseError("channel '" + name +
                       "' must connect an out port to an in port");
    }
    i64 tokens = 0;
    if (const auto t = ch_el->attribute("initialTokens")) {
      tokens = parse_i64(*t);
    }
    graph.add_channel(sdf::Channel{
        .name = name,
        .src = src_it->second,
        .dst = dst_it->second,
        .production = sp->second.rate,
        .consumption = dp->second.rate,
        .initial_tokens = tokens,
        .src_port = src_port,
        .dst_port = dst_port,
    });
  }

  // Execution times from the properties section (default 1 when absent).
  if (const XmlElement* props = app.child("sdfProperties")) {
    for (const XmlElement* ap : props->children_named("actorProperties")) {
      const std::string& actor_name = ap->required_attribute("actor");
      const auto it = actors.find(actor_name);
      if (it == actors.end()) {
        throw ParseError("actorProperties references unknown actor '" +
                         actor_name + "'");
      }
      if (const XmlElement* proc = ap->child("processor")) {
        if (const XmlElement* et = proc->child("executionTime")) {
          graph.actor(it->second).execution_time =
              parse_i64(et->required_attribute("time"));
        }
      }
    }
  }

  sdf::validate(graph);
  return graph;
}

sdf::Graph load_sdf_xml_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_sdf_xml(buffer.str());
}

std::string write_sdf_xml(const sdf::Graph& graph) {
  XmlElement root("sdf3");
  root.set_attribute("type", "sdf");
  root.set_attribute("version", "1.0");
  XmlElement& app = root.add_child("applicationGraph");
  app.set_attribute("name", graph.name());
  XmlElement& sdf_el = app.add_child("sdf");
  sdf_el.set_attribute("name", graph.name());
  sdf_el.set_attribute("type", graph.name());

  for (const sdf::ActorId a : graph.actor_ids()) {
    XmlElement& actor_el = sdf_el.add_child("actor");
    actor_el.set_attribute("name", graph.actor(a).name);
    actor_el.set_attribute("type", graph.actor(a).name);
    for (const sdf::ChannelId c : graph.out_channels(a)) {
      const sdf::Channel& ch = graph.channel(c);
      XmlElement& port = actor_el.add_child("port");
      port.set_attribute("name", ch.src_port);
      port.set_attribute("type", "out");
      port.set_attribute("rate", std::to_string(ch.production));
    }
    for (const sdf::ChannelId c : graph.in_channels(a)) {
      const sdf::Channel& ch = graph.channel(c);
      XmlElement& port = actor_el.add_child("port");
      port.set_attribute("name", ch.dst_port);
      port.set_attribute("type", "in");
      port.set_attribute("rate", std::to_string(ch.consumption));
    }
  }
  for (const sdf::ChannelId c : graph.channel_ids()) {
    const sdf::Channel& ch = graph.channel(c);
    XmlElement& ch_el = sdf_el.add_child("channel");
    ch_el.set_attribute("name", ch.name);
    ch_el.set_attribute("srcActor", graph.actor(ch.src).name);
    ch_el.set_attribute("srcPort", ch.src_port);
    ch_el.set_attribute("dstActor", graph.actor(ch.dst).name);
    ch_el.set_attribute("dstPort", ch.dst_port);
    if (ch.initial_tokens != 0) {
      ch_el.set_attribute("initialTokens", std::to_string(ch.initial_tokens));
    }
  }

  XmlElement& props = app.add_child("sdfProperties");
  for (const sdf::ActorId a : graph.actor_ids()) {
    XmlElement& ap = props.add_child("actorProperties");
    ap.set_attribute("actor", graph.actor(a).name);
    XmlElement& proc = ap.add_child("processor");
    proc.set_attribute("type", "default");
    proc.set_attribute("default", "true");
    XmlElement& et = proc.add_child("executionTime");
    et.set_attribute("time", std::to_string(graph.actor(a).execution_time));
  }
  return write_xml(root);
}

void save_sdf_xml_file(const sdf::Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open '" + path + "' for writing");
  out << write_sdf_xml(graph);
  if (!out) throw Error("failed writing '" + path + "'");
}

}  // namespace buffy::io
