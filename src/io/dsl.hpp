// Compact line-oriented text format for SDF graphs.
//
//   # CD to DAT rate converter
//   graph samplerate
//   actor cd 1
//   actor fir1 2
//   channel c1 cd 1 fir1 1
//   channel c2 fir1 2 up23 3 tokens 4
//
// Lines: `graph <name>`, `actor <name> <execution-time>`,
// `channel <name> <src> <production> <dst> <consumption> [tokens <n>]`.
// Blank lines and `#` comments are ignored.
#pragma once

#include <string>

#include "sdf/graph.hpp"

namespace buffy::io {

/// Parses the text format; throws ParseError with a line number on errors.
[[nodiscard]] sdf::Graph read_dsl(const std::string& text);

/// Serialises a graph; read_dsl(write_dsl(g)) round-trips.
[[nodiscard]] std::string write_dsl(const sdf::Graph& graph);

/// Reads a file from disk; throws Error when the file cannot be opened.
[[nodiscard]] sdf::Graph load_dsl_file(const std::string& path);

}  // namespace buffy::io
