#include "io/dsl.hpp"

#include <fstream>
#include <sstream>

#include "base/diagnostics.hpp"
#include "base/string_util.hpp"
#include "sdf/validate.hpp"

namespace buffy::io {

sdf::Graph read_dsl(const std::string& text) {
  sdf::Graph graph("sdf");
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  const auto fail = [&](const std::string& message) {
    throw ParseError("line " + std::to_string(line_no) + ": " + message);
  };
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::vector<std::string> words = split_whitespace(line);
    if (words.empty()) continue;
    const std::string& kind = words[0];
    if (kind == "graph") {
      if (words.size() != 2) fail("expected: graph <name>");
      graph.set_name(words[1]);
    } else if (kind == "actor") {
      if (words.size() != 3) fail("expected: actor <name> <execution-time>");
      graph.add_actor(
          sdf::Actor{.name = words[1], .execution_time = parse_i64(words[2])});
    } else if (kind == "channel") {
      if (words.size() != 6 && !(words.size() == 8 && words[6] == "tokens")) {
        fail("expected: channel <name> <src> <prod> <dst> <cons> [tokens <n>]");
      }
      const auto src = graph.find_actor(words[2]);
      const auto dst = graph.find_actor(words[4]);
      if (!src) fail("unknown source actor '" + words[2] + "'");
      if (!dst) fail("unknown destination actor '" + words[4] + "'");
      graph.add_channel(sdf::Channel{
          .name = words[1],
          .src = *src,
          .dst = *dst,
          .production = parse_i64(words[3]),
          .consumption = parse_i64(words[5]),
          .initial_tokens = words.size() == 8 ? parse_i64(words[7]) : 0,
          .src_port = words[1] + "_out",
          .dst_port = words[1] + "_in",
      });
    } else {
      fail("unknown directive '" + kind + "'");
    }
  }
  sdf::validate(graph);
  return graph;
}

std::string write_dsl(const sdf::Graph& graph) {
  std::ostringstream os;
  os << "graph " << graph.name() << '\n';
  for (const sdf::ActorId a : graph.actor_ids()) {
    os << "actor " << graph.actor(a).name << ' '
       << graph.actor(a).execution_time << '\n';
  }
  for (const sdf::ChannelId c : graph.channel_ids()) {
    const sdf::Channel& ch = graph.channel(c);
    os << "channel " << ch.name << ' ' << graph.actor(ch.src).name << ' '
       << ch.production << ' ' << graph.actor(ch.dst).name << ' '
       << ch.consumption;
    if (ch.initial_tokens != 0) os << " tokens " << ch.initial_tokens;
    os << '\n';
  }
  return os.str();
}

sdf::Graph load_dsl_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_dsl(buffer.str());
}

}  // namespace buffy::io
