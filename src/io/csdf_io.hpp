// Serialisation for CSDF graphs.
//
// Two formats, mirroring the SDF ones:
//  * SDF3-style XML with type="csdf": rates and execution times are
//    comma-separated per-phase lists ("1,0,2");
//  * the compact text DSL with per-phase lists:
//        graph distributor
//        actor a 1,2
//        channel ab a 1,0 b 1
#pragma once

#include <string>

#include "csdf/graph.hpp"

namespace buffy::io {

/// Parses a csdf3 XML document; throws ParseError / GraphError.
[[nodiscard]] csdf::Graph read_csdf_xml(const std::string& xml_text);

/// Serialises; read_csdf_xml(write_csdf_xml(g)) round-trips.
[[nodiscard]] std::string write_csdf_xml(const csdf::Graph& graph);

/// Parses the text DSL; throws ParseError with line numbers.
[[nodiscard]] csdf::Graph read_csdf_dsl(const std::string& text);

/// Serialises; read_csdf_dsl(write_csdf_dsl(g)) round-trips.
[[nodiscard]] std::string write_csdf_dsl(const csdf::Graph& graph);

/// Reads a file from disk, dispatching on the ".xml" extension.
[[nodiscard]] csdf::Graph load_csdf_file(const std::string& path);

}  // namespace buffy::io
