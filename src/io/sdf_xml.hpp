// SDF3-compatible XML graph format (the paper's tool input, Sec. 10).
//
// Layout:
//
//   <sdf3 type="sdf" version="1.0">
//     <applicationGraph name="example">
//       <sdf name="example" type="example">
//         <actor name="a" type="a">
//           <port name="out0" type="out" rate="2"/>
//         </actor>
//         <channel name="alpha" srcActor="a" srcPort="out0"
//                  dstActor="b" dstPort="in0" initialTokens="0"/>
//       </sdf>
//       <sdfProperties>
//         <actorProperties actor="a">
//           <processor type="default" default="true">
//             <executionTime time="1"/>
//           </processor>
//         </actorProperties>
//       </sdfProperties>
//     </applicationGraph>
//   </sdf3>
#pragma once

#include <string>

#include "sdf/graph.hpp"

namespace buffy::io {

/// Parses an sdf3 XML document; throws ParseError / GraphError.
[[nodiscard]] sdf::Graph read_sdf_xml(const std::string& xml_text);

/// Reads a file from disk; throws Error when the file cannot be opened.
[[nodiscard]] sdf::Graph load_sdf_xml_file(const std::string& path);

/// Serialises a graph; read_sdf_xml(write_sdf_xml(g)) round-trips.
[[nodiscard]] std::string write_sdf_xml(const sdf::Graph& graph);

/// Writes to a file; throws Error on IO failure.
void save_sdf_xml_file(const sdf::Graph& graph, const std::string& path);

}  // namespace buffy::io
