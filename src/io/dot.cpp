#include "io/dot.hpp"

#include <sstream>

namespace buffy::io {

namespace {

std::string dot_impl(const sdf::Graph& graph,
                     const buffer::StorageDistribution* dist) {
  std::ostringstream os;
  os << "digraph \"" << graph.name() << "\" {\n";
  os << "  rankdir=LR;\n  node [shape=circle];\n";
  for (const sdf::ActorId a : graph.actor_ids()) {
    const sdf::Actor& actor = graph.actor(a);
    os << "  \"" << actor.name << "\" [label=\"" << actor.name << "\\n"
       << actor.execution_time << "\"];\n";
  }
  for (const sdf::ChannelId c : graph.channel_ids()) {
    const sdf::Channel& ch = graph.channel(c);
    os << "  \"" << graph.actor(ch.src).name << "\" -> \""
       << graph.actor(ch.dst).name << "\" [label=\"" << ch.name << "\\n"
       << ch.production << " : " << ch.consumption;
    if (ch.initial_tokens != 0) os << "\\ntokens=" << ch.initial_tokens;
    if (dist != nullptr) os << "\\ncap=" << (*dist)[c];
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace

std::string write_dot(const sdf::Graph& graph) {
  return dot_impl(graph, nullptr);
}

std::string write_dot(const sdf::Graph& graph,
                      const buffer::StorageDistribution& dist) {
  return dot_impl(graph, &dist);
}

}  // namespace buffy::io
