#include "io/statespace_dot.hpp"

#include <sstream>

#include "base/diagnostics.hpp"
#include "state/engine.hpp"
#include "state/throughput.hpp"

namespace buffy::io {

namespace {

std::string state_label(const state::Engine& engine) {
  std::ostringstream os;
  os << '(';
  for (const sdf::ActorId a : engine.graph().actor_ids()) {
    os << engine.clock(a) << ',';
  }
  os << " | ";
  bool first = true;
  for (const sdf::ChannelId c : engine.graph().channel_ids()) {
    if (!first) os << ',';
    first = false;
    os << engine.tokens(c);
  }
  os << ')';
  return os.str();
}

}  // namespace

std::string statespace_dot(const sdf::Graph& graph,
                           const buffer::StorageDistribution& distribution,
                           sdf::ActorId target, u64 max_steps) {
  const state::Capacities caps =
      state::Capacities::bounded(distribution.capacities());
  const auto run = state::compute_throughput(
      graph, caps,
      state::ThroughputOptions{.target = target, .max_steps = max_steps});
  const i64 end_time =
      run.deadlocked ? run.time_steps : run.cycle_start_time + run.period;
  BUFFY_REQUIRE(end_time <= 100'000,
                "state space too large to render as DOT");

  std::ostringstream os;
  os << "digraph \"" << graph.name() << "_states\" {\n"
     << "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  state::Engine engine(graph, caps);
  engine.reset();
  i64 cycle_entry_node = -1;
  for (i64 t = 0;; ++t) {
    const bool on_cycle = !run.deadlocked && engine.now() >= run.cycle_start_time;
    if (on_cycle && cycle_entry_node < 0) cycle_entry_node = t;
    os << "  s" << t << " [label=\"t=" << engine.now() << "\\n"
       << state_label(engine) << '"';
    if (on_cycle) os << ", style=filled, fillcolor=lightgrey";
    os << "];\n";
    if (t > 0) os << "  s" << t - 1 << " -> s" << t << ";\n";
    if (engine.now() >= end_time || engine.deadlocked()) break;
    engine.step();
  }
  if (run.deadlocked) {
    // Deadlock is a self-loop in the state space (Sec. 6).
    os << "  s" << engine.now() << " -> s" << engine.now()
       << " [label=\"deadlock\"];\n";
  } else {
    BUFFY_ASSERT(cycle_entry_node >= 0, "cycle without an entry state");
    os << "  s" << end_time << " -> s" << cycle_entry_node
       << " [label=\"period " << run.period << "\", constraint=false];\n";
  }
  os << "}\n";
  return os.str();
}

std::string reduced_statespace_dot(
    const sdf::Graph& graph, const buffer::StorageDistribution& distribution,
    sdf::ActorId target, u64 max_steps) {
  state::ThroughputOptions opts{.target = target, .max_steps = max_steps};
  opts.collect_reduced_states = true;
  const auto run = state::compute_throughput(
      graph, state::Capacities::bounded(distribution.capacities()), opts);

  std::ostringstream os;
  os << "digraph \"" << graph.name() << "_reduced\" {\n"
     << "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  std::size_t first_on_cycle = run.reduced_states.size();
  for (std::size_t i = 0; i < run.reduced_states.size(); ++i) {
    const state::ReducedState& s = run.reduced_states[i];
    os << "  r" << i << " [label=\"(";
    for (std::size_t a = 0; a < s.timed.num_actors(); ++a) {
      os << s.timed.clock(a) << ',';
    }
    for (std::size_t c = 0; c < s.timed.num_channels(); ++c) {
      os << s.timed.tokens(c) << ',';
    }
    os << "d=" << s.dist << ")\"";
    if (s.on_cycle) {
      os << ", style=filled, fillcolor=lightgrey";
      first_on_cycle = std::min(first_on_cycle, i);
    }
    os << "];\n";
    if (i > 0) os << "  r" << i - 1 << " -> r" << i << ";\n";
  }
  if (!run.deadlocked && first_on_cycle < run.reduced_states.size()) {
    os << "  r" << run.reduced_states.size() - 1 << " -> r" << first_on_cycle
       << " [constraint=false];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace buffy::io
