// The benchmark graphs of the paper's experimental section (Sec. 11).
//
// The Fig. 1 and Fig. 6 graphs are taken verbatim from the paper. The three
// [BML99] graphs (sample-rate converter, modem, satellite receiver) and the
// H.263 decoder are reconstructions with the published structural sizes
// (see DESIGN.md, "Substitutions"): the scanned paper does not contain their
// full topologies, so rates/execution times follow the published
// descriptions of the same applications.
#pragma once

#include "sdf/graph.hpp"

namespace buffy::models {

/// Fig. 1: a -2-> alpha -3-> b -1-> beta -2-> c, execution times 1/2/2.
/// Ground truth from the paper: gamma=(4,2) gives throughput(c)=1/7,
/// gamma=(6,2) gives 1/6, the maximal throughput 1/4 needs size 10, and the
/// per-channel lower bounds are (4,2).
[[nodiscard]] sdf::Graph paper_example();

/// Fig. 6: a split-join diamond with four channels alpha..delta where the
/// storage distributions (1,2,3,3) and (2,1,3,3) realise the same
/// throughput for actor d (minimal distributions are not unique).
[[nodiscard]] sdf::Graph fig6_diamond();

/// CD (44.1 kHz) to DAT (48 kHz) sample-rate converter: 6 actors, 5
/// channels, rates (1,1)(2,3)(2,7)(8,7)(5,1), repetition vector
/// (147,147,98,28,32,160).
[[nodiscard]] sdf::Graph samplerate_converter();

/// Modem: 16 actors, 19 channels, three feedback loops (equalizer, decoder
/// sync, AGC) and a 2:1 decimation stage.
[[nodiscard]] sdf::Graph modem();

/// Satellite receiver: 22 actors, 26 channels; two parallel branches with
/// 4:1 and 2:1 decimation stages, carrier-recovery feedback per branch and
/// a global rate-control loop.
[[nodiscard]] sdf::Graph satellite_receiver();

/// H.263 decoder (QCIF): vld -594:1-> iq -> idct -1:594-> mc; repetition
/// vector (1,594,594,1). Execution times are the published cycle counts of
/// the original model. The 594 blocks per frame (QCIF) keep the default
/// benches fast; see bench/quantization for the role of the dense Pareto
/// front.
[[nodiscard]] sdf::Graph h263_decoder();

/// MP3 decoder (extended set): Huffman decoding followed by two parallel
/// per-channel chains (requantisation .. subband synthesis) merging into
/// the output — 15 actors, 16 channels, single-rate with a stereo join.
/// Reconstruction in the style of the SDF3 example suite.
[[nodiscard]] sdf::Graph mp3_decoder();

/// MPEG-4 Simple Profile decoder (extended set): frame detector, VLD, IDCT
/// per macroblock (99 for QCIF), reconstruction and motion compensation
/// with a frame feedback loop — 5 actors, 6 channels.
[[nodiscard]] sdf::Graph mpeg4_sp_decoder();

/// The actor whose throughput the paper reports for each model (the sink).
[[nodiscard]] sdf::ActorId reported_actor(const sdf::Graph& graph);

/// All benchmark models of Table 2, in the paper's order.
struct NamedModel {
  const char* display_name;
  sdf::Graph graph;
};
[[nodiscard]] std::vector<NamedModel> table2_models();

/// The extended application set (beyond the paper's Table 2).
[[nodiscard]] std::vector<NamedModel> extended_models();

}  // namespace buffy::models
