#include "models/models.hpp"

#include "base/diagnostics.hpp"
#include "sdf/builder.hpp"

namespace buffy::models {

sdf::Graph paper_example() {
  sdf::GraphBuilder b("example");
  const auto a = b.actor("a", 1);
  const auto bb = b.actor("b", 2);
  const auto c = b.actor("c", 2);
  b.channel("alpha", a, 2, bb, 3);
  b.channel("beta", bb, 1, c, 2);
  return b.build();
}

sdf::Graph fig6_diamond() {
  sdf::GraphBuilder b("fig6");
  const auto a = b.actor("a", 1);
  const auto bb = b.actor("b", 1);
  const auto c = b.actor("c", 1);
  const auto d = b.actor("d", 1);
  b.channel("alpha", a, 1, bb, 1);
  b.channel("beta", a, 1, c, 1);
  b.channel("gamma", bb, 1, d, 1);
  b.channel("delta", c, 1, d, 1);
  return b.build();
}

sdf::Graph samplerate_converter() {
  sdf::GraphBuilder b("samplerate");
  const auto a = b.actor("cd", 1);
  const auto bb = b.actor("fir1", 2);
  const auto c = b.actor("up23", 2);
  const auto d = b.actor("up27", 2);
  const auto e = b.actor("fir2", 2);
  const auto f = b.actor("dat", 1);
  b.channel("c1", a, 1, bb, 1);
  b.channel("c2", bb, 2, c, 3);
  b.channel("c3", c, 2, d, 7);
  b.channel("c4", d, 8, e, 7);
  b.channel("c5", e, 5, f, 1);
  return b.build();
}

sdf::Graph modem() {
  sdf::GraphBuilder b("modem");
  const auto in = b.actor("in", 1);
  const auto filt1 = b.actor("filt1", 2);
  const auto filt2 = b.actor("filt2", 2);
  const auto hilbert = b.actor("hilbert", 3);
  const auto deci = b.actor("deci", 1);
  const auto demod = b.actor("demod", 2);
  const auto eq = b.actor("eq", 3);
  const auto eqfb = b.actor("eqfb", 1);
  const auto deriv = b.actor("deriv", 1);
  const auto clockrec = b.actor("clockrec", 2);
  const auto slicer = b.actor("slicer", 1);
  const auto descr = b.actor("descr", 1);
  const auto decoder = b.actor("decoder", 2);
  const auto sync = b.actor("sync", 1);
  const auto out = b.actor("out", 1);
  const auto agc = b.actor("agc", 1);

  b.channel("c01", in, 1, filt1, 1);
  b.channel("c02", filt1, 1, filt2, 1);
  b.channel("c03", filt2, 1, hilbert, 1);
  b.channel("c04", hilbert, 1, deci, 2);  // 2:1 decimation
  b.channel("c05", deci, 1, demod, 1);
  b.channel("c06", demod, 1, eq, 1);
  b.channel("c07", eq, 1, eqfb, 1);
  b.channel("c08", eqfb, 1, eq, 1, /*initial_tokens=*/1);  // equalizer loop
  b.channel("c09", eq, 1, deriv, 1);
  b.channel("c10", deriv, 1, clockrec, 1);
  b.channel("c11", clockrec, 1, slicer, 1);
  b.channel("c12", slicer, 1, descr, 1);
  b.channel("c13", descr, 1, decoder, 1);
  b.channel("c14", decoder, 1, sync, 1);
  b.channel("c15", sync, 1, decoder, 1, /*initial_tokens=*/1);  // sync loop
  b.channel("c16", decoder, 1, out, 1);
  b.channel("c17", demod, 1, agc, 1);
  b.channel("c18", agc, 2, filt1, 1, /*initial_tokens=*/2);  // AGC loop
  b.channel("c19", slicer, 1, clockrec, 1, /*initial_tokens=*/1);  // timing
  return b.build();
}

sdf::Graph satellite_receiver() {
  sdf::GraphBuilder b("satellite");
  const auto src = b.actor("src", 1);
  const auto ctrl = b.actor("ctrl", 1);
  const auto mux = b.actor("mux", 1);
  const auto snk = b.actor("sink", 1);

  struct Branch {
    sdf::ActorId filt1, filt2, filt3, dec1, dec2, demod, cr, mf, det;
  };
  auto make_branch = [&](const std::string& prefix) {
    Branch br;
    br.filt1 = b.actor(prefix + "_filt1", 1);
    br.filt2 = b.actor(prefix + "_filt2", 2);
    br.filt3 = b.actor(prefix + "_filt3", 2);
    br.dec1 = b.actor(prefix + "_dec1", 1);
    br.dec2 = b.actor(prefix + "_dec2", 1);
    br.demod = b.actor(prefix + "_demod", 3);
    br.cr = b.actor(prefix + "_cr", 1);
    br.mf = b.actor(prefix + "_mf", 2);
    br.det = b.actor(prefix + "_det", 1);
    return br;
  };
  const Branch a = make_branch("a");
  const Branch q = make_branch("q");

  // 22 actors total: 4 shared + 2 * 9 branch actors.
  auto wire_branch = [&](const std::string& prefix, const Branch& br) {
    b.channel(prefix + "_c1", src, 4, br.filt1, 1);
    b.channel(prefix + "_c2", br.filt1, 1, br.filt2, 1);
    b.channel(prefix + "_c3", br.filt2, 1, br.filt3, 1);
    b.channel(prefix + "_c4", br.filt3, 1, br.dec1, 4);  // 4:1 decimation
    b.channel(prefix + "_c5", br.dec1, 1, br.dec2, 2);   // 2:1 decimation
    b.channel(prefix + "_c6", br.dec2, 1, br.demod, 1);
    b.channel(prefix + "_c7", br.demod, 1, br.cr, 1);
    b.channel(prefix + "_c8", br.cr, 1, br.demod, 1, /*initial_tokens=*/1);
    b.channel(prefix + "_c9", br.demod, 1, br.mf, 1);
    b.channel(prefix + "_c10", br.mf, 1, br.det, 1);
  };
  wire_branch("a", a);
  wire_branch("q", q);

  // 26 channels total: 2 * 10 branch channels + the 6 shared ones below.
  b.channel("m1", a.det, 1, mux, 1);
  b.channel("m2", q.det, 1, mux, 1);
  b.channel("m3", mux, 2, snk, 1);
  b.channel("m4", snk, 1, ctrl, 2);
  b.channel("m5", ctrl, 2, src, 1, /*initial_tokens=*/4);  // rate control
  b.channel("m6", mux, 1, ctrl, 1);
  return b.build();
}

sdf::Graph h263_decoder() {
  sdf::GraphBuilder b("h263");
  const auto vld = b.actor("vld", 26018);
  const auto iq = b.actor("iq", 559);
  const auto idct = b.actor("idct", 486);
  const auto mc = b.actor("mc", 10958);
  b.channel("d1", vld, 594, iq, 1);
  b.channel("d2", iq, 1, idct, 1);
  b.channel("d3", idct, 1, mc, 594);
  return b.build();
}

sdf::Graph mp3_decoder() {
  sdf::GraphBuilder b("mp3");
  const auto huff = b.actor("huff", 120);
  struct Chain {
    sdf::ActorId req, reorder, antialias, hybrid, freqinv, subband;
  };
  auto make_chain = [&](const std::string& prefix) {
    Chain ch;
    ch.req = b.actor(prefix + "_req", 60);
    ch.reorder = b.actor(prefix + "_reorder", 40);
    ch.antialias = b.actor(prefix + "_antialias", 30);
    ch.hybrid = b.actor(prefix + "_hybrid", 80);
    ch.freqinv = b.actor(prefix + "_freqinv", 20);
    ch.subband = b.actor(prefix + "_subband", 150);
    return ch;
  };
  const Chain left = make_chain("l");
  const Chain right = make_chain("r");
  const auto stereo = b.actor("stereo", 35);
  const auto out = b.actor("out", 10);

  auto wire_chain = [&](const std::string& prefix, const Chain& ch) {
    b.channel(prefix + "_c1", huff, 1, ch.req, 1);
    b.channel(prefix + "_c2", ch.req, 1, ch.reorder, 1);
    b.channel(prefix + "_c3", ch.reorder, 1, stereo, 1);
    b.channel(prefix + "_c4", stereo, 1, ch.antialias, 1);
    b.channel(prefix + "_c5", ch.antialias, 1, ch.hybrid, 1);
    b.channel(prefix + "_c6", ch.hybrid, 1, ch.freqinv, 1);
    b.channel(prefix + "_c7", ch.freqinv, 1, ch.subband, 1);
    b.channel(prefix + "_c8", ch.subband, 1, out, 1);
  };
  wire_chain("l", left);
  wire_chain("r", right);
  return b.build();
}

sdf::Graph mpeg4_sp_decoder() {
  sdf::GraphBuilder b("mpeg4sp");
  const auto fd = b.actor("fd", 55);
  const auto vld = b.actor("vld", 120);
  const auto idct = b.actor("idct", 320);
  const auto rc = b.actor("rc", 1024);
  const auto mc = b.actor("mc", 390);
  b.channel("e1", fd, 99, vld, 1);    // one frame = 99 macroblocks (QCIF)
  b.channel("e2", vld, 1, idct, 1);
  b.channel("e3", idct, 1, rc, 99);
  b.channel("e4", fd, 1, mc, 1);
  b.channel("e5", mc, 1, rc, 1);
  b.channel("e6", rc, 1, fd, 1, /*initial_tokens=*/1);  // frame feedback
  return b.build();
}

sdf::ActorId reported_actor(const sdf::Graph& graph) {
  // The paper measures the throughput of the sink of each graph; for the
  // Fig. 1 example this is actor c (Sec. 5).
  static const char* kSinks[] = {"c",    "d",  "dat", "out",
                                 "sink", "rc", "mc"};
  for (const char* name : kSinks) {
    if (const auto id = graph.find_actor(name)) return *id;
  }
  BUFFY_REQUIRE(graph.num_actors() > 0, "empty graph has no reported actor");
  return sdf::ActorId(graph.num_actors() - 1);
}

std::vector<NamedModel> extended_models() {
  std::vector<NamedModel> models;
  models.push_back(NamedModel{"MP3 decoder", mp3_decoder()});
  models.push_back(NamedModel{"MPEG-4 SP", mpeg4_sp_decoder()});
  return models;
}

std::vector<NamedModel> table2_models() {
  std::vector<NamedModel> models;
  models.push_back(NamedModel{"example", paper_example()});
  models.push_back(NamedModel{"sample-rate", samplerate_converter()});
  models.push_back(NamedModel{"modem", modem()});
  models.push_back(NamedModel{"satellite", satellite_receiver()});
  models.push_back(NamedModel{"H.263 decoder", h263_decoder()});
  return models;
}

}  // namespace buffy::models
