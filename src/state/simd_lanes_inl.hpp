// Width-generic lane-step body (DESIGN.md §15), the reference semantics
// behind the SWAR backends.
//
// The body is the reference semantics of one lockstep time step written
// once over the lane word type T: i64 for the full-range kernel, i32 for
// the narrow kernel (entered only under the kNarrowLimit gate, which
// makes every sum exact at half width). Each instantiation compiles to
// straight-line mask arithmetic over contiguous rows that the compiler
// auto-vectorizes for the translation unit's target ISA; the stride
// dispatcher below re-instantiates it with the batch width as a compile
// time constant so the row loops fully unroll. simd_swar.cpp builds both
// lane words from this body; simd_avx2.cpp hand-writes its two kernels
// with intrinsics and keeps this body only as the semantic reference the
// differential tests pin it against.
//
// Two rows deliberately stay i64 at either width: `now` and `last_block`
// hold absolute instants that grow with the run length, not with graph
// magnitudes, so the narrow gate cannot bound them. Their updates widen
// the lane masks on the fly; both touch memory only on the rare
// completion/blocked edges of a step.
#pragma once

#include <algorithm>

#include "state/simd_kernel.hpp"

namespace buffy::state::lanes_inl {

// Internal linkage on purpose: every including translation unit must get
// its *own* instantiation, compiled at that TU's target ISA. With normal
// (COMDAT) template linkage the linker would merge the baseline and the
// -mavx2 instantiations and keep an arbitrary one — either pessimising
// the AVX2 backend or, worse, leaking AVX2 instructions into the
// baseline path that runs before the CPU gate.
namespace {

/// Whole-word boolean: -1 when the predicate holds, 0 otherwise.
template <typename T>
inline T mask_of(bool b) {
  return -static_cast<T>(b);
}

/// One lockstep step. FixedS == 0 reads the stride from the view at run
/// time; a non-zero FixedS bakes it in, letting the compiler fully unroll
/// every row loop (the per-loop setup otherwise dominates at small
/// strides). Dispatchers below pick the fixed variant for the strides the
/// lane-width policy actually produces.
template <typename T, std::size_t FixedS = 0>
LaneStepResult lane_step_generic(const LaneKernelViewT<T>& v) {
  constexpr T kNever = lane_never_of<T>;
  const std::size_t S = FixedS != 0 ? FixedS : v.stride;
  T* __restrict const cm = v.scratch;          // completion mask of the current actor
  T* __restrict const tok = v.scratch + S;     // token-feasible mask (start phase)
  T* __restrict const en = v.scratch + 2 * S;  // enabled mask (start phase)
  T* __restrict const acc = v.scratch + 3 * S;  // next-completion min-fold

  for (std::size_t l = 0; l < S; ++l) {
    v.now[l] += v.delta[l];
    acc[l] = kNever;
  }

  u64 target_bits = 0;

  // Completion phase: running clocks drop by the lane delta; firings
  // reaching zero consume their inputs (releasing that space) and turn
  // their claimed output space into tokens. Clocks still positive after
  // the drop fold into the next-completion accumulator. Parked lanes have
  // delta == 0 and never produce a completion mask, so their rows only
  // ever see no-op updates.
  for (std::size_t a = 0; a < v.num_actors; ++a) {
    T* __restrict const row = v.clocks + a * S;
    T any = 0;
    for (std::size_t l = 0; l < S; ++l) {
      const T c = row[l];
      const T running = mask_of<T>(c != 0);
      const T completed = running & mask_of<T>(c == v.delta[l]);
      const T left = c - (v.delta[l] & running);
      row[l] = left;
      cm[l] = completed;
      any |= completed;
      acc[l] = std::min(acc[l],
                        static_cast<T>(left | (mask_of<T>(left == 0) & kNever)));
    }
    if (a == v.target) {
      for (std::size_t l = 0; l < S; ++l) {
        target_bits |= (static_cast<u64>(cm[l]) & u64{1}) << l;
      }
    }
    if (any == 0) continue;
    for (std::size_t p = v.in_begin[a]; p < v.in_begin[a + 1]; ++p) {
      const LanePort& port = v.in_ports[p];
      const T rate = static_cast<T>(port.rate);
      T* __restrict const tk = v.tokens + port.channel * S;
      T* __restrict const oc = v.occupied + port.channel * S;
      for (std::size_t l = 0; l < S; ++l) {
        const T d = rate & cm[l];
        tk[l] -= d;
        oc[l] -= d;
      }
    }
    for (std::size_t p = v.out_begin[a]; p < v.out_begin[a + 1]; ++p) {
      const LanePort& port = v.out_ports[p];
      const T rate = static_cast<T>(port.rate);
      T* __restrict const tk = v.tokens + port.channel * S;
      for (std::size_t l = 0; l < S; ++l) {
        tk[l] += rate & cm[l];  // occupancy unchanged: claim -> data
      }
    }
  }

  // Start phase, one pass in actor order (a start claims space but never
  // adds tokens or frees space, so no start can enable another within the
  // instant — the scalar engine's argument, lane-widened). Space-blocked
  // instants are recorded against the channel whenever the token checks
  // pass but a space check fails, mirroring Engine::can_start_tracked.
  for (std::size_t a = 0; a < v.num_actors; ++a) {
    T* __restrict const row = v.clocks + a * S;
    const T et = static_cast<T>(v.exec_time[a]);
    T any = 0;
    for (std::size_t l = 0; l < S; ++l) {
      tok[l] = v.live[l] & mask_of<T>(row[l] == 0);
      any |= tok[l];
    }
    if (any == 0) continue;  // actor busy (or lane parked) everywhere
    for (std::size_t p = v.in_begin[a]; p < v.in_begin[a + 1]; ++p) {
      const LanePort& port = v.in_ports[p];
      const T rate = static_cast<T>(port.rate);
      const T* __restrict const tk = v.tokens + port.channel * S;
      for (std::size_t l = 0; l < S; ++l) {
        tok[l] &= mask_of<T>(tk[l] >= rate);
      }
    }
    for (std::size_t l = 0; l < S; ++l) en[l] = tok[l];
    for (std::size_t p = v.out_begin[a]; p < v.out_begin[a + 1]; ++p) {
      const LanePort& port = v.out_ports[p];
      const T rate = static_cast<T>(port.rate);
      const T* __restrict const oc = v.occupied + port.channel * S;
      const T* __restrict const cp = v.caps + port.channel * S;
      if (v.last_block != nullptr) {
        i64* __restrict const lb = v.last_block + port.channel * S;
        for (std::size_t l = 0; l < S; ++l) {
          const T fail = tok[l] & mask_of<T>(oc[l] + rate > cp[l]);
          en[l] &= ~fail;
          lb[l] ^= (lb[l] ^ v.now[l]) & static_cast<i64>(fail);
        }
      } else {
        for (std::size_t l = 0; l < S; ++l) {
          en[l] &= mask_of<T>(oc[l] + rate <= cp[l]);
        }
      }
    }
    any = 0;
    for (std::size_t l = 0; l < S; ++l) any |= en[l];
    if (any == 0) continue;
    for (std::size_t l = 0; l < S; ++l) {
      row[l] |= et & en[l];  // row is 0 wherever en is set
      acc[l] = std::min(acc[l],
                        static_cast<T>((et & en[l]) | (~en[l] & kNever)));
    }
    for (std::size_t p = v.out_begin[a]; p < v.out_begin[a + 1]; ++p) {
      const LanePort& port = v.out_ports[p];
      const T rate = static_cast<T>(port.rate);
      T* __restrict const oc = v.occupied + port.channel * S;
      for (std::size_t l = 0; l < S; ++l) {
        oc[l] += rate & en[l];
      }
    }
  }

  // Next-completion fold: a live lane with no positive clock left can
  // never change state again — deadlock, reported for the driver to
  // retire. Its delta parks at 0 so further steps are no-ops even if the
  // driver keeps it around for a step.
  u64 dead_bits = 0;
  for (std::size_t l = 0; l < S; ++l) {
    const T next = acc[l] & mask_of<T>(acc[l] != kNever) & v.live[l];
    v.delta[l] = next;
    dead_bits |=
        (static_cast<u64>(v.live[l] & mask_of<T>(next == 0)) & u64{1}) << l;
  }
  return LaneStepResult{target_bits, dead_bits};
}

/// Stride dispatcher: the lane-width policy only ever produces strides
/// that are multiples of 8 in [8, 64] (resolve_lanes rounds up), so each
/// gets a fully unrolled instantiation; anything else falls back to the
/// run-time-stride body.
template <typename T>
LaneStepResult lane_step_dispatch(const LaneKernelViewT<T>& v) {
  switch (v.stride) {
    case 8:
      return lane_step_generic<T, 8>(v);
    case 16:
      return lane_step_generic<T, 16>(v);
    case 24:
      return lane_step_generic<T, 24>(v);
    case 32:
      return lane_step_generic<T, 32>(v);
    case 40:
      return lane_step_generic<T, 40>(v);
    case 48:
      return lane_step_generic<T, 48>(v);
    case 56:
      return lane_step_generic<T, 56>(v);
    case 64:
      return lane_step_generic<T, 64>(v);
    default:
      return lane_step_generic<T>(v);
  }
}

}  // namespace

}  // namespace buffy::state::lanes_inl
