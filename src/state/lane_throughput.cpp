#include "state/lane_throughput.hpp"

#include <bit>
#include <string>
#include <type_traits>

#include "base/audit.hpp"
#include "base/diagnostics.hpp"
#include "trace/trace.hpp"

namespace buffy::state {

LaneThroughputSolver::LaneThroughputSolver(
    const sdf::Graph& graph, std::size_t lanes, SimdBackend backend,
    const analysis::BoundsCertificate* certificate)
    : graph_(graph), lanes_(lanes), backend_(backend),
      certificate_(certificate) {
  BUFFY_REQUIRE(lanes >= kMinLanes && lanes <= kMaxLanes,
                "lane count must be in [1, 64]");
  BUFFY_REQUIRE(
      backend == SimdBackend::Swar || backend == SimdBackend::Avx2,
      "LaneThroughputSolver needs a lane backend (swar or avx2); the scalar "
      "path is ThroughputSolver");
  BUFFY_REQUIRE(backend_available(backend),
                "requested lane backend is not available on this host");
  if (backend == SimdBackend::Avx2) {
    step64_ = &lane_step_avx2;
    step32_ = &lane_step_avx2_32;
  } else {
    step64_ = &lane_step_swar;
    step32_ = &lane_step_swar32;
  }
  // The widest vector path consumes 8 narrow lanes per vector; round the
  // row stride up to 8 so every backend runs whole vectors with the
  // padding lanes permanently parked.
  stride_ = (lanes + 7) / 8 * 8;

  const std::size_t n = graph.num_actors();
  const std::size_t m = graph.num_channels();
  exec_time_.resize(n);
  initial_tokens_.resize(m);
  for (const sdf::ChannelId c : graph.channel_ids()) {
    initial_tokens_[c.index()] = graph.channel(c).initial_tokens;
  }
  in_begin_.assign(n + 1, 0);
  out_begin_.assign(n + 1, 0);
  for (const sdf::ActorId a : graph.actor_ids()) {
    exec_time_[a.index()] = graph.actor(a).execution_time;
    in_begin_[a.index()] = in_ports_.size();
    for (const sdf::ChannelId c : graph.in_channels(a)) {
      in_ports_.push_back(LanePort{c.index(), graph.channel(c).consumption});
    }
    out_begin_[a.index()] = out_ports_.size();
    for (const sdf::ChannelId c : graph.out_channels(a)) {
      out_ports_.push_back(LanePort{c.index(), graph.channel(c).production});
    }
  }
  in_begin_[n] = in_ports_.size();
  out_begin_[n] = out_ports_.size();

  // Narrow (i32) eligibility of the graph itself: every execution time,
  // rate and initial-token count must fit the kNarrowLimit envelope. The
  // per-batch candidate capacities are checked in compute_batch; a batch
  // that fits runs at twice the lanes per vector, one that does not falls
  // back to the full-range tables — same results either way.
  narrow_ok_ = true;
  for (const i64 e : exec_time_) narrow_ok_ = narrow_ok_ && e <= kNarrowLimit;
  for (const i64 t : initial_tokens_) {
    narrow_ok_ = narrow_ok_ && t <= kNarrowLimit;
  }
  for (const LanePort& p : in_ports_) {
    narrow_ok_ = narrow_ok_ && p.rate <= kNarrowLimit;
  }
  for (const LanePort& p : out_ports_) {
    narrow_ok_ = narrow_ok_ && p.rate <= kNarrowLimit;
  }

  // Static narrow selection (DESIGN.md §16): the certificate's single
  // magnitude bound covers execution times, rates, initial tokens *and*
  // the storage budget the engine will explore within, so comparing it
  // against kNarrowLimit once proves the narrow kernel for every batch
  // the caller flags within_certificate — no per-batch capacity scan.
  // The graph-magnitude scan above must agree (the certificate bound
  // dominates it); requiring both keeps the narrow tables' allocation
  // tied to one flag.
  static_narrow_ = narrow_ok_ && certificate_ != nullptr &&
                   certificate_->matches(graph) && certificate_->consistent &&
                   certificate_->fits_i64 &&
                   certificate_->magnitude_bound <= kNarrowLimit;

  const auto assign_tables = [&](auto& t) {
    using T = typename std::decay_t<decltype(t.clocks)>::value_type;
    t.clocks.assign(n * stride_, 0);
    t.tokens.assign(m * stride_, 0);
    t.occupied.assign(m * stride_, 0);
    t.caps.assign(m * stride_, lane_never_of<T>);
    t.live.assign(stride_, 0);
    t.delta.assign(stride_, 0);
    t.scratch.assign(4 * stride_, 0);
  };
  assign_tables(wide_);
  if (narrow_ok_) assign_tables(narrow_);
  last_block_.assign(m * stride_, -1);
  now_.assign(stride_, 0);
  firings_.assign(stride_, 0);
  last_completion_.assign(stride_, 0);
  steps_.assign(stride_, 0);
  candidate_.assign(stride_, 0);
  tables_.resize(lanes_);
}

template <typename T>
void LaneThroughputSolver::init_lane(LaneTables<T>& t, std::size_t l,
                                     std::span<const i64> caps,
                                     bool track_deps) {
  const std::size_t n = graph_.num_actors();
  const std::size_t m = graph_.num_channels();
  BUFFY_REQUIRE(caps.size() == m,
                "candidate capacities must cover every channel");
  for (std::size_t a = 0; a < n; ++a) t.clocks[a * stride_ + l] = 0;
  for (std::size_t c = 0; c < m; ++c) {
    const i64 cap = caps[c];
    BUFFY_REQUIRE(cap >= 0, "lane candidates must be bounded");
    if (initial_tokens_[c] > cap) {
      throw GraphError("channel '" + graph_.channel(sdf::ChannelId(c)).name +
                       "' has more initial tokens than its capacity");
    }
    t.tokens[c * stride_ + l] = static_cast<T>(initial_tokens_[c]);
    t.occupied[c * stride_ + l] = static_cast<T>(initial_tokens_[c]);
    t.caps[c * stride_ + l] = static_cast<T>(cap);
    last_block_[c * stride_ + l] = -1;
  }
  now_[l] = 0;
  firings_[l] = 0;
  last_completion_[l] = 0;
  steps_[l] = 0;
  tables_[l].reset(n + m + 1);
  if (trace::enabled()) {
    i64 size = 0;
    for (const i64 cap : caps) size += cap;
    trace::emit_instant(trace::EventKind::EngineReset, size);
  }

  // Time-0 start phase — the lane-column mirror of Engine::reset's
  // start_phase, including the space-block recording order of
  // can_start_tracked (token checks veto silently; every failing space
  // check is recorded).
  i64 next_completion = kLaneNever;
  for (std::size_t a = 0; a < n; ++a) {
    bool tokens_ok = true;
    for (std::size_t p = in_begin_[a]; p < in_begin_[a + 1]; ++p) {
      if (t.tokens[in_ports_[p].channel * stride_ + l] < in_ports_[p].rate) {
        tokens_ok = false;
        break;
      }
    }
    if (!tokens_ok) continue;
    bool space_ok = true;
    for (std::size_t p = out_begin_[a]; p < out_begin_[a + 1]; ++p) {
      const LanePort& port = out_ports_[p];
      if (t.occupied[port.channel * stride_ + l] + port.rate >
          t.caps[port.channel * stride_ + l]) {
        space_ok = false;
        if (!track_deps) break;
        last_block_[port.channel * stride_ + l] = 0;
      }
    }
    if (!space_ok) continue;
    t.clocks[a * stride_ + l] = static_cast<T>(exec_time_[a]);
    next_completion = std::min(next_completion, exec_time_[a]);
    for (std::size_t p = out_begin_[a]; p < out_begin_[a + 1]; ++p) {
      t.occupied[out_ports_[p].channel * stride_ + l] +=
          static_cast<T>(out_ports_[p].rate);
    }
  }
  // A zero execution time folds to delta 0 exactly like the scalar
  // engine's next_completion_, which declares such a start dead on
  // arrival.
  t.delta[l] =
      next_completion == kLaneNever ? T{0} : static_cast<T>(next_completion);
}

std::vector<ThroughputResult> LaneThroughputSolver::compute_batch(
    std::span<const std::vector<i64>> candidates,
    const LaneBatchOptions& opts) {
  std::vector<ThroughputResult> results(candidates.size());
  compute_batch(candidates, opts, results);
  return results;
}

void LaneThroughputSolver::compute_batch(
    std::span<const std::vector<i64>> candidates, const LaneBatchOptions& opts,
    std::span<ThroughputResult> results) {
  BUFFY_REQUIRE(results.size() == candidates.size(),
                "one result slot per candidate");
  BUFFY_REQUIRE(
      opts.target.valid() && opts.target.index() < graph_.num_actors(),
      "throughput target actor is not part of the graph");
  // Width election. The statically certified path decides per graph: a
  // batch the caller asserts is inside the certificate's budget runs
  // narrow without scanning a single capacity. Everything else falls back
  // to the per-batch election: the narrow kernel runs whenever the graph
  // qualifies and every candidate capacity fits its envelope.
  bool narrow;
  const bool statically_narrow = static_narrow_ && opts.within_certificate;
  if (statically_narrow && !audit::enabled()) {
    narrow = true;
  } else {
    narrow = narrow_ok_;
    for (const std::vector<i64>& caps : candidates) {
      if (!narrow) break;
      for (const i64 cap : caps) narrow = narrow && cap <= kNarrowLimit;
    }
    if (statically_narrow) {
      // Audit cross-check: the retired runtime gate re-runs and must
      // agree with the certificate, and every candidate must actually be
      // inside the certified budget the caller vouched for.
      audit::note_check();
      if (!narrow) {
        audit::fail("static-narrow-certificate",
                    "graph '" + graph_.name() +
                        "': certificate selected the narrow kernel but a "
                        "candidate capacity exceeds kNarrowLimit");
      }
      for (const std::vector<i64>& caps : candidates) {
        if (!certificate_->covers(caps)) {
          audit::fail("static-narrow-certificate",
                      "graph '" + graph_.name() +
                          "': batch flagged within_certificate has a "
                          "candidate outside the certified storage budget");
        }
      }
      narrow = true;
    }
  }
  if (narrow) {
    run_batch(narrow_, step32_, candidates, opts, results);
  } else {
    run_batch(wide_, step64_, candidates, opts, results);
  }
}

template <typename T>
void LaneThroughputSolver::run_batch(
    LaneTables<T>& t, LaneStepResult (*step)(const LaneKernelViewT<T>&),
    std::span<const std::vector<i64>> candidates, const LaneBatchOptions& opts,
    std::span<ThroughputResult> results) {
  const std::size_t n = graph_.num_actors();
  const std::size_t m = graph_.num_channels();
  const std::size_t state_words = n + m;
  const bool track = opts.collect_storage_deps;

  LaneKernelViewT<T> v;
  v.num_actors = n;
  v.num_channels = m;
  v.stride = stride_;
  v.target = opts.target.index();
  v.clocks = t.clocks.data();
  v.tokens = t.tokens.data();
  v.occupied = t.occupied.data();
  v.caps = t.caps.data();
  v.last_block = track ? last_block_.data() : nullptr;
  v.live = t.live.data();
  v.delta = t.delta.data();
  v.now = now_.data();
  v.scratch = t.scratch.data();
  v.exec_time = exec_time_.data();
  v.in_ports = in_ports_.data();
  v.in_begin = in_begin_.data();
  v.out_ports = out_ports_.data();
  v.out_begin = out_begin_.data();

  std::fill(t.live.begin(), t.live.end(), T{0});
  std::fill(t.delta.begin(), t.delta.end(), T{0});

  std::size_t next = 0;  // queue cursor into `candidates`
  std::size_t active = 0;
  u64 live_bits = 0;
  u64 batch_steps = 0;  // lockstep steps executed so far
  // Lanes advance in lockstep, so lane l has executed batch_steps -
  // steps_[l] steps (steps_ records the batch step the lane was installed
  // at). The per-step budget guard compares against a *stale* minimum
  // start — never updated on retirement, so only ever pessimistic — and a
  // trigger rescans the live lanes for a real violation.
  u64 stale_min_start = 0;

  const auto finish_deps = [&](std::size_t l, i64 window_start,
                               ThroughputResult& r) {
    if (!track) return;
    for (std::size_t c = 0; c < m; ++c) {
      if (last_block_[c * stride_ + l] >= window_start) {
        r.storage_deps.emplace_back(c);
      }
    }
  };
  const auto report_candidate = [&](std::size_t l) {
    max_table_bytes_ =
        std::max(max_table_bytes_, tables_[l].footprint_bytes());
    if (trace::enabled()) {
      i64 size = 0;
      for (const i64 cap : candidates[candidate_[l]]) size += cap;
      trace::Span span(trace::EventKind::Simulation, size);
      span.set_args(size, static_cast<i64>(tables_[l].size()));
    }
    if (opts.progress != nullptr) {
      opts.progress->add_states(tables_[l].size());
      opts.progress->add_simulations(1);
      opts.progress->note_arena_bytes(tables_[l].footprint_bytes());
    }
  };
  const auto retire_deadlock = [&](std::size_t l) {
    ThroughputResult r;
    r.deadlocked = true;
    r.throughput = Rational(0);
    r.states_stored = tables_[l].size();
    r.time_steps = now_[l];
    // A deadlocked run reports dependencies over the whole execution — a
    // firing may have been delayed by space long before the stall.
    finish_deps(l, 0, r);
    report_candidate(l);
    results[candidate_[l]] = std::move(r);
  };
  // Installs the next queue candidate into lane l (finishing any that
  // deadlock at time 0 on the spot), or parks the lane when the queue is
  // empty. Retirement processes lanes in ascending order and the queue in
  // index order, so lane assignment — and with it every result — is
  // deterministic for a given (candidates, lane width) pair.
  const auto refill = [&](std::size_t l) {
    while (next < candidates.size()) {
      const std::size_t idx = next++;
      candidate_[l] = idx;
      init_lane(t, l, candidates[idx], track);
      steps_[l] = batch_steps;
      if (t.delta[l] != 0) {
        t.live[l] = T{-1};
        live_bits |= u64{1} << l;
        ++active;
        return;
      }
      retire_deadlock(l);
    }
    t.live[l] = 0;  // park: the queue is dry
    t.delta[l] = 0;
  };
  const auto audit_lanes = [&]() {
    for (u64 bits = live_bits; bits != 0; bits &= bits - 1) {
      const auto l = static_cast<std::size_t>(std::countr_zero(bits));
      for (std::size_t c = 0; c < m; ++c) {
        audit::note_check();
        const std::string where =
            "lane " + std::to_string(l) + " channel " + std::to_string(c) +
            " (" + graph_.channel(sdf::ChannelId(c)).name + ") at t=" +
            std::to_string(now_[l]);
        const i64 tk = t.tokens[c * stride_ + l];
        const i64 oc = t.occupied[c * stride_ + l];
        if (tk < 0) {
          audit::fail("lane-tokens-nonnegative",
                      where + ": " + std::to_string(tk) + " stored tokens");
        }
        if (oc < tk) {
          audit::fail("lane-occupancy-covers-tokens",
                      where + ": occupancy " + std::to_string(oc) +
                          " < stored tokens " + std::to_string(tk));
        }
        if (oc > t.caps[c * stride_ + l]) {
          audit::fail("lane-capacity-bound",
                      where + ": occupancy " + std::to_string(oc) +
                          " exceeds capacity " +
                          std::to_string(t.caps[c * stride_ + l]));
        }
      }
    }
  };

  for (std::size_t l = 0; l < lanes_; ++l) refill(l);

  constexpr u64 kCancelPollPeriod = 1024;
  while (active > 0) {
    if (batch_steps % kCancelPollPeriod == 0 && opts.cancel.cancelled()) {
      throw exec::Cancelled();
    }
    // Per-lane step budget, spent before the advance like the scalar
    // kernel's loop bound. The cheap trigger may fire early (stale
    // minimum); the rescan throws only on a genuine violation and
    // tightens the minimum otherwise.
    if (batch_steps - stale_min_start >= opts.max_steps) {
      u64 min_start = batch_steps;
      for (u64 bits = live_bits; bits != 0; bits &= bits - 1) {
        const auto l = static_cast<std::size_t>(std::countr_zero(bits));
        if (batch_steps - steps_[l] >= opts.max_steps) {
          throw Error("throughput computation exceeded max_steps = " +
                      std::to_string(opts.max_steps) + " on graph '" +
                      graph_.name() +
                      "' (unbounded token growth or a bound set too low)");
        }
        min_start = std::min(min_start, steps_[l]);
      }
      stale_min_start = min_start;
    }
    ++batch_steps;

    const LaneStepResult step_result = step(v);
    if (audit::enabled()) audit_lanes();

    // Cycle detection has first claim on a lane that both completed the
    // target and deadlocked this step — the scalar kernel's order.
    u64 dead = step_result.deadlocked & live_bits;
    for (u64 bits = step_result.target_completed & live_bits; bits != 0;
         bits &= bits - 1) {
      const auto l = static_cast<std::size_t>(std::countr_zero(bits));
      ++firings_[l];
      const i64 dist = now_[l] - last_completion_[l];
      last_completion_[l] = now_[l];
      VisitedTable& table = tables_[l];
      const std::span<i64> record = table.stage();
      for (std::size_t a = 0; a < n; ++a) {
        record[a] = t.clocks[a * stride_ + l];
      }
      for (std::size_t c = 0; c < m; ++c) {
        record[n + c] = t.tokens[c * stride_ + l];
      }
      record[state_words] = dist;
      const VisitedTable::Entry* prev = table.find_or_insert(
          VisitedTable::Entry{firings_[l], now_[l], table.size()});
      if (prev == nullptr) continue;
      ThroughputResult r;
      r.firings_on_cycle = firings_[l] - prev->firing_index;
      r.period = now_[l] - prev->time;
      r.cycle_start_time = prev->time;
      r.throughput = Rational(r.firings_on_cycle, r.period);
      r.states_stored = table.size();
      r.time_steps = now_[l];
      finish_deps(l, r.cycle_start_time, r);
      if (audit::enabled()) table.audit_verify();
      report_candidate(l);
      results[candidate_[l]] = std::move(r);
      t.live[l] = 0;
      t.delta[l] = 0;
      live_bits &= ~(u64{1} << l);
      --active;
      dead &= ~(u64{1} << l);  // superseded by the cycle result
      refill(l);
    }
    for (u64 bits = dead & live_bits; bits != 0; bits &= bits - 1) {
      const auto l = static_cast<std::size_t>(std::countr_zero(bits));
      retire_deadlock(l);
      t.live[l] = 0;
      t.delta[l] = 0;
      live_bits &= ~(u64{1} << l);
      --active;
      refill(l);
    }
  }
}

std::size_t LaneThroughputSolver::table_bytes() const {
  std::size_t result = max_table_bytes_;
  for (const VisitedTable& t : tables_) {
    result = std::max(result, t.footprint_bytes());
  }
  return result;
}

}  // namespace buffy::state
