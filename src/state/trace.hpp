// Firing traces recorded during state-space execution.
//
// The schedule module turns a trace plus the detected cycle into the
// schedule sigma(a, i) of Def. 3 (transient prefix + periodic phase).
#pragma once

#include <vector>

#include "base/checked_math.hpp"
#include "sdf/ids.hpp"

namespace buffy::state {

/// One firing start: actor and the time step at which the firing begins.
struct Firing {
  sdf::ActorId actor;
  i64 start = 0;

  friend bool operator==(const Firing&, const Firing&) = default;
};

/// Collects firing starts in execution order.
class FiringRecorder {
 public:
  void record(sdf::ActorId actor, i64 start) {
    firings_.push_back(Firing{actor, start});
  }

  [[nodiscard]] const std::vector<Firing>& firings() const { return firings_; }
  void clear() { firings_.clear(); }

 private:
  std::vector<Firing> firings_;
};

}  // namespace buffy::state
