#include "state/engine.hpp"

#include <algorithm>
#include <string>

#include "base/audit.hpp"
#include "base/diagnostics.hpp"
#include "trace/trace.hpp"

namespace buffy::state {

Engine::Engine(const sdf::Graph& graph, Capacities capacities)
    : graph_(graph), capacities_(std::move(capacities)) {
  BUFFY_REQUIRE(capacities_.size() == graph.num_channels(),
                "capacities must cover every channel of the graph");
  const std::size_t n = graph.num_actors();
  const std::size_t m = graph.num_channels();
  exec_time_.resize(n);
  inputs_.resize(n);
  outputs_.resize(n);
  for (const sdf::ActorId a : graph.actor_ids()) {
    exec_time_[a.index()] = graph.actor(a).execution_time;
    for (const sdf::ChannelId c : graph.in_channels(a)) {
      inputs_[a.index()].push_back(
          PortRef{c.index(), graph.channel(c).consumption});
    }
    for (const sdf::ChannelId c : graph.out_channels(a)) {
      outputs_[a.index()].push_back(
          PortRef{c.index(), graph.channel(c).production});
    }
  }
  initial_tokens_.resize(m);
  for (const sdf::ChannelId c : graph.channel_ids()) {
    initial_tokens_[c.index()] = graph.channel(c).initial_tokens;
  }
  reset();
}

void Engine::reconfigure(Capacities capacities) {
  BUFFY_REQUIRE(capacities.size() == graph_.num_channels(),
                "capacities must cover every channel of the graph");
  capacities_ = std::move(capacities);
  reset();
}

void Engine::set_binding(std::vector<std::size_t> processor_of) {
  if (!processor_of.empty()) {
    BUFFY_REQUIRE(processor_of.size() == clocks_.size(),
                  "binding must assign every actor a processor");
    std::size_t max_proc = 0;
    for (const std::size_t p : processor_of) max_proc = std::max(max_proc, p);
    proc_running_.assign(max_proc + 1, 0);
  } else {
    proc_running_.clear();
  }
  processor_of_ = std::move(processor_of);
  reset();
}

bool Engine::can_start(std::size_t actor) const {
  if (clocks_[actor] != 0) return false;
  if (!processor_of_.empty() && proc_running_[processor_of_[actor]] != 0) {
    return false;  // the actor's processor is executing someone else
  }
  for (const PortRef& in : inputs_[actor]) {
    if (tokens_[in.channel] < in.rate) return false;
  }
  for (const PortRef& out : outputs_[actor]) {
    if (capacities_.is_bounded(out.channel) &&
        occupied_[out.channel] + out.rate >
            capacities_.capacity(out.channel)) {
      return false;
    }
  }
  return true;
}

// The tracking twin of can_start: the same conjunction, evaluated once,
// with every failing space check recorded against its channel. The
// processor check runs last so an actor kept off its processor still
// reports its space blockage (space_blocked_channels ignores the binding).
bool Engine::can_start_tracked(std::size_t actor) {
  if (clocks_[actor] != 0) return false;
  for (const PortRef& in : inputs_[actor]) {
    if (tokens_[in.channel] < in.rate) return false;
  }
  bool space_ok = true;
  for (const PortRef& out : outputs_[actor]) {
    if (capacities_.is_bounded(out.channel) &&
        occupied_[out.channel] + out.rate > capacities_.capacity(out.channel)) {
      space_ok = false;
      last_space_block_[out.channel] = now_;
    }
  }
  if (!space_ok) return false;
  return processor_of_.empty() || proc_running_[processor_of_[actor]] == 0;
}

void Engine::start_phase() {
  started_.clear();
  // A start claims output space but never adds tokens or frees space, so no
  // start can enable another within the same instant; each channel has a
  // single producer, so no two starts compete for the same space. A single
  // pass in actor order is therefore deterministic and complete.
  for (std::size_t a = 0; a < clocks_.size(); ++a) {
    if (track_space_block_ ? !can_start_tracked(a) : !can_start(a)) continue;
    clocks_[a] = exec_time_[a];
    if (next_completion_ == 0 || exec_time_[a] < next_completion_) {
      next_completion_ = exec_time_[a];
    }
    if (!processor_of_.empty()) ++proc_running_[processor_of_[a]];
    for (const PortRef& out : outputs_[a]) {
      occupied_[out.channel] += out.rate;
      max_occupancy_[out.channel] =
          std::max(max_occupancy_[out.channel], occupied_[out.channel]);
    }
    started_.emplace_back(a);
    if (recorder_ != nullptr) recorder_->record(sdf::ActorId(a), now_);
  }
}

void Engine::reset() {
  if (trace::enabled()) {
    // -1 when any channel is unbounded (no meaningful total size).
    i64 size = 0;
    for (std::size_t c = 0; c < capacities_.size() && size >= 0; ++c) {
      size = capacities_.is_bounded(c) ? size + capacities_.capacity(c) : -1;
    }
    trace::emit_instant(trace::EventKind::EngineReset, size);
  }
  clocks_.assign(exec_time_.size(), 0);
  std::fill(proc_running_.begin(), proc_running_.end(), 0);
  tokens_ = initial_tokens_;
  occupied_ = initial_tokens_;
  max_occupancy_ = initial_tokens_;
  completed_.clear();
  started_.clear();
  now_ = 0;
  next_completion_ = 0;
  deadlocked_ = false;
  if (track_space_block_) {
    last_space_block_.assign(tokens_.size(), -1);
  } else {
    last_space_block_.clear();
  }
  // Validate that initial tokens fit the capacities; otherwise the state is
  // not even representable.
  for (std::size_t c = 0; c < tokens_.size(); ++c) {
    if (capacities_.is_bounded(c) && tokens_[c] > capacities_.capacity(c)) {
      throw GraphError("channel '" +
                       graph_.channel(sdf::ChannelId(c)).name +
                       "' has more initial tokens than its capacity");
    }
  }
  start_phase();
  deadlocked_ = started_.empty();
}

bool Engine::step() { return advance_by(1); }

bool Engine::advance() {
  if (deadlocked_) return false;
  // next_completion_ is the cached minimum positive clock, so the jump to
  // the next completion needs no scan over the actors.
  BUFFY_ASSERT(next_completion_ > 0, "live engine without a running firing");
  return advance_by(next_completion_);
}

bool Engine::advance_by(i64 delta) {
  if (deadlocked_) return false;
  now_ += delta;
  completed_.clear();

  // Completion phase: lower the clocks; firings reaching zero consume their
  // inputs (releasing that space) and turn their claimed output space into
  // tokens. The loop also rebuilds the cached minimum positive clock.
  next_completion_ = 0;
  for (std::size_t a = 0; a < clocks_.size(); ++a) {
    if (clocks_[a] == 0) continue;
    BUFFY_ASSERT(clocks_[a] >= delta, "advance past a completion");
    clocks_[a] -= delta;
    if (clocks_[a] != 0) {
      if (next_completion_ == 0 || clocks_[a] < next_completion_) {
        next_completion_ = clocks_[a];
      }
      continue;
    }
    for (const PortRef& in : inputs_[a]) {
      tokens_[in.channel] -= in.rate;
      occupied_[in.channel] -= in.rate;
      BUFFY_ASSERT(tokens_[in.channel] >= 0, "negative channel fill");
    }
    for (const PortRef& out : outputs_[a]) {
      tokens_[out.channel] += out.rate;  // occupancy unchanged: claim -> data
    }
    if (!processor_of_.empty()) --proc_running_[processor_of_[a]];
    completed_.emplace_back(a);
  }

  start_phase();

  // With no firing in progress and the start phase unable to launch any
  // actor, the state can never change again: deadlock (self-loop in the
  // state space, Sec. 6). No firing in flight is exactly next_completion_
  // == 0: the completion loop and start_phase both fold every positive
  // clock into the cached minimum.
  deadlocked_ = next_completion_ == 0;
  return !deadlocked_;
}

TimedState Engine::snapshot() const { return TimedState(clocks_, tokens_); }

void Engine::snapshot_into(std::span<i64> out) const {
  BUFFY_ASSERT(out.size() == clocks_.size() + tokens_.size(),
               "snapshot buffer size mismatch");
  std::copy(clocks_.begin(), clocks_.end(), out.begin());
  std::copy(tokens_.begin(), tokens_.end(), out.begin() + clocks_.size());
}

std::vector<sdf::ChannelId> Engine::space_blocked_channels() const {
  std::vector<sdf::ChannelId> result;
  space_blocked_channels(result);
  return result;
}

void Engine::space_blocked_channels(std::vector<sdf::ChannelId>& out) const {
  out.clear();
  blocked_scratch_.assign(tokens_.size(), 0);
  for (std::size_t a = 0; a < clocks_.size(); ++a) {
    if (clocks_[a] != 0) continue;
    bool tokens_ok = true;
    for (const PortRef& in : inputs_[a]) {
      if (tokens_[in.channel] < in.rate) {
        tokens_ok = false;
        break;
      }
    }
    if (!tokens_ok) continue;
    for (const PortRef& out_port : outputs_[a]) {
      if (capacities_.is_bounded(out_port.channel) &&
          occupied_[out_port.channel] + out_port.rate >
              capacities_.capacity(out_port.channel)) {
        blocked_scratch_[out_port.channel] = 1;
      }
    }
  }
  for (std::size_t c = 0; c < blocked_scratch_.size(); ++c) {
    if (blocked_scratch_[c] != 0) out.emplace_back(c);
  }
}

void Engine::audit_verify_invariants() const {
  for (std::size_t c = 0; c < tokens_.size(); ++c) {
    audit::note_check();
    const std::string channel =
        "channel " + std::to_string(c) + " (" +
        graph_.channel(sdf::ChannelId(c)).name + ") at t=" +
        std::to_string(now_);
    if (tokens_[c] < 0) {
      audit::fail("engine-tokens-nonnegative",
                  channel + ": " + std::to_string(tokens_[c]) +
                      " stored tokens");
    }
    if (occupied_[c] < tokens_[c]) {
      audit::fail("engine-occupancy-covers-tokens",
                  channel + ": occupancy " + std::to_string(occupied_[c]) +
                      " < stored tokens " + std::to_string(tokens_[c]) +
                      " (claimed space lost track of a write)");
    }
    if (capacities_.is_bounded(c) &&
        occupied_[c] > capacities_.capacity(c)) {
      audit::fail("engine-capacity-bound",
                  channel + ": occupancy " + std::to_string(occupied_[c]) +
                      " exceeds capacity " +
                      std::to_string(capacities_.capacity(c)));
    }
  }
}

void Engine::corrupt_occupancy_for_test(sdf::ChannelId c, i64 delta) {
  occupied_[c.index()] += delta;
}

}  // namespace buffy::state
