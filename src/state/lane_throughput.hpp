// Lane-parallel throughput solver (DESIGN.md §15): computes the reduced
// state-space throughput of up to 64 candidate storage distributions at
// once by stepping them in lockstep lanes of the SIMD kernel
// (simd_kernel.hpp) and retiring each lane the moment its own execution
// closes its cycle or proves deadlock — retired lanes are refilled from
// the remaining candidate queue without restarting the batch, so lane
// divergence costs idle mask slots, never recomputation.
//
// Results are field-for-field identical to running the scalar
// ThroughputSolver once per candidate (same throughput, states_stored,
// cycle/period/time fields, storage_deps) — the property the DSE engines'
// byte-identical-front guarantee rests on, pinned by test_lane_kernel and
// the 200-seed property sweep.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "analysis/bounds.hpp"
#include "sdf/graph.hpp"
#include "state/simd_backend.hpp"
#include "state/simd_kernel.hpp"
#include "state/throughput.hpp"

namespace buffy::state {

/// Options of one lane batch; the subset of ThroughputOptions that the
/// lane kernel supports (no bindings, recorders or reduced-state
/// collection — the DSE hot path uses none of them; callers needing those
/// use the scalar solver).
struct LaneBatchOptions {
  /// Actor whose firing rate is measured; must be a valid id of the graph.
  sdf::ActorId target;
  /// Per-candidate safety bound on simulated time steps, as in
  /// ThroughputOptions::max_steps; a lane exceeding it fails the batch
  /// with the scalar kernel's Error.
  u64 max_steps = 100'000'000;
  /// Collect each candidate's storage dependencies (see
  /// ThroughputOptions::collect_storage_deps), fused into the batch.
  bool collect_storage_deps = false;
  /// Polled between lockstep steps; once cancelled the batch fails with
  /// exec::Cancelled (no per-candidate partial results).
  exec::CancellationToken cancel;
  /// Optional metrics sink, reported per retired candidate.
  exec::Progress* progress = nullptr;
  /// The caller asserts every candidate of this batch lies inside the
  /// storage budget of the certificate the solver was built with (the DSE
  /// engines enforce this by construction — box bounds, channel ceilings
  /// or the wave-size envelope). With a narrow-certified solver this
  /// skips the per-batch capacity scan entirely; under BUFFY_AUDIT the
  /// scan still runs as a cross-check and any divergence fails the
  /// `static-narrow-certificate` audit.
  bool within_certificate = false;
};

/// Reusable lane-batch kernel over one graph: SoA state rows for `lanes`
/// simultaneous executions plus one visited-state table per lane, all
/// recycled across batches (the lane twin of ThroughputSolver's reuse
/// contract). Not thread-safe; use one solver per worker slot
/// (LaneSolverBank).
class LaneThroughputSolver {
 public:
  /// `lanes` in [kMinLanes, kMaxLanes]; `backend` must be Swar or Avx2
  /// and available on this host (resolve_backend first). The graph must
  /// outlive the solver. An optional magnitude certificate
  /// (analysis::derive_bounds) selects the narrow kernel statically: when
  /// it matches the graph, fits i64 and its magnitude_bound is within
  /// kNarrowLimit, batches flagged within_certificate run the i32 kernel
  /// without re-scanning candidate capacities. The certificate (if any)
  /// must outlive the solver.
  LaneThroughputSolver(const sdf::Graph& graph, std::size_t lanes,
                       SimdBackend backend,
                       const analysis::BoundsCertificate* certificate =
                           nullptr);

  /// Simulates every candidate (a bounded capacity vector, one entry per
  /// channel in channel-index order) and writes its result to the same
  /// index of `results`. Candidates beyond the lane width queue up and
  /// enter lanes as earlier candidates retire, in index order.
  ///
  /// Preconditions: results.size() == candidates.size(); every candidate
  /// covers every channel with capacity >= the channel's initial tokens.
  /// On Error (max_steps) or exec::Cancelled the whole batch is void; the
  /// solver remains reusable.
  void compute_batch(std::span<const std::vector<i64>> candidates,
                     const LaneBatchOptions& opts,
                     std::span<ThroughputResult> results);

  /// Convenience form returning freshly allocated results.
  [[nodiscard]] std::vector<ThroughputResult> compute_batch(
      std::span<const std::vector<i64>> candidates,
      const LaneBatchOptions& opts);

  [[nodiscard]] const sdf::Graph& graph() const { return graph_; }
  [[nodiscard]] std::size_t lanes() const { return lanes_; }
  [[nodiscard]] SimdBackend backend() const { return backend_; }
  /// True when the certificate proves the narrow kernel per graph (so
  /// within_certificate batches skip the dynamic capacity gate).
  [[nodiscard]] bool static_narrow() const { return static_narrow_; }

  /// Peak visited-table footprint across all lanes and batches.
  [[nodiscard]] std::size_t table_bytes() const;

 private:
  /// SoA lane state at one lane width (rows of stride_ words of T; see
  /// LaneKernelViewT). The solver keeps two sets: the full-range i64
  /// tables and — when the graph's magnitudes fit — the narrow i32 twin,
  /// which packs twice the lanes per vector. Which set a batch runs on is
  /// decided per batch (kNarrowLimit gate over the candidate capacities);
  /// both produce bit-identical results, so the choice is invisible.
  template <typename T>
  struct LaneTables {
    std::vector<T> clocks;
    std::vector<T> tokens;
    std::vector<T> occupied;
    std::vector<T> caps;
    std::vector<T> live;
    std::vector<T> delta;
    std::vector<T> scratch;
  };

  template <typename T>
  void init_lane(LaneTables<T>& t, std::size_t l, std::span<const i64> caps,
                 bool track_deps);
  template <typename T>
  void run_batch(LaneTables<T>& t,
                 LaneStepResult (*step)(const LaneKernelViewT<T>&),
                 std::span<const std::vector<i64>> candidates,
                 const LaneBatchOptions& opts,
                 std::span<ThroughputResult> results);

  const sdf::Graph& graph_;
  std::size_t lanes_ = 0;
  std::size_t stride_ = 0;
  SimdBackend backend_ = SimdBackend::Swar;
  bool narrow_ok_ = false;  ///< graph magnitudes fit the i32 kernel
  /// Certificate-backed per-graph narrow selection (see the constructor).
  const analysis::BoundsCertificate* certificate_ = nullptr;
  bool static_narrow_ = false;
  LaneStepResult (*step64_)(const LaneKernelView&) = nullptr;
  LaneStepResult (*step32_)(const LaneKernelView32&) = nullptr;

  // Graph structure (capacity-independent, built once).
  std::vector<i64> exec_time_;
  std::vector<i64> initial_tokens_;
  std::vector<LanePort> in_ports_;
  std::vector<std::size_t> in_begin_;
  std::vector<LanePort> out_ports_;
  std::vector<std::size_t> out_begin_;

  LaneTables<i64> wide_;
  LaneTables<i32> narrow_;  // allocated only when narrow_ok_

  // Width-independent rows: absolute instants grow with the run length,
  // not with graph magnitudes, so they stay i64 under either kernel.
  std::vector<i64> last_block_;
  std::vector<i64> now_;

  // Per-lane run bookkeeping.
  std::vector<i64> firings_;
  std::vector<i64> last_completion_;
  std::vector<u64> steps_;
  std::vector<std::size_t> candidate_;
  std::vector<VisitedTable> tables_;
  std::size_t max_table_bytes_ = 0;
};

/// Slot-indexed bank of lane solvers for a parallel exploration — the
/// lane twin of WorkerSolvers: one lazily built LaneThroughputSolver per
/// thread-pool slot, each thread-affine to the worker occupying the slot,
/// cache-line padded against false sharing.
class LaneSolverBank {
 public:
  /// The graph must outlive the bank; `lanes`/`backend`/`certificate` as
  /// for LaneThroughputSolver (the certificate, when given, must outlive
  /// the bank too).
  LaneSolverBank(const sdf::Graph& graph, std::size_t slots,
                 std::size_t lanes, SimdBackend backend,
                 const analysis::BoundsCertificate* certificate = nullptr)
      : graph_(graph), lanes_(lanes), backend_(backend),
        certificate_(certificate), slots_(slots) {}

  /// The solver owned by `slot`, built on first use; call only from the
  /// thread currently occupying that slot.
  [[nodiscard]] LaneThroughputSolver& at(std::size_t slot) {
    Slot& s = slots_[slot];
    if (s.solver == nullptr) {
      s.solver = std::make_unique<LaneThroughputSolver>(
          graph_, lanes_, backend_, certificate_);
    }
    return *s.solver;
  }

  [[nodiscard]] std::size_t num_slots() const { return slots_.size(); }
  [[nodiscard]] std::size_t lanes() const { return lanes_; }

  /// Peak visited-table footprint across every solver built so far; call
  /// only while no worker is simulating.
  [[nodiscard]] std::size_t max_table_bytes() const {
    std::size_t result = 0;
    for (const Slot& s : slots_) {
      if (s.solver != nullptr) {
        result = std::max(result, s.solver->table_bytes());
      }
    }
    return result;
  }

 private:
  struct alignas(64) Slot {
    std::unique_ptr<LaneThroughputSolver> solver;
  };

  const sdf::Graph& graph_;
  std::size_t lanes_;
  SimdBackend backend_;
  const analysis::BoundsCertificate* certificate_ = nullptr;
  std::vector<Slot> slots_;
};

}  // namespace buffy::state
