// Portable SWAR implementation of the lane-step kernel (DESIGN.md §15).
//
// Every lane predicate is materialised as a whole-word mask (0 or -1) and
// composed with plain AND/OR/min over contiguous rows — no branches on
// lane data, so the compiler auto-vectorizes each row loop with whatever
// the build target offers (SSE2 baseline and wider). The width-generic
// body lives in simd_lanes_inl.hpp; this translation unit instantiates it
// at baseline ISA for both lane words: i64 (full range) and i32 (the
// narrow kernel, twice the lanes per vector under the kNarrowLimit gate).
// These are the reference lane implementations every other backend must
// match bit for bit; the -mavx2 twins live in simd_avx2.cpp.
#include "state/simd_lanes_inl.hpp"

namespace buffy::state {

LaneStepResult lane_step_swar(const LaneKernelView& v) {
  return lanes_inl::lane_step_dispatch<i64>(v);
}

LaneStepResult lane_step_swar32(const LaneKernelView32& v) {
  return lanes_inl::lane_step_dispatch<i32>(v);
}

}  // namespace buffy::state
