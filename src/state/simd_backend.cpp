#include "state/simd_backend.hpp"

#include <algorithm>
#include <string>

#include "base/diagnostics.hpp"
#include "state/simd_kernel.hpp"

namespace buffy::state {

// The cpuid probe lives here — a baseline-compiled translation unit — not
// in simd_avx2.cpp, whose -mavx2 flag would let the compiler emit AVX2
// instructions into the very function that decides whether AVX2 is safe.
bool lane_avx2_available() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
#else
  return false;
#endif
}

bool backend_available(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::Auto:
    case SimdBackend::Scalar:
    case SimdBackend::Swar:
      return true;
    case SimdBackend::Avx2:
      return lane_avx2_available();
  }
  return false;
}

SimdBackend resolve_backend(SimdBackend requested) {
  if (requested == SimdBackend::Auto) {
    return lane_avx2_available() ? SimdBackend::Avx2 : SimdBackend::Swar;
  }
  BUFFY_REQUIRE(backend_available(requested),
                std::string("SIMD backend '") + backend_name(requested) +
                    "' is not available on this host");
  return requested;
}

const char* backend_name(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::Auto:
      return "auto";
    case SimdBackend::Scalar:
      return "scalar";
    case SimdBackend::Swar:
      return "swar";
    case SimdBackend::Avx2:
      return "avx2";
  }
  return "?";
}

std::optional<SimdBackend> parse_backend(std::string_view name) {
  if (name == "auto") return SimdBackend::Auto;
  if (name == "scalar") return SimdBackend::Scalar;
  if (name == "swar") return SimdBackend::Swar;
  if (name == "avx2") return SimdBackend::Avx2;
  return std::nullopt;
}

std::size_t default_lanes(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::Auto:
    case SimdBackend::Swar:
    case SimdBackend::Avx2:
      return 32;
    case SimdBackend::Scalar:
      return 1;
  }
  return 1;
}

std::size_t resolve_lanes(std::size_t requested, SimdBackend backend) {
  if (requested == 0) return default_lanes(backend);
  return std::clamp(requested, kMinLanes, kMaxLanes);
}

}  // namespace buffy::state
