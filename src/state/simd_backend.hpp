// SIMD backend selection for the lane-parallel throughput kernel
// (DESIGN.md §15).
//
// The lane kernel steps N candidate storage distributions in lockstep and
// exists in two implementations: a portable SWAR baseline (plain i64
// word-parallel masks, auto-vectorized by the compiler) and a hand-written
// AVX2 path (src/state/simd_avx2.cpp, the one translation unit built with
// -mavx2). Which one runs is a *runtime* decision — the AVX2 path is only
// entered after __builtin_cpu_supports("avx2") says the host has it — so a
// single binary serves every x86-64 microarchitecture and every non-x86
// host falls back to SWAR. `Scalar` selects the classic one-candidate
// ThroughputSolver; it is the differential reference the lane paths are
// byte-compared against.
#pragma once

#include <optional>
#include <string_view>

#include "base/checked_math.hpp"

namespace buffy::state {

/// Which kernel simulates DSE candidates.
enum class SimdBackend {
  /// Pick the widest available lane backend at runtime (Avx2 when the CPU
  /// supports it, else Swar). This is the default everywhere.
  Auto,
  /// The scalar one-candidate-at-a-time ThroughputSolver (reference path).
  Scalar,
  /// Portable uint64 SWAR lane kernel; available on every host.
  Swar,
  /// Hand-vectorized AVX2 lane kernel; available when the CPU reports AVX2.
  Avx2,
};

/// True when `backend` can run on this host. Auto/Scalar/Swar are always
/// available; Avx2 only on x86 CPUs reporting the feature.
[[nodiscard]] bool backend_available(SimdBackend backend);

/// Resolves Auto to the widest available lane backend; returns any other
/// backend unchanged. Throws Error if the requested backend is not
/// available on this host (e.g. Avx2 on a non-AVX2 machine).
[[nodiscard]] SimdBackend resolve_backend(SimdBackend requested);

/// Stable lower-case name ("auto", "scalar", "swar", "avx2") for CLI
/// output and stats JSON.
[[nodiscard]] const char* backend_name(SimdBackend backend);

/// Inverse of backend_name; nullopt for unknown names.
[[nodiscard]] std::optional<SimdBackend> parse_backend(std::string_view name);

/// Hard bounds of the lane kernel's batch width.
inline constexpr std::size_t kMinLanes = 1;
inline constexpr std::size_t kMaxLanes = 64;  // lane masks live in one u64

/// Default lane count of a backend. Deliberately identical for Swar and
/// Avx2 (and fixed across hosts): the exhaustive engine's enumeration
/// order — and with it the deterministic "distributions explored" counters
/// in the generated experiment report — depends only on the batch width,
/// so equal defaults keep those counters identical no matter which lane
/// backend a host resolves to. (Scalar has width 1 and its own counters.)
[[nodiscard]] std::size_t default_lanes(SimdBackend backend);

/// Clamps a user-requested lane count (0 = backend default) into
/// [kMinLanes, kMaxLanes].
[[nodiscard]] std::size_t resolve_lanes(std::size_t requested,
                                        SimdBackend backend);

}  // namespace buffy::state
