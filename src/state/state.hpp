// Timed SDF states and channel capacities (paper Def. 5).
//
// The state of a timed SDF graph is the tuple (t_1..t_n, s_1..s_m): the
// remaining execution time of every actor (0 when idle) and the number of
// tokens stored in every channel. States are the keys of the reduced
// state-space hash table used for cycle detection (Sec. 7).
#pragma once

#include <span>
#include <vector>

#include "base/checked_math.hpp"
#include "base/hash.hpp"

namespace buffy::state {

/// Per-channel storage capacities; a channel is either bounded by a
/// non-negative token capacity or unbounded.
class Capacities {
 public:
  /// All channels unbounded.
  [[nodiscard]] static Capacities unbounded(std::size_t num_channels);

  /// All channels bounded by the given capacities (>= 0 each).
  [[nodiscard]] static Capacities bounded(std::vector<i64> caps);

  [[nodiscard]] std::size_t size() const { return caps_.size(); }
  [[nodiscard]] bool is_bounded(std::size_t channel) const;
  /// Capacity of a bounded channel.
  [[nodiscard]] i64 capacity(std::size_t channel) const;

  /// Marks one channel unbounded / bounded.
  void set_unbounded(std::size_t channel);
  void set_capacity(std::size_t channel, i64 capacity);

 private:
  static constexpr i64 kUnbounded = -1;
  explicit Capacities(std::vector<i64> caps) : caps_(std::move(caps)) {}

  std::vector<i64> caps_;
};

/// A timed SDF state: actor clocks followed by channel token counts, stored
/// contiguously for cheap hashing and equality.
class TimedState {
 public:
  TimedState() = default;
  TimedState(std::span<const i64> clocks, std::span<const i64> tokens);

  [[nodiscard]] std::size_t num_actors() const { return num_actors_; }
  [[nodiscard]] std::size_t num_channels() const {
    return words_.size() - num_actors_;
  }

  /// Remaining firing time of actor i (0 = idle).
  [[nodiscard]] i64 clock(std::size_t i) const { return words_[i]; }
  /// Tokens stored in channel i.
  [[nodiscard]] i64 tokens(std::size_t i) const {
    return words_[num_actors_ + i];
  }

  [[nodiscard]] std::span<const i64> words() const { return words_; }

  [[nodiscard]] u64 hash() const { return hash_words(words_); }

  friend bool operator==(const TimedState&, const TimedState&) = default;

 private:
  std::vector<i64> words_;
  std::size_t num_actors_ = 0;
};

/// Hasher for unordered containers keyed on TimedState.
struct TimedStateHash {
  std::size_t operator()(const TimedState& s) const noexcept {
    return static_cast<std::size_t>(s.hash());
  }
};

}  // namespace buffy::state
