// Arena-backed visited-state table for the reduced state space (Sec. 7).
//
// The cycle-detection store of compute_throughput is the hottest data
// structure in the system: every completion of the target actor probes it
// once, and a multi-million-state exploration lives or dies by its memory
// behaviour. A node-based unordered_map pays one heap allocation per state,
// scatters the keys across the heap and rehashes a key on every probe. This
// table instead keeps every record in one contiguous i64 arena — the
// [clocks | tokens | dist] words of a reduced state, back to back — with an
// open-addressing slot array (power-of-two, triangular probing) that caches
// each record's hash, so probing compares a cached 64-bit hash first and
// growth never touches the record words again.
//
// Records are written in place: stage() hands out the arena tail, the
// caller fills it (Engine::snapshot_into + the d_a distance), and
// find_or_insert either commits the staged words (miss) or discards them
// (hit). Between runs reset() keeps both the arena and the slot array, so a
// design-space exploration reusing one table allocates only while the
// largest state space seen so far is still growing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/checked_math.hpp"

namespace buffy::state {

using u32 = std::uint32_t;

class VisitedTable {
 public:
  /// Per-record payload: everything cycle closing needs.
  struct Entry {
    /// Target firings completed when the record was stored.
    i64 firing_index = 0;
    /// Absolute time of the completion.
    i64 time = 0;
    /// Insertion position (index into a collected reduced-state sequence).
    u64 order = 0;
  };

  VisitedTable() = default;

  /// Prepares for a run whose records are `record_words` i64 each. Drops
  /// all records but keeps the arena and slot memory of earlier runs.
  void reset(std::size_t record_words);

  /// The staging area for the next candidate record: `record_words` words
  /// at the arena tail. Valid until find_or_insert or reset; calling
  /// stage() again returns the same (still uncommitted) area.
  [[nodiscard]] std::span<i64> stage();

  /// Probes for the staged record. On a hit the staged words are discarded
  /// and the matching record's entry is returned; on a miss the record is
  /// committed with `entry` and nullptr is returned. The returned pointer
  /// is invalidated by the next insertion.
  const Entry* find_or_insert(const Entry& entry);

  /// Committed records.
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] std::size_t record_words() const { return record_words_; }

  /// Words of record i (insertion order), without the staged tail.
  [[nodiscard]] std::span<const i64> record(std::size_t i) const;

  /// Bytes reserved by the record arena and the slot/hash arrays — the
  /// table's whole footprint, which persists across reset() for reuse.
  [[nodiscard]] std::size_t footprint_bytes() const;

  /// BUFFY_AUDIT hook (DESIGN.md §9): verifies hash/equality consistency
  /// of every committed record — the cached hash equals a fresh
  /// hash_words over the record's arena words, and the record is
  /// reachable from that hash through the slot array (a corrupt cached
  /// hash would make later equal states insert as fresh records, silently
  /// missing the cycle). Fails via audit::fail; O(records).
  void audit_verify() const;

  /// Audit tamper hook: flips one bit of record i's cached hash so tests
  /// can prove audit_verify pinpoints the inconsistency. Never called
  /// outside tests.
  void corrupt_hash_for_test(std::size_t i);

 private:
  static constexpr u32 kEmptySlot = 0xffffffffu;

  void grow_slots();

  std::size_t record_words_ = 0;
  std::vector<i64> arena_;     // committed records, plus one staged record
  std::vector<u64> hashes_;    // cached hash per committed record
  std::vector<Entry> entries_;
  std::vector<u32> slots_;     // record index or kEmptySlot; 2^k slots
  std::size_t mask_ = 0;
  bool staged_ = false;
};

}  // namespace buffy::state
