// Self-timed execution of a timed SDF graph under a storage distribution
// (paper Sec. 2 and 6).
//
// Semantics, validated against the paper's Fig. 3 state trace:
//  * A firing may start when (i) the actor is idle (no auto-concurrency),
//    (ii) every input channel holds at least the consumption rate, and
//    (iii) every bounded output channel has free space for the production
//    rate, where occupied space counts stored tokens PLUS space already
//    claimed by firings in progress (space is claimed at firing start).
//  * At the end of a firing the actor consumes its input tokens (releasing
//    their space only then) and writes its output tokens into the space
//    claimed at the start.
//  * Every enabled actor fires immediately (maximal throughput, Sec. 5), so
//    execution is deterministic.
//
// The Engine exposes a single-step interface; higher-level throughput and
// schedule computations are built on top of it (state/throughput.hpp).
#pragma once

#include <span>
#include <vector>

#include "sdf/graph.hpp"
#include "state/state.hpp"
#include "state/trace.hpp"

namespace buffy::state {

/// Deterministic self-timed executor for one (graph, capacities) pair.
class Engine {
 public:
  /// The graph must outlive the engine. Capacities must cover every channel.
  Engine(const sdf::Graph& graph, Capacities capacities);

  /// Returns to time 0: initial tokens on the channels, then the start phase
  /// of time step 0 (enabled actors begin firing immediately).
  void reset();

  /// Swaps in new capacities without re-walking the graph (the flattened
  /// per-actor port tables are capacity-independent), then reset()s. This
  /// is what lets one engine serve every distribution of a design-space
  /// exploration instead of being rebuilt per run.
  void reconfigure(Capacities capacities);

  /// Advances one time step: completes due firings (consume + produce), then
  /// starts every enabled actor. Returns false when the graph is deadlocked
  /// after this step (no actor firing); calling step() again is then a no-op
  /// returning false.
  bool step();

  /// Advances directly to the next completion time (the minimum remaining
  /// clock). Between completions no start can become enabled, so this is
  /// observationally identical to repeated step() but skips idle time —
  /// essential for graphs with large execution times (e.g. H.263).
  /// Returns false when deadlocked after the advance.
  bool advance();

  /// Current time (0 after reset; incremented by each step).
  [[nodiscard]] i64 now() const { return now_; }

  /// True when no actor is firing and none can start.
  [[nodiscard]] bool deadlocked() const { return deadlocked_; }

  /// Actors whose firing completed during the most recent step, in actor
  /// index order. Empty directly after reset().
  [[nodiscard]] const std::vector<sdf::ActorId>& completed() const {
    return completed_;
  }

  /// Actors whose firing started during the most recent step (or during
  /// reset() for the start phase of time 0).
  [[nodiscard]] const std::vector<sdf::ActorId>& started() const {
    return started_;
  }

  /// Snapshot of the timed state (clocks, tokens).
  [[nodiscard]] TimedState snapshot() const;

  /// Writes the timed state into a caller-provided buffer of exactly
  /// num_actors + num_channels words (clocks first, then tokens) — the
  /// allocation-free sibling of snapshot() used by the throughput kernel's
  /// arena-backed visited-state table.
  void snapshot_into(std::span<i64> out) const;

  /// Remaining firing time of an actor (0 = idle).
  [[nodiscard]] i64 clock(sdf::ActorId a) const { return clocks_[a.index()]; }

  /// Tokens currently stored in a channel.
  [[nodiscard]] i64 tokens(sdf::ChannelId c) const {
    return tokens_[c.index()];
  }

  /// Tokens plus space claimed by firings in progress.
  [[nodiscard]] i64 occupancy(sdf::ChannelId c) const {
    return occupied_[c.index()];
  }

  /// Per-channel maximum of occupancy() observed since reset().
  [[nodiscard]] const std::vector<i64>& max_occupancy() const {
    return max_occupancy_;
  }

  /// Channels whose space check currently fails for an idle actor whose
  /// token checks all pass — the "storage dependencies" that delay firings
  /// and guide the incremental design-space exploration. Evaluated on the
  /// current state (i.e. after the most recent start phase).
  [[nodiscard]] std::vector<sdf::ChannelId> space_blocked_channels() const;

  /// Allocation-free variant: clears `out` and fills it with the blocked
  /// channels, reusing an internal scratch bitmap. `out` keeps its capacity
  /// across calls, so steady-state use never touches the heap.
  void space_blocked_channels(std::vector<sdf::ChannelId>& out) const;

  /// When on, every start phase records the current time against each
  /// space-blocked channel (same per-instant semantics as
  /// space_blocked_channels, which samples after the start phase: space
  /// never frees and tokens never change within an instant, and a channel's
  /// occupancy is only claimed by its single producer, so the in-phase view
  /// equals the post-phase one). The cost is one extra check per actor that
  /// failed to start — there is no separate scan per advance. Takes effect
  /// at the next reset()/reconfigure().
  void set_space_block_tracking(bool on) { track_space_block_ = on; }

  /// Per-channel time of the most recent space-blocked instant since
  /// reset(), -1 when never blocked. Only maintained while tracking is on.
  [[nodiscard]] const std::vector<i64>& last_space_block() const {
    return last_space_block_;
  }

  /// Optional recorder notified of every firing start. Not owned; may be
  /// null. Set before reset() to capture the time-0 start phase.
  void set_recorder(FiringRecorder* recorder) { recorder_ = recorder; }

  /// Optional processor binding: processor_of[i] is the processor of actor
  /// i; actors sharing a processor execute mutually exclusively (the
  /// paper's multiprocessor context). Ties among ready actors go to the
  /// lower actor index (fixed-priority list scheduling) — execution stays
  /// deterministic. An empty vector removes the binding. Call before
  /// reset(); the binding does not enlarge the timed state (processor
  /// occupancy is derivable from the clocks).
  void set_binding(std::vector<std::size_t> processor_of);

  /// The current processor binding (empty = unbound).
  [[nodiscard]] const std::vector<std::size_t>& binding() const {
    return processor_of_;
  }

  [[nodiscard]] const sdf::Graph& graph() const { return graph_; }
  [[nodiscard]] const Capacities& capacities() const { return capacities_; }

  /// BUFFY_AUDIT hook (DESIGN.md §9): re-derives the channel-storage
  /// invariants from the current state — tokens >= 0, stored tokens never
  /// exceed the claimed occupancy, and occupancy never exceeds a bounded
  /// channel's capacity — failing via audit::fail on any violation. The
  /// throughput kernel calls this after every advance while audit mode is
  /// on; it is valid at any point between steps.
  void audit_verify_invariants() const;

  /// Audit tamper hook: forges the claimed occupancy of one channel by
  /// `delta` tokens, so tests can prove audit_verify_invariants reports a
  /// capacity breach with a precise diagnostic. Never called outside
  /// tests.
  void corrupt_occupancy_for_test(sdf::ChannelId c, i64 delta);

 private:
  struct PortRef {
    std::size_t channel;
    i64 rate;
  };

  [[nodiscard]] bool can_start(std::size_t actor) const;
  bool can_start_tracked(std::size_t actor);
  void start_phase();
  bool advance_by(i64 delta);

  const sdf::Graph& graph_;
  Capacities capacities_;

  // Flattened per-actor structure for the hot loop.
  std::vector<i64> exec_time_;
  std::vector<std::vector<PortRef>> inputs_;
  std::vector<std::vector<PortRef>> outputs_;
  std::vector<i64> initial_tokens_;

  std::vector<i64> clocks_;
  std::vector<i64> tokens_;
  std::vector<i64> occupied_;
  std::vector<i64> max_occupancy_;
  std::vector<sdf::ActorId> completed_;
  std::vector<sdf::ActorId> started_;
  i64 now_ = 0;
  // Minimum positive clock (the next completion time minus now_); 0 when no
  // firing is in flight. Maintained by the completion loop and start_phase
  // so advance() never rescans all clocks to find its delta.
  i64 next_completion_ = 0;
  bool deadlocked_ = false;
  FiringRecorder* recorder_ = nullptr;
  std::vector<std::size_t> processor_of_;  // empty = no binding
  std::vector<i64> proc_running_;          // firings in flight per processor
  mutable std::vector<char> blocked_scratch_;  // space_blocked_channels
  bool track_space_block_ = false;
  std::vector<i64> last_space_block_;  // per channel; -1 = never
};

}  // namespace buffy::state
