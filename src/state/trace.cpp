// trace.hpp is header-only; this translation unit anchors it in the library.
#include "state/trace.hpp"
