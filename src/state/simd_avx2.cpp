// AVX2 implementation of the lane-step kernel (DESIGN.md §15).
//
// Same contract and bit-identical results as lane_step_swar; four i64
// lanes per 256-bit vector, hand-scheduled with compare/blend mask
// arithmetic. The narrow twin (lane_step_avx2_32, eight i32 lanes per
// vector) is likewise hand-written, block-outermost: each 8-lane block
// runs the whole step with its masks, accumulator and time rows held in
// registers, touching memory only for the per-actor/per-channel rows it
// actually updates (testz gates skip the port loops of blocks where no
// lane completed or started). This is the
// only translation unit in the tree built with -mavx2 and the only place
// raw vector intrinsics are permitted (layer_lint bans them elsewhere),
// so nothing outside the runtime lane_avx2_available() gate ever executes
// an AVX2 instruction — the library stays loadable on every x86-64
// microarchitecture and non-x86 builds compile this file down to the SWAR
// fallback.
#include "state/simd_kernel.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace buffy::state {

namespace {

inline __m256i load4(const i64* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline void store4(i64* p, __m256i x) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), x);
}
/// Signed 64-bit minimum (AVX2 has no epi64 min; blend on compare).
inline __m256i min4(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}
/// One bit per lane from a whole-word lane mask.
inline u64 bits4(__m256i m) {
  return static_cast<u64>(_mm256_movemask_pd(_mm256_castsi256_pd(m)));
}

inline __m256i load8(const i32* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline void store8(i32* p, __m256i x) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), x);
}
/// One bit per lane from a whole-word i32 lane mask (eight lanes).
inline u64 bits8(__m256i m) {
  return static_cast<u64>(_mm256_movemask_ps(_mm256_castsi256_ps(m)));
}
/// Sign-extends the low/high four i32 lanes of a mask (or value) to i64,
/// for the kernel rows that stay 64-bit under the narrow kernel.
inline __m256i widen_lo(__m256i m) {
  return _mm256_cvtepi32_epi64(_mm256_castsi256_si128(m));
}
inline __m256i widen_hi(__m256i m) {
  return _mm256_cvtepi32_epi64(_mm256_extracti128_si256(m, 1));
}

}  // namespace

LaneStepResult lane_step_avx2(const LaneKernelView& v) {
  const std::size_t S = v.stride;
  i64* const cm = v.scratch;
  i64* const tok = v.scratch + S;
  i64* const en = v.scratch + 2 * S;
  i64* const acc = v.scratch + 3 * S;

  const __m256i zero = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi64x(-1);
  const __m256i never = _mm256_set1_epi64x(kLaneNever);

  for (std::size_t l = 0; l < S; l += 4) {
    store4(v.now + l, _mm256_add_epi64(load4(v.now + l), load4(v.delta + l)));
    store4(acc + l, never);
  }

  u64 target_bits = 0;

  // Completion phase (see simd_swar.cpp for the phase semantics).
  for (std::size_t a = 0; a < v.num_actors; ++a) {
    i64* const row = v.clocks + a * S;
    __m256i any = zero;
    for (std::size_t l = 0; l < S; l += 4) {
      const __m256i c = load4(row + l);
      const __m256i idle = _mm256_cmpeq_epi64(c, zero);
      const __m256i completed =
          _mm256_andnot_si256(idle, _mm256_cmpeq_epi64(c, load4(v.delta + l)));
      const __m256i left =
          _mm256_sub_epi64(c, _mm256_andnot_si256(idle, load4(v.delta + l)));
      store4(row + l, left);
      store4(cm + l, completed);
      any = _mm256_or_si256(any, completed);
      const __m256i cand = _mm256_or_si256(
          left, _mm256_and_si256(_mm256_cmpeq_epi64(left, zero), never));
      store4(acc + l, min4(load4(acc + l), cand));
    }
    if (a == v.target) {
      for (std::size_t l = 0; l < S; l += 4) {
        target_bits |= bits4(load4(cm + l)) << l;
      }
    }
    if (_mm256_testz_si256(any, any) != 0) continue;
    for (std::size_t p = v.in_begin[a]; p < v.in_begin[a + 1]; ++p) {
      const LanePort& port = v.in_ports[p];
      i64* const tk = v.tokens + port.channel * S;
      i64* const oc = v.occupied + port.channel * S;
      const __m256i rate = _mm256_set1_epi64x(port.rate);
      for (std::size_t l = 0; l < S; l += 4) {
        const __m256i d = _mm256_and_si256(rate, load4(cm + l));
        store4(tk + l, _mm256_sub_epi64(load4(tk + l), d));
        store4(oc + l, _mm256_sub_epi64(load4(oc + l), d));
      }
    }
    for (std::size_t p = v.out_begin[a]; p < v.out_begin[a + 1]; ++p) {
      const LanePort& port = v.out_ports[p];
      i64* const tk = v.tokens + port.channel * S;
      const __m256i rate = _mm256_set1_epi64x(port.rate);
      for (std::size_t l = 0; l < S; l += 4) {
        store4(tk + l, _mm256_add_epi64(load4(tk + l),
                                        _mm256_and_si256(rate, load4(cm + l))));
      }
    }
  }

  // Start phase, one pass in actor order.
  for (std::size_t a = 0; a < v.num_actors; ++a) {
    i64* const row = v.clocks + a * S;
    const __m256i et = _mm256_set1_epi64x(v.exec_time[a]);
    __m256i any = zero;
    for (std::size_t l = 0; l < S; l += 4) {
      const __m256i t = _mm256_and_si256(
          load4(v.live + l), _mm256_cmpeq_epi64(load4(row + l), zero));
      store4(tok + l, t);
      any = _mm256_or_si256(any, t);
    }
    if (_mm256_testz_si256(any, any) != 0) continue;
    for (std::size_t p = v.in_begin[a]; p < v.in_begin[a + 1]; ++p) {
      const LanePort& port = v.in_ports[p];
      const i64* const tk = v.tokens + port.channel * S;
      const __m256i rate = _mm256_set1_epi64x(port.rate);
      for (std::size_t l = 0; l < S; l += 4) {
        // tokens >= rate  <=>  !(rate > tokens)
        store4(tok + l,
               _mm256_andnot_si256(_mm256_cmpgt_epi64(rate, load4(tk + l)),
                                   load4(tok + l)));
      }
    }
    for (std::size_t l = 0; l < S; l += 4) store4(en + l, load4(tok + l));
    for (std::size_t p = v.out_begin[a]; p < v.out_begin[a + 1]; ++p) {
      const LanePort& port = v.out_ports[p];
      const i64* const oc = v.occupied + port.channel * S;
      const i64* const cp = v.caps + port.channel * S;
      const __m256i rate = _mm256_set1_epi64x(port.rate);
      if (v.last_block != nullptr) {
        i64* const lb = v.last_block + port.channel * S;
        for (std::size_t l = 0; l < S; l += 4) {
          const __m256i over = _mm256_cmpgt_epi64(
              _mm256_add_epi64(load4(oc + l), rate), load4(cp + l));
          const __m256i fail = _mm256_and_si256(load4(tok + l), over);
          store4(en + l, _mm256_andnot_si256(fail, load4(en + l)));
          store4(lb + l,
                 _mm256_blendv_epi8(load4(lb + l), load4(v.now + l), fail));
        }
      } else {
        for (std::size_t l = 0; l < S; l += 4) {
          const __m256i over = _mm256_cmpgt_epi64(
              _mm256_add_epi64(load4(oc + l), rate), load4(cp + l));
          store4(en + l, _mm256_andnot_si256(over, load4(en + l)));
        }
      }
    }
    any = zero;
    for (std::size_t l = 0; l < S; l += 4) {
      any = _mm256_or_si256(any, load4(en + l));
    }
    if (_mm256_testz_si256(any, any) != 0) continue;
    for (std::size_t l = 0; l < S; l += 4) {
      const __m256i e = load4(en + l);
      store4(row + l, _mm256_or_si256(load4(row + l),
                                      _mm256_and_si256(et, e)));
      const __m256i cand = _mm256_or_si256(
          _mm256_and_si256(et, e), _mm256_andnot_si256(e, never));
      store4(acc + l, min4(load4(acc + l), cand));
    }
    for (std::size_t p = v.out_begin[a]; p < v.out_begin[a + 1]; ++p) {
      const LanePort& port = v.out_ports[p];
      i64* const oc = v.occupied + port.channel * S;
      const __m256i rate = _mm256_set1_epi64x(port.rate);
      for (std::size_t l = 0; l < S; l += 4) {
        store4(oc + l, _mm256_add_epi64(load4(oc + l),
                                        _mm256_and_si256(rate, load4(en + l))));
      }
    }
  }

  // Next-completion fold and deadlock bits.
  u64 dead_bits = 0;
  for (std::size_t l = 0; l < S; l += 4) {
    const __m256i a4 = load4(acc + l);
    const __m256i live4 = load4(v.live + l);
    const __m256i finite =
        _mm256_andnot_si256(_mm256_cmpeq_epi64(a4, never), ones);
    const __m256i next =
        _mm256_and_si256(a4, _mm256_and_si256(finite, live4));
    store4(v.delta + l, next);
    dead_bits |= bits4(_mm256_and_si256(
                     live4, _mm256_cmpeq_epi64(next, zero)))
                 << l;
  }
  return LaneStepResult{target_bits, dead_bits};
}

// Narrow (i32) twin: identical structure at eight lanes per vector. Only
// two rows are 64-bit here — `now` and `last_block` hold absolute
// instants — so their updates widen the lane masks with sign-extending
// unpacks; everything else is straight epi32 arithmetic, including the
// native min (AVX2 has _mm256_min_epi32 but no epi64 min) and single
// movemask bit extraction that the width-generic body cannot express.
LaneStepResult lane_step_avx2_32(const LaneKernelView32& v) {
  const std::size_t S = v.stride;

  const __m256i zero = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi32(-1);
  const __m256i never = _mm256_set1_epi32(kLaneNever32);

  u64 target_bits = 0;
  u64 dead_bits = 0;

  // Block-outermost: lanes never interact, so each eight-lane block runs
  // the whole step — advance, completion phase, start phase, fold — with
  // its delta, live, next-completion accumulator and both halves of `now`
  // held in registers. No scratch rows at all (the view's scratch space
  // is left untouched), and every phase gate is per block.
  for (std::size_t l = 0; l < S; l += 8) {
    const __m256i delta = load8(v.delta + l);
    const __m256i live = load8(v.live + l);
    const __m256i now_lo =
        _mm256_add_epi64(load4(v.now + l), widen_lo(delta));
    const __m256i now_hi =
        _mm256_add_epi64(load4(v.now + l + 4), widen_hi(delta));
    store4(v.now + l, now_lo);
    store4(v.now + l + 4, now_hi);
    __m256i acc = never;

    // Completion phase (see simd_swar.cpp for the phase semantics).
    for (std::size_t a = 0; a < v.num_actors; ++a) {
      i32* const row = v.clocks + a * S + l;
      const __m256i c = load8(row);
      const __m256i idle = _mm256_cmpeq_epi32(c, zero);
      const __m256i completed =
          _mm256_andnot_si256(idle, _mm256_cmpeq_epi32(c, delta));
      const __m256i left =
          _mm256_sub_epi32(c, _mm256_andnot_si256(idle, delta));
      store8(row, left);
      acc = _mm256_min_epi32(
          acc, _mm256_or_si256(
                   left, _mm256_and_si256(_mm256_cmpeq_epi32(left, zero),
                                          never)));
      if (a == v.target) target_bits |= bits8(completed) << l;
      if (_mm256_testz_si256(completed, completed) != 0) continue;
      for (std::size_t p = v.in_begin[a]; p < v.in_begin[a + 1]; ++p) {
        const LanePort& port = v.in_ports[p];
        i32* const tk = v.tokens + port.channel * S + l;
        i32* const oc = v.occupied + port.channel * S + l;
        const __m256i d8 = _mm256_and_si256(
            _mm256_set1_epi32(static_cast<i32>(port.rate)), completed);
        store8(tk, _mm256_sub_epi32(load8(tk), d8));
        store8(oc, _mm256_sub_epi32(load8(oc), d8));
      }
      for (std::size_t p = v.out_begin[a]; p < v.out_begin[a + 1]; ++p) {
        const LanePort& port = v.out_ports[p];
        i32* const tk = v.tokens + port.channel * S + l;
        const __m256i d8 = _mm256_and_si256(
            _mm256_set1_epi32(static_cast<i32>(port.rate)), completed);
        store8(tk, _mm256_add_epi32(load8(tk), d8));
      }
    }

    // Start phase, one pass in actor order (a start claims space but
    // never adds tokens or frees space, so no start can enable another
    // within the instant — the scalar engine's argument, lane-widened).
    for (std::size_t a = 0; a < v.num_actors; ++a) {
      i32* const row = v.clocks + a * S + l;
      const __m256i c = load8(row);
      __m256i tok = _mm256_and_si256(live, _mm256_cmpeq_epi32(c, zero));
      if (_mm256_testz_si256(tok, tok) != 0) continue;
      for (std::size_t p = v.in_begin[a]; p < v.in_begin[a + 1]; ++p) {
        const LanePort& port = v.in_ports[p];
        const __m256i rate = _mm256_set1_epi32(static_cast<i32>(port.rate));
        // tokens >= rate  <=>  !(rate > tokens)
        tok = _mm256_andnot_si256(
            _mm256_cmpgt_epi32(rate, load8(v.tokens + port.channel * S + l)),
            tok);
      }
      __m256i en = tok;
      for (std::size_t p = v.out_begin[a]; p < v.out_begin[a + 1]; ++p) {
        const LanePort& port = v.out_ports[p];
        const __m256i rate = _mm256_set1_epi32(static_cast<i32>(port.rate));
        const __m256i over = _mm256_cmpgt_epi32(
            _mm256_add_epi32(load8(v.occupied + port.channel * S + l), rate),
            load8(v.caps + port.channel * S + l));
        if (v.last_block != nullptr) {
          // Space-blocked instants are recorded whenever the token checks
          // pass but a space check fails, mirroring
          // Engine::can_start_tracked.
          const __m256i fail = _mm256_and_si256(tok, over);
          en = _mm256_andnot_si256(fail, en);
          i64* const lb = v.last_block + port.channel * S + l;
          store4(lb, _mm256_blendv_epi8(load4(lb), now_lo, widen_lo(fail)));
          store4(lb + 4,
                 _mm256_blendv_epi8(load4(lb + 4), now_hi, widen_hi(fail)));
        } else {
          en = _mm256_andnot_si256(over, en);
        }
      }
      if (_mm256_testz_si256(en, en) != 0) continue;
      const __m256i et = _mm256_set1_epi32(static_cast<i32>(v.exec_time[a]));
      const __m256i claimed = _mm256_and_si256(et, en);
      store8(row, _mm256_or_si256(c, claimed));  // c is 0 wherever en is set
      acc = _mm256_min_epi32(
          acc, _mm256_or_si256(claimed, _mm256_andnot_si256(en, never)));
      for (std::size_t p = v.out_begin[a]; p < v.out_begin[a + 1]; ++p) {
        const LanePort& port = v.out_ports[p];
        i32* const oc = v.occupied + port.channel * S + l;
        const __m256i rate = _mm256_set1_epi32(static_cast<i32>(port.rate));
        store8(oc, _mm256_add_epi32(load8(oc), _mm256_and_si256(rate, en)));
      }
    }

    // Next-completion fold and deadlock bits.
    const __m256i finite =
        _mm256_andnot_si256(_mm256_cmpeq_epi32(acc, never), ones);
    const __m256i next =
        _mm256_and_si256(acc, _mm256_and_si256(finite, live));
    store8(v.delta + l, next);
    dead_bits |= bits8(_mm256_and_si256(
                     live, _mm256_cmpeq_epi32(next, zero)))
                 << l;
  }
  return LaneStepResult{target_bits, dead_bits};
}

}  // namespace buffy::state

#else  // non-x86 builds: no AVX2; keep the symbols, delegate to SWAR.

namespace buffy::state {

LaneStepResult lane_step_avx2(const LaneKernelView& v) {
  return lane_step_swar(v);
}

LaneStepResult lane_step_avx2_32(const LaneKernelView32& v) {
  return lane_step_swar32(v);
}

}  // namespace buffy::state

#endif
