#include "state/visited_table.hpp"

#include <algorithm>
#include <string>

#include "base/audit.hpp"
#include "base/diagnostics.hpp"
#include "base/hash.hpp"

namespace buffy::state {

void VisitedTable::reset(std::size_t record_words) {
  BUFFY_REQUIRE(record_words > 0, "visited-state records must be non-empty");
  record_words_ = record_words;
  arena_.clear();
  hashes_.clear();
  entries_.clear();
  staged_ = false;
  if (slots_.empty()) slots_.resize(64);
  std::fill(slots_.begin(), slots_.end(), kEmptySlot);
  mask_ = slots_.size() - 1;
}

std::span<i64> VisitedTable::stage() {
  BUFFY_ASSERT(record_words_ > 0, "stage() before reset()");
  if (!staged_) {
    arena_.resize(arena_.size() + record_words_);
    staged_ = true;
  }
  return {arena_.data() + entries_.size() * record_words_, record_words_};
}

const VisitedTable::Entry* VisitedTable::find_or_insert(const Entry& entry) {
  BUFFY_ASSERT(staged_, "find_or_insert() without a staged record");
  // Keep the load factor under ~0.7 so probe chains stay short.
  if ((entries_.size() + 1) * 10 > slots_.size() * 7) grow_slots();

  const std::size_t n = entries_.size();
  const i64* rec = arena_.data() + n * record_words_;
  const u64 h = hash_words(std::span<const i64>(rec, record_words_));
  std::size_t i = static_cast<std::size_t>(h) & mask_;
  for (std::size_t step = 1;; ++step) {
    const u32 s = slots_[i];
    if (s == kEmptySlot) {
      BUFFY_ASSERT(n < kEmptySlot, "visited-state table record limit");
      slots_[i] = static_cast<u32>(n);
      hashes_.push_back(h);
      entries_.push_back(entry);
      staged_ = false;
      return nullptr;
    }
    if (hashes_[s] == h &&
        std::equal(rec, rec + record_words_,
                   arena_.data() + s * record_words_)) {
      arena_.resize(arena_.size() - record_words_);  // discard the staged copy
      staged_ = false;
      return &entries_[s];
    }
    // Triangular probing: on a power-of-two table the offsets 1, 3, 6, ...
    // visit every slot exactly once per cycle.
    i = (i + step) & mask_;
  }
}

std::span<const i64> VisitedTable::record(std::size_t i) const {
  BUFFY_REQUIRE(i < entries_.size(), "record index out of range");
  return {arena_.data() + i * record_words_, record_words_};
}

std::size_t VisitedTable::footprint_bytes() const {
  return arena_.capacity() * sizeof(i64) + hashes_.capacity() * sizeof(u64) +
         entries_.capacity() * sizeof(Entry) +
         slots_.capacity() * sizeof(u32);
}

void VisitedTable::audit_verify() const {
  for (std::size_t r = 0; r < entries_.size(); ++r) {
    audit::note_check();
    const i64* rec = arena_.data() + r * record_words_;
    const u64 fresh = hash_words(std::span<const i64>(rec, record_words_));
    if (fresh != hashes_[r]) {
      audit::fail("visited-table-hash",
                  "record " + std::to_string(r) + ": cached hash " +
                      std::to_string(hashes_[r]) +
                      " != recomputed hash " + std::to_string(fresh) +
                      " over its arena words");
    }
    // Reachability: probing from the (verified) hash must reach the
    // record before an empty slot, or later equal states would be
    // inserted as fresh records and the cycle never detected.
    std::size_t i = static_cast<std::size_t>(fresh) & mask_;
    bool reachable = false;
    for (std::size_t step = 1; slots_[i] != kEmptySlot; ++step) {
      if (slots_[i] == static_cast<u32>(r)) {
        reachable = true;
        break;
      }
      i = (i + step) & mask_;
    }
    if (!reachable) {
      audit::fail("visited-table-reach",
                  "record " + std::to_string(r) +
                      " is not reachable from its hash through the slot "
                      "array");
    }
  }
}

void VisitedTable::corrupt_hash_for_test(std::size_t i) {
  BUFFY_REQUIRE(i < hashes_.size(), "corrupt_hash_for_test out of range");
  hashes_[i] ^= 1;
}

void VisitedTable::grow_slots() {
  slots_.assign(slots_.size() * 2, kEmptySlot);
  mask_ = slots_.size() - 1;
  // Re-seat every committed record from its cached hash; the record words
  // themselves are never re-read.
  for (std::size_t r = 0; r < entries_.size(); ++r) {
    std::size_t i = static_cast<std::size_t>(hashes_[r]) & mask_;
    for (std::size_t step = 1; slots_[i] != kEmptySlot; ++step) {
      i = (i + step) & mask_;
    }
    slots_[i] = static_cast<u32>(r);
  }
}

}  // namespace buffy::state
