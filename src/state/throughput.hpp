// Throughput via reduced state-space exploration (paper Sec. 7).
//
// Only the states reached when the firing of a chosen target actor completes
// are stored, together with the time elapsed since the previous such state
// (the d_a dimension of the paper). The deterministic execution is a lasso:
// either it deadlocks (throughput 0) or a stored state recurs, closing the
// unique cycle; the throughput of the target actor is then the number of
// its firings on the cycle divided by the cycle's duration (Property 2).
#pragma once

#include <algorithm>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "base/rational.hpp"
#include "exec/cancellation.hpp"
#include "exec/progress.hpp"
#include "sdf/graph.hpp"
#include "state/engine.hpp"
#include "state/state.hpp"
#include "state/visited_table.hpp"

namespace buffy::state {

/// Options for a throughput computation.
struct ThroughputOptions {
  /// Actor whose firing rate is measured and whose completions define the
  /// reduced state space. Must be a valid id of the graph being run.
  sdf::ActorId target;
  /// Safety bound on simulated discrete time steps (the units of
  /// Actor::execution_time); exceeding it throws Error.
  u64 max_steps = 100'000'000;
  /// When set, the result carries the reduced state sequence (Fig. 4).
  bool collect_reduced_states = false;
  /// When set, the result carries the per-channel maximum occupancy.
  bool track_max_occupancy = false;
  /// When set, every firing start is recorded (schedule extraction).
  FiringRecorder* recorder = nullptr;
  /// Optional processor binding forwarded to Engine::set_binding (empty =
  /// unbound execution).
  std::vector<std::size_t> processor_of;
  /// Polled between execution steps; once cancelled the run throws
  /// exec::Cancelled (a partial state space has no usable throughput).
  /// The default token never cancels.
  exec::CancellationToken cancel;
  /// Optional metrics sink: stored reduced states are reported here when
  /// the run ends (including a cancelled unwind). Not owned; may be null.
  exec::Progress* progress = nullptr;
  /// When set, the run also collects the storage dependencies — channels
  /// whose space check delayed a firing during the periodic phase (or
  /// anywhere in a deadlocked run) — into ThroughputResult::storage_deps,
  /// fused into the simulation instead of costing a second one (see
  /// buffer::storage_dependencies for the reference definition).
  bool collect_storage_deps = false;
};

/// One entry of the reduced state space: the timed state at a completion of
/// the target actor plus the paper's d_a distance (time since the previous
/// completion; for the first entry, since time 0).
struct ReducedState {
  TimedState timed;
  i64 dist = 0;
  /// Absolute time of this completion.
  i64 time = 0;
  /// True for states on the detected cycle (periodic phase).
  bool on_cycle = false;
};

/// Outcome of a throughput computation.
struct ThroughputResult {
  /// Execution reached a state with no firing in progress and none possible.
  bool deadlocked = false;
  /// Target firings per discrete time step (exact rational, never
  /// rounded); 0 exactly when deadlocked.
  Rational throughput;
  /// Number of reduced states stored (Table 2's "maximum #states" metric).
  u64 states_stored = 0;
  /// Absolute time of the completion that opened the cycle.
  i64 cycle_start_time = 0;
  /// Cycle duration in time steps (0 on deadlock).
  i64 period = 0;
  /// Target firings on the cycle (0 on deadlock).
  i64 firings_on_cycle = 0;
  /// Total time simulated until the cycle closed / deadlock was reached.
  i64 time_steps = 0;
  /// Reduced states in visit order (only when requested).
  std::vector<ReducedState> reduced_states;
  /// Per-channel max occupancy (only when requested).
  std::vector<i64> max_occupancy;
  /// Storage dependencies of the run (only when collect_storage_deps was
  /// set), in channel-index order.
  std::vector<sdf::ChannelId> storage_deps;
};

/// Reusable throughput kernel: one Engine plus one arena-backed visited-
/// state table serving any number of runs over the same graph. Reusing a
/// solver across the runs of a design-space exploration keeps the hot path
/// allocation-free in steady state — the engine is reconfigure()d instead
/// of rebuilt and the visited arena is recycled instead of reallocated.
/// Not thread-safe; use one solver per worker (ThroughputSolverPool).
class ThroughputSolver {
 public:
  /// The graph must outlive the solver.
  explicit ThroughputSolver(const sdf::Graph& graph);

  /// Runs self-timed execution under the given capacities until the
  /// reduced state space closes its cycle or the graph deadlocks.
  ///
  /// Preconditions: `capacities` covers every channel of the graph, each
  /// capacity either unbounded or >= the channel's initial tokens;
  /// `opts.target` is a valid actor id of the graph. Throws Error when
  /// max_steps is exceeded (e.g. unbounded token accumulation under
  /// unbounded capacities in a graph that is not back-pressured) and
  /// exec::Cancelled when `opts.cancel` fires; the solver remains
  /// reusable after either throw.
  [[nodiscard]] ThroughputResult compute(const Capacities& capacities,
                                         const ThroughputOptions& opts);

  [[nodiscard]] const sdf::Graph& graph() const { return engine_.graph(); }

  /// Peak memory footprint of the visited-state table across all runs.
  [[nodiscard]] std::size_t table_bytes() const {
    return table_.footprint_bytes();
  }

 private:
  Engine engine_;
  VisitedTable table_;
};

/// A mutex-guarded free list of solvers over one graph, shared by the
/// workers of a parallel exploration. acquire()/release() cost one lock
/// each — noise next to the full state-space simulation in between — and
/// returned solvers keep their warmed-up arenas for the next run.
class ThroughputSolverPool {
 public:
  explicit ThroughputSolverPool(const sdf::Graph& graph) : graph_(graph) {}

  [[nodiscard]] std::unique_ptr<ThroughputSolver> acquire();
  void release(std::unique_ptr<ThroughputSolver> solver);

  /// Peak visited-table footprint over every solver ever released.
  [[nodiscard]] std::size_t max_table_bytes() const;

 private:
  const sdf::Graph& graph_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThroughputSolver>> free_;
  std::size_t max_table_bytes_ = 0;
};

/// Slot-indexed solver bank for a parallel exploration: one lazily built
/// ThroughputSolver per exec::ThreadPool slot (workers plus the caller),
/// each used exclusively by the thread occupying that slot. Unlike
/// ThroughputSolverPool there is no lock on the per-candidate path — a
/// worker keeps the same solver (engine + warmed visited arena) for the
/// whole exploration, which is what makes engine state thread-affine.
/// Slots are padded to cache lines so neighbouring workers' slots never
/// false-share. Construction is cheap; a solver is built the first time
/// its slot is touched, so sequential runs only ever build one.
class WorkerSolvers {
 public:
  /// The graph must outlive the bank. `slots` is the pool's slot count
  /// (ThreadPool::num_slots() or exec::LazyThreadPool::num_slots()).
  WorkerSolvers(const sdf::Graph& graph, std::size_t slots)
      : graph_(graph), slots_(slots) {}

  /// The solver owned by `slot`, built on first use. Must only be called
  /// by the thread currently occupying that slot (see
  /// ThreadPool::current_slot); distinct slots race-freely share the bank.
  [[nodiscard]] ThroughputSolver& at(std::size_t slot) {
    Slot& s = slots_[slot];
    if (s.solver == nullptr) {
      s.solver = std::make_unique<ThroughputSolver>(graph_);
    }
    return *s.solver;
  }

  [[nodiscard]] std::size_t num_slots() const { return slots_.size(); }

  /// Peak visited-table footprint across every solver built so far. Call
  /// only while no worker is simulating (e.g. after a wave barrier).
  [[nodiscard]] std::size_t max_table_bytes() const {
    std::size_t result = 0;
    for (const Slot& s : slots_) {
      if (s.solver != nullptr) {
        result = std::max(result, s.solver->table_bytes());
      }
    }
    return result;
  }

 private:
  /// Cache-line isolation between adjacent slots: each worker mutates its
  /// own unique_ptr and the solver behind it every candidate.
  struct alignas(64) Slot {
    std::unique_ptr<ThroughputSolver> solver;
  };

  const sdf::Graph& graph_;
  std::vector<Slot> slots_;
};

/// Convenience RAII lease: acquires on construction, releases on scope
/// exit. A null pool yields a null solver — the caller's signal to fall
/// back to one-shot compute_throughput (the engine-per-run legacy path).
class PooledSolver {
 public:
  explicit PooledSolver(ThroughputSolverPool* pool)
      : pool_(pool), solver_(pool != nullptr ? pool->acquire() : nullptr) {}
  ~PooledSolver() {
    if (pool_ != nullptr) pool_->release(std::move(solver_));
  }
  PooledSolver(const PooledSolver&) = delete;
  PooledSolver& operator=(const PooledSolver&) = delete;

  [[nodiscard]] ThroughputSolver* get() { return solver_.get(); }

 private:
  ThroughputSolverPool* pool_;
  std::unique_ptr<ThroughputSolver> solver_;
};

/// One-shot form: builds a fresh solver per call (the pre-reuse code path,
/// still the right tool outside exploration loops). Same preconditions as
/// ThroughputSolver::compute; safe to call concurrently on the same graph
/// from any number of threads (each call owns its solver).
[[nodiscard]] ThroughputResult compute_throughput(const sdf::Graph& graph,
                                                  const Capacities& capacities,
                                                  const ThroughputOptions& opts);

/// Convenience overload: bounded capacities given as a plain vector with
/// one entry per channel, in channel-index order.
[[nodiscard]] ThroughputResult compute_throughput(const sdf::Graph& graph,
                                                  const std::vector<i64>& caps,
                                                  sdf::ActorId target);

}  // namespace buffy::state
