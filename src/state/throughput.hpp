// Throughput via reduced state-space exploration (paper Sec. 7).
//
// Only the states reached when the firing of a chosen target actor completes
// are stored, together with the time elapsed since the previous such state
// (the d_a dimension of the paper). The deterministic execution is a lasso:
// either it deadlocks (throughput 0) or a stored state recurs, closing the
// unique cycle; the throughput of the target actor is then the number of
// its firings on the cycle divided by the cycle's duration (Property 2).
#pragma once

#include <optional>
#include <vector>

#include "base/rational.hpp"
#include "exec/cancellation.hpp"
#include "exec/progress.hpp"
#include "sdf/graph.hpp"
#include "state/engine.hpp"
#include "state/state.hpp"

namespace buffy::state {

/// Options for a throughput computation.
struct ThroughputOptions {
  /// Actor whose firing rate is measured and whose completions define the
  /// reduced state space.
  sdf::ActorId target;
  /// Safety bound on simulated time steps; exceeding it throws.
  u64 max_steps = 100'000'000;
  /// When set, the result carries the reduced state sequence (Fig. 4).
  bool collect_reduced_states = false;
  /// When set, the result carries the per-channel maximum occupancy.
  bool track_max_occupancy = false;
  /// When set, every firing start is recorded (schedule extraction).
  FiringRecorder* recorder = nullptr;
  /// Optional processor binding forwarded to Engine::set_binding (empty =
  /// unbound execution).
  std::vector<std::size_t> processor_of;
  /// Polled between execution steps; once cancelled the run throws
  /// exec::Cancelled (a partial state space has no usable throughput).
  /// The default token never cancels.
  exec::CancellationToken cancel;
  /// Optional metrics sink: stored reduced states are reported here when
  /// the run ends (including a cancelled unwind). Not owned; may be null.
  exec::Progress* progress = nullptr;
};

/// One entry of the reduced state space: the timed state at a completion of
/// the target actor plus the paper's d_a distance (time since the previous
/// completion; for the first entry, since time 0).
struct ReducedState {
  TimedState timed;
  i64 dist = 0;
  /// Absolute time of this completion.
  i64 time = 0;
  /// True for states on the detected cycle (periodic phase).
  bool on_cycle = false;
};

/// Outcome of a throughput computation.
struct ThroughputResult {
  /// Execution reached a state with no firing in progress and none possible.
  bool deadlocked = false;
  /// Target firings per time step; 0 exactly when deadlocked.
  Rational throughput;
  /// Number of reduced states stored (Table 2's "maximum #states" metric).
  u64 states_stored = 0;
  /// Absolute time of the completion that opened the cycle.
  i64 cycle_start_time = 0;
  /// Cycle duration in time steps (0 on deadlock).
  i64 period = 0;
  /// Target firings on the cycle (0 on deadlock).
  i64 firings_on_cycle = 0;
  /// Total time simulated until the cycle closed / deadlock was reached.
  i64 time_steps = 0;
  /// Reduced states in visit order (only when requested).
  std::vector<ReducedState> reduced_states;
  /// Per-channel max occupancy (only when requested).
  std::vector<i64> max_occupancy;
};

/// Runs self-timed execution under the given capacities until the reduced
/// state space closes its cycle or the graph deadlocks. Throws Error when
/// max_steps is exceeded (e.g. unbounded token accumulation under unbounded
/// capacities in a graph that is not back-pressured).
[[nodiscard]] ThroughputResult compute_throughput(const sdf::Graph& graph,
                                                  const Capacities& capacities,
                                                  const ThroughputOptions& opts);

/// Convenience overload: bounded capacities given as a plain vector.
[[nodiscard]] ThroughputResult compute_throughput(const sdf::Graph& graph,
                                                  const std::vector<i64>& caps,
                                                  sdf::ActorId target);

}  // namespace buffy::state
