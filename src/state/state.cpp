#include "state/state.hpp"

#include "base/diagnostics.hpp"

namespace buffy::state {

Capacities Capacities::unbounded(std::size_t num_channels) {
  return Capacities(std::vector<i64>(num_channels, kUnbounded));
}

Capacities Capacities::bounded(std::vector<i64> caps) {
  for (const i64 c : caps) {
    BUFFY_REQUIRE(c >= 0, "channel capacities must be >= 0");
  }
  return Capacities(std::move(caps));
}

bool Capacities::is_bounded(std::size_t channel) const {
  BUFFY_REQUIRE(channel < caps_.size(), "channel index out of range");
  return caps_[channel] != kUnbounded;
}

i64 Capacities::capacity(std::size_t channel) const {
  BUFFY_REQUIRE(channel < caps_.size(), "channel index out of range");
  BUFFY_REQUIRE(caps_[channel] != kUnbounded,
                "capacity() called on an unbounded channel");
  return caps_[channel];
}

void Capacities::set_unbounded(std::size_t channel) {
  BUFFY_REQUIRE(channel < caps_.size(), "channel index out of range");
  caps_[channel] = kUnbounded;
}

void Capacities::set_capacity(std::size_t channel, i64 capacity) {
  BUFFY_REQUIRE(channel < caps_.size(), "channel index out of range");
  BUFFY_REQUIRE(capacity >= 0, "channel capacities must be >= 0");
  caps_[channel] = capacity;
}

TimedState::TimedState(std::span<const i64> clocks, std::span<const i64> tokens)
    : num_actors_(clocks.size()) {
  words_.reserve(clocks.size() + tokens.size());
  words_.insert(words_.end(), clocks.begin(), clocks.end());
  words_.insert(words_.end(), tokens.begin(), tokens.end());
}

}  // namespace buffy::state
