#include "state/throughput.hpp"

#include <algorithm>

#include "base/audit.hpp"
#include "base/diagnostics.hpp"
#include "trace/trace.hpp"

namespace buffy::state {

ThroughputSolver::ThroughputSolver(const sdf::Graph& graph)
    : engine_(graph, Capacities::unbounded(graph.num_channels())) {}

ThroughputResult ThroughputSolver::compute(const Capacities& capacities,
                                           const ThroughputOptions& opts) {
  const sdf::Graph& graph = engine_.graph();
  BUFFY_REQUIRE(opts.target.valid() && opts.target.index() < graph.num_actors(),
                "throughput target actor is not part of the graph");
  // reconfigure() and set_binding() both reset; attach the recorder only
  // for the reset that establishes the run's actual start state, so the
  // time-0 starts are recorded exactly once. Space-block tracking must be
  // armed before that reset to catch channels blocked at time 0.
  // One trace span per simulation; emitted on every exit, including the
  // cancellation unwind, so a trace shows aborted runs too. arg0 = the
  // distribution size (-1 under unbounded capacities), arg1 = reduced
  // states stored (set just before each return).
  i64 traced_size = 0;
  if (trace::enabled()) {
    for (std::size_t c = 0; c < capacities.size() && traced_size >= 0; ++c) {
      traced_size = capacities.is_bounded(c)
                        ? traced_size + capacities.capacity(c)
                        : -1;
    }
  }
  trace::Span sim_span(trace::EventKind::Simulation, traced_size);

  const bool collect_deps = opts.collect_storage_deps;
  engine_.set_space_block_tracking(collect_deps);
  const bool rebind = engine_.binding() != opts.processor_of;
  engine_.set_recorder(rebind ? nullptr : opts.recorder);
  engine_.reconfigure(capacities);
  if (rebind) {
    engine_.set_recorder(opts.recorder);
    engine_.set_binding(opts.processor_of);
  }

  ThroughputResult result;

  // One record per stored reduced state: [clocks | tokens | dist]. The
  // paper's full reduced key includes the d_a dimension (time since the
  // previous completion of the target) — see Fig. 4, where (1,0,1,2,2,9)
  // and (1,0,1,2,2,7) are distinct states.
  const std::size_t state_words =
      graph.num_actors() + graph.num_channels();
  table_.reset(state_words + 1);

  // The engine records the latest space-blocked instant per channel during
  // its start phases (see set_space_block_tracking); between completions
  // the blocked set is constant, so those instants cover every state of
  // the execution. Keeping only the latest time per channel is enough
  // because the filter below is a window ending at the final time.
  const auto finish_deps = [&](i64 window_start) {
    if (!collect_deps) return;
    const std::vector<i64>& last_blocked = engine_.last_space_block();
    for (std::size_t c = 0; c < last_blocked.size(); ++c) {
      if (last_blocked[c] >= window_start) {
        result.storage_deps.emplace_back(c);
      }
    }
  };

  i64 firings = 0;
  i64 last_completion_time = 0;

  const auto finish_max_occupancy = [&]() {
    if (opts.track_max_occupancy) result.max_occupancy = engine_.max_occupancy();
  };
  const auto report_states = [&]() {
    sim_span.set_args(traced_size, static_cast<i64>(table_.size()));
    if (opts.progress == nullptr) return;
    opts.progress->add_states(table_.size());
    opts.progress->add_simulations(1);
    opts.progress->note_arena_bytes(table_.footprint_bytes());
  };

  // Cancellation is polled every so many steps: often enough that a
  // deadline stops a runaway run promptly, rarely enough that the clock
  // read never shows up in profiles.
  constexpr u64 kCancelPollPeriod = 1024;

  for (u64 steps = 0; steps < opts.max_steps; ++steps) {
    if (steps % kCancelPollPeriod == 0 && opts.cancel.cancelled()) {
      report_states();
      throw exec::Cancelled();
    }
    const bool alive = engine_.advance();
    // Audit mode re-derives the storage invariants after every advance —
    // a capacity breach is caught at the step that introduced it, not at
    // whatever later point it corrupts the throughput.
    if (audit::enabled()) engine_.audit_verify_invariants();

    bool target_completed = false;
    for (const sdf::ActorId a : engine_.completed()) {
      if (a == opts.target) target_completed = true;
    }

    if (target_completed) {
      ++firings;
      const i64 dist = engine_.now() - last_completion_time;
      last_completion_time = engine_.now();
      const std::span<i64> record = table_.stage();
      engine_.snapshot_into(record.first(state_words));
      record[state_words] = dist;
      const VisitedTable::Entry* prev = table_.find_or_insert(
          VisitedTable::Entry{firings, engine_.now(), table_.size()});
      if (prev != nullptr) {
        // Cycle closed: the periodic phase runs from the earlier visit of
        // this state to now.
        result.firings_on_cycle = firings - prev->firing_index;
        result.period = engine_.now() - prev->time;
        result.cycle_start_time = prev->time;
        result.throughput = Rational(result.firings_on_cycle, result.period);
        result.states_stored = table_.size();
        result.time_steps = engine_.now();
        if (opts.collect_reduced_states) {
          for (std::size_t i = prev->order; i < result.reduced_states.size();
               ++i) {
            result.reduced_states[i].on_cycle = true;
          }
        }
        finish_deps(result.cycle_start_time);
        finish_max_occupancy();
        // The whole visited table is checked once per run, at cycle
        // close: every stored hash must still match its record and every
        // record must be reachable, or the cycle just "detected" may
        // have closed on the wrong state.
        if (audit::enabled()) table_.audit_verify();
        report_states();
        return result;
      }
      if (opts.collect_reduced_states) {
        result.reduced_states.push_back(ReducedState{
            .timed = engine_.snapshot(),
            .dist = dist,
            .time = engine_.now(),
            .on_cycle = false,
        });
      }
    }

    if (!alive) {
      result.deadlocked = true;
      result.throughput = Rational(0);
      result.states_stored = table_.size();
      result.time_steps = engine_.now();
      // A deadlocked run reports dependencies over the whole execution —
      // a firing may have been delayed by space long before the stall.
      finish_deps(0);
      finish_max_occupancy();
      report_states();
      return result;
    }
  }
  report_states();
  throw Error("throughput computation exceeded max_steps = " +
              std::to_string(opts.max_steps) + " on graph '" + graph.name() +
              "' (unbounded token growth or a bound set too low)");
}

std::unique_ptr<ThroughputSolver> ThroughputSolverPool::acquire() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      std::unique_ptr<ThroughputSolver> solver = std::move(free_.back());
      free_.pop_back();
      return solver;
    }
  }
  return std::make_unique<ThroughputSolver>(graph_);
}

void ThroughputSolverPool::release(std::unique_ptr<ThroughputSolver> solver) {
  if (solver == nullptr) return;
  const std::lock_guard<std::mutex> lock(mu_);
  max_table_bytes_ = std::max(max_table_bytes_, solver->table_bytes());
  free_.push_back(std::move(solver));
}

std::size_t ThroughputSolverPool::max_table_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t result = max_table_bytes_;
  for (const auto& solver : free_) {
    result = std::max(result, solver->table_bytes());
  }
  return result;
}

ThroughputResult compute_throughput(const sdf::Graph& graph,
                                    const Capacities& capacities,
                                    const ThroughputOptions& opts) {
  ThroughputSolver solver(graph);
  return solver.compute(capacities, opts);
}

ThroughputResult compute_throughput(const sdf::Graph& graph,
                                    const std::vector<i64>& caps,
                                    sdf::ActorId target) {
  return compute_throughput(graph, Capacities::bounded(caps),
                            ThroughputOptions{.target = target});
}

}  // namespace buffy::state
