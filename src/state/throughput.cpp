#include "state/throughput.hpp"

#include <unordered_map>

#include "base/diagnostics.hpp"

namespace buffy::state {

namespace {

// The stored key is the paper's full reduced state: the timed state plus
// the d_a dimension (time since the previous completion of the target) —
// see Fig. 4, where (1,0,1,2,2,9) and (1,0,1,2,2,7) are distinct states.
struct ReducedKey {
  TimedState timed;
  i64 dist;
  friend bool operator==(const ReducedKey&, const ReducedKey&) = default;
};

struct ReducedKeyHash {
  std::size_t operator()(const ReducedKey& k) const noexcept {
    return static_cast<std::size_t>(
        hash_combine(k.timed.hash(), static_cast<u64>(k.dist)));
  }
};

}  // namespace

ThroughputResult compute_throughput(const sdf::Graph& graph,
                                    const Capacities& capacities,
                                    const ThroughputOptions& opts) {
  BUFFY_REQUIRE(opts.target.valid() && opts.target.index() < graph.num_actors(),
                "throughput target actor is not part of the graph");
  Engine engine(graph, capacities);
  engine.set_recorder(opts.recorder);
  engine.set_binding(opts.processor_of);  // also resets the engine

  ThroughputResult result;

  struct Entry {
    i64 firing_index;
    i64 time;
    std::size_t order;  // position in result.reduced_states
  };
  std::unordered_map<ReducedKey, Entry, ReducedKeyHash> seen;

  i64 firings = 0;
  i64 last_completion_time = 0;

  const auto finish_max_occupancy = [&]() {
    if (opts.track_max_occupancy) result.max_occupancy = engine.max_occupancy();
  };
  const auto report_states = [&]() {
    if (opts.progress != nullptr) opts.progress->add_states(seen.size());
  };

  // Cancellation is polled every so many steps: often enough that a
  // deadline stops a runaway run promptly, rarely enough that the clock
  // read never shows up in profiles.
  constexpr u64 kCancelPollPeriod = 1024;

  for (u64 steps = 0; steps < opts.max_steps; ++steps) {
    if (steps % kCancelPollPeriod == 0 && opts.cancel.cancelled()) {
      report_states();
      throw exec::Cancelled();
    }
    const bool alive = engine.advance();

    bool target_completed = false;
    for (const sdf::ActorId a : engine.completed()) {
      if (a == opts.target) target_completed = true;
    }

    if (target_completed) {
      ++firings;
      TimedState snapshot = engine.snapshot();
      const i64 dist = engine.now() - last_completion_time;
      last_completion_time = engine.now();
      const ReducedKey key{snapshot, dist};
      const auto it = seen.find(key);
      if (it != seen.end()) {
        // Cycle closed: the periodic phase runs from the earlier visit of
        // this state to now.
        result.firings_on_cycle = firings - it->second.firing_index;
        result.period = engine.now() - it->second.time;
        result.cycle_start_time = it->second.time;
        result.throughput = Rational(result.firings_on_cycle, result.period);
        result.states_stored = seen.size();
        result.time_steps = engine.now();
        if (opts.collect_reduced_states) {
          for (std::size_t i = it->second.order;
               i < result.reduced_states.size(); ++i) {
            result.reduced_states[i].on_cycle = true;
          }
        }
        finish_max_occupancy();
        report_states();
        return result;
      }
      seen.emplace(key,
                   Entry{firings, engine.now(), result.reduced_states.size()});
      if (opts.collect_reduced_states) {
        result.reduced_states.push_back(ReducedState{
            .timed = std::move(snapshot),
            .dist = dist,
            .time = engine.now(),
            .on_cycle = false,
        });
      }
    }

    if (!alive) {
      result.deadlocked = true;
      result.throughput = Rational(0);
      result.states_stored = seen.size();
      result.time_steps = engine.now();
      finish_max_occupancy();
      report_states();
      return result;
    }
  }
  report_states();
  throw Error("throughput computation exceeded max_steps = " +
              std::to_string(opts.max_steps) + " on graph '" + graph.name() +
              "' (unbounded token growth or a bound set too low)");
}

ThroughputResult compute_throughput(const sdf::Graph& graph,
                                    const std::vector<i64>& caps,
                                    sdf::ActorId target) {
  return compute_throughput(graph, Capacities::bounded(caps),
                            ThroughputOptions{.target = target});
}

}  // namespace buffy::state
