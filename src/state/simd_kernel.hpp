// The lane-parallel kernel ABI (DESIGN.md §15): one lockstep time step of N
// self-timed SDF executions over structure-of-arrays state.
//
// The kernel is the data-parallel twin of Engine::advance. Where the
// scalar engine holds one clock per actor and one token count per channel,
// the lane kernel holds a *row* of `stride` values per actor/channel —
// lane l of every row belongs to candidate distribution l — and one time
// step updates all lanes of a row with straight-line, branch-free mask
// arithmetic. Divergence between lanes (different completion times,
// deadlocks, closed cycles) is handled entirely by masks: a lane that has
// finished is parked with delta == 0 and live == 0, which freezes every
// row update for that lane while the others keep stepping.
//
// Two implementations share this header: lane_step_swar (portable i64
// SWAR, src/state/simd_swar.cpp) and lane_step_avx2 (hand-written AVX2
// intrinsics, src/state/simd_avx2.cpp — the only translation unit compiled
// with -mavx2 and the only place intrinsics are allowed, enforced by
// layer_lint). Both compute bit-identical results; the AVX2 entry point
// must only be called after lane_avx2_available() returns true.
//
// The driver that owns the arrays, retires lanes and refills them from the
// candidate queue is state::LaneThroughputSolver (lane_throughput.hpp).
#pragma once

#include <cstddef>

#include "base/checked_math.hpp"

namespace buffy::state {

/// One flattened port of the kernel's per-actor port tables: the channel's
/// row index and the port rate (consumption or production, in tokens per
/// firing).
struct LanePort {
  std::size_t channel = 0;
  i64 rate = 0;
};

/// Sentinel "no firing in flight" value of the per-lane next-completion
/// fold; also the capacity sentinel for unbounded channels (no occupancy
/// can ever exceed it). Large enough that min-folds and `occupied + rate`
/// comparisons never overflow.
inline constexpr i64 kLaneNever = i64{1} << 62;

/// The narrow kernel's sentinel: same role at half width. The driver only
/// enters the i32 kernel when every magnitude of the batch (execution
/// times, rates, capacities) is at most kNarrowLimit, so sums like
/// `occupied + rate` stay below the sentinel and nothing wraps.
inline constexpr i32 kLaneNever32 = i32{1} << 30;

/// Largest magnitude the narrow (i32) kernel accepts; 2 * kNarrowLimit <
/// kLaneNever32, which keeps every kernel sum exact.
inline constexpr i64 kNarrowLimit = i64{1} << 28;

/// Structure-of-arrays view of a lane batch, over lane words of type T
/// (i64 for the full-range kernel, i32 for the narrow twin). All T-typed
/// row pointers address arrays of `stride` values per row, rows back to
/// back:
///
///   clocks     num_actors rows    remaining firing time, 0 = idle
///   tokens     num_channels rows  tokens stored in the channel
///   occupied   num_channels rows  tokens + space claimed by firings
///   caps       num_channels rows  capacity (kLaneNever = unbounded)
///   live       one row            lane mask: -1 = stepping, 0 = parked
///   delta      one row            this step's time advance per lane; must
///                                 be the lane's minimum positive clock
///                                 (> 0 for live lanes, 0 for parked ones)
///   scratch    four rows          kernel-owned mask/fold temporaries
///
/// Two rows stay i64 at either lane width, because they hold absolute
/// instants that grow with the run length rather than graph magnitudes:
///
///   now        one row            lane-local current time
///   last_block num_channels rows  latest space-blocked instant, -1 never
///                                 (nullptr when dependency tracking is off)
///
/// Lane masks are whole-word booleans (0 or -1) so they compose with data
/// by plain AND; the per-step result masks are packed one bit per lane.
/// `stride` must be a multiple of 8 (the widest vector path processes 8
/// narrow lanes per vector; the padding lanes beyond the real batch width
/// simply stay parked).
///
/// The port tables are capacity- and lane-independent graph structure:
/// actor a's inputs are in_ports[in_begin[a] .. in_begin[a + 1]) and its
/// outputs out_ports[out_begin[a] .. out_begin[a + 1)). Rates and
/// execution times are stored as i64 and narrowed by the kernel; the
/// driver guarantees they fit T (kNarrowLimit gate for i32).
template <typename T>
struct LaneKernelViewT {
  std::size_t num_actors = 0;
  std::size_t num_channels = 0;
  std::size_t stride = 0;
  std::size_t target = 0;  ///< actor whose completions are reported

  T* clocks = nullptr;
  T* tokens = nullptr;
  T* occupied = nullptr;
  const T* caps = nullptr;
  i64* last_block = nullptr;

  T* live = nullptr;
  T* delta = nullptr;
  i64* now = nullptr;
  T* scratch = nullptr;

  const i64* exec_time = nullptr;  ///< per actor, > 0
  const LanePort* in_ports = nullptr;
  const std::size_t* in_begin = nullptr;  ///< num_actors + 1 offsets
  const LanePort* out_ports = nullptr;
  const std::size_t* out_begin = nullptr;
};

/// The full-range view every backend must support.
using LaneKernelView = LaneKernelViewT<i64>;
/// The narrow view (batch magnitudes gated by kNarrowLimit).
using LaneKernelView32 = LaneKernelViewT<i32>;

/// The sentinel matching a view's lane word.
template <typename T>
inline constexpr T lane_never_of = T(kLaneNever);
template <>
inline constexpr i32 lane_never_of<i32> = kLaneNever32;

/// Per-step outcome, one bit per lane (bit l = lane l).
struct LaneStepResult {
  /// Lanes in which the target actor completed a firing this step.
  u64 target_completed = 0;
  /// Live lanes that are deadlocked after this step's start phase (no
  /// firing in flight and none could start). A lane can have both bits
  /// set; the driver gives cycle detection first claim, exactly like the
  /// scalar kernel.
  u64 deadlocked = 0;
};

/// Advances every live lane by its `delta` (the lane's next completion
/// time): completion phase (consume + produce for firings reaching zero),
/// then start phase in actor order (claim output space, set clocks), then
/// the next-completion fold. On return `now` has advanced, `delta` holds
/// each live lane's *next* step size (0 for lanes reported deadlocked) and
/// the result masks say which lanes need driver attention. Parked lanes
/// (live == 0, delta == 0) are untouched.
///
/// Preconditions: the view invariants above; every live lane's delta is
/// its minimum positive clock (the driver seeds this at refill and the
/// kernel maintains it afterwards).
[[nodiscard]] LaneStepResult lane_step_swar(const LaneKernelView& v);

/// The narrow SWAR step: i32 lanes, twice the lanes per vector. The
/// arithmetic is exact under the kNarrowLimit gate, so results are bit
/// identical to the i64 kernels on the same batch.
[[nodiscard]] LaneStepResult lane_step_swar32(const LaneKernelView32& v);

/// The AVX2 twin of lane_step_swar: identical contract, identical results
/// bit for bit. Must only be called when lane_avx2_available() is true; on
/// non-x86 builds it exists but delegates to the SWAR path.
[[nodiscard]] LaneStepResult lane_step_avx2(const LaneKernelView& v);

/// The AVX2 twin of lane_step_swar32 (8 lanes per vector); same contract
/// and availability gate as lane_step_avx2.
[[nodiscard]] LaneStepResult lane_step_avx2_32(const LaneKernelView32& v);

/// Runtime CPU dispatch gate for lane_step_avx2 (cached cpuid probe).
[[nodiscard]] bool lane_avx2_available();

}  // namespace buffy::state
