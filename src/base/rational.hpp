// Exact rational arithmetic.
//
// Throughput values are exact rationals (firings per time step, Property 2
// of the paper): comparing Pareto points with floating point would make the
// binary search on the throughput dimension unsound whenever two candidate
// distributions differ by less than an ulp. All throughput bookkeeping in
// buffy therefore uses this type; conversion to double happens only at the
// reporting boundary.
#pragma once

#include <compare>
#include <iosfwd>
#include <string>

#include "base/checked_math.hpp"

namespace buffy {

/// An exact rational number num/den with den > 0 and gcd(num, den) == 1.
class Rational {
 public:
  /// Zero.
  constexpr Rational() = default;

  /// The integer value n (denominator 1).
  constexpr Rational(i64 n) : num_(n) {}  // NOLINT: implicit by design

  /// num/den, normalised; throws Error when den == 0.
  Rational(i64 num, i64 den);

  [[nodiscard]] i64 num() const { return num_; }
  [[nodiscard]] i64 den() const { return den_; }

  [[nodiscard]] bool is_zero() const { return num_ == 0; }
  [[nodiscard]] bool is_integer() const { return den_ == 1; }

  /// Best-effort conversion for reporting; analyses never branch on this.
  [[nodiscard]] double to_double() const;

  /// "num/den", or just "num" when the value is an integer.
  [[nodiscard]] std::string str() const;

  /// Multiplicative inverse; throws Error when the value is zero.
  [[nodiscard]] Rational reciprocal() const;

  Rational operator-() const;
  Rational& operator+=(const Rational& o);
  Rational& operator-=(const Rational& o);
  Rational& operator*=(const Rational& o);
  Rational& operator/=(const Rational& o);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }

  friend bool operator==(const Rational& a, const Rational& b) = default;
  /// Exact order via cross multiplication (overflow-checked).
  friend std::strong_ordering operator<=>(const Rational& a,
                                          const Rational& b);

 private:
  void normalise();

  i64 num_ = 0;
  i64 den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// Parses "a", "a/b" or a simple decimal like "0.25" into an exact rational.
[[nodiscard]] Rational parse_rational(const std::string& text);

}  // namespace buffy
