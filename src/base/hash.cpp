#include "base/hash.hpp"

namespace buffy {

u64 mix64(u64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

u64 hash_step(u64 h, u64 word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

u64 hash_words(std::span<const i64> words) {
  u64 h = kFnvOffset;
  for (const i64 w : words) h = hash_step(h, static_cast<u64>(w));
  return mix64(h);
}

u64 hash_combine(u64 a, u64 b) {
  // Mix the first operand before folding in the second: feeding `a` directly
  // as the FNV seed would make small values symmetric under swap (the first
  // folded byte is an XOR).
  return mix64(hash_step(mix64(a), b));
}

}  // namespace buffy
