// Overflow-checked integer arithmetic and number-theoretic helpers.
//
// Buffer-sizing analysis multiplies port rates by repetition-vector entries;
// for multirate graphs (e.g. the H.263 decoder with rates in the thousands)
// intermediate products can approach the 64-bit range. Every arithmetic
// operation used on such values goes through this header so that an overflow
// raises a diagnosable error instead of silently corrupting an analysis
// result.
#pragma once

#include <cstdint>

namespace buffy {

/// Signed 64-bit integer used for all token counts, time stamps and rates.
using i64 = std::int64_t;
/// Unsigned 64-bit integer used for hashes and state counts.
using u64 = std::uint64_t;
/// Signed 32-bit integer used by the narrow lane kernel (DESIGN.md §15):
/// when every magnitude of a batch provably fits, packing lanes at half
/// width doubles the kernel's SIMD throughput. Never used for analysis
/// arithmetic.
using i32 = std::int32_t;

/// Returns a + b; throws OverflowError when the sum is unrepresentable.
[[nodiscard]] i64 checked_add(i64 a, i64 b);

/// Returns a - b; throws OverflowError when the difference is unrepresentable.
[[nodiscard]] i64 checked_sub(i64 a, i64 b);

/// Returns a * b; throws OverflowError when the product is unrepresentable.
[[nodiscard]] i64 checked_mul(i64 a, i64 b);

/// Greatest common divisor of |a| and |b|; gcd(0, 0) == 0. Defined over
/// the whole i64 domain; throws OverflowError only when the result itself
/// is unrepresentable (gcd(INT64_MIN, 0) == 2^63).
[[nodiscard]] i64 gcd(i64 a, i64 b);

/// Least common multiple of |a| and |b|; throws OverflowError when the
/// result is unrepresentable. lcm(0, x) == 0.
[[nodiscard]] i64 lcm(i64 a, i64 b);

/// Floor division with the mathematical convention (rounds toward -inf).
/// Throws OverflowError for the one unrepresentable quotient
/// (INT64_MIN / -1).
[[nodiscard]] i64 floor_div(i64 a, i64 b);

/// Ceiling division with the mathematical convention (rounds toward +inf).
/// Throws OverflowError for the one unrepresentable quotient
/// (INT64_MIN / -1).
[[nodiscard]] i64 ceil_div(i64 a, i64 b);

/// Mathematical modulus: result is always in [0, |b|). Defined over the
/// whole domain (b != 0), including b == INT64_MIN and (INT64_MIN, -1).
[[nodiscard]] i64 positive_mod(i64 a, i64 b);

}  // namespace buffy
