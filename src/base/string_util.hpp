// Small string helpers shared by the parsers and report renderers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "base/checked_math.hpp"

namespace buffy {

/// Copy of s with leading and trailing ASCII whitespace removed.
[[nodiscard]] std::string trim(std::string_view s);

/// Splits s on the separator character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Splits s on runs of ASCII whitespace; no empty fields are produced.
[[nodiscard]] std::vector<std::string> split_whitespace(std::string_view s);

/// True when s starts with the given prefix.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a decimal (optionally signed) 64-bit integer; throws ParseError
/// on any malformed or out-of-range input.
[[nodiscard]] i64 parse_i64(std::string_view s);

/// Left-pads s with spaces to the given width (no-op when already wider).
[[nodiscard]] std::string pad_left(const std::string& s, std::size_t width);

/// Right-pads s with spaces to the given width (no-op when already wider).
[[nodiscard]] std::string pad_right(const std::string& s, std::size_t width);

}  // namespace buffy
