// Error types and internal-consistency checks for the buffy library.
//
// All recoverable failures (malformed input, inconsistent graphs, numeric
// overflow) are reported via exceptions derived from buffy::Error so callers
// can distinguish library failures from the standard library's. Internal
// invariant violations use BUFFY_ASSERT, which throws InternalError rather
// than aborting so that long design-space explorations can report the
// offending distribution before terminating.
#pragma once

#include <stdexcept>
#include <string>

namespace buffy {

/// Root of the buffy exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Arithmetic left the representable 64-bit range.
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what) : Error(what) {}
};

/// Malformed external input (XML, DSL, command line).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A structurally invalid SDF graph was supplied to an analysis.
class GraphError : public Error {
 public:
  explicit GraphError(const std::string& what) : Error(what) {}
};

/// The graph is not consistent (no repetition vector exists).
class ConsistencyError : public GraphError {
 public:
  explicit ConsistencyError(const std::string& what) : GraphError(what) {}
};

/// A library invariant was violated; indicates a bug in buffy itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& message);
[[noreturn]] void require_fail(const char* file, int line,
                               const std::string& message);
}  // namespace detail

/// Internal invariant; failure indicates a buffy bug.
#define BUFFY_ASSERT(expr, message)                                        \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::buffy::detail::assert_fail(#expr, __FILE__, __LINE__, (message));  \
    }                                                                      \
  } while (false)

/// Precondition on caller-supplied data; failure throws buffy::Error.
#define BUFFY_REQUIRE(expr, message)                                       \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::buffy::detail::require_fail(__FILE__, __LINE__, (message));        \
    }                                                                      \
  } while (false)

}  // namespace buffy
