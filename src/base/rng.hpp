// Deterministic pseudo-random generator for the graph generator and the
// property-test sweeps. xoshiro256** seeded via splitmix64: reproducible
// across platforms and standard-library versions (std::mt19937 streams are
// portable but the std distributions are not, so we roll our own bounded
// draws).
#pragma once

#include <vector>

#include "base/checked_math.hpp"

namespace buffy {

/// Deterministic 64-bit PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(u64 seed);

  /// Next raw 64-bit draw.
  u64 next();

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  i64 uniform(i64 lo, i64 hi);

  /// Uniform draw from [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0, 1]).
  bool chance(double p);

  /// Uniformly selected index into a container of the given size (> 0).
  std::size_t index(std::size_t size);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  u64 s_[4];
};

}  // namespace buffy
