#include "base/rational.hpp"

#include <ostream>
#include <sstream>

#include "base/diagnostics.hpp"
#include "base/string_util.hpp"

namespace buffy {

Rational::Rational(i64 num, i64 den) : num_(num), den_(den) {
  BUFFY_REQUIRE(den != 0, "rational with zero denominator");
  normalise();
}

void Rational::normalise() {
  if (den_ < 0) {
    num_ = checked_sub(0, num_);
    den_ = checked_sub(0, den_);
  }
  const i64 g = gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

Rational Rational::reciprocal() const {
  BUFFY_REQUIRE(num_ != 0, "reciprocal of zero");
  return {den_, num_};
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = checked_sub(0, num_);
  r.den_ = den_;
  return r;
}

Rational& Rational::operator+=(const Rational& o) {
  // Reduce before cross-multiplying to delay overflow as long as possible.
  const i64 g = gcd(den_, o.den_);
  const i64 scale_a = o.den_ / g;
  const i64 scale_b = den_ / g;
  num_ = checked_add(checked_mul(num_, scale_a), checked_mul(o.num_, scale_b));
  den_ = checked_mul(den_, scale_a);
  normalise();
  return *this;
}

Rational& Rational::operator-=(const Rational& o) { return *this += -o; }

Rational& Rational::operator*=(const Rational& o) {
  // Cross-reduce first: (a/b)*(c/d) with gcd(a,d) and gcd(c,b) divided out.
  const i64 g1 = gcd(num_, o.den_);
  const i64 g2 = gcd(o.num_, den_);
  num_ = checked_mul(num_ / g1, o.num_ / g2);
  den_ = checked_mul(den_ / g2, o.den_ / g1);
  normalise();
  return *this;
}

Rational& Rational::operator/=(const Rational& o) {
  return *this *= o.reciprocal();
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  // Denominators are positive, so the sign of a.num*b.den - b.num*a.den
  // decides. Cross products are overflow-checked.
  const i64 lhs = checked_mul(a.num_, b.den_);
  const i64 rhs = checked_mul(b.num_, a.den_);
  return lhs <=> rhs;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  os << r.num();
  if (!r.is_integer()) os << '/' << r.den();
  return os;
}

Rational parse_rational(const std::string& text) {
  const std::string t = trim(text);
  BUFFY_REQUIRE(!t.empty(), "empty rational literal");
  const auto slash = t.find('/');
  if (slash != std::string::npos) {
    return {parse_i64(t.substr(0, slash)), parse_i64(t.substr(slash + 1))};
  }
  const auto dot = t.find('.');
  if (dot != std::string::npos) {
    const std::string whole = t.substr(0, dot);
    const std::string frac = t.substr(dot + 1);
    BUFFY_REQUIRE(!frac.empty(), "malformed decimal literal: " + text);
    i64 den = 1;
    for (std::size_t i = 0; i < frac.size(); ++i) den = checked_mul(den, 10);
    const bool negative = !whole.empty() && whole[0] == '-';
    const i64 whole_val = (whole.empty() || whole == "-") ? 0 : parse_i64(whole);
    const i64 frac_val = parse_i64(frac);
    BUFFY_REQUIRE(frac_val >= 0, "malformed decimal literal: " + text);
    i64 num = checked_add(checked_mul(whole_val < 0 ? -whole_val : whole_val,
                                      den),
                          frac_val);
    if (negative) num = checked_sub(0, num);
    return {num, den};
  }
  return {parse_i64(t)};
}

}  // namespace buffy
