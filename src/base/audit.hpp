// BUFFY_AUDIT — the runtime self-audit layer (DESIGN.md §9).
//
// Audit mode cross-checks the optimised engines against first principles
// while they run: channel occupancy against the capacity bounds, cached
// visited-state hashes against recomputation, cached throughput values
// against a fresh simulation on a deterministic sample of hits, dominance
// answers against the monotonicity they rely on, and final Pareto fronts
// against their ordering invariant. The checks live next to the data they
// audit (state::Engine, state::VisitedTable, buffer/audit_checks.hpp);
// this header owns the mode flag, the failure type and the sampling
// policy they share.
//
// Off by default; each check site costs one relaxed atomic load. Enabled
// via set_enabled(true), the `explore_cli --audit` flag, or the
// BUFFY_AUDIT=1 environment variable (read at library load, which is how
// CI runs whole test binaries audited without touching their code).
//
// A failed check throws AuditError carrying the invariant name and a
// precise diagnostic. It derives from buffy::Error, so existing error
// paths report it and exit non-zero — an audit violation is never
// papered over as a recoverable condition.
#pragma once

#include <atomic>
#include <string>

#include "base/checked_math.hpp"
#include "base/diagnostics.hpp"

namespace buffy::audit {

/// An invariant cross-check failed; what() is
/// "audit violation [<invariant>]: <detail>".
class AuditError : public Error {
 public:
  AuditError(const std::string& invariant, const std::string& detail);
  [[nodiscard]] const std::string& invariant() const { return invariant_; }

 private:
  std::string invariant_;
};

namespace detail {
// Namespace-scope atomics (not function-local statics) so enabled() and
// note_check() inline to single relaxed accesses in the hot paths.
// Relaxed suffices throughout: the flag is a mode switch flipped before
// the parallel region starts (thread creation publishes it), and the
// check counter is a metric that steers no control flow.
extern std::atomic<bool> g_enabled;
extern std::atomic<u64> g_checks;
extern std::atomic<u64> g_sample_denominator;
}  // namespace detail

/// True when audit mode is on; the guard every check site polls.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Switches audit mode; flip before spawning workers (see detail above).
void set_enabled(bool on);

/// Checks performed since process start (diagnostic reporting; a run that
/// "passed the audit" with zero checks performed did not audit anything).
[[nodiscard]] u64 checks_performed();

/// Records one performed check.
inline void note_check() {
  detail::g_checks.fetch_add(1, std::memory_order_relaxed);
}

/// Throws AuditError; the single funnel every failed check goes through.
[[noreturn]] void fail(const std::string& invariant,
                       const std::string& detail);

/// Deterministic sampler for the expensive cross-checks (fresh
/// re-simulation of cache hits): true for roughly 1 in
/// sample_denominator() inputs, decided purely by mixing `hash` — the
/// same hit is sampled on every run, at any thread count.
[[nodiscard]] bool sample(u64 hash);

/// Sampling rate control: 1 = re-check every hit (tamper tests), default
/// 8. Never 0.
void set_sample_denominator(u64 denominator);
[[nodiscard]] u64 sample_denominator();

/// RAII enable for tests: flips audit mode (and optionally the sampling
/// denominator) on construction, restores both on destruction.
class ScopedAudit {
 public:
  explicit ScopedAudit(u64 denominator = 1);
  ~ScopedAudit();
  ScopedAudit(const ScopedAudit&) = delete;
  ScopedAudit& operator=(const ScopedAudit&) = delete;

 private:
  bool prev_enabled_;
  u64 prev_denominator_;
};

}  // namespace buffy::audit
