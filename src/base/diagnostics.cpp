#include "base/diagnostics.hpp"

#include <sstream>

namespace buffy::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::ostringstream os;
  os << "internal error: " << message << " [" << expr << " at " << file << ":"
     << line << "]";
  throw InternalError(os.str());
}

void require_fail(const char* file, int line, const std::string& message) {
  std::ostringstream os;
  os << message << " [" << file << ":" << line << "]";
  throw Error(os.str());
}

}  // namespace buffy::detail
