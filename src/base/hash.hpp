// Hashing used by the state-space stores.
//
// The reduced state space (Sec. 7 of the paper) is a hash map from timed SDF
// states to visit indices; the quality of this hash directly determines the
// cycle-detection cost on multi-million-state explorations. We use FNV-1a
// over the raw state words followed by a 64-bit finaliser (splitmix64).
#pragma once

#include <cstddef>
#include <span>

#include "base/checked_math.hpp"

namespace buffy {

/// FNV-1a offset basis; exposed so tests can pin the algorithm down.
inline constexpr u64 kFnvOffset = 1469598103934665603ULL;
/// FNV-1a prime.
inline constexpr u64 kFnvPrime = 1099511628211ULL;

/// splitmix64 finalising mix; bijective on 64-bit words.
[[nodiscard]] u64 mix64(u64 x);

/// Incorporates one 64-bit word into a running FNV-1a hash.
[[nodiscard]] u64 hash_step(u64 h, u64 word);

/// Hash of a span of 64-bit words (FNV-1a + final mix).
[[nodiscard]] u64 hash_words(std::span<const i64> words);

/// Combines two hashes (order-dependent).
[[nodiscard]] u64 hash_combine(u64 a, u64 b);

}  // namespace buffy
