#include "base/string_util.hpp"

#include <cctype>

#include "base/diagnostics.hpp"

namespace buffy {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && is_space(s[begin])) ++begin;
  while (end > begin && is_space(s[end - 1])) --end;
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

i64 parse_i64(std::string_view s) {
  const std::string t = trim(s);
  if (t.empty()) throw ParseError("empty integer literal");
  std::size_t i = 0;
  bool negative = false;
  if (t[0] == '+' || t[0] == '-') {
    negative = t[0] == '-';
    i = 1;
  }
  if (i == t.size()) throw ParseError("malformed integer literal: " + t);
  i64 value = 0;
  for (; i < t.size(); ++i) {
    const char c = t[i];
    if (c < '0' || c > '9') {
      throw ParseError("malformed integer literal: " + t);
    }
    try {
      value = checked_add(checked_mul(value, 10), c - '0');
    } catch (const OverflowError&) {
      throw ParseError("integer literal out of range: " + t);
    }
  }
  return negative ? -value : value;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace buffy
