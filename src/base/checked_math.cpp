#include "base/checked_math.hpp"

#include "base/diagnostics.hpp"

namespace buffy {

namespace {

/// |x| as an unsigned value. Well defined for every i64 including
/// INT64_MIN (whose magnitude, 2^63, is not representable as i64 — the
/// reason the number-theoretic helpers below work on u64 magnitudes and
/// only narrow back after proving the result fits).
u64 unsigned_abs(i64 x) {
  return x < 0 ? u64{0} - static_cast<u64>(x) : static_cast<u64>(x);
}

constexpr u64 kMaxI64 = static_cast<u64>(INT64_MAX);

u64 gcd_u64(u64 a, u64 b) {
  while (b != 0) {
    const u64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

i64 checked_add(i64 a, i64 b) {
  i64 r = 0;
  if (__builtin_add_overflow(a, b, &r)) {
    throw OverflowError("integer overflow in addition");
  }
  return r;
}

i64 checked_sub(i64 a, i64 b) {
  i64 r = 0;
  if (__builtin_sub_overflow(a, b, &r)) {
    throw OverflowError("integer overflow in subtraction");
  }
  return r;
}

i64 checked_mul(i64 a, i64 b) {
  i64 r = 0;
  if (__builtin_mul_overflow(a, b, &r)) {
    throw OverflowError("integer overflow in multiplication");
  }
  return r;
}

i64 gcd(i64 a, i64 b) {
  const u64 g = gcd_u64(unsigned_abs(a), unsigned_abs(b));
  // Only gcd(INT64_MIN, 0) and gcd(0, INT64_MIN) land here: the result is
  // 2^63 itself, one past the signed range.
  if (g > kMaxI64) {
    throw OverflowError("gcd magnitude is not representable");
  }
  return static_cast<i64>(g);
}

i64 lcm(i64 a, i64 b) {
  if (a == 0 || b == 0) return 0;
  const u64 ua = unsigned_abs(a);
  const u64 ub = unsigned_abs(b);
  const u64 g = gcd_u64(ua, ub);
  u64 r = 0;
  if (__builtin_mul_overflow(ua / g, ub, &r) || r > kMaxI64) {
    throw OverflowError("integer overflow in least common multiple");
  }
  return static_cast<i64>(r);
}

i64 floor_div(i64 a, i64 b) {
  BUFFY_REQUIRE(b != 0, "division by zero");
  if (a == INT64_MIN && b == -1) {
    // The only quotient outside the signed range (2^63).
    throw OverflowError("integer overflow in division");
  }
  i64 q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

i64 ceil_div(i64 a, i64 b) {
  BUFFY_REQUIRE(b != 0, "division by zero");
  if (a == INT64_MIN && b == -1) {
    throw OverflowError("integer overflow in division");
  }
  i64 q = a / b;
  if ((a % b != 0) && ((a < 0) == (b < 0))) ++q;
  return q;
}

i64 positive_mod(i64 a, i64 b) {
  BUFFY_REQUIRE(b != 0, "modulus by zero");
  // Magnitude arithmetic sidesteps both traps of `a % b` at the domain
  // edges: negating b == INT64_MIN and the hardware fault of
  // INT64_MIN % -1. The result lies in [0, |b|), which always fits i64.
  const u64 m = unsigned_abs(b);
  u64 r = unsigned_abs(a) % m;
  if (a < 0 && r != 0) r = m - r;
  return static_cast<i64>(r);
}

}  // namespace buffy
