#include "base/checked_math.hpp"

#include "base/diagnostics.hpp"

namespace buffy {

i64 checked_add(i64 a, i64 b) {
  i64 r = 0;
  if (__builtin_add_overflow(a, b, &r)) {
    throw OverflowError("integer overflow in addition");
  }
  return r;
}

i64 checked_sub(i64 a, i64 b) {
  i64 r = 0;
  if (__builtin_sub_overflow(a, b, &r)) {
    throw OverflowError("integer overflow in subtraction");
  }
  return r;
}

i64 checked_mul(i64 a, i64 b) {
  i64 r = 0;
  if (__builtin_mul_overflow(a, b, &r)) {
    throw OverflowError("integer overflow in multiplication");
  }
  return r;
}

i64 gcd(i64 a, i64 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const i64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

i64 lcm(i64 a, i64 b) {
  if (a == 0 || b == 0) return 0;
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  return checked_mul(a / gcd(a, b), b);
}

i64 floor_div(i64 a, i64 b) {
  BUFFY_REQUIRE(b != 0, "division by zero");
  i64 q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

i64 ceil_div(i64 a, i64 b) {
  BUFFY_REQUIRE(b != 0, "division by zero");
  i64 q = a / b;
  if ((a % b != 0) && ((a < 0) == (b < 0))) ++q;
  return q;
}

i64 positive_mod(i64 a, i64 b) {
  BUFFY_REQUIRE(b != 0, "modulus by zero");
  if (b < 0) b = -b;
  const i64 r = a % b;
  return r < 0 ? r + b : r;
}

}  // namespace buffy
