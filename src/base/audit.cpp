#include "base/audit.hpp"

#include <cstdlib>
#include <cstring>

#include "base/hash.hpp"

namespace buffy::audit {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<u64> g_checks{0};
std::atomic<u64> g_sample_denominator{8};
}  // namespace detail

namespace {

// Reads BUFFY_AUDIT at library load: any value other than unset/""/"0"
// switches audit mode on, so `BUFFY_AUDIT=1 ctest` audits every test
// binary without code changes. Runs as a dynamic initialiser of this TU,
// which is linked into every binary that can perform a check (they all
// reference fail()).
[[maybe_unused]] const bool g_env_initialised = []() {
  const char* value = std::getenv("BUFFY_AUDIT");
  if (value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0) {
    detail::g_enabled.store(true, std::memory_order_relaxed);
  }
  return true;
}();

}  // namespace

AuditError::AuditError(const std::string& invariant,
                       const std::string& detail)
    : Error("audit violation [" + invariant + "]: " + detail),
      invariant_(invariant) {}

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

u64 checks_performed() {
  return detail::g_checks.load(std::memory_order_relaxed);
}

void fail(const std::string& invariant, const std::string& detail) {
  throw AuditError(invariant, detail);
}

bool sample(u64 hash) {
  const u64 d = detail::g_sample_denominator.load(std::memory_order_relaxed);
  if (d <= 1) return true;
  return mix64(hash) % d == 0;
}

void set_sample_denominator(u64 denominator) {
  BUFFY_REQUIRE(denominator > 0, "audit sample denominator must be >= 1");
  detail::g_sample_denominator.store(denominator, std::memory_order_relaxed);
}

u64 sample_denominator() {
  return detail::g_sample_denominator.load(std::memory_order_relaxed);
}

ScopedAudit::ScopedAudit(u64 denominator)
    : prev_enabled_(enabled()), prev_denominator_(sample_denominator()) {
  set_enabled(true);
  set_sample_denominator(denominator);
}

ScopedAudit::~ScopedAudit() {
  set_enabled(prev_enabled_);
  set_sample_denominator(prev_denominator_);
}

}  // namespace buffy::audit
