#include "base/rng.hpp"

#include "base/diagnostics.hpp"
#include "base/hash.hpp"

namespace buffy {

namespace {
u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(u64 seed) {
  // splitmix64 expansion of the seed into the xoshiro state; a state of all
  // zeros would be a fixed point, and mix64 of distinct inputs avoids it.
  u64 x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    s = mix64(x);
  }
}

u64 Rng::next() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

i64 Rng::uniform(i64 lo, i64 hi) {
  BUFFY_REQUIRE(lo <= hi, "uniform(lo, hi) with lo > hi");
  const u64 range = static_cast<u64>(hi) - static_cast<u64>(lo) + 1;
  if (range == 0) return static_cast<i64>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const u64 limit = range * (~0ULL / range);
  u64 draw = next();
  while (draw >= limit) draw = next();
  return static_cast<i64>(static_cast<u64>(lo) + draw % range);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform01() < p; }

std::size_t Rng::index(std::size_t size) {
  BUFFY_REQUIRE(size > 0, "index() on empty range");
  return static_cast<std::size_t>(uniform(0, static_cast<i64>(size) - 1));
}

}  // namespace buffy
