#include "buffer/dse_exact.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "base/diagnostics.hpp"
#include "state/throughput.hpp"

namespace buffy::buffer {

namespace {

// Shared state of one exhaustive exploration.
struct Sweep {
  const sdf::Graph& graph;
  const DseOptions& options;
  const DesignSpaceBounds& bounds;
  std::vector<i64> lb;  // per-channel enumeration floor
  std::vector<i64> ub;  // per-channel enumeration ceiling (Fig. 7 box)
  std::vector<i64> lb_suffix;  // sum of lb over channels >= i
  std::vector<i64> ub_suffix;  // sum of ub over channels >= i
  Rational goal;               // stop improving a size beyond this
  u64 explored = 0;
  u64 max_states = 0;

  [[nodiscard]] Rational throughput_of(const std::vector<i64>& caps) {
    if (++explored > options.max_distributions) {
      throw Error("exhaustive DSE exceeded max_distributions = " +
                  std::to_string(options.max_distributions));
    }
    const auto run = state::compute_throughput(
        graph, state::Capacities::bounded(caps),
        state::ThroughputOptions{.target = options.target,
                                 .max_steps = options.max_steps_per_run});
    max_states = std::max(max_states, run.states_stored);
    return run.throughput;
  }
};

/// Maximal throughput over all distributions of exactly the given size
/// within the box, plus a witness distribution. Early-exits at the goal.
struct SizeOutcome {
  Rational throughput;  // quantised
  StorageDistribution witness;
};

// Visits every distribution of the requested total inside the box; the
// visitor returns false to abort the sweep.
template <typename Visitor>
bool enumerate(Sweep& sweep, std::vector<i64>& caps, std::size_t channel,
               i64 remaining, Visitor&& visit) {
  const std::size_t m = sweep.lb.size();
  if (channel == m) {
    BUFFY_ASSERT(remaining == 0, "enumeration budget mismatch");
    const Rational tput =
        quantize_down(sweep.throughput_of(caps), sweep.options.quantization);
    return visit(caps, tput);
  }
  // Budget window for this channel so the suffix can still hit `remaining`.
  const i64 rest_lb = sweep.lb_suffix[channel + 1];
  const i64 rest_ub = sweep.ub_suffix[channel + 1];
  const i64 lo = std::max(sweep.lb[channel], remaining - rest_ub);
  const i64 hi = std::min(sweep.ub[channel], remaining - rest_lb);
  for (i64 cap = lo; cap <= hi; ++cap) {
    caps[channel] = cap;
    if (!enumerate(sweep, caps, channel + 1, remaining - cap, visit)) {
      return false;
    }
  }
  return true;
}

SizeOutcome max_throughput_for_size(Sweep& sweep, i64 size) {
  SizeOutcome best{Rational(0), StorageDistribution()};
  std::vector<i64> caps(sweep.lb.size(), 0);
  enumerate(sweep, caps, 0, size,
            [&](const std::vector<i64>& found, const Rational& tput) {
              if (best.witness.num_channels() == 0 ||
                  tput > best.throughput) {
                best.throughput = tput;
                best.witness = StorageDistribution(found);
              }
              return best.throughput < sweep.goal;  // stop at the goal
            });
  BUFFY_ASSERT(best.witness.num_channels() != 0,
               "no distribution of the requested size inside the box");
  return best;
}

// Builds the enumeration box shared by explore_exhaustive and
// equivalent_minimal_distributions.
void init_box(Sweep& sweep) {
  const std::size_t m = sweep.graph.num_channels();
  sweep.lb = constrained_floor(sweep.options, sweep.bounds);
  const auto ceiling = constrained_ceiling(sweep.options, m);
  sweep.ub.resize(m);
  for (std::size_t c = 0; c < m; ++c) {
    sweep.ub[c] = std::max(sweep.lb[c],
                           sweep.bounds.max_throughput_distribution[c]);
    if (ceiling[c].has_value()) {
      sweep.ub[c] = std::max(sweep.lb[c], std::min(sweep.ub[c], *ceiling[c]));
    }
  }
  sweep.lb_suffix.assign(m + 1, 0);
  sweep.ub_suffix.assign(m + 1, 0);
  for (std::size_t c = m; c-- > 0;) {
    sweep.lb_suffix[c] = checked_add(sweep.lb_suffix[c + 1], sweep.lb[c]);
    sweep.ub_suffix[c] = checked_add(sweep.ub_suffix[c + 1], sweep.ub[c]);
  }
}

}  // namespace

DseResult explore_exhaustive(const sdf::Graph& graph, const DseOptions& options,
                             const DesignSpaceBounds& bounds) {
  const auto t0 = std::chrono::steady_clock::now();
  DseResult result;
  result.bounds = bounds;

  Sweep sweep{.graph = graph, .options = options, .bounds = bounds};
  init_box(sweep);
  sweep.goal = quantize_down(bounds.max_throughput, options.quantization);
  if (options.throughput_goal.has_value() &&
      *options.throughput_goal < sweep.goal) {
    sweep.goal = *options.throughput_goal;
  }

  // Sizes beyond the max-throughput distribution's cannot improve anything
  // (Sec. 8), so the meaningful size interval is [lb, sz(mtd)] — unless
  // user constraints reshape the box, in which case the whole box is
  // covered.
  const i64 lo_size = sweep.lb_suffix[0];
  i64 hi_size = options.channel_constraints.empty()
                    ? std::max(bounds.ub_size, lo_size)
                    : sweep.ub_suffix[0];
  if (options.max_distribution_size.has_value()) {
    hi_size = std::min(hi_size, *options.max_distribution_size);
  }

  // Divide and conquer over the size dimension (Sec. 9): throughput is
  // monotonic in the size, so an interval whose endpoints agree contains no
  // further Pareto points.
  std::map<i64, SizeOutcome> evaluated;
  const auto eval = [&](i64 size) -> const SizeOutcome& {
    auto it = evaluated.find(size);
    if (it == evaluated.end()) {
      it = evaluated.emplace(size, max_throughput_for_size(sweep, size)).first;
    }
    return it->second;
  };

  if (hi_size >= lo_size) {
    eval(lo_size);
    eval(hi_size);
    // Explicit work list of (lo, hi) intervals with both endpoints known.
    std::vector<std::pair<i64, i64>> intervals{{lo_size, hi_size}};
    while (!intervals.empty()) {
      const auto [lo, hi] = intervals.back();
      intervals.pop_back();
      if (hi - lo <= 1) continue;
      if (evaluated.at(lo).throughput == evaluated.at(hi).throughput) continue;
      if (evaluated.at(lo).throughput >= sweep.goal) continue;
      const i64 mid = lo + (hi - lo) / 2;
      eval(mid);
      intervals.emplace_back(lo, mid);
      intervals.emplace_back(mid, hi);
    }
    for (const auto& [size, outcome] : evaluated) {
      result.pareto.add(
          ParetoPoint{outcome.witness, outcome.throughput});
    }
  }

  result.distributions_explored = sweep.explored;
  result.max_states_stored = sweep.max_states;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

std::vector<StorageDistribution> equivalent_minimal_distributions(
    const sdf::Graph& graph, const DseOptions& options, i64 size,
    const Rational& min_throughput) {
  const DesignSpaceBounds bounds =
      design_space_bounds(graph, options.target, options.max_steps_per_run);
  std::vector<StorageDistribution> found;
  if (bounds.deadlock) return found;

  Sweep sweep{.graph = graph, .options = options, .bounds = bounds};
  init_box(sweep);
  sweep.goal = bounds.max_throughput + Rational(1);  // never early-exit

  // Unlike the Pareto search, tie enumeration must see shapes outside the
  // Fig. 7 box (e.g. Fig. 6's <1,2,3,3> puts 3 tokens where the
  // max-throughput distribution needs fewer): widen every channel so any
  // composition of `size` above the floors is reachable, honouring only
  // the user's ceilings.
  const std::size_t m = graph.num_channels();
  const auto ceiling = constrained_ceiling(options, m);
  const i64 lb_total = sweep.lb_suffix[0];
  for (std::size_t c = 0; c < m; ++c) {
    i64 widened = std::max(sweep.ub[c], size - (lb_total - sweep.lb[c]));
    if (ceiling[c].has_value()) widened = std::min(widened, *ceiling[c]);
    sweep.ub[c] = std::max(sweep.lb[c], widened);
  }
  for (std::size_t c = m; c-- > 0;) {
    sweep.ub_suffix[c] = checked_add(sweep.ub_suffix[c + 1], sweep.ub[c]);
  }
  if (size < sweep.lb_suffix[0] || size > sweep.ub_suffix[0]) return found;

  std::vector<i64> caps(sweep.lb.size(), 0);
  enumerate(sweep, caps, 0, size,
            [&](const std::vector<i64>& candidate, const Rational& tput) {
              if (tput >= min_throughput) {
                found.emplace_back(candidate);
              }
              return true;
            });
  return found;
}

}  // namespace buffy::buffer
