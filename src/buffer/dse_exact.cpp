#include "buffer/dse_exact.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <optional>

#include "base/audit.hpp"
#include "base/diagnostics.hpp"
#include "base/hash.hpp"
#include "analysis/bounds.hpp"
#include "analysis/repetition_vector.hpp"
#include "buffer/audit_checks.hpp"
#include "buffer/throughput_cache.hpp"
#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "lp/sdf_model.hpp"
#include "state/lane_throughput.hpp"
#include "state/simd_kernel.hpp"
#include "state/throughput.hpp"
#include "trace/trace.hpp"

namespace buffy::buffer {

namespace {

// Adaptive shard granularity (DESIGN.md §14): a per-size slice only fans
// out over the pool when its estimated simulation work — LP-floor-weighted
// candidate count x running average per-simulation seconds — clears the
// barrier threshold, and the pool is only spawned for a slice expensive
// enough to also repay thread creation. kTargetShardSeconds sizes the
// shard count so each shard holds roughly that much estimated work
// instead of the former unconditional workers * 8 explosion.
constexpr double kParallelSliceSeconds = 200e-6;
constexpr double kSpawnSliceSeconds = 1e-3;
constexpr double kTargetShardSeconds = 500e-6;

// Shared state of one exhaustive exploration. Counters are atomic because
// the per-size enumeration is sharded across the worker pool.
struct Sweep {
  const sdf::Graph& graph;
  const DseOptions& options;
  const DesignSpaceBounds& bounds;
  std::vector<i64> lb;  // per-channel enumeration floor
  std::vector<i64> ub;  // per-channel enumeration ceiling (Fig. 7 box)
  std::vector<i64> lb_suffix;  // sum of lb over channels >= i
  std::vector<i64> ub_suffix;  // sum of ub over channels >= i
  // Per-channel floor used ONLY for work estimation: lb lifted by the LP
  // necessary floors when LP bounds are on. Candidates below these floors
  // are answered by the LP leaf cut without simulating, so weighting the
  // count by them keeps the shard-sizing estimate honest.
  std::vector<i64> est_lb;
  Rational goal;               // stop improving a size beyond this
  // Names the caller in the max_distributions diagnostic (the Pareto
  // search and the tie enumeration share this machinery).
  const char* op_name = "exhaustive DSE";
  std::atomic<u64> explored{0};
  std::atomic<u64> max_states{0};
  std::atomic<u64> simulations{0};
  std::atomic<u64> cache_hits{0};
  std::atomic<u64> dominance_skips{0};
  std::atomic<u64> lp_prunes{0};
  exec::LazyThreadPool* lazy = nullptr;  // null = sequential-only caller
  ThroughputCache* cache = nullptr;      // null = cache disabled
  // LP cycle cuts (null = LP bounds disabled). A candidate or envelope
  // whose cut bound cannot strictly beat the incumbent is answered without
  // simulating; the visitor updates only on strict improvement, so the
  // front stays byte-identical to the unpruned scan.
  const lp::ThroughputCuts* cuts = nullptr;
  // null = fresh engine per run (options.reuse_engines == false).
  // Thread-affine: each worker keeps the slot's solver for the whole
  // exploration — no per-shard acquire/release.
  state::WorkerSolvers* solvers = nullptr;
  // Lane-parallel leaf evaluation (DESIGN.md §15): non-null when the SIMD
  // lane kernel batches the enumeration's cache-missing leaves. Envelope
  // probes and slice seeds stay scalar — they are evaluated at the moment
  // their value gates the traversal.
  state::LaneSolverBank* lane_bank = nullptr;
  // True when the bank carries a magnitude certificate whose storage
  // budget is the enumeration box itself (sweep.ub after widening) —
  // every enumerated candidate is inside it by construction, so lane
  // batches skip the dynamic narrow-kernel gate (DESIGN.md §16).
  bool lanes_within_certificate = false;

  // Per-slot scratch: the worker's cache delta plus its local simulation
  // cost sample, padded so neighbouring workers never share a cache line.
  struct alignas(64) SlotState {
    std::optional<ThroughputCache::Delta> delta;
    double sim_seconds = 0.0;
    u64 sims = 0;
  };
  std::vector<SlotState> slot_state;
  std::size_t caller_slot = 0;
  // Frozen read view for the current slice; workers read it lock-free and
  // record fresh outcomes into their slot's delta (merged in end_slice).
  std::optional<ThroughputCache::Snapshot> snap;
  // Running per-simulation cost average feeding the adaptive granularity.
  double total_sim_seconds = 0.0;
  u64 total_sims = 0;
  // Pruning-efficiency estimator: the box count wildly overstates what a
  // seeded branch-and-bound scan actually visits, so slices also feed
  // (predicted candidates, actually explored) totals and the work
  // estimate is scaled by their ratio. Starts neutral (1.0) — the first
  // slice is sequential anyway (no cost sample yet).
  double predicted_candidates = 0.0;
  u64 explored_in_slices = 0;

  void init_slots(std::size_t slots) {
    slot_state = std::vector<SlotState>(slots);
    caller_slot = slots - 1;
    if (cache != nullptr) {
      for (SlotState& s : slot_state) s.delta.emplace(cache->make_delta());
    }
  }

  // Slice boundaries: snapshot before, merge + cost-sample fold after.
  void begin_slice() {
    if (cache != nullptr) snap.emplace(cache->snapshot());
  }
  void end_slice() {
    if (cache != nullptr) {
      std::vector<ThroughputCache::Delta*> deltas;
      for (SlotState& s : slot_state) {
        if (!s.delta->empty()) deltas.push_back(&*s.delta);
      }
      if (!deltas.empty()) cache->merge(deltas);
      for (SlotState& s : slot_state) s.delta->clear();
    }
    for (SlotState& s : slot_state) {
      total_sim_seconds += s.sim_seconds;
      total_sims += s.sims;
      s.sim_seconds = 0.0;
      s.sims = 0;
    }
  }

  // Books the candidate against the exploration budget and tries to
  // answer it from the cache (exact repeat or Sec. 8 dominance). Returns
  // the answer, or nullopt when the candidate needs a simulation.
  // `slot` keys the worker's thread-affine solver and delta (the pool's
  // current_slot(), or caller_slot on the sequential path).
  [[nodiscard]] std::optional<Rational> classify(const std::vector<i64>& caps,
                                                 std::size_t slot) {
    if (explored.fetch_add(1, std::memory_order_relaxed) + 1 >
        options.max_distributions) {
      throw Error(std::string(op_name) + " exceeded max_distributions = " +
                  std::to_string(options.max_distributions));
    }
    if (cache != nullptr) {
      // The snapshot covers everything merged before this slice; the
      // slot's delta covers what this worker has learned inside it —
      // including its own witnesses, so a sequential scan sees exactly
      // the hit/miss pattern the per-candidate store() path produced.
      ThroughputCache::Delta& delta = *slot_state[slot].delta;
      std::optional<CachedThroughput> hit =
          snap->find(caps, /*require_deps=*/false);
      if (!hit.has_value()) hit = delta.find(caps, /*require_deps=*/false);
      const bool exact = hit.has_value();
      if (!hit.has_value()) {
        hit = snap->find_max_dominated(caps);
        if (!hit.has_value()) hit = delta.find_max_dominated(caps);
      }
      if (!hit.has_value()) {
        hit = snap->find_deadlock_dominated(caps);
        if (!hit.has_value()) hit = delta.find_deadlock_dominated(caps);
      }
      if (hit.has_value()) {
        if (trace::enabled()) {
          i64 size = 0;
          for (const i64 c : caps) size += c;
          trace::emit_instant(exact ? trace::EventKind::CacheHit
                                    : trace::EventKind::DominanceSkip,
                              size);
        }
        (exact ? cache_hits : dominance_skips)
            .fetch_add(1, std::memory_order_relaxed);
        if (options.progress != nullptr) {
          options.progress->add_points(1);
          options.progress->add_sims_avoided(1);
          if (exact) {
            options.progress->add_cache_hits(1);
          } else {
            options.progress->add_dominance_skips(1);
          }
        }
        // Audit mode re-simulates a deterministic sample of hits: exact
        // repeats re-verify the stored value, dominance answers re-verify
        // the Sec. 8 monotonicity end-to-end (DESIGN.md §9).
        if (audit::enabled() && audit::sample(hash_words(caps))) {
          audit_check_cached_throughput(graph, options.target,
                                        options.max_steps_per_run, {}, caps,
                                        *hit);
        }
        return hit->throughput;
      }
    }
    return std::nullopt;
  }

  // Books one fresh simulation outcome shared by the scalar and lane
  // paths: peak-state fold, cache delta record, LP-bound audit sample.
  void absorb_run(const std::vector<i64>& caps,
                  const state::ThroughputResult& run, std::size_t slot) {
    simulations.fetch_add(1, std::memory_order_relaxed);
    // The same deterministic sample cross-checks the LP cycle-cut bound
    // against the fresh simulation (DESIGN.md §9, §13): a bound below
    // reality would have let lp_rules_out discard a reachable point.
    if (cuts != nullptr && audit::enabled() &&
        audit::sample(hash_words(caps))) {
      audit_check_lp_bound(graph, *cuts, caps, run.throughput,
                           run.deadlocked);
    }
    u64 seen = max_states.load(std::memory_order_relaxed);
    while (run.states_stored > seen &&
           !max_states.compare_exchange_weak(seen, run.states_stored,
                                             std::memory_order_relaxed)) {
    }
    if (cache != nullptr) {
      CachedThroughput value;
      value.throughput = run.throughput;
      value.deadlocked = run.deadlocked;
      value.states_stored = run.states_stored;
      value.cycle_start_time = run.cycle_start_time;
      value.period = run.period;
      slot_state[slot].delta->record(caps, value);
    }
    if (options.progress != nullptr) options.progress->add_points(1);
  }

  // Scalar simulation of one cache-missing candidate.
  [[nodiscard]] Rational simulate_one(const std::vector<i64>& caps,
                                      std::size_t slot) {
    state::ThroughputOptions run_opts{.target = options.target,
                                      .max_steps =
                                          options.max_steps_per_run};
    run_opts.cancel = options.cancel;
    run_opts.progress = options.progress;
    state::ThroughputSolver* solver =
        solvers != nullptr ? &solvers->at(slot) : nullptr;
    const auto sim_t0 = std::chrono::steady_clock::now();
    const state::ThroughputResult run =
        solver != nullptr
            ? solver->compute(state::Capacities::bounded(caps), run_opts)
            : state::compute_throughput(
                  graph, state::Capacities::bounded(caps), run_opts);
    slot_state[slot].sim_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sim_t0)
            .count();
    slot_state[slot].sims += 1;
    absorb_run(caps, run, slot);
    return run.throughput;
  }

  // Simulates a group of cache-missing candidates as one lockstep lane
  // batch on the slot's lane solver; results land index-for-index.
  [[nodiscard]] std::vector<state::ThroughputResult> simulate_lanes(
      std::span<const std::vector<i64>> caps, std::size_t slot) {
    state::LaneBatchOptions run_opts{.target = options.target,
                                     .max_steps = options.max_steps_per_run};
    run_opts.cancel = options.cancel;
    run_opts.progress = options.progress;
    run_opts.within_certificate = lanes_within_certificate;
    const auto sim_t0 = std::chrono::steady_clock::now();
    std::vector<state::ThroughputResult> runs =
        lane_bank->at(slot).compute_batch(caps, run_opts);
    slot_state[slot].sim_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sim_t0)
            .count();
    slot_state[slot].sims += caps.size();
    for (std::size_t k = 0; k < caps.size(); ++k) {
      absorb_run(caps[k], runs[k], slot);
    }
    return runs;
  }

  // The scalar evaluation used by envelope probes and slice seeds (and by
  // every leaf when the lane kernel is off).
  [[nodiscard]] Rational throughput_of(const std::vector<i64>& caps,
                                       std::size_t slot) {
    if (const std::optional<Rational> hit = classify(caps, slot)) {
      return *hit;
    }
    return simulate_one(caps, slot);
  }

  // Books one LP-answered skip (a leaf candidate or an envelope probe that
  // never had to simulate). `size` is the candidate's distribution size.
  void note_lp_prune(i64 size) {
    lp_prunes.fetch_add(1, std::memory_order_relaxed);
    if (trace::enabled()) {
      trace::emit_instant(trace::EventKind::LpPrune, size);
    }
    if (options.progress != nullptr) {
      options.progress->add_lp_prunes(1);
      options.progress->add_sims_avoided(1);
    }
  }

  // True when the cut bound proves no completion at `caps` can strictly
  // beat `incumbent` (or reach it, when `strict`).
  [[nodiscard]] bool lp_rules_out(const std::vector<i64>& caps,
                                  const Rational& incumbent, bool strict,
                                  i64 size) {
    if (cuts == nullptr ||
        !cuts->bounds_below(caps, incumbent, strict)) {
      return false;
    }
    note_lp_prune(size);
    return true;
  }
};

/// Maximal throughput over all distributions of exactly the given size
/// within the box, plus a witness distribution. Early-exits at the goal.
struct SizeOutcome {
  Rational throughput;  // quantised
  StorageDistribution witness;
};

// Lex-ordered leaf queue of the lane path (DESIGN.md §15): every
// surviving leaf — cache-answered or simulation-pending — is queued in
// enumeration order, and once a lane batch's worth accumulated the
// pending ones are simulated in lockstep and the whole queue is folded
// in that same order. Folding in arrival order is what keeps the
// (throughput, witness) outcome — and with it the front — byte-identical
// to the scalar scan; the enumeration may classify up to a queue's worth
// of extra leaves past the sequential stopping point, booked in
// distributions_explored exactly like the sharded scan's overshoot.
class LeafQueue {
 public:
  LeafQueue(Sweep& sweep, std::size_t slot)
      : sweep_(sweep), slot_(slot), width_(sweep.lane_bank->lanes()) {}

  // Queues one leaf; flushes when the queue reaches the lane width.
  // Returns false once the fold requested a stop.
  template <typename Visit>
  [[nodiscard]] bool leaf(const std::vector<i64>& caps, Visit&& visit) {
    entries_.push_back(Entry{caps, sweep_.classify(caps, slot_)});
    if (!entries_.back().tput.has_value()) {
      pending_.push_back(entries_.size() - 1);
    }
    if (entries_.size() < width_) return true;
    return flush(visit);
  }

  // Simulates the pending leaves as one lane batch and folds the queue in
  // arrival order. Call once more after the enumeration for the tail.
  template <typename Visit>
  [[nodiscard]] bool flush(Visit&& visit) {
    if (entries_.empty()) return true;
    if (!pending_.empty()) {
      std::vector<std::vector<i64>> caps;
      caps.reserve(pending_.size());
      for (const std::size_t k : pending_) caps.push_back(entries_[k].caps);
      const std::vector<state::ThroughputResult> runs =
          sweep_.simulate_lanes(caps, slot_);
      for (std::size_t k = 0; k < pending_.size(); ++k) {
        entries_[pending_[k]].tput = runs[k].throughput;
      }
    }
    bool keep = true;
    for (const Entry& e : entries_) {
      if (!keep) break;  // the sequential scan stopped here: discard
      keep = visit(e.caps,
                   quantize_down(*e.tput, sweep_.options.quantization));
    }
    entries_.clear();
    pending_.clear();
    return keep;
  }

 private:
  struct Entry {
    std::vector<i64> caps;
    std::optional<Rational> tput;
  };

  Sweep& sweep_;
  std::size_t slot_;
  std::size_t width_;
  std::vector<Entry> entries_;
  std::vector<std::size_t> pending_;
};

// Number of distributions of total `size` inside the estimation box
// [est_lb, ub], as a double (a threshold estimate, not an exact count:
// precision loss and +inf on astronomic boxes are both fine — anything
// that large is parallel regardless).
double count_candidates(const Sweep& sweep, i64 size) {
  const std::size_t m = sweep.lb.size();
  if (size < 0) return 0.0;
  const std::size_t budget = static_cast<std::size_t>(size);
  std::vector<double> ways(budget + 1, 0.0);
  std::vector<double> prefix(budget + 2, 0.0);
  ways[0] = 1.0;
  for (std::size_t c = 0; c < m; ++c) {
    prefix[0] = 0.0;
    for (std::size_t b = 0; b <= budget; ++b) {
      prefix[b + 1] = prefix[b] + ways[b];
    }
    const i64 lo = sweep.est_lb[c];
    const i64 hi = sweep.ub[c];
    for (std::size_t b = budget + 1; b-- > 0;) {
      // new_ways[b] = sum of ways[b - cap] for cap in [lo, hi].
      const i64 from = static_cast<i64>(b) - hi;
      const i64 to = static_cast<i64>(b) - lo;
      ways[b] = to < 0 ? 0.0
                       : prefix[static_cast<std::size_t>(to) + 1] -
                             prefix[static_cast<std::size_t>(std::max<i64>(
                                 from, 0))];
    }
  }
  return ways[budget];
}

// The pointwise upper envelope of every completion of the node
// (channel, remaining): channel c >= `channel` can hold at most
// min(ub[c], remaining - floors of the other open channels). Each valid
// completion is componentwise <= this vector, so by Sec. 8 monotonicity
// its throughput bounds every completion's from above — the engine of
// the branch-and-bound cuts below.
std::vector<i64> envelope_caps(const Sweep& sweep, const std::vector<i64>& caps,
                               std::size_t channel, i64 remaining) {
  const std::size_t m = sweep.lb.size();
  std::vector<i64> env(caps.begin(), caps.end());
  const i64 open_floor = sweep.lb_suffix[channel];
  for (std::size_t c = channel; c < m; ++c) {
    env[c] = std::min(sweep.ub[c], remaining - (open_floor - sweep.lb[c]));
  }
  return env;
}

Rational envelope_throughput(Sweep& sweep, std::size_t slot,
                             const std::vector<i64>& env) {
  return quantize_down(sweep.throughput_of(env, slot),
                       sweep.options.quantization);
}

// Shared subtree cut: LP cuts first (no simulation), envelope probe
// second. The LP bound dominates the envelope's exact throughput, so an
// LP-answered prune cuts exactly subtrees the probe would also have cut —
// the traversal (and therefore the front) is unchanged, only cheaper.
template <typename Incumbent>
bool subtree_pruned(Sweep& sweep, std::size_t slot,
                    const std::vector<i64>& caps, std::size_t channel,
                    i64 remaining, const Incumbent& incumbent, bool strict) {
  const std::vector<i64> env = envelope_caps(sweep, caps, channel, remaining);
  i64 env_size = 0;
  for (const i64 c : env) env_size += c;
  if (sweep.lp_rules_out(env, incumbent, strict, env_size)) return true;
  const Rational tput = envelope_throughput(sweep, slot, env);
  return strict ? tput < incumbent : tput <= incumbent;
}

// Visits every distribution of the requested total inside the box, in
// lexicographic capacity order; `leaf(caps)` evaluates one candidate
// (directly, or via a LeafQueue on the lane path) and returns false to
// abort the sweep. `prune(caps, channel, remaining)` may return true to
// skip a whole subtree; `skip_leaf(caps)` may return true to answer a
// single candidate without simulating it. Either may only fire when no
// skipped candidate can change the outcome. `caps[0..channel)` must
// already hold the fixed prefix.
template <typename Leaf, typename Pruner, typename SkipLeaf>
bool enumerate(Sweep& sweep, std::size_t slot,
               std::vector<i64>& caps, std::size_t channel, i64 remaining,
               Leaf&& leaf, Pruner&& prune, SkipLeaf&& skip_leaf) {
  const std::size_t m = sweep.lb.size();
  if (channel == m) {
    BUFFY_ASSERT(remaining == 0, "enumeration budget mismatch");
    if (skip_leaf(caps)) return true;
    return leaf(caps);
  }
  if (remaining < sweep.lb_suffix[channel] ||
      remaining > sweep.ub_suffix[channel]) {
    return true;  // no completion fits the budget
  }
  // Probe the envelope only where a subtree is worth cutting: at least
  // two open channels and a few tokens of slack, otherwise the probe
  // costs as much as the handful of leaves it could save.
  if (channel + 2 <= m && remaining - sweep.lb_suffix[channel] >= 3 &&
      prune(caps, channel, remaining, slot)) {
    return true;
  }
  // Budget window for this channel so the suffix can still hit `remaining`.
  const i64 rest_lb = sweep.lb_suffix[channel + 1];
  const i64 rest_ub = sweep.ub_suffix[channel + 1];
  const i64 lo = std::max(sweep.lb[channel], remaining - rest_ub);
  const i64 hi = std::min(sweep.ub[channel], remaining - rest_lb);
  for (i64 cap = lo; cap <= hi; ++cap) {
    caps[channel] = cap;
    if (!enumerate(sweep, slot, caps, channel + 1, remaining - cap, leaf,
                   prune, skip_leaf)) {
      return false;
    }
  }
  return true;
}

// Builds the enumerate() leaf evaluator for one scan: scalar when no lane
// bank is wired (classify + simulate one candidate inline), lane-queued
// otherwise. `run(fold)` performs the enumeration with the chosen leaf
// and flushes the queue's tail, so both paths fold every surviving leaf
// in the same lexicographic order.
template <typename Fold, typename Enumerate>
void scan_leaves(Sweep& sweep, std::size_t slot, Fold&& fold,
                 Enumerate&& run) {
  if (sweep.lane_bank == nullptr) {
    run([&](const std::vector<i64>& caps) {
      return fold(caps, quantize_down(sweep.throughput_of(caps, slot),
                                      sweep.options.quantization));
    });
    return;
  }
  LeafQueue queue(sweep, slot);
  run([&](const std::vector<i64>& caps) { return queue.leaf(caps, fold); });
  (void)queue.flush(fold);
}

// Sequential reference: scan in lexicographic order, keep the first
// distribution that strictly improves, stop at the slice goal. `best`
// may arrive pre-seeded with a known distribution of this size (a padded
// witness from a smaller slice), which arms the branch-and-bound cut
// from the first node: subtrees whose envelope cannot strictly beat the
// incumbent are skipped wholesale — sound by monotonicity, and
// outcome-identical to the plain scan because skipped subtrees contain
// no improving candidate.
SizeOutcome max_throughput_sequential(Sweep& sweep, i64 size,
                                      SizeOutcome best,
                                      const Rational& slice_goal) {
  const std::size_t slot = sweep.caller_slot;
  std::vector<i64> caps(sweep.lb.size(), 0);
  scan_leaves(
      sweep, slot,
      [&](const std::vector<i64>& found, const Rational& tput) {
        if (best.witness.num_channels() == 0 || tput > best.throughput) {
          best.throughput = tput;
          best.witness = StorageDistribution(found);
        }
        return best.throughput < slice_goal;  // stop at the slice goal
      },
      [&](auto&& leaf) {
        enumerate(
            sweep, slot, caps, 0, size, leaf,
            [&](const std::vector<i64>& prefix, std::size_t channel,
                i64 remaining, std::size_t probe_slot) {
              return best.witness.num_channels() != 0 &&
                     subtree_pruned(sweep, probe_slot, prefix, channel,
                                    remaining, best.throughput,
                                    /*strict=*/false);
            },
            // LP leaf cut: a candidate whose cut bound cannot strictly beat
            // the incumbent would never have updated `best` — skip its
            // simulation.
            [&](const std::vector<i64>& candidate) {
              return best.witness.num_channels() != 0 &&
                     sweep.lp_rules_out(candidate, best.throughput,
                                        /*strict=*/false, size);
            });
      });
  return best;
}

// One shard of a sharded per-size enumeration: a fixed capacity prefix
// (channels [0, depth)) plus the tokens left for the remaining channels.
struct Shard {
  std::vector<i64> prefix;
  i64 remaining = 0;
};

// Splits the size-`size` slice of the box into lexicographically ordered
// shards by fixing capacity prefixes, expanding one channel at a time
// until there are enough shards to feed the pool (or prefixes run out of
// channels to fix). Expanding in capacity order keeps the concatenation
// of the shards' enumeration ranges equal to the sequential visit order.
std::vector<Shard> make_shards(const Sweep& sweep, i64 size,
                               std::size_t want) {
  const std::size_t m = sweep.lb.size();
  std::vector<Shard> shards{{{}, size}};
  std::size_t depth = 0;
  while (depth + 1 < m && shards.size() < want) {
    std::vector<Shard> next;
    next.reserve(shards.size() * 2);
    for (const Shard& s : shards) {
      const i64 rest_lb = sweep.lb_suffix[depth + 1];
      const i64 rest_ub = sweep.ub_suffix[depth + 1];
      const i64 lo = std::max(sweep.lb[depth], s.remaining - rest_ub);
      const i64 hi = std::min(sweep.ub[depth], s.remaining - rest_lb);
      for (i64 cap = lo; cap <= hi; ++cap) {
        Shard child{s.prefix, s.remaining - cap};
        child.prefix.push_back(cap);
        next.push_back(std::move(child));
      }
    }
    shards = std::move(next);
    ++depth;
  }
  return shards;
}

// The work-sharded equivalent of max_throughput_sequential: each shard
// finds its lexicographically-first best (stopping at the slice goal),
// and the shard outcomes are folded left-to-right exactly as the
// sequential scan would encounter them. Shards cut subtrees against
// max(local best, seed floor) — a weaker incumbent than the sequential
// scan's running best, so a shard may visit candidates the sequential
// scan skipped, but every skipped subtree on either path is non-improving
// and the folded (throughput, witness) pair comes out identical.
// `want` arrives from the adaptive granularity: roughly one shard per
// kTargetShardSeconds of estimated work, clamped to [workers, workers*8].
SizeOutcome max_throughput_sharded(Sweep& sweep, i64 size, SizeOutcome seed,
                                   const Rational& slice_goal,
                                   std::size_t want) {
  exec::ThreadPool& pool = sweep.lazy->pool();
  const std::vector<Shard> shards = make_shards(sweep, size, want);
  const bool seeded = seed.witness.num_channels() != 0;

  struct ShardOutcome {
    bool any = false;      // the shard contains at least one distribution
    bool hit_goal = false;  // stopped at the goal (lex-first hit)
    Rational best;
    StorageDistribution witness;
  };
  const auto outcomes = exec::parallel_transform<ShardOutcome>(
      pool, shards.size(),
      [&](std::size_t s) {
        const Shard& shard = shards[s];
        ShardOutcome out;
        const std::size_t slot = pool.current_slot();
        std::vector<i64> caps(sweep.lb.size(), 0);
        std::copy(shard.prefix.begin(), shard.prefix.end(), caps.begin());
        // The shard's cut incumbent: max(local best, seed floor), or
        // nothing before the first candidate of an unseeded shard.
        const auto shard_floor = [&](Rational& floor) {
          bool have = false;
          if (out.any) {
            floor = out.best;
            have = true;
          }
          if (seeded && (!have || seed.throughput > floor)) {
            floor = seed.throughput;
            have = true;
          }
          return have;
        };
        scan_leaves(
            sweep, slot,
            [&](const std::vector<i64>& found, const Rational& tput) {
              if (!out.any || tput > out.best) {
                out.any = true;
                out.best = tput;
                out.witness = StorageDistribution(found);
              }
              out.hit_goal = out.best >= slice_goal;
              return !out.hit_goal;
            },
            [&](auto&& leaf) {
              enumerate(
                  sweep, slot, caps, shard.prefix.size(), shard.remaining,
                  leaf,
                  [&](const std::vector<i64>& prefix, std::size_t channel,
                      i64 remaining, std::size_t probe_slot) {
                    Rational floor;
                    return shard_floor(floor) &&
                           subtree_pruned(sweep, probe_slot, prefix, channel,
                                          remaining, floor, /*strict=*/false);
                  },
                  [&](const std::vector<i64>& candidate) {
                    Rational floor;
                    return shard_floor(floor) &&
                           sweep.lp_rules_out(candidate, floor,
                                              /*strict=*/false, size);
                  });
            });
        return out;
      },
      /*chunk_size=*/1);

  SizeOutcome best = std::move(seed);
  for (const ShardOutcome& out : outcomes) {
    if (!out.any) continue;
    if (best.witness.num_channels() == 0 || out.best > best.throughput) {
      best.throughput = out.best;
      best.witness = out.witness;
    }
    // The sequential scan would have stopped inside this shard; later
    // shards were never reached, so their outcomes must not be folded.
    if (best.throughput >= slice_goal) break;
  }
  return best;
}

// `seed` (optional) must be a distribution of exactly `size` inside the
// box; its throughput floors the slice (theta* is monotone in the size)
// and arms the branch-and-bound from the first candidate. `slice_goal`
// is a known unreachable-to-exceed ceiling for this slice — the global
// goal, tightened to theta*(hi) of the enclosing divide-and-conquer
// interval — so reaching it ends the scan with the exact slice maximum.
SizeOutcome max_throughput_for_size(Sweep& sweep, i64 size,
                                    const std::vector<i64>* seed,
                                    const Rational& slice_goal) {
  const trace::Span size_span(trace::EventKind::SizeEval, size);
  sweep.begin_slice();
  const u64 explored_before =
      sweep.explored.load(std::memory_order_relaxed);
  const bool adaptive =
      sweep.lazy != nullptr && sweep.lazy->configured_workers() > 0;
  const double count = adaptive ? count_candidates(sweep, size) : 0.0;
  // Every finished slice feeds the pruning-efficiency ratio, including
  // the ones a seed resolves instantly — that is exactly the signal that
  // slices of this exploration are cheap.
  const auto finish = [&](SizeOutcome outcome) {
    if (adaptive) {
      sweep.predicted_candidates += count;
      sweep.explored_in_slices +=
          sweep.explored.load(std::memory_order_relaxed) - explored_before;
    }
    sweep.end_slice();
    BUFFY_ASSERT(outcome.witness.num_channels() != 0,
                 "no distribution of the requested size inside the box");
    return outcome;
  };
  SizeOutcome incumbent{Rational(0), StorageDistribution()};
  if (seed != nullptr) {
    incumbent.throughput =
        quantize_down(sweep.throughput_of(*seed, sweep.caller_slot),
                      sweep.options.quantization);
    incumbent.witness = StorageDistribution(*seed);
    if (incumbent.throughput >= slice_goal) return finish(incumbent);
  }
  // Adaptive granularity: estimate the slice's simulation work — box
  // count x pruning-efficiency ratio x average simulation cost — and only
  // shard when it clears the (spawn-aware) threshold. The decision moves
  // work between two outcome-identical paths, so the front is unaffected.
  bool parallel = false;
  std::size_t want = 0;
  if (adaptive && sweep.total_sims > 0) {
    const std::size_t workers = sweep.lazy->configured_workers();
    const double ratio =
        sweep.predicted_candidates > 0.0
            ? static_cast<double>(sweep.explored_in_slices) /
                  sweep.predicted_candidates
            : 1.0;
    if (count * ratio >= 2.0 * static_cast<double>(workers)) {
      const double est =
          count * ratio *
          (sweep.total_sim_seconds / static_cast<double>(sweep.total_sims));
      if (est >= (sweep.lazy->started() ? kParallelSliceSeconds
                                        : kSpawnSliceSeconds)) {
        parallel = true;
        const double shards_for_work = est / kTargetShardSeconds;
        want = static_cast<std::size_t>(std::min<double>(
            static_cast<double>(workers * 8),
            std::max<double>(static_cast<double>(workers), shards_for_work)));
      }
    }
  }
  return finish(parallel ? max_throughput_sharded(sweep, size,
                                                  std::move(incumbent),
                                                  slice_goal, want)
                         : max_throughput_sequential(sweep, size,
                                                     std::move(incumbent),
                                                     slice_goal));
}

// Builds the enumeration box shared by explore_exhaustive and
// equivalent_minimal_distributions.
void init_box(Sweep& sweep) {
  const std::size_t m = sweep.graph.num_channels();
  sweep.lb = constrained_floor(sweep.options, sweep.bounds);
  const auto ceiling = constrained_ceiling(sweep.options, m);
  sweep.ub.resize(m);
  for (std::size_t c = 0; c < m; ++c) {
    sweep.ub[c] = std::max(sweep.lb[c],
                           sweep.bounds.max_throughput_distribution[c]);
    if (ceiling[c].has_value()) {
      sweep.ub[c] = std::max(sweep.lb[c], std::min(sweep.ub[c], *ceiling[c]));
    }
  }
  sweep.lb_suffix.assign(m + 1, 0);
  sweep.ub_suffix.assign(m + 1, 0);
  for (std::size_t c = m; c-- > 0;) {
    sweep.lb_suffix[c] = checked_add(sweep.lb_suffix[c + 1], sweep.lb[c]);
    sweep.ub_suffix[c] = checked_add(sweep.ub_suffix[c + 1], sweep.ub[c]);
  }
  sweep.est_lb = sweep.lb;
}

// Lifts the estimation floors (work estimates only — the enumeration box
// is untouched) by the LP necessary floors: candidates below them are
// answered by the LP leaf cut without simulating.
void lift_estimation_floors(Sweep& sweep) {
  if (sweep.cuts == nullptr) return;
  const std::vector<i64>& lp_floors = sweep.cuts->necessary_floors();
  for (std::size_t c = 0; c < sweep.est_lb.size(); ++c) {
    sweep.est_lb[c] = std::min(sweep.ub[c],
                               std::max(sweep.est_lb[c], lp_floors[c]));
  }
}

// The exploration's global goal: the maximal throughput quantised down to
// the grid, lowered to any explicit throughput goal.
Rational global_goal(const DseOptions& options,
                     const DesignSpaceBounds& bounds) {
  Rational goal = quantize_down(bounds.max_throughput, options.quantization);
  if (options.throughput_goal.has_value() &&
      *options.throughput_goal < goal) {
    goal = *options.throughput_goal;
  }
  return goal;
}

// The meaningful size interval of the divide and conquer. Sizes beyond the
// max-throughput distribution's cannot improve anything (Sec. 8), so the
// interval is [lb, sz(mtd)] — unless user constraints reshape the box, in
// which case the whole (pre-widening) box is covered.
struct SizeInterval {
  i64 lo = 0;
  i64 hi = 0;
};

SizeInterval size_interval(const Sweep& sweep) {
  SizeInterval sizes;
  sizes.lo = sweep.lb_suffix[0];
  sizes.hi = sweep.options.channel_constraints.empty()
                 ? std::max(sweep.bounds.ub_size, sizes.lo)
                 : sweep.ub_suffix[0];
  if (sweep.options.max_distribution_size.has_value()) {
    sizes.hi = std::min(sizes.hi, *sweep.options.max_distribution_size);
  }
  return sizes;
}

// Completeness of the per-size slices: a minimal distribution may exceed
// the max-throughput distribution on individual channels (one big buffer
// traded for a smaller total), so clamping each channel to the Fig. 7
// witness would miss genuine Pareto points. Widen every channel so any
// composition of `target_size` above the floors is reachable, honouring
// only the user's explicit ceilings, and rebuild the suffix sums. The
// budget window in enumerate() keeps the per-size work finite.
void widen_box_to(Sweep& sweep, i64 target_size) {
  const std::size_t m = sweep.lb.size();
  const auto ceiling = constrained_ceiling(sweep.options, m);
  const i64 lb_total = sweep.lb_suffix[0];
  for (std::size_t c = 0; c < m; ++c) {
    i64 widened =
        std::max(sweep.ub[c], target_size - (lb_total - sweep.lb[c]));
    if (ceiling[c].has_value()) widened = std::min(widened, *ceiling[c]);
    sweep.ub[c] = std::max(sweep.lb[c], widened);
  }
  for (std::size_t c = m; c-- > 0;) {
    sweep.ub_suffix[c] = checked_add(sweep.ub_suffix[c + 1], sweep.ub[c]);
  }
}

// Pads a witness from a smaller slice up to `size` by topping channels up
// toward their ceilings left to right; the result is a valid distribution
// of the target size whose throughput floors the slice.
std::vector<i64> pad_caps(const std::vector<i64>& ub,
                          const std::vector<i64>& witness, i64 size) {
  std::vector<i64> caps = witness;
  i64 extra = size;
  for (const i64 c : caps) extra -= c;
  for (std::size_t c = 0; c < caps.size() && extra > 0; ++c) {
    const i64 add = std::min(ub[c] - caps[c], extra);
    caps[c] += add;
    extra -= add;
  }
  BUFFY_ASSERT(extra == 0, "padded distribution does not fit the box");
  return caps;
}

// Owning storage for the engines a sweep borrows (LP cuts, cache, per-slot
// solvers, lane bank + magnitude certificate).
struct SweepEngines {
  std::optional<lp::ThroughputCuts> cuts;
  std::optional<ThroughputCache> cache;
  std::optional<state::WorkerSolvers> solvers;
  std::optional<analysis::BoundsCertificate> cert;
  std::optional<state::LaneSolverBank> lane_bank;
  bool static_narrow = false;
};

// Wires the engines into the sweep. Call only once the enumeration box is
// final (after widen_box_to): the magnitude certificate's storage budget
// is sweep.ub itself, so lane batches carry the within-certificate
// assertion and the narrow kernel is selected once per graph instead of
// per batch (DESIGN.md §16).
void attach_engines(Sweep& sweep, SweepEngines& eng, std::size_t slots) {
  const DseOptions& options = sweep.options;
  if (options.use_lp_bounds) {
    eng.cuts.emplace(lp::ThroughputCuts::derive(
        sweep.graph, analysis::repetition_vector(sweep.graph).counts(),
        options.target));
    if (!eng.cuts->empty()) sweep.cuts = &*eng.cuts;
  }
  lift_estimation_floors(sweep);
  // The exhaustive engine never applies a processor binding, so Sec. 8
  // monotonicity holds and both dominance rules are sound.
  if (options.use_throughput_cache) {
    if (options.shared_cache != nullptr) {
      BUFFY_REQUIRE(
          options.shared_cache->max_throughput() ==
              sweep.bounds.max_throughput,
          "shared throughput cache was built for a different graph/target "
          "(maximal throughput mismatch)");
      sweep.cache = options.shared_cache;
    } else {
      eng.cache.emplace(sweep.bounds.max_throughput, options.cache_capacity);
      sweep.cache = &*eng.cache;
    }
    // The Fig. 7 max-throughput distribution is a known witness before the
    // first candidate runs: anything pointwise above it attains the
    // maximal throughput. (Re-seeding a shared cache is a no-op: the
    // witness antichain deduplicates.)
    sweep.cache->add_max_witness(
        sweep.bounds.max_throughput_distribution.capacities());
  }
  if (options.reuse_engines) {
    eng.solvers.emplace(sweep.graph, slots);
    sweep.solvers = &*eng.solvers;
    const state::SimdBackend lane_backend =
        state::resolve_backend(options.simd);
    if (lane_backend != state::SimdBackend::Scalar) {
      if (options.use_bounds_certificate) {
        analysis::BoundsOptions cert_opts;
        cert_opts.max_steps = options.max_steps_per_run;
        cert_opts.storage_budget = sweep.ub;
        eng.cert = analysis::derive_bounds(sweep.graph, cert_opts);
        sweep.lanes_within_certificate = true;
        eng.static_narrow =
            eng.cert->fits_i64 &&
            eng.cert->magnitude_bound <= state::kNarrowLimit;
      }
      eng.lane_bank.emplace(
          sweep.graph, slots,
          state::resolve_lanes(options.simd_lanes, lane_backend),
          lane_backend, eng.cert.has_value() ? &*eng.cert : nullptr);
      sweep.lane_bank = &*eng.lane_bank;
    }
  }
  sweep.init_slots(slots);
}

}  // namespace

DseResult explore_exhaustive(const sdf::Graph& graph, const DseOptions& options,
                             const DesignSpaceBounds& bounds) {
  const auto t0 = std::chrono::steady_clock::now();
  trace::Span explore_span(trace::EventKind::Exploration, /*engine=*/0,
                           static_cast<i64>(graph.num_channels()));
  DseResult result;
  result.bounds = bounds;

  // Lazily spawned: a slice only fans out (and the workers only come into
  // existence) once the adaptive estimate says the work repays it.
  exec::LazyThreadPool lazy(options.threads);
  Sweep sweep{.graph = graph, .options = options, .bounds = bounds};
  sweep.lazy = &lazy;
  init_box(sweep);
  sweep.goal = global_goal(options, bounds);
  const SizeInterval sizes = size_interval(sweep);
  const i64 lo_size = sizes.lo;
  const i64 hi_size = sizes.hi;
  widen_box_to(sweep, hi_size);
  SweepEngines eng;
  attach_engines(sweep, eng, lazy.num_slots());
  result.static_narrow = eng.static_narrow;

  // Divide and conquer over the size dimension (Sec. 9): throughput is
  // monotonic in the size, so an interval whose endpoints agree contains no
  // further Pareto points. Sizes fully evaluated before a deadline fires
  // are genuine (size, max throughput) points, so a cancelled exploration
  // still returns a verified partial front.
  std::map<i64, SizeOutcome> evaluated;
  const auto pad_to = [&](const StorageDistribution& witness, i64 size) {
    return pad_caps(sweep.ub, witness.capacities(), size);
  };
  const auto eval = [&](i64 size, const std::vector<i64>* seed,
                        const Rational& slice_goal) -> const SizeOutcome& {
    auto it = evaluated.find(size);
    if (it == evaluated.end()) {
      it = evaluated
               .emplace(size,
                        max_throughput_for_size(sweep, size, seed, slice_goal))
               .first;
    }
    return it->second;
  };
  const auto prune_interval = [&](i64 lo, i64 hi) {
    if (options.progress != nullptr && hi - lo > 1) {
      options.progress->add_pruned(static_cast<u64>(hi - lo - 1));
    }
  };

  if (hi_size >= lo_size) {
    try {
      eval(lo_size, nullptr, sweep.goal);
      // The max-throughput distribution itself seeds the top slice when it
      // fits (no user constraints reshaping the box, no size cap below
      // it): its throughput is the global goal, so the slice resolves
      // without a scan.
      std::optional<std::vector<i64>> top_seed;
      if (options.channel_constraints.empty() &&
          bounds.ub_size <= hi_size) {
        top_seed = pad_to(bounds.max_throughput_distribution, hi_size);
      }
      eval(hi_size, top_seed.has_value() ? &*top_seed : nullptr, sweep.goal);
      // Explicit work list of (lo, hi) intervals with both endpoints known.
      std::vector<std::pair<i64, i64>> intervals{{lo_size, hi_size}};
      while (!intervals.empty()) {
        const auto [lo, hi] = intervals.back();
        intervals.pop_back();
        if (hi - lo <= 1) continue;
        if (evaluated.at(lo).throughput == evaluated.at(hi).throughput ||
            evaluated.at(lo).throughput >= sweep.goal) {
          prune_interval(lo, hi);
          continue;
        }
        const i64 mid = lo + (hi - lo) / 2;
        // Seed the mid slice with the lo witness padded up to `mid`
        // (theta* is monotone in the size, so it floors the slice), and
        // stop the scan at theta*(hi) (nothing below `hi` can exceed it).
        const std::vector<i64> seed = pad_to(evaluated.at(lo).witness, mid);
        eval(mid, &seed,
             std::min(sweep.goal, evaluated.at(hi).throughput));
        intervals.emplace_back(lo, mid);
        intervals.emplace_back(mid, hi);
      }
    } catch (const exec::Cancelled&) {
      result.cancelled = true;  // keep the completed sizes
    }
    for (const auto& [size, outcome] : evaluated) {
      const std::size_t before = result.pareto.size();
      result.pareto.add(
          ParetoPoint{outcome.witness, outcome.throughput});
      // Sizes are visited in increasing order with monotone throughput,
      // so a growing set means the point was genuinely kept.
      if (trace::enabled() && result.pareto.size() > before) {
        trace::emit_pareto_point(outcome.witness.size(),
                                 outcome.throughput.to_double());
      }
    }
  }

  result.distributions_explored =
      sweep.explored.load(std::memory_order_relaxed);
  result.max_states_stored = sweep.max_states.load(std::memory_order_relaxed);
  result.simulations_run = sweep.simulations.load(std::memory_order_relaxed);
  result.cache_hits = sweep.cache_hits.load(std::memory_order_relaxed);
  result.dominance_skips =
      sweep.dominance_skips.load(std::memory_order_relaxed);
  result.lp_prunes = sweep.lp_prunes.load(std::memory_order_relaxed);
  result.lp_cuts = eng.cuts.has_value() ? eng.cuts->size() : 0;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

SlicePlan exhaustive_slice_plan(const sdf::Graph& graph,
                                const DseOptions& options,
                                const DesignSpaceBounds& bounds) {
  Sweep sweep{.graph = graph, .options = options, .bounds = bounds};
  init_box(sweep);
  SlicePlan plan;
  plan.goal = global_goal(options, bounds);
  const SizeInterval sizes = size_interval(sweep);
  plan.lo_size = sizes.lo;
  plan.hi_size = sizes.hi;
  widen_box_to(sweep, sizes.hi);
  plan.box_lb = sweep.lb;
  plan.box_ub = sweep.ub;
  // The max-throughput distribution itself seeds the top slice when it
  // fits (no user constraints reshaping the box, no size cap below it):
  // its throughput is the global goal, so the slice resolves without a
  // scan.
  if (options.channel_constraints.empty() && bounds.ub_size <= sizes.hi) {
    plan.top_seed = pad_caps(
        sweep.ub, bounds.max_throughput_distribution.capacities(), sizes.hi);
  }
  return plan;
}

std::vector<i64> pad_to_size(const SlicePlan& plan,
                             const std::vector<i64>& witness, i64 size) {
  return pad_caps(plan.box_ub, witness, size);
}

SliceOutcome explore_size_slice(const sdf::Graph& graph,
                                const DseOptions& options,
                                const DesignSpaceBounds& bounds,
                                const SliceRequest& request) {
  exec::LazyThreadPool lazy(options.threads);
  Sweep sweep{.graph = graph, .options = options, .bounds = bounds};
  sweep.op_name = "slice evaluation";
  sweep.lazy = &lazy;
  init_box(sweep);
  sweep.goal = global_goal(options, bounds);
  const SizeInterval sizes = size_interval(sweep);
  widen_box_to(sweep, sizes.hi);
  if (request.size < sweep.lb_suffix[0] ||
      request.size > sweep.ub_suffix[0]) {
    throw Error("explore_size_slice: size " + std::to_string(request.size) +
                " lies outside the enumeration box [" +
                std::to_string(sweep.lb_suffix[0]) + ", " +
                std::to_string(sweep.ub_suffix[0]) + "]");
  }
  if (request.seed.has_value()) {
    if (request.seed->size() != graph.num_channels()) {
      throw Error("explore_size_slice: seed must have one capacity per "
                  "channel");
    }
    i64 total = 0;
    for (std::size_t c = 0; c < request.seed->size(); ++c) {
      const i64 cap = (*request.seed)[c];
      if (cap < sweep.lb[c] || cap > sweep.ub[c]) {
        throw Error("explore_size_slice: seed leaves the enumeration box "
                    "on channel " +
                    std::to_string(c));
      }
      total = checked_add(total, cap);
    }
    if (total != request.size) {
      throw Error("explore_size_slice: seed is not a distribution of the "
                  "requested size");
    }
  }
  SweepEngines eng;
  attach_engines(sweep, eng, lazy.num_slots());
  // The router hands the d&c's slice goal; min with the global goal keeps
  // a malformed request from pushing the scan past it.
  const Rational slice_goal = std::min(sweep.goal, request.slice_goal);
  SizeOutcome best = max_throughput_for_size(
      sweep, request.size,
      request.seed.has_value() ? &*request.seed : nullptr, slice_goal);
  SliceOutcome out;
  out.throughput = best.throughput;
  out.witness = std::move(best.witness);
  out.distributions_explored =
      sweep.explored.load(std::memory_order_relaxed);
  out.max_states_stored = sweep.max_states.load(std::memory_order_relaxed);
  out.simulations_run = sweep.simulations.load(std::memory_order_relaxed);
  out.cache_hits = sweep.cache_hits.load(std::memory_order_relaxed);
  out.dominance_skips = sweep.dominance_skips.load(std::memory_order_relaxed);
  out.lp_prunes = sweep.lp_prunes.load(std::memory_order_relaxed);
  out.lp_cuts = eng.cuts.has_value() ? eng.cuts->size() : 0;
  out.static_narrow = eng.static_narrow;
  return out;
}

std::vector<StorageDistribution> equivalent_minimal_distributions(
    const sdf::Graph& graph, const DseOptions& options, i64 size,
    const Rational& min_throughput) {
  const DesignSpaceBounds bounds =
      design_space_bounds(graph, options.target, options.max_steps_per_run);
  std::vector<StorageDistribution> found;
  if (bounds.deadlock) return found;

  Sweep sweep{.graph = graph, .options = options, .bounds = bounds};
  sweep.op_name = "tie enumeration";  // names the operation in diagnostics
  init_box(sweep);
  sweep.goal = bounds.max_throughput + Rational(1);  // never early-exit

  // Unlike the Pareto search, tie enumeration must see shapes outside the
  // Fig. 7 box (e.g. Fig. 6's <1,2,3,3> puts 3 tokens where the
  // max-throughput distribution needs fewer): widen to `size` itself.
  widen_box_to(sweep, size);
  if (size < sweep.lb_suffix[0] || size > sweep.ub_suffix[0]) return found;

  // Tie enumeration is sequential: one caller slot, one solver.
  SweepEngines eng;
  attach_engines(sweep, eng, 1);
  sweep.begin_slice();
  std::vector<i64> caps(sweep.lb.size(), 0);
  scan_leaves(
      sweep, sweep.caller_slot,
      [&](const std::vector<i64>& candidate, const Rational& tput) {
        if (tput >= min_throughput) {
          found.emplace_back(candidate);
        }
        return true;
      },
      [&](auto&& leaf) {
        enumerate(
            sweep, sweep.caller_slot, caps, 0, size, leaf,
            // A subtree whose envelope falls short of the tie threshold
            // holds no qualifying distribution (monotonicity) — cut it
            // wholesale.
            [&](const std::vector<i64>& prefix, std::size_t channel,
                i64 remaining, std::size_t probe_slot) {
              return subtree_pruned(sweep, probe_slot, prefix, channel,
                                    remaining, min_throughput,
                                    /*strict=*/true);
            },
            // A candidate provably below the tie threshold never qualifies.
            [&](const std::vector<i64>& candidate) {
              return sweep.lp_rules_out(candidate, min_throughput,
                                        /*strict=*/true, size);
            });
      });
  sweep.end_slice();
  return found;
}

}  // namespace buffy::buffer
