#include "buffer/deadlock_free.hpp"

#include <set>
#include <unordered_set>

#include "analysis/consistency.hpp"
#include "analysis/max_throughput.hpp"
#include "base/diagnostics.hpp"
#include "buffer/bounds.hpp"
#include "buffer/dse_incremental.hpp"
#include "state/throughput.hpp"

namespace buffy::buffer {

DeadlockFreeResult minimal_deadlock_free_distribution(const sdf::Graph& graph,
                                                      sdf::ActorId target,
                                                      u64 max_distributions) {
  analysis::require_consistent(graph);
  DeadlockFreeResult result;
  if (analysis::max_throughput(graph).deadlock) return result;  // infeasible

  std::set<std::pair<i64, std::vector<i64>>> frontier;
  std::unordered_set<StorageDistribution, StorageDistributionHash> visited;
  const StorageDistribution lb = lower_bound_distribution(graph);
  frontier.emplace(lb.size(), lb.capacities());
  visited.insert(lb);

  while (!frontier.empty()) {
    const auto [size, caps] = *frontier.begin();
    frontier.erase(frontier.begin());
    if (++result.distributions_explored > max_distributions) {
      throw Error("deadlock-free search exceeded max_distributions");
    }
    const state::Capacities capacities = state::Capacities::bounded(caps);
    const auto run = state::compute_throughput(
        graph, capacities, state::ThroughputOptions{.target = target});
    if (!run.deadlocked) {
      result.feasible = true;
      result.distribution = StorageDistribution(caps);
      result.throughput = run.throughput;
      return result;
    }
    // Dependencies are collected over the whole deadlocked run; an empty
    // set would mean the deadlock is structural, which the max-throughput
    // preflight above already excluded.
    const auto deps = storage_dependencies(graph, capacities, 0, 0);
    BUFFY_ASSERT(!deps.empty(),
                 "deadlocked run without storage dependencies on a live graph");
    for (const sdf::ChannelId c : deps) {
      StorageDistribution child =
          StorageDistribution(caps).with(c.index(), caps[c.index()] + 1);
      if (visited.insert(child).second) {
        frontier.emplace(child.size(), child.capacities());
      }
    }
  }
  BUFFY_ASSERT(false, "deadlock-free search exhausted an infinite lattice");
  return result;
}

}  // namespace buffy::buffer
