#include "buffer/fast_front.hpp"

#include <algorithm>
#include <chrono>

#include "analysis/repetition_vector.hpp"
#include "base/diagnostics.hpp"
#include "buffer/dse.hpp"
#include "lp/sdf_model.hpp"
#include "trace/trace.hpp"

namespace buffy::buffer {

FastFrontResult fast_front(const sdf::Graph& graph, sdf::ActorId target,
                           i64 levels, u64 max_steps) {
  BUFFY_REQUIRE(levels >= 1, "fast_front requires levels >= 1");
  const auto t0 = std::chrono::steady_clock::now();
  FastFrontResult result;
  result.bounds = design_space_bounds(graph, target, max_steps);
  const auto stamp = [&] {
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  };
  if (result.bounds.deadlock) {
    stamp();
    return result;
  }
  // A dead self-loop deadlocks the graph at every capacity, so the bounds
  // probe above already returned; this gate only protects the LP layer's
  // precondition if that ever changes.
  if (!lp::model_diagnostics(graph).empty()) {
    stamp();
    return result;
  }

  const std::vector<i64> reps =
      analysis::repetition_vector(graph).counts();
  const lp::ThroughputCuts cuts =
      lp::ThroughputCuts::derive(graph, reps, target);
  result.lp_cuts = cuts.size();

  // The floors every positive-throughput distribution must meet: the
  // closed-form channel bound raised by the LP necessary floors.
  const std::size_t m = graph.num_channels();
  std::vector<i64> floors(m, 0);
  for (std::size_t c = 0; c < m; ++c) {
    floors[c] = std::max(result.bounds.per_channel_lb[c],
                         cuts.necessary_floors()[c]);
  }

  // Grid of throughput targets, low to high, so ParetoSet::add sees
  // increasing sizes; the exact Fig. 7 anchor caps the front.
  for (i64 level = 1; level < levels; ++level) {
    const Rational theta =
        result.bounds.max_throughput * Rational(level, levels);
    if (theta.is_zero()) continue;
    const lp::PeriodicSolveResult solved = lp::min_buffers_for_throughput(
        graph, reps, target, theta, floors);
    result.lp_pivots += solved.pivots;
    ++result.lp_solves;
    if (solved.status == lp::Status::NumericOverflow) ++result.lp_overflows;
    if (solved.status != lp::Status::Optimal) continue;
    const std::size_t before = result.pareto.size();
    result.pareto.add(
        ParetoPoint{StorageDistribution(solved.capacities), theta});
    if (trace::enabled() && result.pareto.size() > before) {
      i64 size = 0;
      for (const i64 cap : solved.capacities) size += cap;
      trace::emit_pareto_point(size, theta.to_double());
    }
  }
  result.pareto.add(ParetoPoint{result.bounds.max_throughput_distribution,
                                result.bounds.max_throughput});
  stamp();
  return result;
}

}  // namespace buffy::buffer
