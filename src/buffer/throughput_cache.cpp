#include "buffer/throughput_cache.hpp"

#include <algorithm>

#include "base/hash.hpp"

namespace buffy::buffer {

namespace {

// a pointwise <= b.
bool dominated_by(const std::vector<i64>& a, const std::vector<i64>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

}  // namespace

std::size_t ThroughputCache::CapsHash::operator()(
    const std::vector<i64>& caps) const noexcept {
  return static_cast<std::size_t>(hash_words(caps));
}

ThroughputCache::ThroughputCache(Rational max_throughput, u64 capacity)
    : max_throughput_(std::move(max_throughput)), capacity_(capacity) {
  if (capacity_ > 0) {
    per_stripe_cap_ = std::max<u64>(1, capacity_ / kStripes);
  }
}

ThroughputCache::Stripe& ThroughputCache::stripe_of(
    const std::vector<i64>& caps) const {
  return stripes_[static_cast<std::size_t>(hash_words(caps)) % kStripes];
}

std::optional<CachedThroughput> ThroughputCache::find(
    const std::vector<i64>& caps, bool require_deps) const {
  Stripe& stripe = stripe_of(caps);
  const std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.map.find(caps);
  if (it == stripe.map.end()) return std::nullopt;
  if (require_deps && !it->second.value.has_deps) return std::nullopt;
  if (capacity_ > 0) {
    // A hit refreshes recency: splice the entry to the front of its
    // stripe's LRU list (O(1), no allocation).
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru_it);
  }
  exact_hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.value;
}

std::optional<CachedThroughput> ThroughputCache::find_max_dominated(
    const std::vector<i64>& caps) const {
  const std::lock_guard<std::mutex> lock(witness_mu_);
  for (const std::vector<i64>& w : max_witnesses_) {
    if (dominated_by(w, caps)) {
      dominance_hits_.fetch_add(1, std::memory_order_relaxed);
      CachedThroughput hit;
      hit.throughput = max_throughput_;
      return hit;
    }
  }
  return std::nullopt;
}

std::optional<CachedThroughput> ThroughputCache::find_deadlock_dominated(
    const std::vector<i64>& caps) const {
  const std::lock_guard<std::mutex> lock(witness_mu_);
  for (const std::vector<i64>& w : deadlock_witnesses_) {
    if (dominated_by(caps, w)) {
      dominance_hits_.fetch_add(1, std::memory_order_relaxed);
      CachedThroughput hit;
      hit.deadlocked = true;
      hit.throughput = Rational(0);
      return hit;
    }
  }
  return std::nullopt;
}

void ThroughputCache::store(const std::vector<i64>& caps,
                            const CachedThroughput& value) {
  {
    Stripe& stripe = stripe_of(caps);
    const std::lock_guard<std::mutex> lock(stripe.mu);
    const auto [it, inserted] = stripe.map.emplace(caps, Entry{value, {}});
    if (inserted) {
      resident_.fetch_add(1, std::memory_order_relaxed);
      if (capacity_ > 0) {
        stripe.lru.push_front(&it->first);
        it->second.lru_it = stripe.lru.begin();
        if (stripe.map.size() > per_stripe_cap_) {
          // Evict this stripe's least-recently-used entry. The key is
          // copied before the erase so the lookup does not read through a
          // reference into the node being destroyed.
          const std::vector<i64> victim = *stripe.lru.back();
          stripe.lru.pop_back();
          stripe.map.erase(victim);
          evictions_.fetch_add(1, std::memory_order_relaxed);
          resident_.fetch_sub(1, std::memory_order_relaxed);
        }
      }
    } else if (!it->second.value.has_deps && value.has_deps) {
      // Upgrade: a dependency-carrying result supersedes a plain one (the
      // incremental engine refuses dependency-free exact hits).
      it->second.value = value;
    }
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  if (value.deadlocked) {
    add_deadlock_witness(caps);
  } else if (value.throughput == max_throughput_) {
    add_max_witness(caps);
  }
}

void ThroughputCache::add_max_witness(const std::vector<i64>& caps) {
  const std::lock_guard<std::mutex> lock(witness_mu_);
  // Keep only minimal witnesses: anything the new one dominates is
  // redundant, and the new one is redundant if an existing witness already
  // lies below it.
  for (const std::vector<i64>& w : max_witnesses_) {
    if (dominated_by(w, caps)) return;
  }
  std::erase_if(max_witnesses_, [&](const std::vector<i64>& w) {
    return dominated_by(caps, w);
  });
  if (max_witnesses_.size() < kMaxWitnesses) max_witnesses_.push_back(caps);
}

void ThroughputCache::add_deadlock_witness(const std::vector<i64>& caps) {
  const std::lock_guard<std::mutex> lock(witness_mu_);
  // Keep only maximal witnesses (the mirror image of the max rule).
  for (const std::vector<i64>& w : deadlock_witnesses_) {
    if (dominated_by(caps, w)) return;
  }
  std::erase_if(deadlock_witnesses_, [&](const std::vector<i64>& w) {
    return dominated_by(w, caps);
  });
  if (deadlock_witnesses_.size() < kMaxWitnesses) {
    deadlock_witnesses_.push_back(caps);
  }
}

bool ThroughputCache::corrupt_entry_for_test(const std::vector<i64>& caps,
                                             const Rational& delta) {
  Stripe& stripe = stripe_of(caps);
  const std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.map.find(caps);
  if (it == stripe.map.end()) return false;
  it->second.value.throughput = it->second.value.throughput + delta;
  return true;
}

}  // namespace buffy::buffer
