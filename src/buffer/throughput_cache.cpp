#include "buffer/throughput_cache.hpp"

#include <algorithm>

#include "base/diagnostics.hpp"
#include "base/hash.hpp"

namespace buffy::buffer {

namespace {

// a pointwise <= b.
bool dominated_by(const std::vector<i64>& a, const std::vector<i64>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

i64 total_of(const std::vector<i64>& caps) {
  i64 total = 0;
  for (const i64 c : caps) total = checked_add(total, c);
  return total;
}

// The merge determinism check compares the fields a simulation pins;
// has_deps / storage_deps may legitimately differ (fused vs plain runs).
bool values_agree(const CachedThroughput& a, const CachedThroughput& b) {
  return a.throughput == b.throughput && a.deadlocked == b.deadlocked &&
         a.states_stored == b.states_stored &&
         a.cycle_start_time == b.cycle_start_time && a.period == b.period;
}

CachedThroughput max_hit(const Rational& max_throughput) {
  CachedThroughput hit;
  hit.throughput = max_throughput;
  return hit;
}

CachedThroughput deadlock_hit() {
  CachedThroughput hit;
  hit.deadlocked = true;
  hit.throughput = Rational(0);
  return hit;
}

}  // namespace

std::size_t ThroughputCache::CapsHash::operator()(
    const std::vector<i64>& caps) const noexcept {
  return static_cast<std::size_t>(hash_words(caps));
}

ThroughputCache::ThroughputCache(Rational max_throughput, u64 capacity)
    : max_throughput_(std::move(max_throughput)), capacity_(capacity) {
  if (capacity_ > 0) {
    per_stripe_cap_ = std::max<u64>(1, capacity_ / kStripes);
  }
}

ThroughputCache::Stripe& ThroughputCache::stripe_of(
    const std::vector<i64>& caps) const {
  return stripes_[static_cast<std::size_t>(hash_words(caps)) % kStripes];
}

// ---------------------------------------------------------------------------
// Sorted witness antichains. Both lists are ascending by (total, caps); the
// scans below stop as soon as the total rules every remaining witness out.

void ThroughputCache::insert_minimal_witness(std::vector<Witness>& ws,
                                             const std::vector<i64>& caps) {
  const i64 total = total_of(caps);
  // Redundant if an existing witness lies (pointwise) below the new one.
  // Such a witness necessarily has total <= the new one's: the sorted
  // prefix is the only region to check.
  for (const Witness& w : ws) {
    if (w.total > total) break;
    if (dominated_by(w.caps, caps)) return;
  }
  // Anything the new witness lies below is no longer minimal; candidates
  // have total >= the new one's (the sorted suffix).
  std::erase_if(ws, [&](const Witness& w) {
    return w.total >= total && dominated_by(caps, w.caps);
  });
  if (ws.size() >= kMaxWitnesses) return;
  Witness nw{caps, total};
  const auto pos = std::lower_bound(
      ws.begin(), ws.end(), nw, [](const Witness& a, const Witness& b) {
        return a.total != b.total ? a.total < b.total : a.caps < b.caps;
      });
  ws.insert(pos, std::move(nw));
}

void ThroughputCache::insert_maximal_witness(std::vector<Witness>& ws,
                                             const std::vector<i64>& caps) {
  const i64 total = total_of(caps);
  // Redundant if an existing witness lies (pointwise) above the new one;
  // such a witness has total >= the new one's (the sorted suffix).
  for (std::size_t i = ws.size(); i-- > 0;) {
    const Witness& w = ws[i];
    if (w.total < total) break;
    if (dominated_by(caps, w.caps)) return;
  }
  std::erase_if(ws, [&](const Witness& w) {
    return w.total <= total && dominated_by(w.caps, caps);
  });
  if (ws.size() >= kMaxWitnesses) return;
  Witness nw{caps, total};
  const auto pos = std::lower_bound(
      ws.begin(), ws.end(), nw, [](const Witness& a, const Witness& b) {
        return a.total != b.total ? a.total < b.total : a.caps < b.caps;
      });
  ws.insert(pos, std::move(nw));
}

bool ThroughputCache::any_max_witness(const std::vector<Witness>& ws,
                                      const std::vector<i64>& caps) {
  const i64 total = total_of(caps);
  for (const Witness& w : ws) {
    if (w.total > total) break;  // a dominating witness fits inside caps
    if (dominated_by(w.caps, caps)) return true;
  }
  return false;
}

bool ThroughputCache::any_deadlock_witness(const std::vector<Witness>& ws,
                                           const std::vector<i64>& caps) {
  const i64 total = total_of(caps);
  for (std::size_t i = ws.size(); i-- > 0;) {
    const Witness& w = ws[i];
    if (w.total < total) break;  // caps cannot fit inside any earlier one
    if (dominated_by(caps, w.caps)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Locked (authoritative) API.

std::optional<CachedThroughput> ThroughputCache::find(
    const std::vector<i64>& caps, bool require_deps) const {
  Stripe& stripe = stripe_of(caps);
  const std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.map.find(caps);
  if (it == stripe.map.end()) return std::nullopt;
  if (require_deps && !it->second.value.has_deps) return std::nullopt;
  if (capacity_ > 0) {
    // A hit refreshes recency: splice the entry to the front of its
    // stripe's LRU list (O(1), no allocation).
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru_it);
  }
  exact_hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.value;
}

std::optional<CachedThroughput> ThroughputCache::find_max_dominated(
    const std::vector<i64>& caps) const {
  const std::lock_guard<std::mutex> lock(witness_mu_);
  if (!any_max_witness(max_witnesses_, caps)) return std::nullopt;
  dominance_hits_.fetch_add(1, std::memory_order_relaxed);
  return max_hit(max_throughput_);
}

std::optional<CachedThroughput> ThroughputCache::find_deadlock_dominated(
    const std::vector<i64>& caps) const {
  const std::lock_guard<std::mutex> lock(witness_mu_);
  if (!any_deadlock_witness(deadlock_witnesses_, caps)) return std::nullopt;
  dominance_hits_.fetch_add(1, std::memory_order_relaxed);
  return deadlock_hit();
}

CachedThroughput ThroughputCache::apply_entry(const std::vector<i64>& caps,
                                              const CachedThroughput& value,
                                              bool checked) {
  Stripe& stripe = stripe_of(caps);
  const std::lock_guard<std::mutex> lock(stripe.mu);
  const auto [it, inserted] = stripe.map.emplace(caps, Entry{value, {}});
  if (inserted) {
    resident_.fetch_add(1, std::memory_order_relaxed);
    if (capacity_ > 0) {
      stripe.lru.push_front(&it->first);
      it->second.lru_it = stripe.lru.begin();
      if (stripe.map.size() > per_stripe_cap_) {
        // Evict this stripe's least-recently-used entry. The key is
        // copied before the erase so the lookup does not read through a
        // reference into the node being destroyed.
        const std::vector<i64> victim = *stripe.lru.back();
        stripe.lru.pop_back();
        stripe.map.erase(victim);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        resident_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  } else {
    if (checked && !values_agree(it->second.value, value)) {
      throw Error(
          "throughput cache merge: two evaluations of the same capacity "
          "vector disagree — the deterministic simulation invariant is "
          "broken (delta merge rejected)");
    }
    if (!it->second.value.has_deps && value.has_deps) {
      // Upgrade: a dependency-carrying result supersedes a plain one (the
      // incremental engine refuses dependency-free exact hits).
      it->second.value = value;
    }
    if (capacity_ > 0) {
      // A merge touch counts as a use, exactly like a find() hit.
      stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru_it);
    }
  }
  return it->second.value;
}

void ThroughputCache::feed_witnesses(const std::vector<i64>& caps,
                                     const CachedThroughput& value) {
  if (value.deadlocked) {
    add_deadlock_witness(caps);
  } else if (value.throughput == max_throughput_) {
    add_max_witness(caps);
  }
}

void ThroughputCache::store(const std::vector<i64>& caps,
                            const CachedThroughput& value) {
  apply_entry(caps, value, /*checked=*/false);
  stores_.fetch_add(1, std::memory_order_relaxed);
  feed_witnesses(caps, value);
}

void ThroughputCache::add_max_witness(const std::vector<i64>& caps) {
  const std::lock_guard<std::mutex> lock(witness_mu_);
  insert_minimal_witness(max_witnesses_, caps);
}

void ThroughputCache::add_deadlock_witness(const std::vector<i64>& caps) {
  const std::lock_guard<std::mutex> lock(witness_mu_);
  insert_maximal_witness(deadlock_witnesses_, caps);
}

// ---------------------------------------------------------------------------
// Snapshot / Delta / merge (DESIGN.md §14).

ThroughputCache::Snapshot ThroughputCache::snapshot() const {
  Snapshot s;
  s.cache_ = this;
  {
    const std::lock_guard<std::mutex> lock(frozen_mu_);
    s.frozen_ = frozen_;  // null for bounded caches / before first merge
  }
  {
    const std::lock_guard<std::mutex> lock(witness_mu_);
    s.max_witnesses_ = max_witnesses_;
    s.deadlock_witnesses_ = deadlock_witnesses_;
  }
  return s;
}

ThroughputCache::Delta ThroughputCache::make_delta() const {
  Delta d;
  d.cache_ = this;
  return d;
}

void ThroughputCache::merge(std::span<Delta* const> deltas) {
  const std::lock_guard<std::mutex> merge_lock(merge_mu_);
  // Pass 1 — determinism check across deltas: duplicate keys must agree.
  // (apply_entry re-checks each entry against resident values.)
  {
    std::unordered_map<const std::vector<i64>*, const CachedThroughput*,
                       decltype([](const std::vector<i64>* k) {
                         return static_cast<std::size_t>(hash_words(*k));
                       }),
                       decltype([](const std::vector<i64>* a,
                                   const std::vector<i64>* b) {
                         return *a == *b;
                       })>
        seen;
    for (const Delta* d : deltas) {
      for (const auto& [caps, value] : d->entries_) {
        const auto [it, inserted] = seen.emplace(&caps, &value);
        if (!inserted && !values_agree(*it->second, value)) {
          throw Error(
              "throughput cache merge: two worker deltas disagree on the "
              "same capacity vector — the deterministic simulation "
              "invariant is broken (delta merge rejected)");
        }
      }
    }
  }
  // Pass 2 — apply in slot order, each delta in insertion order, so a
  // sequential wave merges in exactly the order it simulated. Canonical
  // (post-upgrade-rule) values are collected for the frozen index.
  std::vector<std::pair<const std::vector<i64>*, CachedThroughput>> applied;
  for (Delta* d : deltas) {
    applied.reserve(applied.size() + d->entries_.size());
    for (const auto& [caps, value] : d->entries_) {
      CachedThroughput canonical = apply_entry(caps, value, /*checked=*/true);
      stores_.fetch_add(1, std::memory_order_relaxed);
      feed_witnesses(caps, value);
      if (capacity_ == 0) {
        applied.emplace_back(&caps, std::move(canonical));
      }
    }
  }
  // Pass 3 — republish the frozen index (unbounded caches only): one
  // copy-on-write batch per merge, folding the overlay into the base when
  // it outgrows max(64, |base| / 8).
  if (capacity_ == 0 && !applied.empty()) {
    std::shared_ptr<const Frozen> old;
    {
      const std::lock_guard<std::mutex> lock(frozen_mu_);
      old = frozen_;
    }
    auto next = std::make_shared<Frozen>();
    const std::size_t base_size = old != nullptr ? old->base->size() : 0;
    const std::size_t overlay_size =
        (old != nullptr ? old->overlay.size() : 0) + applied.size();
    const bool fold =
        old == nullptr ||
        overlay_size >= std::max<std::size_t>(64, base_size / 8);
    if (fold) {
      auto base = old != nullptr ? std::make_shared<ExactMap>(*old->base)
                                 : std::make_shared<ExactMap>();
      if (old != nullptr) {
        for (const auto& [caps, value] : old->overlay) {
          (*base)[caps] = value;
        }
      }
      for (auto& [caps, value] : applied) {
        (*base)[*caps] = std::move(value);
      }
      next->base = std::move(base);
    } else {
      next->base = old->base;  // old non-null here: a null old always folds
      next->overlay = old->overlay;
      for (auto& [caps, value] : applied) {
        next->overlay[*caps] = std::move(value);
      }
    }
    {
      const std::lock_guard<std::mutex> lock(frozen_mu_);
      frozen_ = std::move(next);
    }
  }
  merges_.fetch_add(1, std::memory_order_relaxed);
}

bool ThroughputCache::corrupt_entry_for_test(const std::vector<i64>& caps,
                                             const Rational& delta) {
  CachedThroughput corrupted;
  {
    Stripe& stripe = stripe_of(caps);
    const std::lock_guard<std::mutex> lock(stripe.mu);
    const auto it = stripe.map.find(caps);
    if (it == stripe.map.end()) return false;
    it->second.value.throughput = it->second.value.throughput + delta;
    corrupted = it->second.value;
  }
  // Keep the frozen index in sync so Snapshot readers see the corruption
  // (this is what the audit tamper tests rely on).
  const std::lock_guard<std::mutex> merge_lock(merge_mu_);
  std::shared_ptr<const Frozen> old;
  {
    const std::lock_guard<std::mutex> lock(frozen_mu_);
    old = frozen_;
  }
  if (old != nullptr &&
      (old->overlay.contains(caps) || old->base->contains(caps))) {
    auto next = std::make_shared<Frozen>();
    next->base = old->base;
    next->overlay = old->overlay;
    if (old->base->contains(caps) && !old->overlay.contains(caps)) {
      next->overlay.emplace(caps, old->base->at(caps));
    }
    next->overlay[caps] = corrupted;
    const std::lock_guard<std::mutex> lock(frozen_mu_);
    frozen_ = std::move(next);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Snapshot.

std::optional<CachedThroughput> ThroughputCache::Snapshot::find(
    const std::vector<i64>& caps, bool require_deps) const {
  if (frozen_ == nullptr) {
    // Bounded cache (or nothing merged yet): the locked map is the only
    // index, and going through it keeps LRU recency exact.
    return cache_->find(caps, require_deps);
  }
  const auto ov = frozen_->overlay.find(caps);
  const CachedThroughput* value = nullptr;
  if (ov != frozen_->overlay.end()) {
    value = &ov->second;
  } else {
    const auto it = frozen_->base->find(caps);
    if (it != frozen_->base->end()) value = &it->second;
  }
  if (value == nullptr) return std::nullopt;
  if (require_deps && !value->has_deps) return std::nullopt;
  cache_->exact_hits_.fetch_add(1, std::memory_order_relaxed);
  return *value;
}

std::optional<CachedThroughput> ThroughputCache::Snapshot::find_max_dominated(
    const std::vector<i64>& caps) const {
  if (!any_max_witness(max_witnesses_, caps)) return std::nullopt;
  cache_->dominance_hits_.fetch_add(1, std::memory_order_relaxed);
  return max_hit(cache_->max_throughput_);
}

std::optional<CachedThroughput>
ThroughputCache::Snapshot::find_deadlock_dominated(
    const std::vector<i64>& caps) const {
  if (!any_deadlock_witness(deadlock_witnesses_, caps)) return std::nullopt;
  cache_->dominance_hits_.fetch_add(1, std::memory_order_relaxed);
  return deadlock_hit();
}

// ---------------------------------------------------------------------------
// Delta.

void ThroughputCache::Delta::record(const std::vector<i64>& caps,
                                    const CachedThroughput& value) {
  const auto [it, inserted] = index_.emplace(caps, entries_.size());
  if (!inserted) {
    CachedThroughput& existing = entries_[it->second].second;
    if (!existing.has_deps && value.has_deps) existing = value;
    return;
  }
  entries_.emplace_back(caps, value);
  // Local witnesses: later candidates of THIS worker's wave see this
  // outcome through the dominance rules immediately, which is what keeps
  // a sequential wave's hit/miss pattern identical to the per-candidate
  // store() path it replaced.
  if (value.deadlocked) {
    insert_maximal_witness(deadlock_witnesses_, caps);
  } else if (value.throughput == cache_->max_throughput_) {
    insert_minimal_witness(max_witnesses_, caps);
  }
}

std::optional<CachedThroughput> ThroughputCache::Delta::find(
    const std::vector<i64>& caps, bool require_deps) const {
  const auto it = index_.find(caps);
  if (it == index_.end()) return std::nullopt;
  const CachedThroughput& value = entries_[it->second].second;
  if (require_deps && !value.has_deps) return std::nullopt;
  cache_->exact_hits_.fetch_add(1, std::memory_order_relaxed);
  return value;
}

std::optional<CachedThroughput> ThroughputCache::Delta::find_max_dominated(
    const std::vector<i64>& caps) const {
  if (!any_max_witness(max_witnesses_, caps)) return std::nullopt;
  cache_->dominance_hits_.fetch_add(1, std::memory_order_relaxed);
  return max_hit(cache_->max_throughput_);
}

std::optional<CachedThroughput>
ThroughputCache::Delta::find_deadlock_dominated(
    const std::vector<i64>& caps) const {
  if (!any_deadlock_witness(deadlock_witnesses_, caps)) return std::nullopt;
  cache_->dominance_hits_.fetch_add(1, std::memory_order_relaxed);
  return deadlock_hit();
}

void ThroughputCache::Delta::clear() {
  entries_.clear();
  index_.clear();
  max_witnesses_.clear();
  deadlock_witnesses_.clear();
}

}  // namespace buffy::buffer
