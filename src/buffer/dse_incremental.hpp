// The incremental (storage-dependency guided) design-space exploration
// engine; see dse.hpp.
#pragma once

#include <vector>

#include "buffer/dse.hpp"
#include "state/state.hpp"

namespace buffy::buffer {

/// Channels whose lack of space delayed a firing during the periodic phase
/// of the given bounded execution (or anywhere in a deadlocked run): the
/// storage dependencies that the incremental engine relieves. `cycle_start`
/// and `period` come from a completed throughput run; pass period 0 for a
/// deadlocked run. `processor_of` optionally binds actors to processors.
[[nodiscard]] std::vector<sdf::ChannelId> storage_dependencies(
    const sdf::Graph& graph, const state::Capacities& capacities,
    i64 cycle_start, i64 period,
    const std::vector<std::size_t>& processor_of = {});

/// Size-ordered exploration bumping only storage-dependency channels.
[[nodiscard]] DseResult explore_incremental(const sdf::Graph& graph,
                                            const DseOptions& options,
                                            const DesignSpaceBounds& bounds);

}  // namespace buffy::buffer
