// Alternative memory models for channel storage (paper Sec. 3).
//
// The paper's DSE assumes every channel owns a private memory, so the cost
// of a distribution is the sum of the capacities (conservative for any
// implementation). Sec. 3 discusses two other realisations:
//  * one memory shared by all channels [MB00]: the requirement is the
//    maximum number of tokens (plus space claimed by running firings)
//    stored simultaneously during execution;
//  * hybrid groups of channels sharing a memory each [GBS05].
// This module computes those requirements for a given storage distribution
// by replaying the self-timed execution over its transient phase plus one
// full period.
#pragma once

#include <vector>

#include "base/rational.hpp"
#include "buffer/distribution.hpp"
#include "sdf/graph.hpp"

namespace buffy::buffer {

/// A partition (or any grouping) of channels into shared memories.
using MemoryGroups = std::vector<std::vector<sdf::ChannelId>>;

/// Memory requirements of one (graph, distribution) pair under the three
/// models of Sec. 3.
struct MemoryModelAnalysis {
  /// The distribution deadlocks; the maxima below still cover the stalled
  /// prefix of the execution.
  bool deadlocked = false;
  /// Throughput of the target actor under the distribution.
  Rational throughput;
  /// Separate memories: the allocated capacity, sz(gamma) (Def. 2).
  i64 separate = 0;
  /// One shared memory: max simultaneous occupancy (tokens + claims) over
  /// all channels. Never exceeds `separate`.
  i64 shared = 0;
  /// Per-group maxima for the requested grouping (empty when none given).
  std::vector<i64> group_requirements;
};

/// Replays self-timed execution under the distribution and measures the
/// memory models. `groups` may be empty, may overlap, and need not cover
/// every channel.
[[nodiscard]] MemoryModelAnalysis analyze_memory_models(
    const sdf::Graph& graph, const StorageDistribution& distribution,
    sdf::ActorId target, const MemoryGroups& groups = {},
    u64 max_steps = 100'000'000);

/// Result of packing channels into fixed-size physical memories.
struct MemoryPacking {
  /// False when some channel's own peak occupancy exceeds the memory size.
  bool feasible = false;
  /// Disjoint groups covering every channel (when feasible).
  MemoryGroups groups;
  /// Peak concurrent occupancy of each group; each <= memory_size.
  std::vector<i64> requirements;
};

/// Packs the channels of a distribution into as few memories of the given
/// size as a greedy first-fit-decreasing pass finds, using the observed
/// occupancy traces (channels whose peaks never coincide share a memory
/// cheaply). A practical answer to the paper's multi-processor motivation:
/// memories are per-tile and fixed-size, not a single shared pool.
[[nodiscard]] MemoryPacking pack_into_memories(
    const sdf::Graph& graph, const StorageDistribution& distribution,
    sdf::ActorId target, i64 memory_size, u64 max_steps = 100'000'000);

}  // namespace buffy::buffer
