#include "buffer/distribution.hpp"

#include <sstream>

#include "base/diagnostics.hpp"
#include "base/hash.hpp"

namespace buffy::buffer {

StorageDistribution::StorageDistribution(std::vector<i64> capacities)
    : caps_(std::move(capacities)) {
  for (const i64 c : caps_) {
    BUFFY_REQUIRE(c >= 0, "storage distribution with negative capacity");
  }
}

i64 StorageDistribution::operator[](std::size_t channel) const {
  BUFFY_REQUIRE(channel < caps_.size(), "channel index out of range");
  return caps_[channel];
}

i64 StorageDistribution::operator[](sdf::ChannelId channel) const {
  return (*this)[channel.index()];
}

StorageDistribution StorageDistribution::with(std::size_t channel,
                                              i64 capacity) const {
  std::vector<i64> caps = caps_;
  BUFFY_REQUIRE(channel < caps.size(), "channel index out of range");
  caps[channel] = capacity;
  return StorageDistribution(std::move(caps));
}

i64 StorageDistribution::size() const {
  i64 total = 0;
  for (const i64 c : caps_) total = checked_add(total, c);
  return total;
}

std::string StorageDistribution::str() const {
  std::ostringstream os;
  os << '<';
  for (std::size_t i = 0; i < caps_.size(); ++i) {
    if (i != 0) os << ", ";
    os << caps_[i];
  }
  os << '>';
  return os.str();
}

u64 StorageDistribution::hash() const { return hash_words(caps_); }

}  // namespace buffy::buffer
