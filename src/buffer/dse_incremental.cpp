#include "buffer/dse_incremental.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <unordered_set>

#include "analysis/bounds.hpp"
#include "analysis/repetition_vector.hpp"
#include "base/audit.hpp"
#include "base/diagnostics.hpp"
#include "base/hash.hpp"
#include "buffer/audit_checks.hpp"
#include "lp/sdf_model.hpp"
#include "buffer/throughput_cache.hpp"
#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "state/engine.hpp"
#include "state/lane_throughput.hpp"
#include "state/simd_kernel.hpp"
#include "state/throughput.hpp"
#include "trace/trace.hpp"

namespace buffy::buffer {

std::vector<sdf::ChannelId> storage_dependencies(
    const sdf::Graph& graph, const state::Capacities& capacities,
    i64 cycle_start, i64 period,
    const std::vector<std::size_t>& processor_of) {
  state::Engine engine(graph, capacities);
  engine.set_binding(processor_of);
  engine.reset();
  std::vector<bool> blocked(graph.num_channels(), false);
  std::vector<sdf::ChannelId> scratch;  // reused across every sample
  auto absorb = [&]() {
    engine.space_blocked_channels(scratch);
    for (const sdf::ChannelId c : scratch) {
      blocked[c.index()] = true;
    }
  };
  if (period == 0) {
    // Deadlocked execution: collect dependencies over the whole run — a
    // firing may have been delayed by space long before the final stall.
    absorb();
    while (engine.advance()) absorb();
    absorb();
  } else {
    // The states of the periodic phase are those in [cycle_start,
    // cycle_start + period); between completions the blocked set is
    // constant, so sampling at every completion inside the window covers
    // every state on the cycle.
    while (engine.now() < cycle_start) {
      BUFFY_ASSERT(engine.advance(), "deadlock before the reported cycle");
    }
    absorb();
    while (engine.now() < cycle_start + period) {
      BUFFY_ASSERT(engine.advance(), "deadlock inside the reported cycle");
      absorb();
    }
  }
  std::vector<sdf::ChannelId> result;
  for (std::size_t c = 0; c < blocked.size(); ++c) {
    if (blocked[c]) result.emplace_back(c);
  }
  return result;
}

namespace {

// Deterministic size-ordered frontier: (size, capacities) sorted
// lexicographically so runs are reproducible across platforms.
using Frontier = std::set<std::pair<i64, std::vector<i64>>>;

// Adaptive wave granularity (DESIGN.md §14): a wave only fans out over
// the pool when its estimated simulation work repays the barrier cost,
// and the pool itself is only ever spawned for a wave expensive enough
// to also repay thread creation. Estimates use the running average
// per-simulation wall time of this exploration; before the first
// simulation completes the wave runs sequentially (the first wave is the
// single warm-start candidate anyway).
constexpr double kParallelWaveSeconds = 200e-6;
constexpr double kSpawnWaveSeconds = 1e-3;

// Per-slot scratch for one wave: the worker's cache delta plus its local
// simulation-cost sample, padded so neighbouring workers never share a
// cache line.
struct alignas(64) WaveSlot {
  std::optional<ThroughputCache::Delta> delta;
  double sim_seconds = 0.0;
  u64 sims = 0;
};

}  // namespace

DseResult explore_incremental(const sdf::Graph& graph,
                              const DseOptions& options,
                              const DesignSpaceBounds& bounds) {
  const auto t0 = std::chrono::steady_clock::now();
  trace::Span explore_span(trace::EventKind::Exploration, /*engine=*/1,
                           static_cast<i64>(graph.num_channels()));
  DseResult result;
  result.bounds = bounds;

  Rational goal = bounds.max_throughput;
  if (options.throughput_goal.has_value() &&
      *options.throughput_goal < goal) {
    goal = *options.throughput_goal;
  }
  // With quantisation, reaching the top grid cell is as good as reaching the
  // maximum: exploring further cannot produce a new quantised Pareto point.
  const Rational quantized_goal = quantize_down(goal, options.quantization);

  // One (lazily spawned) pool for the whole exploration; a wave fans out
  // over it only when its estimated cost clears the adaptive threshold
  // above, so microsecond explorations never pay for thread creation or
  // barriers no matter what --threads says.
  exec::LazyThreadPool lazy(options.threads);
  const std::size_t slots = lazy.num_slots();

  // Shared throughput cache and per-worker solver pool. The `visited` set
  // already makes exact repeats rare within one exploration; the cache's
  // main contributions here are the seeded max-throughput witness (Sec. 8
  // dominance — sound only without a binding) and making every simulated
  // outcome reusable by later calls that share the cache.
  std::optional<ThroughputCache> own_cache;
  ThroughputCache* cache = nullptr;
  if (options.use_throughput_cache) {
    if (options.shared_cache != nullptr) {
      BUFFY_REQUIRE(options.binding.empty(),
                    "shared_cache requires an unbound exploration: cached "
                    "values are binding-free simulation outcomes");
      BUFFY_REQUIRE(
          options.shared_cache->max_throughput() == bounds.max_throughput,
          "shared throughput cache was built for a different graph/target "
          "(maximal throughput mismatch)");
      cache = options.shared_cache;
    } else {
      own_cache.emplace(bounds.max_throughput, options.cache_capacity);
      cache = &*own_cache;
    }
    cache->add_max_witness(bounds.max_throughput_distribution.capacities());
  }
  // Thread-affine execution state: one solver (engine + warmed visited
  // arena) per pool slot for the whole exploration, indexed lock-free by
  // the worker's slot — no per-candidate acquire/release.
  std::optional<state::WorkerSolvers> solvers;
  if (options.reuse_engines) solvers.emplace(graph, slots);
  // Lane-parallel candidate evaluation (DESIGN.md §15): the wave's
  // cache-missing candidates are packed into lane batches and stepped in
  // lockstep by the SIMD kernel. Per-candidate results are field-for-field
  // identical to the scalar solver's, so the fold below — and with it the
  // Pareto front and every counter — is byte-identical to the scalar path.
  // A processor binding forces the scalar path: the lane kernel simulates
  // unbound execution only.
  const state::SimdBackend lane_backend = state::resolve_backend(options.simd);
  const bool lane_eval = lane_backend != state::SimdBackend::Scalar &&
                         options.reuse_engines && options.binding.empty();
  const std::size_t lane_width =
      state::resolve_lanes(options.simd_lanes, lane_backend);
  std::optional<state::LaneSolverBank> lane_bank;
  std::vector<WaveSlot> wave_slots(slots);
  if (cache != nullptr) {
    for (WaveSlot& ws : wave_slots) ws.delta.emplace(cache->make_delta());
  }
  double total_sim_seconds = 0.0;
  u64 total_sims = 0;
  std::atomic<u64> simulations{0};
  std::atomic<u64> cache_hits{0};
  std::atomic<u64> dominance_skips{0};

  Frontier frontier;
  std::unordered_set<StorageDistribution, StorageDistributionHash> visited;

  const auto ceiling = constrained_ceiling(options, graph.num_channels());
  std::vector<i64> floor_caps = constrained_floor(options, bounds);
  // Kept alive past the warm start for the sampled LP-bound-vs-simulation
  // audit inside the evaluation waves (DESIGN.md §9).
  std::optional<lp::ThroughputCuts> cuts;
  if (options.use_lp_bounds) {
    // LP warm start (DESIGN.md §13): single-backward-edge cycle cuts yield
    // per-channel capacities every distribution with non-zero target
    // throughput must meet, independently of the other channels. Lifting
    // the climb's starting point to them skips candidates that could only
    // ever deadlock; zero-throughput candidates never become Pareto
    // points, so the reported front is unchanged. User ceilings still
    // win: a channel capped below its LP floor is left at the cap (the
    // classic constraint handling reports such boxes).
    cuts.emplace(lp::ThroughputCuts::derive(
        graph, analysis::repetition_vector(graph).counts(), options.target));
    result.lp_cuts = cuts->size();
    const std::vector<i64>& lp_floors = cuts->necessary_floors();
    for (std::size_t c = 0; c < floor_caps.size(); ++c) {
      i64 lifted = std::max(floor_caps[c], lp_floors[c]);
      if (ceiling[c].has_value()) lifted = std::min(lifted, *ceiling[c]);
      if (lifted > floor_caps[c]) {
        result.lp_prunes += static_cast<u64>(lifted - floor_caps[c]);
        floor_caps[c] = lifted;
      }
    }
    if (result.lp_prunes > 0) {
      if (trace::enabled()) {
        i64 size = 0;
        for (const i64 cap : floor_caps) size += cap;
        trace::emit_instant(trace::EventKind::LpPrune, size);
      }
      if (options.progress != nullptr) {
        options.progress->add_lp_prunes(result.lp_prunes);
      }
    }
  }
  const StorageDistribution lb(floor_caps);
  if (!options.max_distribution_size.has_value() ||
      lb.size() <= *options.max_distribution_size) {
    frontier.emplace(lb.size(), lb.capacities());
    visited.insert(lb);
  }

  // Static magnitude certificate (DESIGN.md §16): a uniform per-channel
  // budget of `cert_budget_size` tokens covers every candidate whose
  // total size stays within it — capacities are non-negative, so no
  // single channel of a size-S distribution can exceed S. The climb pops
  // waves in ascending size, so one comparison per wave decides whether
  // the whole wave is inside the certified envelope (and may skip the
  // per-candidate narrow-kernel gate); waves beyond it simply fall back
  // to the dynamic gate. The envelope is sized to the design-space upper
  // bound, which the climb does not normally exceed before reaching its
  // throughput goal.
  std::optional<analysis::BoundsCertificate> cert;
  i64 cert_budget_size = 0;
  if (lane_eval && options.use_bounds_certificate) {
    try {
      i64 floor_total = 0;
      for (const i64 f : floor_caps) floor_total = checked_add(floor_total, f);
      cert_budget_size = std::max(bounds.ub_size, floor_total);
      analysis::BoundsOptions cert_opts;
      cert_opts.max_steps = options.max_steps_per_run;
      cert_opts.storage_budget.assign(graph.num_channels(), cert_budget_size);
      cert = analysis::derive_bounds(graph, cert_opts);
      result.static_narrow = cert->fits_i64 &&
                             cert->magnitude_bound <= state::kNarrowLimit;
    } catch (const OverflowError&) {
      cert.reset();  // envelope unrepresentable: dynamic gating only
    }
  }
  if (lane_eval) {
    lane_bank.emplace(graph, slots, lane_width, lane_backend,
                      cert.has_value() ? &*cert : nullptr);
  }

  Rational best_seen(0);
  bool goal_reached = false;
  while (!frontier.empty() && !goal_reached) {
    // One batch: every frontier entry of the current minimal size. The
    // sequential algorithm would pop exactly these, in this order, before
    // any of their (strictly larger) children.
    const i64 batch_size = frontier.begin()->first;
    std::vector<std::vector<i64>> batch;
    while (!frontier.empty() && frontier.begin()->first == batch_size) {
      batch.push_back(frontier.begin()->second);
      frontier.erase(frontier.begin());
    }
    if (result.distributions_explored + batch.size() >
        options.max_distributions) {
      throw Error("incremental DSE exceeded max_distributions = " +
                  std::to_string(options.max_distributions));
    }

    // Evaluate the batch (throughput + storage dependencies per
    // distribution); each evaluation is independent, so the wave fans out
    // over the pool. A cancellation (deadline or external token) leaves
    // the remaining items unevaluated — the wave stops "from within".
    struct Evaluation {
      state::ThroughputResult run;
      std::vector<sdf::ChannelId> deps;
      bool valid = false;
    };
    std::vector<Evaluation> evals(batch.size());
    // Workers read the cache through a frozen point-in-time snapshot and
    // record fresh outcomes into their slot's delta — no shared-map or
    // witness-lock traffic inside the wave; the deltas are folded back
    // once at the wave boundary below.
    std::optional<ThroughputCache::Snapshot> snap;
    if (cache != nullptr) snap.emplace(cache->snapshot());
    // Cache/dominance lookup for one candidate; true when answered (the
    // evaluation is then already recorded in evals[i]).
    const auto try_cache = [&](std::size_t i, std::size_t slot) {
      if (cache == nullptr) return false;
      // An exact hit must carry recorded dependencies — children are
      // expanded from them. A max-dominance hit needs none: the maximal
      // throughput reaches the goal, so the fold stops before this
      // candidate's children would be expanded. Dominance is consulted
      // only without a binding (scheduling anomalies break the Sec. 8
      // monotonicity it relies on); exact repeats stay valid either way.
      // The snapshot covers everything merged before this wave; the
      // slot's delta covers what this worker learned inside it.
      ThroughputCache::Delta& delta = *wave_slots[slot].delta;
      std::optional<CachedThroughput> hit =
          snap->find(batch[i], /*require_deps=*/true);
      if (!hit.has_value()) hit = delta.find(batch[i], /*require_deps=*/true);
      const bool exact = hit.has_value();
      if (!hit.has_value() && options.binding.empty()) {
        hit = snap->find_max_dominated(batch[i]);
        if (!hit.has_value()) hit = delta.find_max_dominated(batch[i]);
      }
      if (!hit.has_value()) return false;
      trace::emit_instant(exact ? trace::EventKind::CacheHit
                                : trace::EventKind::DominanceSkip,
                          batch_size);
      evals[i].run.throughput = hit->throughput;
      evals[i].run.deadlocked = hit->deadlocked;
      evals[i].run.states_stored = hit->states_stored;
      evals[i].run.cycle_start_time = hit->cycle_start_time;
      evals[i].run.period = hit->period;
      evals[i].deps = hit->storage_deps;
      evals[i].valid = true;
      (exact ? cache_hits : dominance_skips)
          .fetch_add(1, std::memory_order_relaxed);
      if (options.progress != nullptr) {
        options.progress->add_points(1);
        options.progress->add_sims_avoided(1);
        if (exact) {
          options.progress->add_cache_hits(1);
        } else {
          options.progress->add_dominance_skips(1);
        }
      }
      // Audit mode re-simulates a deterministic sample of hits: exact
      // repeats re-verify the stored value, dominance answers
      // re-verify the Sec. 8 monotonicity end-to-end (DESIGN.md §9).
      if (audit::enabled() && audit::sample(hash_words(batch[i]))) {
        audit_check_cached_throughput(graph, options.target,
                                      options.max_steps_per_run,
                                      options.binding, batch[i], *hit);
      }
      return true;
    };
    // Books one freshly simulated outcome: cache delta, LP-bound audit
    // sample, progress. Shared by the scalar and lane paths.
    const auto absorb_simulated = [&](std::size_t i, std::size_t slot) {
      if (cache != nullptr) {
        CachedThroughput value;
        value.throughput = evals[i].run.throughput;
        value.deadlocked = evals[i].run.deadlocked;
        value.states_stored = evals[i].run.states_stored;
        value.cycle_start_time = evals[i].run.cycle_start_time;
        value.period = evals[i].run.period;
        value.has_deps = true;
        value.storage_deps = evals[i].deps;
        wave_slots[slot].delta->record(batch[i], value);
      }
      // Same deterministic sample as the cache check: the LP cycle-cut
      // bound must sit at or above the fresh simulation (DESIGN.md §13).
      if (cuts.has_value() && audit::enabled() &&
          audit::sample(hash_words(batch[i]))) {
        audit_check_lp_bound(graph, *cuts, batch[i], evals[i].run.throughput,
                             evals[i].run.deadlocked);
      }
      evals[i].valid = true;
      if (options.progress != nullptr) options.progress->add_points(1);
    };
    const auto evaluate = [&](std::size_t i, std::size_t slot) {
      if (options.cancel.cancelled()) return;  // skip: wave is being cut
      if (try_cache(i, slot)) return;
      const state::Capacities capacities =
          state::Capacities::bounded(batch[i]);
      state::ThroughputOptions run_opts{
          .target = options.target, .max_steps = options.max_steps_per_run};
      run_opts.processor_of = options.binding;
      run_opts.cancel = options.cancel;
      run_opts.progress = options.progress;
      state::ThroughputSolver* solver =
          solvers.has_value() ? &solvers->at(slot) : nullptr;
      const auto sim_t0 = std::chrono::steady_clock::now();
      try {
        if (solver != nullptr) {
          // Fused path: the throughput run itself collects the storage
          // dependencies — one simulation where the seed needed two.
          run_opts.collect_storage_deps = true;
          evals[i].run = solver->compute(capacities, run_opts);
          evals[i].deps = std::move(evals[i].run.storage_deps);
          simulations.fetch_add(1, std::memory_order_relaxed);
          if (options.progress != nullptr) {
            options.progress->add_sims_avoided(1);  // the fused dep re-run
          }
        } else {
          evals[i].run =
              state::compute_throughput(graph, capacities, run_opts);
          evals[i].deps = storage_dependencies(
              graph, capacities, evals[i].run.cycle_start_time,
              evals[i].run.deadlocked ? 0 : evals[i].run.period,
              options.binding);
          simulations.fetch_add(2, std::memory_order_relaxed);
          if (options.progress != nullptr) {
            options.progress->add_simulations(1);  // the dependency re-run
          }
        }
      } catch (const exec::Cancelled&) {
        return;  // mid-run cut: a partial state space proves nothing
      }
      wave_slots[slot].sim_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        sim_t0)
              .count();
      wave_slots[slot].sims += 1;
      absorb_simulated(i, slot);
    };
    // Lane path: one work item covers `lane_width` consecutive batch
    // entries. Cache answers stay per-candidate; the group's misses go
    // through the slot's lane solver as one lockstep batch, retiring and
    // refilling lanes as individual candidates finish. A mid-batch
    // cancellation voids the whole group (evals stay invalid), which only
    // shortens the valid prefix the fold below accepts.
    const auto evaluate_group = [&](std::size_t g, std::size_t slot) {
      if (options.cancel.cancelled()) return;  // skip: wave is being cut
      const std::size_t begin = g * lane_width;
      const std::size_t end = std::min(batch.size(), begin + lane_width);
      std::vector<std::size_t> miss;
      std::vector<std::vector<i64>> miss_caps;
      for (std::size_t i = begin; i < end; ++i) {
        if (!try_cache(i, slot)) {
          miss.push_back(i);
          miss_caps.push_back(batch[i]);
        }
      }
      if (miss.empty()) return;
      state::LaneBatchOptions run_opts{
          .target = options.target, .max_steps = options.max_steps_per_run};
      run_opts.collect_storage_deps = true;
      run_opts.cancel = options.cancel;
      run_opts.progress = options.progress;
      // Same-size wave: every candidate totals batch_size tokens, so the
      // wave is inside the certified budget iff its size is.
      run_opts.within_certificate =
          cert.has_value() && batch_size <= cert_budget_size;
      const auto sim_t0 = std::chrono::steady_clock::now();
      std::vector<state::ThroughputResult> runs;
      try {
        runs = lane_bank->at(slot).compute_batch(miss_caps, run_opts);
      } catch (const exec::Cancelled&) {
        return;  // mid-batch cut: partial state spaces prove nothing
      }
      wave_slots[slot].sim_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        sim_t0)
              .count();
      wave_slots[slot].sims += miss.size();
      for (std::size_t k = 0; k < miss.size(); ++k) {
        const std::size_t i = miss[k];
        evals[i].run = std::move(runs[k]);
        evals[i].deps = std::move(evals[i].run.storage_deps);
        simulations.fetch_add(1, std::memory_order_relaxed);
        if (options.progress != nullptr) {
          options.progress->add_sims_avoided(1);  // the fused dep re-run
        }
        absorb_simulated(i, slot);
      }
    };
    // Adaptive granularity: fan out only when the estimated wave cost
    // (batch size x running average per-simulation seconds) clears the
    // barrier threshold — and the higher spawn threshold while the pool
    // has not been started yet. The decision only moves work between the
    // sequential and parallel paths of the same evaluate(); cache answers
    // are exact either way, so the fold below is byte-identical.
    // On the lane path the schedulable unit is a whole candidate group.
    const std::size_t wave_items =
        lane_eval ? (batch.size() + lane_width - 1) / lane_width
                  : batch.size();
    const bool parallel_wave =
        lazy.configured_workers() > 0 && wave_items >= 2 &&
        total_sims > 0 &&
        static_cast<double>(batch.size()) *
                (total_sim_seconds / static_cast<double>(total_sims)) >=
            (lazy.started() ? kParallelWaveSeconds : kSpawnWaveSeconds);
    {
      // One span per wave barrier: fan-out over the pool until the join.
      const trace::Span wave_span(trace::EventKind::Wave,
                                  static_cast<i64>(batch.size()), batch_size);
      if (parallel_wave) {
        exec::ThreadPool& pool = lazy.pool();
        exec::parallel_for_each(
            pool, wave_items,
            [&](std::size_t i) {
              if (lane_eval) {
                evaluate_group(i, pool.current_slot());
              } else {
                evaluate(i, pool.current_slot());
              }
            },
            /*chunk_size=*/1);
      } else {
        for (std::size_t i = 0; i < wave_items; ++i) {
          if (lane_eval) {
            evaluate_group(i, lazy.caller_slot());
          } else {
            evaluate(i, lazy.caller_slot());
          }
        }
      }
    }
    if (options.progress != nullptr) options.progress->add_wave();
    // Wave boundary: fold the per-worker deltas back into the shared
    // cache (slot order, insertion order — deterministic), and absorb the
    // per-slot cost samples into the running average.
    if (cache != nullptr) {
      std::vector<ThroughputCache::Delta*> deltas;
      for (WaveSlot& ws : wave_slots) {
        if (!ws.delta->empty()) deltas.push_back(&*ws.delta);
      }
      if (!deltas.empty()) cache->merge(deltas);
      for (WaveSlot& ws : wave_slots) ws.delta->clear();
    }
    for (WaveSlot& ws : wave_slots) {
      total_sim_seconds += ws.sim_seconds;
      total_sims += ws.sims;
      ws.sim_seconds = 0.0;
      ws.sims = 0;
    }

    // Fold sequentially in the deterministic pop order. Only the valid
    // prefix is folded: an unevaluated (cancelled) item and everything
    // after it are discarded, so every emitted point is fully verified.
    for (std::size_t i = 0; i < batch.size() && !goal_reached; ++i) {
      if (!evals[i].valid) {
        result.cancelled = true;
        break;
      }
      ++result.distributions_explored;
      const auto& caps = batch[i];
      const auto& run = evals[i].run;
      result.max_states_stored =
          std::max(result.max_states_stored, run.states_stored);

      const Rational quantized =
          quantize_down(run.throughput, options.quantization);
      if (quantized > best_seen) {
        // Processed in size order, so this is the smallest size reaching
        // this (quantised) throughput.
        result.pareto.add(ParetoPoint{StorageDistribution(caps), quantized});
        if (trace::enabled()) {
          trace::emit_pareto_point(batch_size, quantized.to_double());
        }
        best_seen = quantized;
      }
      if (!run.throughput.is_zero() && run.throughput >= goal) {
        goal_reached = true;
        break;
      }
      if (options.quantization.has_value() && !quantized.is_zero() &&
          quantized >= quantized_goal) {
        goal_reached = true;
        break;
      }

      // No space dependency anywhere in the run: larger buffers reproduce
      // the identical execution, so this branch is exhausted. (Without a
      // resource binding this only happens at the maximal throughput.)
      for (const sdf::ChannelId c : evals[i].deps) {
        if (ceiling[c.index()].has_value() &&
            caps[c.index()] + 1 > *ceiling[c.index()]) {
          // This memory is full (distributed-memory constraint).
          if (options.progress != nullptr) options.progress->add_pruned(1);
          continue;
        }
        StorageDistribution child =
            StorageDistribution(caps).with(c.index(), caps[c.index()] + 1);
        if (options.max_distribution_size.has_value() &&
            child.size() > *options.max_distribution_size) {
          if (options.progress != nullptr) options.progress->add_pruned(1);
          continue;
        }
        if (visited.insert(child).second) {
          frontier.emplace(child.size(), child.capacities());
        }
      }
    }
    if (result.cancelled) break;
  }

  result.simulations_run = simulations.load(std::memory_order_relaxed);
  result.cache_hits = cache_hits.load(std::memory_order_relaxed);
  result.dominance_skips = dominance_skips.load(std::memory_order_relaxed);
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace buffy::buffer
