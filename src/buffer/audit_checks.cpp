#include "buffer/audit_checks.hpp"

#include <string>

#include "base/audit.hpp"
#include "state/throughput.hpp"

namespace buffy::buffer {

namespace {

std::string caps_str(const std::vector<i64>& caps) {
  std::string s = "[";
  for (std::size_t i = 0; i < caps.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(caps[i]);
  }
  s += "]";
  return s;
}

}  // namespace

void audit_check_cached_throughput(const sdf::Graph& graph,
                                   sdf::ActorId target, u64 max_steps,
                                   const std::vector<std::size_t>& binding,
                                   const std::vector<i64>& caps,
                                   const CachedThroughput& cached) {
  audit::note_check();
  state::ThroughputOptions opts{.target = target, .max_steps = max_steps};
  opts.processor_of = binding;
  const state::ThroughputResult fresh = state::compute_throughput(
      graph, state::Capacities::bounded(caps), opts);
  if (fresh.throughput != cached.throughput ||
      fresh.deadlocked != cached.deadlocked) {
    audit::fail(
        "cache-vs-simulation",
        "distribution " + caps_str(caps) + " of graph '" + graph.name() +
            "': cached answer " + cached.throughput.str() +
            (cached.deadlocked ? " (deadlock)" : "") +
            " != fresh simulation " + fresh.throughput.str() +
            (fresh.deadlocked ? " (deadlock)" : ""));
  }
}

void audit_check_lp_bound(const sdf::Graph& graph,
                          const lp::ThroughputCuts& cuts,
                          const std::vector<i64>& caps,
                          const Rational& simulated, bool deadlocked) {
  audit::note_check();
  if (deadlocked) return;  // throughput 0 satisfies every non-negative bound
  const std::optional<Rational> bound = cuts.upper_bound(caps);
  if (bound.has_value() && *bound < simulated) {
    audit::fail(
        "lp-bound-vs-simulation",
        "distribution " + caps_str(caps) + " of graph '" + graph.name() +
            "': LP cycle-cut upper bound " + bound->str() +
            " < simulated throughput " + simulated.str() +
            "; an unsound bound would prune reachable Pareto points");
  }
}

void audit_verify_monotone_front(const ParetoSet& front) {
  const std::vector<ParetoPoint>& points = front.points();
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    audit::note_check();
    const ParetoPoint& a = points[i];
    const ParetoPoint& b = points[i + 1];
    if (a.size() >= b.size() || a.throughput >= b.throughput) {
      audit::fail(
          "pareto-monotone",
          "points " + std::to_string(i) + " and " + std::to_string(i + 1) +
              ": (size " + std::to_string(a.size()) + ", throughput " +
              a.throughput.str() + ") then (size " +
              std::to_string(b.size()) + ", throughput " +
              b.throughput.str() +
              "); a Pareto front must strictly increase in both");
    }
  }
  if (points.empty()) audit::note_check();  // an empty front is monotone
}

}  // namespace buffy::buffer
