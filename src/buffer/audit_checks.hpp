// BUFFY_AUDIT cross-checks of the exploration layer (DESIGN.md §9).
//
// Shared by both DSE engines and by the tamper tests, so a test corrupting
// a cache entry exercises the exact code path that guards a production
// exploration:
//
//  * audit_check_cached_throughput — a cached or dominance-derived
//    throughput answer must equal a fresh simulation of the same
//    distribution. The engines call it on a deterministic sample of cache
//    hits (audit::sample over the capacity-vector hash): exact repeats
//    re-verify the stored value, dominance hits re-verify the Sec. 8
//    monotonicity argument end-to-end.
//  * audit_verify_monotone_front — a finished Pareto front must be
//    strictly increasing in both size and throughput; called on every
//    explore() result while audit mode is on.
//  * audit_check_lp_bound — the LP cycle-cut upper bound (DESIGN.md §13)
//    must sit at or above what the simulation actually achieved at the
//    same capacities: a bound below reality would let the pruning layer
//    discard reachable Pareto points. The engines call it on the same
//    deterministic sample of fresh simulations that the cache check
//    uses, whenever cuts were derived for the exploration.
//
// All fail via audit::fail (throwing audit::AuditError) with the
// offending distribution spelled out.
#pragma once

#include <vector>

#include "base/checked_math.hpp"
#include "base/rational.hpp"
#include "buffer/pareto.hpp"
#include "buffer/throughput_cache.hpp"
#include "lp/sdf_model.hpp"
#include "sdf/graph.hpp"

namespace buffy::buffer {

void audit_check_cached_throughput(const sdf::Graph& graph,
                                   sdf::ActorId target, u64 max_steps,
                                   const std::vector<std::size_t>& binding,
                                   const std::vector<i64>& caps,
                                   const CachedThroughput& cached);

void audit_verify_monotone_front(const ParetoSet& front);

void audit_check_lp_bound(const sdf::Graph& graph,
                          const lp::ThroughputCuts& cuts,
                          const std::vector<i64>& caps,
                          const Rational& simulated, bool deadlocked);

}  // namespace buffy::buffer
