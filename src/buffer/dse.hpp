// Design-space exploration of storage/throughput trade-offs (paper Sec. 9).
//
// Two engines compute the Pareto set of minimal storage distributions:
//
//  * Exhaustive ("exact"): the algorithm described in the paper — a divide
//    and conquer over the distribution-size dimension (using monotonicity
//    of the maximal throughput in the size), where the maximal throughput
//    of one size is established by enumerating every distribution of that
//    size between the per-channel lower bounds and the max-throughput
//    distribution. Exponential but complete; the reference implementation.
//
//  * Incremental: the scalable strategy of the published SDF3 tool — start
//    from the per-channel lower bounds and repeatedly bump only channels
//    whose lack of space delayed a firing in the periodic phase (storage
//    dependencies), processing candidate distributions in size order.
//
// Both support the paper's throughput quantisation (Sec. 11): with a grid
// step, throughputs are rounded down to the grid, which collapses nearby
// Pareto points and drastically shortens dense explorations (H.263).
#pragma once

#include <optional>

#include "base/rational.hpp"
#include "buffer/bounds.hpp"
#include "buffer/pareto.hpp"
#include "exec/cancellation.hpp"
#include "exec/progress.hpp"
#include "sdf/graph.hpp"
#include "state/simd_backend.hpp"

namespace buffy::buffer {

class ThroughputCache;  // buffer/throughput_cache.hpp

/// Which exploration engine to run.
enum class DseEngine {
  Exhaustive,
  Incremental,
};

/// Options for a design-space exploration.
struct DseOptions {
  /// Actor whose throughput spans the throughput dimension.
  sdf::ActorId target;
  DseEngine engine = DseEngine::Incremental;
  /// Round throughputs down to multiples of this step (Sec. 11's remedy for
  /// dense Pareto fronts). Unset = exact throughputs.
  std::optional<Rational> quantization;
  /// Convenience alternative to `quantization`: use a step of (maximal
  /// throughput / levels), i.e. at most `levels` distinct Pareto
  /// throughputs. Ignored when `quantization` is set.
  std::optional<i64> quantization_levels;
  /// Explore no distribution larger than this size (paper Sec. 10: the user
  /// may restrict the space of interest). Unset = up to the ub of Fig. 7.
  std::optional<i64> max_distribution_size;
  /// Stop once this throughput is reached (upper bound of interest).
  std::optional<Rational> throughput_goal;
  /// Report only Pareto points with at least this throughput (the paper's
  /// Sec. 10 lower bound on the space of interest). The search below the
  /// bound still runs — smaller distributions seed the climb — but the
  /// returned set is filtered.
  std::optional<Rational> min_throughput;
  /// Safety bound on the number of distributions whose throughput is
  /// computed; exceeding it throws.
  u64 max_distributions = 5'000'000;
  /// Safety bound per state-space run.
  u64 max_steps_per_run = 100'000'000;

  /// Per-channel capacity constraint for distributed-memory mappings
  /// (paper Sec. 8: non-unique minimal distributions become interesting
  /// "as extra constraints on the channel capacities").
  struct ChannelBounds {
    /// Explore no capacity below this (on top of the analytic lower bound).
    std::optional<i64> min;
    /// Explore no capacity above this (the channel's memory is this big).
    std::optional<i64> max;
  };
  /// Empty, or one entry per channel of the graph.
  std::vector<ChannelBounds> channel_constraints;

  /// Optional processor binding (actor index -> processor): actors sharing
  /// a processor execute mutually exclusively during every throughput run,
  /// sizing the buffers for the mapped system (the paper's multiprocessor
  /// context; see mapping/). Supported by the incremental engine.
  std::vector<std::size_t> binding;

  /// Worker threads for the exploration (both engines; each throughput run
  /// is independent). The incremental engine evaluates candidates of equal
  /// size in parallel waves; the exhaustive engine shards the per-size
  /// enumeration. Results are folded in deterministic (lexicographic)
  /// order, so the Pareto set is identical to the single-threaded
  /// exploration; `distributions_explored` may count a few extra
  /// candidates evaluated past the sequential stopping point.
  /// 1 = sequential.
  unsigned threads = 1;

  /// Consult the per-exploration throughput cache: exact repeats are
  /// answered from a concurrent map and candidates implied by Sec. 8
  /// monotone dominance (pointwise >= a max-throughput witness, pointwise
  /// <= a deadlocked distribution) skip simulation entirely. Dominance
  /// answers equal the simulated values exactly, so the Pareto front is
  /// byte-identical with the cache on or off (see DESIGN.md §7). Disable
  /// to force every candidate through a full state-space run.
  bool use_throughput_cache = true;

  /// Derive LP cycle-cut throughput bounds (src/lp/, DESIGN.md §13) and
  /// use them to answer candidates and subtree envelopes that provably
  /// cannot beat the running incumbent, skipping their simulations. The
  /// cut bound dominates the simulated throughput, so every LP answer
  /// agrees with the simulation it replaces and the Pareto front is
  /// byte-identical with the bounds on or off. The incremental engine
  /// additionally warm-starts its frontier from the LP necessary floors.
  bool use_lp_bounds = true;

  /// Derive a static magnitude certificate (analysis::derive_bounds,
  /// DESIGN.md §16) over the exploration's storage envelope and hand it
  /// to the lane solvers, which then select the narrow (i32) kernel once
  /// per graph instead of re-scanning every batch's capacities. Purely a
  /// gating optimisation: kernel results are bit-identical at either
  /// width, so the front is byte-identical with the certificate on or
  /// off. Under BUFFY_AUDIT the retired per-batch gate re-runs as a
  /// cross-check (`static-narrow-certificate`). No effect on the scalar
  /// backend.
  bool use_bounds_certificate = true;

  /// Entry bound for the throughput cache (0 = unbounded): beyond it the
  /// cache evicts least-recently-used exact entries (stripe-granular LRU,
  /// see ThroughputCache). Eviction only forgets — evicted candidates are
  /// re-simulated — so the Pareto front stays byte-identical at any cap.
  /// Ignored when `shared_cache` is set (a shared cache carries its own
  /// bound).
  u64 cache_capacity = 0;

  /// Optional externally owned cache reused across explorations (the
  /// resident buffyd daemon shares one per graph+target so repeated
  /// queries hit warm state; see src/service/). Preconditions: it was
  /// created with this graph+target's maximal throughput, and `binding`
  /// is empty — cached values are binding-free simulation outcomes, so a
  /// bound exploration must not share them. Null = the exploration builds
  /// its own cache. Ignored when `use_throughput_cache` is false. The
  /// caller must keep it alive for the whole exploration; concurrent
  /// explorations may share one cache (it is internally synchronised).
  ThroughputCache* shared_cache = nullptr;

  /// Evaluate candidates with a reusable per-worker solver (one engine +
  /// one visited-state arena across all runs) and collect storage
  /// dependencies during the throughput run itself. Disabling restores the
  /// seed evaluation path — a fresh engine per run and, in the incremental
  /// engine, a second dedicated dependency simulation — kept for A/B
  /// benchmarking (bench_throughput_hotpath) and regression tests.
  bool reuse_engines = true;

  /// State-space backend for candidate evaluation (DESIGN.md §15). Auto
  /// resolves to the widest lane kernel the host supports (AVX2, falling
  /// back to the portable SWAR path); Scalar forces the classic
  /// one-candidate-at-a-time engine. A lane backend packs up to
  /// `simd_lanes` sibling candidates into each state-space batch; every
  /// per-candidate result is field-for-field identical to the scalar
  /// solver's, so the Pareto front is byte-identical across backends and
  /// lane widths. The lane path engages only when `reuse_engines` is on
  /// and (incremental engine) `binding` is empty; otherwise evaluation
  /// silently stays scalar. Requesting an unavailable backend (Avx2 on a
  /// host without it) is an error.
  state::SimdBackend simd = state::SimdBackend::Auto;

  /// Candidates per lane batch, clamped to [1, 64]; 0 = the backend's
  /// default width (identical for every lane backend, keeping exploration
  /// counters host-independent).
  std::size_t simd_lanes = 0;

  /// Wall-clock budget in milliseconds. When it runs out the exploration
  /// stops at the next safepoint and returns the Pareto points verified so
  /// far, with DseResult::cancelled set — a valid partial front rather
  /// than a hang (every reported point's throughput was fully computed).
  std::optional<i64> deadline_ms;

  /// External cancellation (composes with `deadline_ms`); same partial
  /// result semantics. The default token never cancels.
  exec::CancellationToken cancel;

  /// Optional metrics sink: points explored, reduced states stored, pruned
  /// candidates, waves, Pareto points. Not owned; may be null. Must
  /// outlive the exploration; safe to snapshot from another thread while
  /// the exploration runs.
  exec::Progress* progress = nullptr;
};

/// Result of a design-space exploration.
struct DseResult {
  /// The Pareto points, by increasing size / strictly increasing throughput.
  ParetoSet pareto;
  /// The Fig. 7 bounds that framed the search.
  DesignSpaceBounds bounds;
  /// Some channel's max constraint lies below its analytic lower bound: no
  /// distribution can satisfy the constraints with positive throughput.
  bool constraints_infeasible = false;
  /// The exploration hit its deadline or was cancelled; `pareto` holds the
  /// verified points found before the stop (a valid partial front).
  bool cancelled = false;
  /// Number of storage distributions whose throughput was computed
  /// (including cache-answered candidates; the max_distributions guard
  /// counts these too).
  u64 distributions_explored = 0;
  /// Largest reduced state space stored in any single run (Table 2 metric;
  /// over simulated runs — cache-answered candidates store no states).
  u64 max_states_stored = 0;
  /// Full state-space simulations actually executed.
  u64 simulations_run = 0;
  /// Candidates answered from the throughput cache (exact repeats).
  u64 cache_hits = 0;
  /// Candidates answered by Sec. 8 dominance without simulation.
  u64 dominance_skips = 0;
  /// Exhaustive engine: candidates or subtree envelopes answered by an LP
  /// cycle-cut bound without simulation. Incremental engine: tokens the LP
  /// necessary floors added to the warm-start point (candidates below it
  /// can only deadlock). 0 when use_lp_bounds is off or no cut applies.
  u64 lp_prunes = 0;
  /// LP cycle cuts derived for the exploration.
  u64 lp_cuts = 0;
  /// A magnitude certificate proved the narrow (i32) lane kernel for the
  /// whole exploration envelope, so lane batches skipped the per-batch
  /// capacity gate (false when certificates or the lane path were off,
  /// or the envelope exceeds the narrow limit).
  bool static_narrow = false;
  /// Wall-clock seconds spent exploring.
  double seconds = 0.0;
};

/// Explores the design space with the selected engine.
///
/// Preconditions: `options.target` is a valid actor id of `graph`;
/// `options.channel_constraints` is empty or has one entry per channel;
/// `options.binding` is empty or has one entry per actor. Throws
/// ConsistencyError for inconsistent graphs; returns an empty Pareto set
/// when the graph deadlocks for every distribution.
///
/// Thread-safety: explore() only reads `graph` (worker threads, if any,
/// are created and joined internally), so concurrent explorations of the
/// same graph are safe. Sizes are token counts; throughputs are exact
/// target-firings-per-time-step rationals, quantised only when requested.
[[nodiscard]] DseResult explore(const sdf::Graph& graph,
                                const DseOptions& options);

/// Rounds a throughput down to the quantisation grid (no-op when the step
/// is unset).
[[nodiscard]] Rational quantize_down(const Rational& value,
                                     const std::optional<Rational>& step);

/// Resolves `quantization_levels` into a concrete quantisation step and
/// tightens the throughput goal to the near-max grid level (Sec. 11) —
/// exactly the preprocessing explore() applies before dispatching to an
/// engine. Exposed so out-of-process drivers (the fleet router and its
/// explore_slice workers) reproduce the engine-effective options
/// bit-for-bit; no-op when `quantization` is already set or no level count
/// was requested.
void apply_quantization_levels(DseOptions& options,
                               const DesignSpaceBounds& bounds);

/// Per-channel exploration floor: the analytic lower bound raised to any
/// user minimum. Used by both engines.
[[nodiscard]] std::vector<i64> constrained_floor(const DseOptions& options,
                                                 const DesignSpaceBounds& b);

/// Per-channel user ceiling (max constraint), or nullopt per channel.
[[nodiscard]] std::vector<std::optional<i64>> constrained_ceiling(
    const DseOptions& options, std::size_t num_channels);

}  // namespace buffy::buffer
