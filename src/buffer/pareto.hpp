// The Pareto space of storage/throughput trade-offs (paper Sec. 8/9,
// Fig. 5 and Fig. 13).
//
// A storage distribution is minimal (a Pareto point) when no smaller
// distribution achieves at least its throughput. The set is kept sorted by
// distribution size; along it, throughput strictly increases.
#pragma once

#include <string>
#include <vector>

#include "base/rational.hpp"
#include "buffer/distribution.hpp"

namespace buffy::buffer {

/// One storage/throughput trade-off.
struct ParetoPoint {
  StorageDistribution distribution;
  Rational throughput;

  [[nodiscard]] i64 size() const { return distribution.size(); }
};

/// Minimal (Pareto) storage distributions, ordered by increasing size and
/// strictly increasing throughput.
class ParetoSet {
 public:
  /// Inserts a candidate, dropping it or evicting dominated points so the
  /// invariant holds. Of equal (size, throughput) candidates the first one
  /// added is kept (minimal distributions need not be unique, Sec. 8).
  void add(ParetoPoint point);

  [[nodiscard]] const std::vector<ParetoPoint>& points() const {
    return points_;
  }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  /// Smallest distribution with throughput >= the constraint; nullptr when
  /// the constraint is not achievable within this set.
  [[nodiscard]] const ParetoPoint* smallest_for_throughput(
      const Rational& constraint) const;

  /// Highest throughput achievable with size <= the budget; nullptr when
  /// even the smallest point exceeds the budget.
  [[nodiscard]] const ParetoPoint* best_within_size(i64 budget) const;

  /// Multi-line "size <dist> throughput" table.
  [[nodiscard]] std::string str() const;

  /// Audit tamper hook: overwrites one point's throughput, breaking the
  /// ordering invariant add() maintains, so tests can prove
  /// audit_verify_monotone_front reports the corruption. Never called
  /// outside tests.
  void corrupt_throughput_for_test(std::size_t i, Rational value);

 private:
  std::vector<ParetoPoint> points_;
};

}  // namespace buffy::buffer
