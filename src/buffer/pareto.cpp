#include "buffer/pareto.hpp"

#include <algorithm>
#include <sstream>

namespace buffy::buffer {

void ParetoSet::add(ParetoPoint point) {
  if (point.throughput.is_zero()) return;  // deadlock is never a trade-off
  const i64 size = point.size();
  // Position of the first existing point with size >= the candidate's.
  const auto pos = std::lower_bound(
      points_.begin(), points_.end(), size,
      [](const ParetoPoint& p, i64 s) { return p.size() < s; });
  // Dominated by a point no larger with throughput no smaller?
  if (pos != points_.begin() &&
      std::prev(pos)->throughput >= point.throughput) {
    return;
  }
  if (pos != points_.end() && pos->size() == size &&
      pos->throughput >= point.throughput) {
    return;
  }
  // Evict points that the candidate dominates (same or larger size, same or
  // smaller throughput).
  const auto first_kept = std::find_if(
      pos, points_.end(), [&](const ParetoPoint& p) {
        return p.throughput > point.throughput;
      });
  const auto insert_at = points_.erase(pos, first_kept);
  points_.insert(insert_at, std::move(point));
}

const ParetoPoint* ParetoSet::smallest_for_throughput(
    const Rational& constraint) const {
  for (const ParetoPoint& p : points_) {
    if (p.throughput >= constraint) return &p;
  }
  return nullptr;
}

const ParetoPoint* ParetoSet::best_within_size(i64 budget) const {
  const ParetoPoint* best = nullptr;
  for (const ParetoPoint& p : points_) {
    if (p.size() <= budget) best = &p;
  }
  return best;
}

std::string ParetoSet::str() const {
  std::ostringstream os;
  for (const ParetoPoint& p : points_) {
    os << p.size() << "  " << p.distribution.str() << "  "
       << p.throughput.str() << '\n';
  }
  return os.str();
}

void ParetoSet::corrupt_throughput_for_test(std::size_t i, Rational value) {
  points_.at(i).throughput = value;
}

}  // namespace buffy::buffer
