// The exhaustive (reference) design-space exploration engine; see dse.hpp.
#pragma once

#include "buffer/dse.hpp"

namespace buffy::buffer {

/// Divide-and-conquer over distribution sizes with per-size enumeration.
/// Complete within [lb, ub] (and the user's limits); exponential cost.
[[nodiscard]] DseResult explore_exhaustive(const sdf::Graph& graph,
                                           const DseOptions& options,
                                           const DesignSpaceBounds& bounds);

/// All storage distributions of exactly the given size (inside the Fig. 7
/// box, clamped by the options' channel constraints) whose throughput is at
/// least `min_throughput` — the full set of equal minimal distributions the
/// paper discusses in Sec. 8 (Fig. 6: <1,2,3,3> and <2,1,3,3> tie).
/// Exhaustive; intended for small graphs / the final Pareto points.
[[nodiscard]] std::vector<StorageDistribution> equivalent_minimal_distributions(
    const sdf::Graph& graph, const DseOptions& options, i64 size,
    const Rational& min_throughput);

}  // namespace buffy::buffer
