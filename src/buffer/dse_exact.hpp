// The exhaustive (reference) design-space exploration engine; see dse.hpp.
#pragma once

#include "buffer/dse.hpp"

namespace buffy::buffer {

/// Divide-and-conquer over distribution sizes with per-size enumeration.
/// Complete within [lb, ub] (and the user's limits); exponential cost.
[[nodiscard]] DseResult explore_exhaustive(const sdf::Graph& graph,
                                           const DseOptions& options,
                                           const DesignSpaceBounds& bounds);

/// The frame of one exhaustive exploration as the fleet router needs it to
/// replicate the divide-and-conquer driver across worker processes
/// (DESIGN.md §17): the size interval of the d&c, the quantised global
/// goal, and the widened enumeration box. Derived deterministically from
/// (graph, engine-effective options, bounds), so the router and every
/// worker compute the identical plan independently.
struct SlicePlan {
  i64 lo_size = 0;  ///< smallest distribution size of the d&c
  i64 hi_size = 0;  ///< largest distribution size of the d&c
  Rational goal;    ///< quantised global throughput goal
  std::vector<i64> box_lb;  ///< per-channel enumeration floors
  std::vector<i64> box_ub;  ///< per-channel ceilings after widening
  /// Seed for the hi_size slice (the padded max-throughput distribution)
  /// when it fits the box; nullopt when user constraints reshape it.
  std::optional<std::vector<i64>> top_seed;
};

/// Computes the slice plan of explore_exhaustive for these inputs. Apply
/// apply_quantization_levels() to the options first — the plan must see
/// the same engine-effective options the workers will.
[[nodiscard]] SlicePlan exhaustive_slice_plan(const sdf::Graph& graph,
                                              const DseOptions& options,
                                              const DesignSpaceBounds& bounds);

/// Pads a witness distribution up to `size` by topping channels toward
/// the plan's ceilings left to right — the d&c's seed construction.
[[nodiscard]] std::vector<i64> pad_to_size(const SlicePlan& plan,
                                           const std::vector<i64>& witness,
                                           i64 size);

/// One per-size evaluation of the exhaustive d&c, shipped to a worker.
struct SliceRequest {
  i64 size = 0;  ///< distribution size to maximise over
  /// Optional known distribution of exactly `size` inside the box; floors
  /// the slice and arms the branch-and-bound (the padded witness of the
  /// enclosing interval's lower endpoint).
  std::optional<std::vector<i64>> seed;
  /// Ceiling the slice cannot exceed (the global goal tightened to the
  /// enclosing interval's upper-endpoint throughput); reaching it ends
  /// the scan with the exact slice maximum.
  Rational slice_goal;
};

/// The slice's exact outcome plus the exploration counters it consumed.
struct SliceOutcome {
  Rational throughput;  ///< quantised slice maximum
  StorageDistribution witness;  ///< lexicographically-first witness
  u64 distributions_explored = 0;
  u64 max_states_stored = 0;
  u64 simulations_run = 0;
  u64 cache_hits = 0;
  u64 dominance_skips = 0;
  u64 lp_prunes = 0;
  u64 lp_cuts = 0;
  bool static_narrow = false;
};

/// Evaluates one size slice with the exhaustive engine's full machinery
/// (cache, LP cuts, lane kernel, adaptive sharding). The outcome is a
/// pure function of (graph, engine-effective options, size, seed,
/// slice_goal) — independent of cache state and thread count — which is
/// what makes the router's scattered fronts byte-identical to the
/// single-process exploration. Throws Error when `size` lies outside the
/// plan's enumeration box or the seed is not a distribution of `size`
/// inside it.
[[nodiscard]] SliceOutcome explore_size_slice(const sdf::Graph& graph,
                                              const DseOptions& options,
                                              const DesignSpaceBounds& bounds,
                                              const SliceRequest& request);

/// All storage distributions of exactly the given size (inside the Fig. 7
/// box, clamped by the options' channel constraints) whose throughput is at
/// least `min_throughput` — the full set of equal minimal distributions the
/// paper discusses in Sec. 8 (Fig. 6: <1,2,3,3> and <2,1,3,3> tie).
/// Exhaustive; intended for small graphs / the final Pareto points.
[[nodiscard]] std::vector<StorageDistribution> equivalent_minimal_distributions(
    const sdf::Graph& graph, const DseOptions& options, i64 size,
    const Rational& min_throughput);

}  // namespace buffy::buffer
