#include "buffer/bounds.hpp"

#include <algorithm>

#include "analysis/max_throughput.hpp"
#include "base/diagnostics.hpp"
#include "state/throughput.hpp"

namespace buffy::buffer {

i64 channel_lower_bound(const sdf::Channel& channel) {
  const i64 p = channel.production;
  const i64 c = channel.consumption;
  const i64 t = channel.initial_tokens;
  if (channel.is_self_loop()) {
    // The firing holds its c input tokens until completion while the p
    // output tokens already claim their space at the start.
    return checked_add(t, p);
  }
  const i64 g = gcd(p, c);
  const i64 classic = checked_add(checked_sub(checked_add(p, c), g),
                                  positive_mod(t, g));
  return std::max(t, classic);
}

StorageDistribution lower_bound_distribution(const sdf::Graph& graph) {
  std::vector<i64> lb;
  lb.reserve(graph.num_channels());
  for (const sdf::ChannelId c : graph.channel_ids()) {
    lb.push_back(channel_lower_bound(graph.channel(c)));
  }
  return StorageDistribution(std::move(lb));
}

DesignSpaceBounds design_space_bounds(const sdf::Graph& graph,
                                      sdf::ActorId target, u64 max_steps,
                                      state::ThroughputSolver* solver) {
  DesignSpaceBounds bounds;
  bounds.per_channel_lb = lower_bound_distribution(graph);
  bounds.lb_size = bounds.per_channel_lb.size();

  const analysis::MaxThroughput mt = analysis::max_throughput(graph);
  if (mt.deadlock) {
    bounds.deadlock = true;
    return bounds;
  }
  bounds.max_throughput = mt.actor_throughput(target);

  // Grow capacities geometrically from the lower bounds until the bounded
  // self-timed execution reaches the MCM-derived maximal throughput; this
  // terminates because throughput is monotonic in the capacities and
  // attains the maximum for sufficiently large ones.
  std::vector<i64> caps = bounds.per_channel_lb.capacities();
  // Start no smaller than one production + one consumption worth per
  // channel to avoid many useless doubling rounds on token-heavy channels.
  for (const sdf::ChannelId cid : graph.channel_ids()) {
    const sdf::Channel& ch = graph.channel(cid);
    caps[cid.index()] = std::max(
        caps[cid.index()],
        checked_add(ch.initial_tokens, checked_add(ch.production,
                                                   ch.consumption)));
  }
  state::ThroughputOptions opts{.target = target, .max_steps = max_steps};
  opts.track_max_occupancy = true;
  for (int round = 0;; ++round) {
    BUFFY_ASSERT(round < 64, "capacity doubling did not reach max throughput");
    const auto run =
        solver != nullptr
            ? solver->compute(state::Capacities::bounded(caps), opts)
            : state::compute_throughput(graph, state::Capacities::bounded(caps),
                                        opts);
    if (!run.deadlocked && run.throughput == bounds.max_throughput) {
      // Trim to the observed occupancy: re-running with these capacities
      // reproduces the identical schedule (no start that happened is
      // blocked, and no additional start becomes possible), so the trimmed
      // distribution still attains the maximal throughput.
      bounds.max_throughput_distribution =
          StorageDistribution(run.max_occupancy);
      bounds.ub_size = bounds.max_throughput_distribution.size();
      return bounds;
    }
    for (i64& c : caps) c = checked_mul(c, 2);
  }
}

}  // namespace buffy::buffer
