#include "buffer/shared_memory.hpp"

#include <algorithm>

#include "base/diagnostics.hpp"
#include "state/engine.hpp"
#include "state/throughput.hpp"

namespace buffy::buffer {

MemoryModelAnalysis analyze_memory_models(const sdf::Graph& graph,
                                          const StorageDistribution& dist,
                                          sdf::ActorId target,
                                          const MemoryGroups& groups,
                                          u64 max_steps) {
  BUFFY_REQUIRE(dist.num_channels() == graph.num_channels(),
                "distribution does not cover the graph's channels");
  const state::Capacities caps = state::Capacities::bounded(dist.capacities());

  // Locate the periodic phase (or the deadlock) first; the replay below
  // then covers the transient plus one full period, which visits every
  // state the infinite execution ever reaches.
  const auto run = state::compute_throughput(
      graph, caps,
      state::ThroughputOptions{.target = target, .max_steps = max_steps});

  MemoryModelAnalysis result;
  result.deadlocked = run.deadlocked;
  result.throughput = run.throughput;
  result.separate = dist.size();
  result.group_requirements.assign(groups.size(), 0);

  state::Engine engine(graph, caps);
  engine.reset();
  const auto sample = [&]() {
    i64 total = 0;
    for (const sdf::ChannelId c : graph.channel_ids()) {
      total = checked_add(total, engine.occupancy(c));
    }
    result.shared = std::max(result.shared, total);
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      i64 group_total = 0;
      for (const sdf::ChannelId c : groups[gi]) {
        group_total = checked_add(group_total, engine.occupancy(c));
      }
      result.group_requirements[gi] =
          std::max(result.group_requirements[gi], group_total);
    }
  };

  // Occupancy only changes at events and peaks immediately after a start
  // phase (completions convert claims to tokens or release input space),
  // so sampling after reset() and after every advance() is exact.
  sample();
  const i64 end_time =
      run.deadlocked ? run.time_steps : run.cycle_start_time + run.period;
  while (engine.now() < end_time && engine.advance()) {
    sample();
  }

  BUFFY_ASSERT(result.shared <= result.separate,
               "shared-memory requirement exceeded the allocated capacity");
  return result;
}

namespace {

// Per-event occupancy rows covering the transient plus one period (or the
// whole run to deadlock): every distinct occupancy profile the infinite
// execution ever shows.
std::vector<std::vector<i64>> occupancy_trace(const sdf::Graph& graph,
                                              const StorageDistribution& dist,
                                              sdf::ActorId target,
                                              u64 max_steps) {
  const state::Capacities caps = state::Capacities::bounded(dist.capacities());
  const auto run = state::compute_throughput(
      graph, caps,
      state::ThroughputOptions{.target = target, .max_steps = max_steps});
  const i64 end_time =
      run.deadlocked ? run.time_steps : run.cycle_start_time + run.period;

  std::vector<std::vector<i64>> trace;
  state::Engine engine(graph, caps);
  engine.reset();
  const auto sample = [&]() {
    std::vector<i64> row;
    row.reserve(graph.num_channels());
    for (const sdf::ChannelId c : graph.channel_ids()) {
      row.push_back(engine.occupancy(c));
    }
    trace.push_back(std::move(row));
  };
  sample();
  while (engine.now() < end_time && engine.advance()) sample();
  return trace;
}

// Peak over the trace of the summed occupancy of the group's channels.
i64 group_peak(const std::vector<std::vector<i64>>& trace,
               const std::vector<sdf::ChannelId>& group) {
  i64 peak = 0;
  for (const auto& row : trace) {
    i64 total = 0;
    for (const sdf::ChannelId c : group) {
      total = checked_add(total, row[c.index()]);
    }
    peak = std::max(peak, total);
  }
  return peak;
}

}  // namespace

MemoryPacking pack_into_memories(const sdf::Graph& graph,
                                 const StorageDistribution& distribution,
                                 sdf::ActorId target, i64 memory_size,
                                 u64 max_steps) {
  BUFFY_REQUIRE(memory_size > 0, "memory size must be positive");
  BUFFY_REQUIRE(distribution.num_channels() == graph.num_channels(),
                "distribution does not cover the graph's channels");
  const auto trace = occupancy_trace(graph, distribution, target, max_steps);

  // First-fit decreasing on the channels' individual peaks.
  std::vector<std::pair<i64, sdf::ChannelId>> order;
  for (const sdf::ChannelId c : graph.channel_ids()) {
    order.emplace_back(group_peak(trace, {c}), c);
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    return a.first > b.first ||
           (a.first == b.first && a.second < b.second);
  });

  MemoryPacking packing;
  if (!order.empty() && order.front().first > memory_size) {
    return packing;  // infeasible: one channel alone does not fit
  }
  packing.feasible = true;
  for (const auto& [peak, channel] : order) {
    bool placed = false;
    for (std::size_t g = 0; g < packing.groups.size(); ++g) {
      auto candidate = packing.groups[g];
      candidate.push_back(channel);
      const i64 combined = group_peak(trace, candidate);
      if (combined <= memory_size) {
        packing.groups[g] = std::move(candidate);
        packing.requirements[g] = combined;
        placed = true;
        break;
      }
    }
    if (!placed) {
      packing.groups.push_back({channel});
      packing.requirements.push_back(peak);
    }
  }
  return packing;
}

}  // namespace buffy::buffer
