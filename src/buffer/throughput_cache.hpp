// Cross-distribution throughput cache with Sec. 8 dominance pruning.
//
// Within one design-space exploration, many candidate storage
// distributions have outcomes that are already implied by distributions
// evaluated earlier:
//
//  * an exact repeat (the exhaustive engine's tie enumeration and repeated
//    per-size boxes re-visit capacity vectors) — answered from a striped
//    concurrent map;
//  * a candidate pointwise >= a distribution already known to attain the
//    graph's maximal throughput — by monotonicity of throughput in the
//    storage distribution (paper Sec. 8), its throughput IS the maximum,
//    no simulation needed;
//  * a candidate pointwise <= a distribution that deadlocked — again by
//    monotonicity, it deadlocks too (throughput 0).
//
// Dominance answers are exact, not approximate: monotonicity pins the
// simulated value, so substituting them can never change a fold result —
// which is why the engines stay byte-identical to the uncached serial scan
// at any thread count (see DESIGN.md). Monotonicity does NOT hold under a
// processor binding (fixed-priority scheduling anomalies), so the engines
// only consult the dominance rules for unbound explorations.
//
// The map is striped: kStripes independent mutex+unordered_map shards
// selected by capacity-vector hash, so parallel workers rarely contend.
// The witness sets are small antichains (minimal max-throughput witnesses,
// maximal deadlock witnesses) scanned linearly under their own lock.
//
// A cache may be bounded (a resident daemon must not grow without limit):
// with a non-zero entry capacity, every stripe keeps an LRU list of its
// exact entries and evicts its least-recently-used one when it exceeds its
// share of the capacity. Eviction only ever forgets — an evicted candidate
// is simply re-simulated on its next appearance — so a bounded cache keeps
// every byte-identity guarantee of an unbounded one. The witness
// antichains are already capped and are never evicted: Sec. 8 dominance
// keeps answering even for distributions whose exact entries are gone.
#pragma once

#include <array>
#include <atomic>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/checked_math.hpp"
#include "base/rational.hpp"
#include "sdf/ids.hpp"

namespace buffy::buffer {

/// Everything the DSE engines consume from one throughput evaluation, so a
/// cache hit substitutes for the simulation entirely.
struct CachedThroughput {
  Rational throughput;
  bool deadlocked = false;
  u64 states_stored = 0;
  i64 cycle_start_time = 0;
  i64 period = 0;
  /// True when storage_deps was recorded (the incremental engine needs the
  /// dependencies to expand children; the exhaustive engine does not).
  bool has_deps = false;
  std::vector<sdf::ChannelId> storage_deps;
};

class ThroughputCache {
 public:
  /// `max_throughput` is the graph's maximal throughput for the explored
  /// target — the value a max-witness dominance hit reports.
  /// `capacity` bounds the number of resident exact entries (0 =
  /// unbounded): each of the kStripes shards holds at most
  /// max(1, capacity / kStripes) entries and evicts its least-recently-
  /// used one on overflow, so the resident total is capacity rounded to
  /// stripe granularity.
  explicit ThroughputCache(Rational max_throughput, u64 capacity = 0);

  /// Exact lookup. With `require_deps`, only entries whose storage
  /// dependencies were recorded count as hits.
  [[nodiscard]] std::optional<CachedThroughput> find(
      const std::vector<i64>& caps, bool require_deps) const;

  /// Sec. 8 dominance, max rule: caps pointwise >= a recorded
  /// max-throughput witness. The answer carries the maximal throughput and
  /// no dependencies (callers only use it where dependencies are moot).
  [[nodiscard]] std::optional<CachedThroughput> find_max_dominated(
      const std::vector<i64>& caps) const;

  /// Sec. 8 dominance, deadlock rule: caps pointwise <= a recorded
  /// deadlocked distribution. The answer is a deadlock (throughput 0).
  [[nodiscard]] std::optional<CachedThroughput> find_deadlock_dominated(
      const std::vector<i64>& caps) const;

  /// Records a simulated outcome; feeds the witness antichains when the
  /// outcome is the maximal throughput or a deadlock.
  void store(const std::vector<i64>& caps, const CachedThroughput& value);

  /// Seeds a max-throughput witness without a full map entry (e.g. the
  /// Fig. 7 bound's max-throughput distribution, known before the
  /// exploration starts).
  void add_max_witness(const std::vector<i64>& caps);

  [[nodiscard]] const Rational& max_throughput() const {
    return max_throughput_;
  }

  /// Audit tamper hook: adds `delta` to the stored throughput of the
  /// exact entry for `caps` (false when no such entry), so tests can
  /// prove the sampled cache-vs-simulation audit catches a corrupted
  /// entry. Never called outside tests.
  bool corrupt_entry_for_test(const std::vector<i64>& caps,
                              const Rational& delta);

  /// Lifetime counters (relaxed; for metrics only).
  [[nodiscard]] u64 exact_hits() const {
    return exact_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 dominance_hits() const {
    return dominance_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 entries_stored() const {
    return stores_.load(std::memory_order_relaxed);
  }
  /// Exact entries evicted by the LRU bound (0 for unbounded caches).
  [[nodiscard]] u64 entries_evicted() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Exact entries currently resident (stored minus evicted).
  [[nodiscard]] u64 entries_resident() const {
    return resident_.load(std::memory_order_relaxed);
  }
  /// The entry bound this cache was built with (0 = unbounded).
  [[nodiscard]] u64 capacity() const { return capacity_; }

  /// Number of map shards; with a bounded cache, each holds at most
  /// max(1, capacity / kStripes) entries. Public so tests can construct
  /// same-stripe key sets (stripe = hash_words(caps) % kStripes) and pin
  /// the eviction order.
  static constexpr std::size_t kStripes = 16;

 private:
  // Witness antichains are capped so the linear dominance scan stays cheap
  // on pathological fronts; beyond the cap new witnesses are dropped
  // (pruning then just fires less often — never incorrectly).
  static constexpr std::size_t kMaxWitnesses = 64;

  struct CapsHash {
    std::size_t operator()(const std::vector<i64>& caps) const noexcept;
  };
  struct Entry {
    CachedThroughput value;
    /// Position in the stripe's LRU list (meaningful only when the cache
    /// is bounded; front = most recently used).
    std::list<const std::vector<i64>*>::iterator lru_it;
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::vector<i64>, Entry, CapsHash> map;
    /// LRU order over the map's keys (pointers stay valid across rehash:
    /// unordered_map nodes are stable). Maintained only when bounded.
    std::list<const std::vector<i64>*> lru;
  };

  [[nodiscard]] Stripe& stripe_of(const std::vector<i64>& caps) const;
  void add_deadlock_witness(const std::vector<i64>& caps);

  Rational max_throughput_;
  u64 capacity_ = 0;         // 0 = unbounded
  u64 per_stripe_cap_ = 0;   // max(1, capacity_ / kStripes) when bounded
  mutable std::array<Stripe, kStripes> stripes_;

  mutable std::mutex witness_mu_;
  std::vector<std::vector<i64>> max_witnesses_;       // minimal elements
  std::vector<std::vector<i64>> deadlock_witnesses_;  // maximal elements

  mutable std::atomic<u64> exact_hits_{0};
  mutable std::atomic<u64> dominance_hits_{0};
  std::atomic<u64> stores_{0};
  std::atomic<u64> evictions_{0};
  std::atomic<u64> resident_{0};
};

}  // namespace buffy::buffer
