// Cross-distribution throughput cache with Sec. 8 dominance pruning.
//
// Within one design-space exploration, many candidate storage
// distributions have outcomes that are already implied by distributions
// evaluated earlier:
//
//  * an exact repeat (the exhaustive engine's tie enumeration and repeated
//    per-size boxes re-visit capacity vectors) — answered from a striped
//    concurrent map;
//  * a candidate pointwise >= a distribution already known to attain the
//    graph's maximal throughput — by monotonicity of throughput in the
//    storage distribution (paper Sec. 8), its throughput IS the maximum,
//    no simulation needed;
//  * a candidate pointwise <= a distribution that deadlocked — again by
//    monotonicity, it deadlocks too (throughput 0).
//
// Dominance answers are exact, not approximate: monotonicity pins the
// simulated value, so substituting them can never change a fold result —
// which is why the engines stay byte-identical to the uncached serial scan
// at any thread count (see DESIGN.md). Monotonicity does NOT hold under a
// processor binding (fixed-priority scheduling anomalies), so the engines
// only consult the dominance rules for unbound explorations.
//
// Locking structure (DESIGN.md §14). The authoritative store is striped:
// kStripes independent mutex+unordered_map shards selected by
// capacity-vector hash. The witness sets are small antichains (minimal
// max-throughput witnesses, maximal deadlock witnesses) kept SORTED by
// total size so a dominance scan ends at the first witness whose total
// already rules the rest out; they live under their own lock. Neither lock
// is on the parallel hot path any more: workers of a parallel wave read
// through a point-in-time Snapshot (lock-free for unbounded caches) and
// record fresh outcomes into a thread-local Delta; the coordinator folds
// the deltas back with merge() once per wave. A stale Snapshot read is
// always safe — a missed entry merely costs a re-simulation whose outcome
// is identical to the cached one — and merge() verifies exactly that:
// duplicate keys across deltas (or against resident entries) must carry
// the same simulated value, otherwise determinism is broken somewhere and
// merge() throws.
//
// A cache may be bounded (a resident daemon must not grow without limit):
// with a non-zero entry capacity, every stripe keeps an LRU list of its
// exact entries and evicts its least-recently-used one when it exceeds its
// share of the capacity. Eviction only ever forgets — an evicted candidate
// is simply re-simulated on its next appearance — so a bounded cache keeps
// every byte-identity guarantee of an unbounded one. The witness
// antichains are already capped and are never evicted: Sec. 8 dominance
// keeps answering even for distributions whose exact entries are gone.
// Bounded caches have no frozen exact index (lock-free reads cannot
// refresh LRU recency); their Snapshots fall back to the locked map for
// exact lookups and stay lock-free for the witness scans.
#pragma once

#include <array>
#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/checked_math.hpp"
#include "base/rational.hpp"
#include "sdf/ids.hpp"

namespace buffy::buffer {

/// Everything the DSE engines consume from one throughput evaluation, so a
/// cache hit substitutes for the simulation entirely.
struct CachedThroughput {
  Rational throughput;
  bool deadlocked = false;
  u64 states_stored = 0;
  i64 cycle_start_time = 0;
  i64 period = 0;
  /// True when storage_deps was recorded (the incremental engine needs the
  /// dependencies to expand children; the exhaustive engine does not).
  bool has_deps = false;
  std::vector<sdf::ChannelId> storage_deps;
};

class ThroughputCache {
 public:
  class Snapshot;
  class Delta;

  /// `max_throughput` is the graph's maximal throughput for the explored
  /// target — the value a max-witness dominance hit reports.
  /// `capacity` bounds the number of resident exact entries (0 =
  /// unbounded): each of the kStripes shards holds at most
  /// max(1, capacity / kStripes) entries and evicts its least-recently-
  /// used one on overflow, so the resident total is capacity rounded to
  /// stripe granularity.
  explicit ThroughputCache(Rational max_throughput, u64 capacity = 0);

  /// Exact lookup. With `require_deps`, only entries whose storage
  /// dependencies were recorded count as hits.
  [[nodiscard]] std::optional<CachedThroughput> find(
      const std::vector<i64>& caps, bool require_deps) const;

  /// Sec. 8 dominance, max rule: caps pointwise >= a recorded
  /// max-throughput witness. The answer carries the maximal throughput and
  /// no dependencies (callers only use it where dependencies are moot).
  [[nodiscard]] std::optional<CachedThroughput> find_max_dominated(
      const std::vector<i64>& caps) const;

  /// Sec. 8 dominance, deadlock rule: caps pointwise <= a recorded
  /// deadlocked distribution. The answer is a deadlock (throughput 0).
  [[nodiscard]] std::optional<CachedThroughput> find_deadlock_dominated(
      const std::vector<i64>& caps) const;

  /// Records a simulated outcome; feeds the witness antichains when the
  /// outcome is the maximal throughput or a deadlock. Note: the frozen
  /// index is built from merged deltas only, so an entry stored directly
  /// (outside merge()) stays invisible to Snapshots of an unbounded cache
  /// once a first merge() has published that index — a safe stale miss;
  /// find() always sees it. The engines route everything through deltas;
  /// store() remains for one-shot callers and tests.
  void store(const std::vector<i64>& caps, const CachedThroughput& value);

  /// Seeds a max-throughput witness without a full map entry (e.g. the
  /// Fig. 7 bound's max-throughput distribution, known before the
  /// exploration starts).
  void add_max_witness(const std::vector<i64>& caps);

  /// Point-in-time read view for the workers of one wave. Witness scans
  /// are always lock-free (the antichains are copied out). Exact lookups
  /// are lock-free against the frozen two-level index when the cache is
  /// unbounded; a bounded cache's Snapshot delegates exact lookups to the
  /// locked striped map so LRU recency stays exact. Snapshots are
  /// intentionally allowed to lag concurrent writers: a stale miss is
  /// re-simulated to the identical value, never answered wrongly.
  [[nodiscard]] Snapshot snapshot() const;

  /// A fresh thread-local write buffer for one worker of one wave.
  [[nodiscard]] Delta make_delta() const;

  /// Folds per-worker deltas back into the cache: applied in the given
  /// (slot) order, each delta in its insertion order, so a sequential wave
  /// merges in exactly the order it simulated. Feeds the witness
  /// antichains, maintains the bounded-cache LRU, and republishes the
  /// frozen index (unbounded caches) in one copy-on-write batch.
  ///
  /// Determinism check: a capacity vector recorded by two deltas — or
  /// recorded by a delta and already resident — must carry the same
  /// simulated outcome (simulation is deterministic; dominance answers are
  /// exact). A mismatch means a worker produced a divergent value, and
  /// merge() throws Error instead of silently picking one.
  void merge(std::span<Delta* const> deltas);

  [[nodiscard]] const Rational& max_throughput() const {
    return max_throughput_;
  }

  /// Audit tamper hook: adds `delta` to the stored throughput of the
  /// exact entry for `caps` (false when no such entry), so tests can
  /// prove the sampled cache-vs-simulation audit catches a corrupted
  /// entry. Updates the frozen index too, so Snapshot readers see the
  /// corruption. Never called outside tests.
  bool corrupt_entry_for_test(const std::vector<i64>& caps,
                              const Rational& delta);

  /// Lifetime counters (relaxed; for metrics only).
  [[nodiscard]] u64 exact_hits() const {
    return exact_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 dominance_hits() const {
    return dominance_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 entries_stored() const {
    return stores_.load(std::memory_order_relaxed);
  }
  /// Exact entries evicted by the LRU bound (0 for unbounded caches).
  [[nodiscard]] u64 entries_evicted() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Exact entries currently resident (stored minus evicted).
  [[nodiscard]] u64 entries_resident() const {
    return resident_.load(std::memory_order_relaxed);
  }
  /// Wave merges completed (metrics only).
  [[nodiscard]] u64 merges() const {
    return merges_.load(std::memory_order_relaxed);
  }
  /// The entry bound this cache was built with (0 = unbounded).
  [[nodiscard]] u64 capacity() const { return capacity_; }

  /// Number of map shards; with a bounded cache, each holds at most
  /// max(1, capacity / kStripes) entries. Public so tests can construct
  /// same-stripe key sets (stripe = hash_words(caps) % kStripes) and pin
  /// the eviction order.
  static constexpr std::size_t kStripes = 16;

 private:
  friend class Snapshot;
  friend class Delta;

  // Witness antichains are capped so the dominance scan stays cheap on
  // pathological fronts; beyond the cap new witnesses are dropped (pruning
  // then just fires less often — never incorrectly).
  static constexpr std::size_t kMaxWitnesses = 64;

  /// A witness plus its total size. Antichains are kept sorted ascending
  /// by (total, caps): a max-rule witness must have total <= the
  /// candidate's, a deadlock-rule witness total >= it, so each scan
  /// touches only the qualifying prefix/suffix.
  struct Witness {
    std::vector<i64> caps;
    i64 total = 0;
  };

  struct CapsHash {
    std::size_t operator()(const std::vector<i64>& caps) const noexcept;
  };
  using ExactMap =
      std::unordered_map<std::vector<i64>, CachedThroughput, CapsHash>;

  /// Immutable two-level exact index published to Snapshots of an
  /// unbounded cache. `overlay` holds entries merged since the last fold
  /// and shadows `base`; merge() folds the overlay into a fresh base once
  /// it reaches max(64, |base| / 8), so merge cost stays amortized O(new)
  /// while lookups touch at most two hash tables.
  struct Frozen {
    std::shared_ptr<const ExactMap> base;  // never null, possibly empty
    ExactMap overlay;
  };

  struct Entry {
    CachedThroughput value;
    /// Position in the stripe's LRU list (meaningful only when the cache
    /// is bounded; front = most recently used).
    std::list<const std::vector<i64>*>::iterator lru_it;
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::vector<i64>, Entry, CapsHash> map;
    /// LRU order over the map's keys (pointers stay valid across rehash:
    /// unordered_map nodes are stable). Maintained only when bounded.
    std::list<const std::vector<i64>*> lru;
  };

  [[nodiscard]] Stripe& stripe_of(const std::vector<i64>& caps) const;
  void add_deadlock_witness(const std::vector<i64>& caps);
  /// Applies one entry to the striped map under its stripe lock: insert
  /// (with LRU bookkeeping) or upgrade, returning the canonical value now
  /// resident. `checked` makes a value mismatch against a resident entry
  /// throw (the merge determinism check) instead of keeping the old value.
  CachedThroughput apply_entry(const std::vector<i64>& caps,
                               const CachedThroughput& value, bool checked);
  void feed_witnesses(const std::vector<i64>& caps,
                      const CachedThroughput& value);

  // Sorted-antichain helpers shared by the cache, Snapshot and Delta.
  static void insert_minimal_witness(std::vector<Witness>& ws,
                                     const std::vector<i64>& caps);
  static void insert_maximal_witness(std::vector<Witness>& ws,
                                     const std::vector<i64>& caps);
  [[nodiscard]] static bool any_max_witness(const std::vector<Witness>& ws,
                                            const std::vector<i64>& caps);
  [[nodiscard]] static bool any_deadlock_witness(
      const std::vector<Witness>& ws, const std::vector<i64>& caps);

  Rational max_throughput_;
  u64 capacity_ = 0;         // 0 = unbounded
  u64 per_stripe_cap_ = 0;   // max(1, capacity_ / kStripes) when bounded
  mutable std::array<Stripe, kStripes> stripes_;

  mutable std::mutex witness_mu_;
  std::vector<Witness> max_witnesses_;       // minimal elements, sorted
  std::vector<Witness> deadlock_witnesses_;  // maximal elements, sorted

  /// Serializes merge() bodies (concurrent merges from explorations
  /// sharing this cache) and corrupt_entry_for_test's frozen rebuild.
  std::mutex merge_mu_;
  /// Guards only the frozen_ pointer load/publish; held for nanoseconds.
  mutable std::mutex frozen_mu_;
  /// Null until the first merge() of an unbounded cache; never set for
  /// bounded caches.
  std::shared_ptr<const Frozen> frozen_;

  mutable std::atomic<u64> exact_hits_{0};
  mutable std::atomic<u64> dominance_hits_{0};
  std::atomic<u64> stores_{0};
  std::atomic<u64> evictions_{0};
  std::atomic<u64> resident_{0};
  std::atomic<u64> merges_{0};
};

/// See ThroughputCache::snapshot(). Copyable; typically one per wave,
/// shared read-only by every worker of that wave.
class ThroughputCache::Snapshot {
 public:
  /// Exact lookup (same contract as ThroughputCache::find). Lock-free
  /// against the frozen index when one exists; otherwise delegates to the
  /// cache's locked map (bounded caches, or before the first merge).
  [[nodiscard]] std::optional<CachedThroughput> find(
      const std::vector<i64>& caps, bool require_deps) const;

  /// Sec. 8 max rule over the snapshotted witness antichain; lock-free.
  [[nodiscard]] std::optional<CachedThroughput> find_max_dominated(
      const std::vector<i64>& caps) const;

  /// Sec. 8 deadlock rule over the snapshotted antichain; lock-free.
  [[nodiscard]] std::optional<CachedThroughput> find_deadlock_dominated(
      const std::vector<i64>& caps) const;

 private:
  friend class ThroughputCache;
  Snapshot() = default;

  const ThroughputCache* cache_ = nullptr;
  std::shared_ptr<const Frozen> frozen_;  // null = use the locked map
  std::vector<Witness> max_witnesses_;
  std::vector<Witness> deadlock_witnesses_;
};

/// See ThroughputCache::make_delta(). One per worker slot per wave; never
/// shared between threads. Records fresh simulation outcomes (insertion
/// order is preserved for the deterministic merge) and answers lookups
/// for what THIS worker has already learned during the wave — including
/// its own witness candidates, so a sequential wave sees exactly the
/// hit/miss sequence the pre-delta per-candidate store() path produced.
class ThroughputCache::Delta {
 public:
  /// Records one simulated outcome. Re-recording a key keeps the first
  /// value (upgrading it in place if the new one carries storage deps).
  void record(const std::vector<i64>& caps, const CachedThroughput& value);

  /// Exact lookup among this delta's own entries.
  [[nodiscard]] std::optional<CachedThroughput> find(
      const std::vector<i64>& caps, bool require_deps) const;

  /// Sec. 8 max rule over this delta's local witnesses.
  [[nodiscard]] std::optional<CachedThroughput> find_max_dominated(
      const std::vector<i64>& caps) const;

  /// Sec. 8 deadlock rule over this delta's local witnesses.
  [[nodiscard]] std::optional<CachedThroughput> find_deadlock_dominated(
      const std::vector<i64>& caps) const;

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Ready for the next wave; keeps the capacity of the containers.
  void clear();

 private:
  friend class ThroughputCache;
  Delta() = default;

  const ThroughputCache* cache_ = nullptr;  // counters + max throughput
  std::vector<std::pair<std::vector<i64>, CachedThroughput>> entries_;
  std::unordered_map<std::vector<i64>, std::size_t, CapsHash> index_;
  std::vector<Witness> max_witnesses_;
  std::vector<Witness> deadlock_witnesses_;
};

}  // namespace buffy::buffer
