// Minimal deadlock-free storage distributions — the [GBS05] baseline the
// paper extends.
//
// This computes the smallest storage distribution under which the graph can
// execute at all (throughput > 0), with no constraint on how fast: the
// leftmost point of the paper's Pareto space. Comparing it with
// throughput-constrained results quantifies the paper's core message that
// deadlock-freedom alone under-provisions the buffers.
#pragma once

#include "base/rational.hpp"
#include "buffer/distribution.hpp"
#include "sdf/graph.hpp"

namespace buffy::buffer {

/// Result of the minimal deadlock-free buffer search.
struct DeadlockFreeResult {
  /// False when the graph deadlocks under every distribution.
  bool feasible = false;
  /// A smallest distribution with positive throughput.
  StorageDistribution distribution;
  /// The (self-timed) throughput that distribution happens to achieve.
  Rational throughput;
  /// Distributions whose throughput was computed during the search.
  u64 distributions_explored = 0;
};

/// Size-ordered search from the per-channel lower bounds, guided by the
/// storage dependencies of the deadlocked executions.
[[nodiscard]] DeadlockFreeResult minimal_deadlock_free_distribution(
    const sdf::Graph& graph, sdf::ActorId target,
    u64 max_distributions = 1'000'000);

}  // namespace buffy::buffer
