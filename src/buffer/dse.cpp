#include "buffer/dse.hpp"

#include <algorithm>
#include <optional>

#include "analysis/consistency.hpp"
#include "base/audit.hpp"
#include "base/diagnostics.hpp"
#include "buffer/audit_checks.hpp"
#include "buffer/dse_exact.hpp"
#include "buffer/dse_incremental.hpp"
#include "state/throughput.hpp"

namespace buffy::buffer {

Rational quantize_down(const Rational& value,
                       const std::optional<Rational>& step) {
  if (!step.has_value()) return value;
  BUFFY_REQUIRE(step->num() > 0, "quantisation step must be positive");
  // floor(value / step) * step, exactly.
  const i64 cells = floor_div(checked_mul(value.num(), step->den()),
                              checked_mul(value.den(), step->num()));
  return Rational(cells) * *step;
}

std::vector<i64> constrained_floor(const DseOptions& options,
                                   const DesignSpaceBounds& b) {
  std::vector<i64> floor = b.per_channel_lb.capacities();
  if (!options.channel_constraints.empty()) {
    BUFFY_REQUIRE(options.channel_constraints.size() == floor.size(),
                  "channel_constraints must have one entry per channel");
    for (std::size_t c = 0; c < floor.size(); ++c) {
      if (const auto& min = options.channel_constraints[c].min) {
        floor[c] = std::max(floor[c], *min);
      }
    }
  }
  return floor;
}

std::vector<std::optional<i64>> constrained_ceiling(const DseOptions& options,
                                                    std::size_t num_channels) {
  std::vector<std::optional<i64>> ceiling(num_channels);
  if (!options.channel_constraints.empty()) {
    BUFFY_REQUIRE(options.channel_constraints.size() == num_channels,
                  "channel_constraints must have one entry per channel");
    for (std::size_t c = 0; c < num_channels; ++c) {
      ceiling[c] = options.channel_constraints[c].max;
    }
  }
  return ceiling;
}

void apply_quantization_levels(DseOptions& options,
                               const DesignSpaceBounds& bounds) {
  if (options.quantization.has_value() ||
      !options.quantization_levels.has_value()) {
    return;
  }
  const i64 levels = *options.quantization_levels;
  BUFFY_REQUIRE(levels > 0, "quantization_levels must be positive");
  options.quantization = bounds.max_throughput / Rational(levels);
  // On an N-level grid anything within one step of the maximum is
  // indistinguishable from it, so the exploration may stop one grid level
  // early — this is where the quantised search gains its speed (Sec. 11):
  // the expensive tail of the climb towards the exact maximum is skipped.
  const Rational near_max = bounds.max_throughput * Rational(levels - 1, levels);
  if (!options.throughput_goal.has_value() ||
      near_max < *options.throughput_goal) {
    options.throughput_goal = near_max;
  }
}

DseResult explore(const sdf::Graph& graph, const DseOptions& options) {
  BUFFY_REQUIRE(options.target.valid() &&
                    options.target.index() < graph.num_actors(),
                "DSE target actor is not part of the graph");
  analysis::require_consistent(graph);
  if (!options.binding.empty()) {
    BUFFY_REQUIRE(options.binding.size() == graph.num_actors(),
                  "binding must assign every actor a processor");
    BUFFY_REQUIRE(options.engine == DseEngine::Incremental,
                  "processor bindings are supported by the incremental "
                  "engine (the exhaustive engine's Fig. 7 box assumes "
                  "unbound execution)");
  }

  // With engine reuse on, the bounds' capacity-doubling runs and (under a
  // binding) the plateau search share one solver instead of rebuilding an
  // engine per run — the same reuse the engines apply per candidate.
  std::optional<state::ThroughputSolver> setup_solver;
  if (options.reuse_engines) setup_solver.emplace(graph);
  const DesignSpaceBounds bounds =
      design_space_bounds(graph, options.target, options.max_steps_per_run,
                          setup_solver.has_value() ? &*setup_solver : nullptr);
  if (bounds.deadlock) {
    // Every distribution deadlocks; the Pareto space is empty.
    DseResult result;
    result.bounds = bounds;
    return result;
  }
  {
    // A ceiling below the analytic lower bound leaves nothing to explore.
    const auto floor = constrained_floor(options, bounds);
    const auto ceiling = constrained_ceiling(options, graph.num_channels());
    for (std::size_t c = 0; c < floor.size(); ++c) {
      if (ceiling[c].has_value() && *ceiling[c] < floor[c]) {
        DseResult result;
        result.bounds = bounds;
        result.constraints_infeasible = true;
        return result;
      }
    }
  }
  DseOptions effective = options;
  if (effective.deadline_ms.has_value()) {
    // The engines and their throughput runs poll one combined token:
    // cancelled when the user's token fires OR the budget runs out.
    effective.cancel = options.cancel.with_deadline(*effective.deadline_ms);
  }
  if (!effective.binding.empty()) {
    // Under a processor binding the unbound maximal throughput (MCM) is
    // unreachable and storage dependencies need not ever vanish (a
    // fixed-priority producer can fill any finite buffer before yielding
    // its processor), so the goal is the bound maximum, established by
    // capacity doubling until the throughput plateaus.
    std::vector<i64> caps = bounds.per_channel_lb.capacities();
    for (std::size_t c = 0; c < caps.size(); ++c) {
      const sdf::Channel& ch = graph.channel(sdf::ChannelId(c));
      caps[c] = std::max(caps[c], ch.initial_tokens + ch.production +
                                      ch.consumption);
    }
    Rational bound_max(0);
    int plateau = 0;
    for (int round = 0; round < 24 && plateau < 2; ++round) {
      state::ThroughputOptions run_opts{
          .target = options.target, .max_steps = options.max_steps_per_run};
      run_opts.processor_of = options.binding;
      run_opts.cancel = effective.cancel;
      run_opts.progress = options.progress;
      state::ThroughputResult run;
      try {
        run = setup_solver.has_value()
                  ? setup_solver->compute(state::Capacities::bounded(caps),
                                          run_opts)
                  : state::compute_throughput(
                        graph, state::Capacities::bounded(caps), run_opts);
      } catch (const exec::Cancelled&) {
        // Budget exhausted while establishing the bound goal: nothing was
        // explored yet, so the partial front is empty.
        DseResult cancelled;
        cancelled.bounds = bounds;
        cancelled.cancelled = true;
        if (options.progress != nullptr) options.progress->mark_cancelled();
        return cancelled;
      }
      if (!run.deadlocked && run.throughput == bound_max) {
        ++plateau;
      } else if (!run.deadlocked) {
        bound_max = run.throughput;
        plateau = 0;
      }
      for (i64& c : caps) c = checked_mul(c, 2);
    }
    if (!effective.throughput_goal.has_value() ||
        bound_max < *effective.throughput_goal) {
      effective.throughput_goal = bound_max;
    }
  }
  apply_quantization_levels(effective, bounds);
  DseResult result;
  switch (effective.engine) {
    case DseEngine::Exhaustive:
      result = explore_exhaustive(graph, effective, bounds);
      break;
    case DseEngine::Incremental:
      result = explore_incremental(graph, effective, bounds);
      break;
    default:
      throw InternalError("unknown DSE engine");
  }
  if (options.min_throughput.has_value()) {
    ParetoSet filtered;
    for (const ParetoPoint& p : result.pareto.points()) {
      if (p.throughput >= *options.min_throughput) filtered.add(p);
    }
    result.pareto = std::move(filtered);
  }
  if (options.progress != nullptr) {
    options.progress->add_pareto_points(result.pareto.size());
    if (result.cancelled) options.progress->mark_cancelled();
  }
  // Every front an exploration hands back is audited for the ordering
  // invariant (strictly increasing size AND throughput) while audit mode
  // is on — including partial fronts of cancelled runs (DESIGN.md §9).
  if (audit::enabled()) audit_verify_monotone_front(result.pareto);
  return result;
}

}  // namespace buffy::buffer
