// Bounds that frame the storage/throughput design space (paper Sec. 8,
// Fig. 7; the [ALP97]/[Mur96] lower bounds and the [GGD02]-style upper
// bound).
//
// For each channel, a necessary capacity for any positive throughput is
// computed in closed form; a distribution that attains the graph's maximal
// throughput is found constructively (geometric capacity growth until the
// state-space throughput matches the MCM-derived maximum, then trimming to
// the observed occupancy). Between the summed lower bound and the size of
// that distribution lie all Pareto points.
#pragma once

#include <vector>

#include "base/rational.hpp"
#include "buffer/distribution.hpp"
#include "sdf/graph.hpp"

namespace buffy::state {
class ThroughputSolver;
}  // namespace buffy::state

namespace buffy::buffer {

/// Necessary capacity of one channel for positive throughput: with
/// production rate p, consumption rate c, g = gcd(p, c) and t initial
/// tokens, a channel needs at least p + c - g + (t mod g) tokens of storage
/// (and at least t, to hold the initial tokens). Self-loops additionally
/// keep their consumed tokens while the firing is in flight, so they need
/// t + p.
[[nodiscard]] i64 channel_lower_bound(const sdf::Channel& channel);

/// Per-channel lower bounds as a distribution.
[[nodiscard]] StorageDistribution lower_bound_distribution(
    const sdf::Graph& graph);

/// Everything Fig. 7 needs.
struct DesignSpaceBounds {
  /// Per-channel lower bounds (lb_alpha, lb_beta, ... in Fig. 7).
  StorageDistribution per_channel_lb;
  /// Combined lower bound on the distribution size (lb in Fig. 7).
  i64 lb_size = 0;
  /// A distribution attaining the maximal throughput (its size is ub).
  StorageDistribution max_throughput_distribution;
  /// Combined upper bound on the meaningful distribution size (ub in Fig. 7).
  i64 ub_size = 0;
  /// Maximal achievable throughput of the target actor.
  Rational max_throughput;
  /// True when the graph deadlocks for every storage distribution
  /// (a dependency cycle without tokens); all other fields are then void.
  bool deadlock = false;
};

/// Computes the design-space bounds for the given target actor.
/// `max_steps` bounds each state-space run. When `solver` is non-null the
/// capacity-doubling runs reuse it (engine reconfigure + recycled visited
/// arena) instead of building a fresh engine per round; it must be a solver
/// over `graph`.
[[nodiscard]] DesignSpaceBounds design_space_bounds(
    const sdf::Graph& graph, sdf::ActorId target, u64 max_steps = 100'000'000,
    state::ThroughputSolver* solver = nullptr);

}  // namespace buffy::buffer
