// Storage distributions (paper Def. 1 and 2).
//
// A storage distribution assigns every channel a capacity in tokens; its
// size is the sum of the capacities (channels do not share memory in the
// paper's model, so total memory is additive).
#pragma once

#include <string>
#include <vector>

#include "base/checked_math.hpp"
#include "sdf/graph.hpp"

namespace buffy::buffer {

/// A per-channel capacity assignment, indexed like the graph's channels.
class StorageDistribution {
 public:
  StorageDistribution() = default;
  explicit StorageDistribution(std::vector<i64> capacities);

  [[nodiscard]] std::size_t num_channels() const { return caps_.size(); }

  [[nodiscard]] i64 operator[](std::size_t channel) const;
  [[nodiscard]] i64 operator[](sdf::ChannelId channel) const;

  /// Returns a copy with one channel's capacity replaced.
  [[nodiscard]] StorageDistribution with(std::size_t channel,
                                         i64 capacity) const;

  /// Distribution size sz(gamma): the sum of all capacities (Def. 2).
  [[nodiscard]] i64 size() const;

  [[nodiscard]] const std::vector<i64>& capacities() const { return caps_; }

  /// "<4, 2>" — the paper's notation.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] u64 hash() const;

  friend bool operator==(const StorageDistribution&,
                         const StorageDistribution&) = default;

 private:
  std::vector<i64> caps_;
};

/// Hasher for unordered containers keyed on StorageDistribution.
struct StorageDistributionHash {
  std::size_t operator()(const StorageDistribution& d) const noexcept {
    return static_cast<std::size_t>(d.hash());
  }
};

}  // namespace buffy::buffer
