// quality=fast exploration: an LP-derived storage/throughput front
// (DESIGN.md §13).
//
// Where the exact engines simulate every candidate distribution, the fast
// tier answers from the LP layer alone: the periodic-schedule sufficiency
// LP (lp::min_buffers_for_throughput) is solved on a grid of throughput
// targets between zero and the graph's maximal throughput, and each
// feasible point contributes a (distribution, guaranteed throughput)
// pair. Every reported point is sound — the distribution provably reaches
// at least the reported throughput, because a strictly periodic schedule
// witnesses it and self-timed execution only does better — but the front
// is approximate: a point's true throughput may be higher, and smaller
// distributions reaching the same throughput may exist. The exact front
// dominates-or-equals the fast front pointwise (pinned by the property
// suite).
//
// The only simulations spent are the handful inside design_space_bounds
// (the Fig. 7 anchor), whose max-throughput distribution also caps the
// front with one exact point.
#pragma once

#include "base/rational.hpp"
#include "buffer/bounds.hpp"
#include "buffer/pareto.hpp"
#include "sdf/graph.hpp"

namespace buffy::buffer {

/// Result of a fast (LP-only) front computation.
struct FastFrontResult {
  /// Sound approximate front: every point's distribution reaches at least
  /// the point's throughput. Empty when the graph deadlocks everywhere.
  ParetoSet pareto;
  /// The Fig. 7 bounds that framed the grid (deadlock flag included).
  DesignSpaceBounds bounds;
  /// Periodic LPs solved (one per grid level that stayed feasible).
  u64 lp_solves = 0;
  /// Solves answered numeric_overflow by the simplex's coefficient
  /// pre-size gate (DESIGN.md §16). When every solve overflows the front
  /// degenerates to the bare max-throughput anchor — still sound, but
  /// callers offering an exact tier should downgrade to it instead.
  u64 lp_overflows = 0;
  /// Simplex pivots spent across all solves.
  u64 lp_pivots = 0;
  /// Cycle cuts derived for the necessary floors.
  u64 lp_cuts = 0;
  /// Wall-clock seconds spent.
  double seconds = 0.0;
};

/// Computes the fast front for `target` with `levels` grid points between
/// zero and the maximal throughput (the top level is the exact Fig. 7
/// anchor). `max_steps` bounds each of the few bootstrap simulations.
/// Requires a consistent graph and levels >= 1; throws ConsistencyError
/// otherwise.
[[nodiscard]] FastFrontResult fast_front(const sdf::Graph& graph,
                                         sdf::ActorId target, i64 levels = 8,
                                         u64 max_steps = 100'000'000);

}  // namespace buffy::buffer
