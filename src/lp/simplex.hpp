// Exact-rational linear programming (DESIGN.md §13).
//
// A small, dependency-free two-phase simplex solver over base/rational.hpp.
// Every tableau entry is a buffy::Rational, so solutions and infeasibility
// certificates are exact — no epsilon tuning, no float drift. The intended
// load is the SDF buffer-bound models built by lp/sdf_model.hpp: a few
// dozen variables and rows, where exact arithmetic costs microseconds and
// buys airtight soundness arguments for the DSE pruning layer.
//
// Problems are in the standard form
//
//     minimise   c . x
//     subject to a_i . x  (<= | >= | ==)  b_i      for every row i
//                x >= 0
//
// Degeneracy is handled by Bland's rule (lowest-index entering and leaving
// columns), which excludes cycling; a pivot budget bounds the worst case
// and turns pathological inputs into Status::PivotLimit instead of a hang.
// Infeasible problems come back with a Farkas certificate: row multipliers
// proving no x >= 0 satisfies the constraints (verifiable independently by
// verify_infeasibility()).
//
// Thread-safety: solve() is a pure function; concurrent calls on distinct
// Problem objects (or shared const ones) are safe.
#pragma once

#include <cstddef>
#include <vector>

#include "base/checked_math.hpp"
#include "base/rational.hpp"

namespace buffy::lp {

/// Row comparison sense of one constraint.
enum class Sense : std::uint8_t { Le, Ge, Eq };

/// One constraint row: coeffs . x  sense  rhs.
struct Constraint {
  std::vector<Rational> coeffs;  // dense, one entry per variable
  Sense sense = Sense::Le;
  Rational rhs;
};

/// A linear program: minimise objective . x over the rows, x >= 0.
struct Problem {
  std::size_t num_vars = 0;
  std::vector<Rational> objective;  // dense, one entry per variable
  std::vector<Constraint> rows;
  /// Sound upper bound on |numerator| and denominator of every
  /// coefficient and right-hand side above, or 0 when unknown. Model
  /// builders stamp it (lp/sdf_model.cpp tracks the exact maximum while
  /// emitting rows; analysis::derive_bounds provides a static envelope
  /// before any row exists). solve() pre-sizes its exact arithmetic from
  /// it: a bound beyond the safe pivot range answers NumericOverflow
  /// immediately instead of pivoting into a guaranteed overflow.
  i64 coeff_bound = 0;
};

/// Solver outcome.
enum class Status : std::uint8_t {
  /// An optimal vertex was found; values/objective_value are set.
  Optimal,
  /// No x >= 0 satisfies the rows; certificate is set (see Solution).
  Infeasible,
  /// The objective decreases without bound over the feasible region.
  Unbounded,
  /// The pivot budget was exhausted before convergence.
  PivotLimit,
  /// Exact arithmetic overflowed 64-bit numerators/denominators.
  NumericOverflow,
};

/// Stable lower-case name of a status ("optimal", "infeasible", ...).
[[nodiscard]] const char* status_name(Status status);

/// Result of solve().
struct Solution {
  Status status = Status::PivotLimit;
  /// Optimal objective value (valid when status == Optimal).
  Rational objective_value;
  /// Optimal variable assignment, one entry per variable (Optimal only).
  std::vector<Rational> values;
  /// Farkas infeasibility certificate, one multiplier per row (Infeasible
  /// only): multipliers y with y_i >= 0 on Ge rows, y_i <= 0 on Le rows,
  /// free on Eq rows, such that sum_i y_i * a_i <= 0 componentwise while
  /// sum_i y_i * b_i > 0 — no x >= 0 can satisfy all rows.
  std::vector<Rational> certificate;
  /// Pivots performed across both phases.
  u64 pivots = 0;
};

/// Solves the problem by exact two-phase simplex with Bland's rule.
/// max_pivots bounds the total pivot count across both phases.
[[nodiscard]] Solution solve(const Problem& problem, u64 max_pivots = 100000);

/// Independently checks a Farkas certificate against the problem (see
/// Solution::certificate for the proved inequality system). solve() only
/// returns certificates that pass this check.
[[nodiscard]] bool verify_infeasibility(const Problem& problem,
                                        const std::vector<Rational>& y);

}  // namespace buffy::lp
