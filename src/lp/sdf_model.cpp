#include "lp/sdf_model.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "base/diagnostics.hpp"

namespace buffy::lp {
namespace {

// Bounded cycle enumeration: simple directed cycles of the
// capacity-extended single-rate subgraph, shortest first.
constexpr std::size_t kMaxCycleEdges = 16;
constexpr std::size_t kEnumerationBudget = 200000;

// One edge of the capacity-extended graph. Forward edges carry the
// channel's initial tokens; backward (capacity) edges carry x_c - t_c, so
// `tokens` holds the constant part (-t_c) and `cap` names the channel
// whose capacity is added.
struct CapEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  i64 tokens = 0;
  sdf::ChannelId cap;  // invalid for forward edges
};

// Actors reachable from `target` over channels in either direction.
std::vector<bool> component_of(const sdf::Graph& graph, sdf::ActorId target) {
  std::vector<bool> in(graph.num_actors(), false);
  std::vector<std::size_t> stack{target.index()};
  in[target.index()] = true;
  while (!stack.empty()) {
    const std::size_t a = stack.back();
    stack.pop_back();
    for (const sdf::ChannelId c : graph.out_channels(sdf::ActorId(a))) {
      const std::size_t b = graph.channel(c).dst.index();
      if (!in[b]) {
        in[b] = true;
        stack.push_back(b);
      }
    }
    for (const sdf::ChannelId c : graph.in_channels(sdf::ActorId(a))) {
      const std::size_t b = graph.channel(c).src.index();
      if (!in[b]) {
        in[b] = true;
        stack.push_back(b);
      }
    }
  }
  return in;
}

struct RawCycle {
  std::vector<std::size_t> edges;  // indices into the CapEdge list
};

// Enumerates simple directed cycles, each rooted at (and reported from)
// its lowest-index node. Deterministic: roots ascend, edges are tried in
// list order. Cut off by path length and a global step budget.
void enumerate_cycles(const std::vector<CapEdge>& edges, std::size_t num_nodes,
                      std::vector<RawCycle>& out) {
  std::vector<std::vector<std::size_t>> adj(num_nodes);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    adj[edges[e].from].push_back(e);
  }
  std::size_t steps = 0;
  std::vector<bool> on_path(num_nodes, false);
  std::vector<std::size_t> path;

  struct Dfs {
    const std::vector<CapEdge>& edges;
    const std::vector<std::vector<std::size_t>>& adj;
    std::vector<bool>& on_path;
    std::vector<std::size_t>& path;
    std::vector<RawCycle>& out;
    std::size_t& steps;
    std::size_t root = 0;

    void visit(std::size_t node) {
      if (steps >= kEnumerationBudget) return;
      for (const std::size_t e : adj[node]) {
        if (++steps >= kEnumerationBudget) return;
        const std::size_t next = edges[e].to;
        if (next == root) {
          path.push_back(e);
          out.push_back(RawCycle{path});
          path.pop_back();
          continue;
        }
        if (next < root || on_path[next]) continue;
        if (path.size() + 1 >= kMaxCycleEdges) continue;
        on_path[next] = true;
        path.push_back(e);
        visit(next);
        path.pop_back();
        on_path[next] = false;
      }
    }
  };

  Dfs dfs{edges, adj, on_path, path, out, steps};
  for (std::size_t root = 0; root < num_nodes; ++root) {
    if (steps >= kEnumerationBudget) break;
    dfs.root = root;
    on_path[root] = true;
    dfs.visit(root);
    on_path[root] = false;
  }
}

}  // namespace

std::vector<ModelDiagnostic> model_diagnostics(const sdf::Graph& graph) {
  std::vector<ModelDiagnostic> out;
  for (const sdf::ChannelId c : graph.channel_ids()) {
    const sdf::Channel& ch = graph.channel(c);
    if (!ch.is_self_loop() || ch.initial_tokens >= ch.consumption) continue;
    ModelDiagnostic d;
    d.code = ModelDiagnostic::Code::DeadSelfLoop;
    d.channel = c;
    d.message = "self-loop channel '" + ch.name + "' holds " +
                std::to_string(ch.initial_tokens) +
                " initial token(s) but every firing of '" +
                graph.actor(ch.src).name + "' needs " +
                std::to_string(ch.consumption) +
                ": the actor can never fire and the graph deadlocks at "
                "every capacity";
    out.push_back(std::move(d));
  }
  return out;
}

i64 channel_floor(const sdf::Graph& graph, sdf::ChannelId c) {
  const sdf::Channel& ch = graph.channel(c);
  if (ch.is_self_loop()) {
    return checked_add(ch.initial_tokens, ch.production);
  }
  const i64 g = gcd(ch.production, ch.consumption);
  const i64 bound = checked_add(
      checked_add(ch.production, ch.consumption),
      checked_sub(positive_mod(ch.initial_tokens, g), g));
  return std::max(ch.initial_tokens, bound);
}

ThroughputCuts ThroughputCuts::derive(const sdf::Graph& graph,
                                      const std::vector<i64>& repetitions,
                                      sdf::ActorId target,
                                      std::size_t max_cuts) {
  BUFFY_REQUIRE(repetitions.size() == graph.num_actors(),
                "lp: repetition vector has " +
                    std::to_string(repetitions.size()) + " entries, graph '" +
                    graph.name() + "' has " +
                    std::to_string(graph.num_actors()) + " actors");
  ThroughputCuts out;
  out.q_target_ = repetitions[target.index()];
  out.floors_.assign(graph.num_channels(), 0);

  const std::vector<bool> in_component = component_of(graph, target);
  std::vector<CapEdge> edges;
  for (const sdf::ChannelId c : graph.channel_ids()) {
    const sdf::Channel& ch = graph.channel(c);
    if (ch.production != 1 || ch.consumption != 1) continue;
    if (!in_component[ch.src.index()]) continue;
    edges.push_back({ch.src.index(), ch.dst.index(), ch.initial_tokens,
                     sdf::ChannelId()});
    edges.push_back({ch.dst.index(), ch.src.index(), -ch.initial_tokens, c});
  }
  if (edges.empty()) return out;

  std::vector<RawCycle> cycles;
  enumerate_cycles(edges, graph.num_actors(), cycles);
  std::stable_sort(cycles.begin(), cycles.end(),
                   [](const RawCycle& a, const RawCycle& b) {
                     return a.edges.size() < b.edges.size();
                   });

  std::set<std::vector<i64>> seen;
  for (const RawCycle& cycle : cycles) {
    if (out.cuts_.size() >= max_cuts) break;
    ThroughputCut cut;
    bool overflow = false;
    try {
      for (const std::size_t e : cycle.edges) {
        const CapEdge& edge = edges[e];
        cut.token_base = checked_add(cut.token_base, edge.tokens);
        // Each node of a simple cycle is the destination of exactly one
        // edge, so summing destination execution times walks the actors.
        cut.exec_sum = checked_add(
            cut.exec_sum, graph.actor(sdf::ActorId(edge.to)).execution_time);
        cut.max_q = std::max(cut.max_q, repetitions[edge.to]);
        if (edge.cap.valid()) cut.backward.push_back(edge.cap);
      }
    } catch (const OverflowError&) {
      overflow = true;
    }
    if (overflow || cut.backward.empty()) continue;
    std::sort(cut.backward.begin(), cut.backward.end());
    std::vector<i64> key{cut.token_base, cut.exec_sum, cut.max_q};
    for (const sdf::ChannelId c : cut.backward) {
      key.push_back(static_cast<i64>(c.index()));
    }
    if (!seen.insert(std::move(key)).second) continue;
    if (cut.backward.size() == 1) {
      // D(x) = token_base + x_c must be >= 1 for any non-zero throughput.
      const std::size_t c = cut.backward.front().index();
      try {
        out.floors_[c] =
            std::max(out.floors_[c], checked_sub(1, cut.token_base));
      } catch (const OverflowError&) {
        // An unrepresentable floor never raises the box.
      }
    }
    out.cuts_.push_back(std::move(cut));
  }
  return out;
}

std::optional<Rational> ThroughputCuts::upper_bound(
    std::span<const i64> caps) const noexcept {
  if (cuts_.empty()) return std::nullopt;
  try {
    std::optional<Rational> best;
    for (const ThroughputCut& cut : cuts_) {
      i64 d = cut.token_base;
      for (const sdf::ChannelId c : cut.backward) {
        d = checked_add(d, caps[c.index()]);
      }
      if (d <= 0) return Rational(0);
      const Rational bound(checked_mul(q_target_, d),
                           checked_mul(cut.exec_sum, cut.max_q));
      if (!best.has_value() || bound < *best) best = bound;
    }
    return best;
  } catch (...) {
    return std::nullopt;
  }
}

bool ThroughputCuts::bounds_below(std::span<const i64> caps,
                                  const Rational& threshold,
                                  bool strict) const noexcept {
  const Rational zero(0);
  for (const ThroughputCut& cut : cuts_) {
    try {
      i64 d = cut.token_base;
      for (const sdf::ChannelId c : cut.backward) {
        d = checked_add(d, caps[c.index()]);
      }
      const Rational bound =
          d <= 0 ? zero
                 : Rational(checked_mul(q_target_, d),
                            checked_mul(cut.exec_sum, cut.max_q));
      if (strict ? bound < threshold : bound <= threshold) return true;
    } catch (...) {
      // Overflow on one cut must not fabricate a prune; try the others.
    }
  }
  return false;
}

PeriodicSolveResult min_buffers_for_throughput(
    const sdf::Graph& graph, const std::vector<i64>& repetitions,
    sdf::ActorId target, const Rational& throughput,
    const std::vector<i64>& floor_caps) {
  BUFFY_REQUIRE(repetitions.size() == graph.num_actors(),
                "lp: repetition vector size mismatch for graph '" +
                    graph.name() + "'");
  BUFFY_REQUIRE(floor_caps.size() == graph.num_channels(),
                "lp: floor capacity vector size mismatch for graph '" +
                    graph.name() + "'");
  BUFFY_REQUIRE(throughput > Rational(0),
                "lp: periodic model needs a positive target throughput");
  PeriodicSolveResult out;
  if (!model_diagnostics(graph).empty()) return out;  // Infeasible

  try {
    const std::vector<bool> in_component = component_of(graph, target);
    const Rational period =
        Rational(repetitions[target.index()]) / throughput;

    // No auto-concurrency: q_a firings of a must fit in one period.
    for (const sdf::ActorId a : graph.actor_ids()) {
      if (!in_component[a.index()]) continue;
      const i64 busy = checked_mul(repetitions[a.index()],
                                   graph.actor(a).execution_time);
      if (period < Rational(busy)) return out;  // Infeasible
    }

    // Variables: one start offset per component actor, one capacity slack
    // per component channel (self-loops excluded: their floor already
    // covers the constant space demand and they add no periodic rows).
    std::vector<std::size_t> actor_var(graph.num_actors(), 0);
    std::size_t num_vars = 0;
    for (const sdf::ActorId a : graph.actor_ids()) {
      if (in_component[a.index()]) actor_var[a.index()] = num_vars++;
    }
    std::vector<std::size_t> slack_var(graph.num_channels(), 0);
    std::vector<sdf::ChannelId> slack_channels;
    for (const sdf::ChannelId c : graph.channel_ids()) {
      const sdf::Channel& ch = graph.channel(c);
      if (ch.is_self_loop() || !in_component[ch.src.index()]) continue;
      slack_var[c.index()] = num_vars++;
      slack_channels.push_back(c);
    }

    Problem problem;
    problem.num_vars = num_vars;
    problem.objective.assign(num_vars, Rational(0));
    for (const sdf::ChannelId c : slack_channels) {
      problem.objective[slack_var[c.index()]] = Rational(1);
    }

    // Exact coefficient envelope, stamped into Problem::coeff_bound so
    // solve() can pre-size its rational arithmetic (simplex.cpp). Tracks
    // the running max of |numerator| and denominator over every value a
    // row will carry; negations share the magnitude of their positives.
    i64 coeff_bound = 1;  // objective entries are 0/1
    const auto note = [&coeff_bound](const Rational& v) {
      const i64 num = v.num();
      const i64 mag = num == std::numeric_limits<i64>::min()
                          ? std::numeric_limits<i64>::max()
                          : (num < 0 ? -num : num);
      coeff_bound = std::max({coeff_bound, mag, v.den()});
    };
    note(period);
    for (const sdf::ChannelId c : slack_channels) {
      const sdf::Channel& ch = graph.channel(c);
      const i64 qu = repetitions[ch.src.index()];
      const i64 qv = repetitions[ch.dst.index()];
      const std::size_t su = actor_var[ch.src.index()];
      const std::size_t sv = actor_var[ch.dst.index()];

      // (F) token sufficiency: pr*qu*(s_v - s_u) >= pr*qu*e_u +
      // (co - t - 1)*T. The -1 is the firing-count integrality slack:
      // the dst's j-th firing needs ceil((co*(j+1) - t)/pr) completed src
      // firings, and floor(z)+1 >= m is exactly z >= m-1.
      Constraint tokens;
      tokens.coeffs.assign(num_vars, Rational(0));
      tokens.sense = Sense::Ge;
      const Rational fu(checked_mul(ch.production, qu));
      tokens.coeffs[sv] = fu;
      tokens.coeffs[su] = Rational(0) - fu;
      tokens.rhs =
          fu * Rational(graph.actor(ch.src).execution_time) +
          Rational(checked_sub(checked_sub(ch.consumption, ch.initial_tokens),
                               1)) *
              period;
      note(fu);
      note(tokens.rhs);
      problem.rows.push_back(std::move(tokens));

      // (S) space sufficiency: co*qv*(s_u - s_v) + T*y_c >=
      //     co*qv*e_v + (pr + t - floor_c - 1)*T, same integrality slack
      // (valid because the final capacities are integers: rounding the
      // slack up only relaxes this row).
      Constraint space;
      space.coeffs.assign(num_vars, Rational(0));
      space.sense = Sense::Ge;
      const Rational fv(checked_mul(ch.consumption, qv));
      space.coeffs[su] = fv;
      space.coeffs[sv] = Rational(0) - fv;
      space.coeffs[slack_var[c.index()]] = period;
      space.rhs =
          fv * Rational(graph.actor(ch.dst).execution_time) +
          Rational(checked_sub(
              checked_sub(checked_add(ch.production, ch.initial_tokens),
                          floor_caps[c.index()]),
              1)) *
              period;
      note(fv);
      note(space.rhs);
      problem.rows.push_back(std::move(space));
    }
    problem.coeff_bound = coeff_bound;

    const Solution solution = solve(problem);
    out.status = solution.status;
    out.pivots = solution.pivots;
    if (solution.status != Status::Optimal) return out;

    out.capacities = floor_caps;
    for (const sdf::ChannelId c : slack_channels) {
      const Rational y = solution.values[slack_var[c.index()]];
      out.capacities[c.index()] = checked_add(
          out.capacities[c.index()], ceil_div(y.num(), y.den()));
    }
    return out;
  } catch (const OverflowError&) {
    out.status = Status::NumericOverflow;
    out.capacities.clear();
    return out;
  }
}

}  // namespace buffy::lp
