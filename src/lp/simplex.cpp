#include "lp/simplex.hpp"

#include <limits>

#include "base/diagnostics.hpp"

namespace buffy::lp {
namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

// Dense exact tableau. Rows are normalised to rhs >= 0 (flip[i] records the
// sign applied to original row i); every Le/Ge row carries a slack/surplus
// column and every Ge/Eq row an artificial column, so the artificial basis
// is feasible by construction and phase 1 minimises the artificial sum.
struct Tableau {
  std::size_t num_structural = 0;  // x columns
  std::size_t art_begin = 0;       // first artificial column
  std::size_t num_cols = 0;        // structural + slack + artificial
  std::vector<std::vector<Rational>> rows;  // coefficient matrix
  std::vector<Rational> rhs;                // >= 0 throughout
  std::vector<std::size_t> basis;           // basic column per row
  std::vector<i64> flip;                    // +1 / -1 vs the original row
  std::vector<Sense> sense;                 // after normalisation
  std::vector<std::size_t> slack_col;       // per row, kNone for Eq
  std::vector<std::size_t> art_col;         // per row, kNone for Le
  std::vector<Rational> cost;               // reduced-cost row
  Rational cost_rhs;                        // -(current objective)

  void pivot(std::size_t r, std::size_t j) {
    const Rational inv = rows[r][j].reciprocal();
    for (Rational& v : rows[r]) v = v * inv;
    rhs[r] = rhs[r] * inv;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i == r || rows[i][j].is_zero()) continue;
      const Rational f = rows[i][j];
      for (std::size_t k = 0; k < num_cols; ++k) {
        rows[i][k] = rows[i][k] - f * rows[r][k];
      }
      rhs[i] = rhs[i] - f * rhs[r];
    }
    if (!cost[j].is_zero()) {
      const Rational f = cost[j];
      for (std::size_t k = 0; k < num_cols; ++k) {
        cost[k] = cost[k] - f * rows[r][k];
      }
      cost_rhs = cost_rhs - f * rhs[r];
    }
    basis[r] = j;
  }

  // Bland's rule: lowest-index column with negative reduced cost, among
  // non-artificial columns only (artificials never re-enter).
  [[nodiscard]] std::size_t entering() const {
    for (std::size_t j = 0; j < art_begin; ++j) {
      if (cost[j] < Rational(0)) return j;
    }
    return kNone;
  }

  // Minimum-ratio leaving row; ties broken by lowest basic column index
  // (Bland). kNone when the column is unbounded below.
  [[nodiscard]] std::size_t leaving(std::size_t j) const {
    std::size_t best = kNone;
    Rational best_ratio;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (rows[r][j] <= Rational(0)) continue;
      const Rational ratio = rhs[r] / rows[r][j];
      if (best == kNone || ratio < best_ratio ||
          (ratio == best_ratio && basis[r] < basis[best])) {
        best = r;
        best_ratio = ratio;
      }
    }
    return best;
  }
};

Tableau build_tableau(const Problem& problem) {
  const std::size_t n = problem.num_vars;
  const std::size_t m = problem.rows.size();
  Tableau t;
  t.num_structural = n;
  t.flip.resize(m, 1);
  t.sense.resize(m, Sense::Le);
  t.slack_col.resize(m, kNone);
  t.art_col.resize(m, kNone);

  // Column layout pass: count slack and artificial columns.
  std::size_t num_slack = 0;
  std::size_t num_art = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const Constraint& row = problem.rows[i];
    BUFFY_REQUIRE(row.coeffs.size() == n,
                  "lp: row " + std::to_string(i) + " has " +
                      std::to_string(row.coeffs.size()) + " coefficients, " +
                      "problem has " + std::to_string(n) + " variables");
    Sense s = row.sense;
    if (row.rhs < Rational(0)) {
      t.flip[i] = -1;
      if (s == Sense::Le) {
        s = Sense::Ge;
      } else if (s == Sense::Ge) {
        s = Sense::Le;
      }
    }
    t.sense[i] = s;
    if (s != Sense::Eq) ++num_slack;
    if (s != Sense::Le) ++num_art;
  }
  t.art_begin = n + num_slack;
  t.num_cols = t.art_begin + num_art;

  t.rows.assign(m, std::vector<Rational>(t.num_cols));
  t.rhs.resize(m);
  t.basis.resize(m);
  t.cost.assign(t.num_cols, Rational(0));
  t.cost_rhs = Rational(0);

  std::size_t next_slack = n;
  std::size_t next_art = t.art_begin;
  for (std::size_t i = 0; i < m; ++i) {
    const Constraint& row = problem.rows[i];
    const Rational sign(t.flip[i]);
    for (std::size_t j = 0; j < n; ++j) {
      t.rows[i][j] = sign * row.coeffs[j];
    }
    t.rhs[i] = sign * row.rhs;
    if (t.sense[i] != Sense::Eq) {
      t.slack_col[i] = next_slack;
      t.rows[i][next_slack] = Rational(t.sense[i] == Sense::Le ? 1 : -1);
      ++next_slack;
    }
    if (t.sense[i] != Sense::Le) {
      t.art_col[i] = next_art;
      t.rows[i][next_art] = Rational(1);
      t.basis[i] = next_art;
      ++next_art;
    } else {
      t.basis[i] = t.slack_col[i];
    }
  }

  // Phase-1 reduced costs: minimise the artificial sum. With the artificial
  // basis, z_j = c_j - sum over artificial rows of row coefficients.
  for (std::size_t i = 0; i < m; ++i) {
    if (t.art_col[i] == kNone) continue;
    for (std::size_t k = 0; k < t.num_cols; ++k) {
      t.cost[k] = t.cost[k] - t.rows[i][k];
    }
    t.cost_rhs = t.cost_rhs - t.rhs[i];
  }
  for (std::size_t j = t.art_begin; j < t.num_cols; ++j) {
    t.cost[j] = t.cost[j] + Rational(1);
  }
  return t;
}

// Runs Bland pivots until optimality. Returns Optimal, Unbounded or
// PivotLimit; `pivots` accumulates across calls.
Status run_simplex(Tableau& t, u64 max_pivots, u64& pivots) {
  for (;;) {
    const std::size_t j = t.entering();
    if (j == kNone) return Status::Optimal;
    const std::size_t r = t.leaving(j);
    if (r == kNone) return Status::Unbounded;
    if (pivots >= max_pivots) return Status::PivotLimit;
    t.pivot(r, j);
    ++pivots;
  }
}

// Reads the phase-1 dual multipliers out of the final reduced-cost row and
// maps them back through the row normalisation (certificate convention in
// simplex.hpp: y_i >= 0 on Ge rows, <= 0 on Le rows, free on Eq rows).
std::vector<Rational> extract_certificate(const Tableau& t) {
  std::vector<Rational> y(t.rows.size());
  for (std::size_t i = 0; i < t.rows.size(); ++i) {
    Rational internal;
    if (t.art_col[i] != kNone) {
      internal = Rational(1) - t.cost[t.art_col[i]];
    } else {
      internal = Rational(0) - t.cost[t.slack_col[i]];
    }
    y[i] = Rational(t.flip[i]) * internal;
  }
  return y;
}

}  // namespace

const char* status_name(Status status) {
  switch (status) {
    case Status::Optimal:
      return "optimal";
    case Status::Infeasible:
      return "infeasible";
    case Status::Unbounded:
      return "unbounded";
    case Status::PivotLimit:
      return "pivot_limit";
    case Status::NumericOverflow:
      return "numeric_overflow";
  }
  return "unknown";
}

Solution solve(const Problem& problem, u64 max_pivots) {
  BUFFY_REQUIRE(problem.objective.size() == problem.num_vars,
                "lp: objective has " +
                    std::to_string(problem.objective.size()) +
                    " coefficients, problem has " +
                    std::to_string(problem.num_vars) + " variables");
  Solution out;

  // Pre-size the exact arithmetic from the stamped coefficient envelope
  // (DESIGN.md §16). A pivot cross-multiplies tableau entries over common
  // denominators — with |numerator|, denominator <= B the very first pivot
  // forms products up to B^2 — so a bound past 2^31 can overflow i64 before
  // any useful work happens. Answering NumericOverflow up front is sound:
  // it is exactly the give-up status the checked Rational ops below would
  // reach, minus the wasted pivoting. 0 = unknown envelope: keep the old
  // behaviour of pivoting until a checked op throws.
  constexpr i64 kSafePivotBound = i64{1} << 31;
  if (problem.coeff_bound > kSafePivotBound) {
    out.status = Status::NumericOverflow;
    return out;
  }

  try {
    Tableau t = build_tableau(problem);

    // Phase 1: drive the artificial sum to zero.
    Status s = run_simplex(t, max_pivots, out.pivots);
    if (s != Status::Optimal) {
      out.status = s;  // PivotLimit (phase 1 is bounded below by zero)
      return out;
    }
    if (t.cost_rhs < Rational(0)) {
      // Residual artificial mass: infeasible, with a Farkas certificate.
      out.status = Status::Infeasible;
      out.certificate = extract_certificate(t);
      if (!verify_infeasibility(problem, out.certificate)) {
        out.certificate.clear();  // never return an unverified certificate
      }
      return out;
    }

    // Pivot leftover artificials out of the (degenerate) basis; a row that
    // has no non-artificial column left is redundant and is dropped.
    for (std::size_t r = t.rows.size(); r-- > 0;) {
      if (t.basis[r] < t.art_begin) continue;
      std::size_t j = kNone;
      for (std::size_t k = 0; k < t.art_begin; ++k) {
        if (!t.rows[r][k].is_zero()) {
          j = k;
          break;
        }
      }
      if (j != kNone) {
        t.pivot(r, j);
      } else {
        t.rows.erase(t.rows.begin() + static_cast<std::ptrdiff_t>(r));
        t.rhs.erase(t.rhs.begin() + static_cast<std::ptrdiff_t>(r));
        t.basis.erase(t.basis.begin() + static_cast<std::ptrdiff_t>(r));
      }
    }

    // Phase 2: price the real objective against the phase-1 basis.
    t.cost.assign(t.num_cols, Rational(0));
    t.cost_rhs = Rational(0);
    for (std::size_t j = 0; j < t.num_structural; ++j) {
      t.cost[j] = problem.objective[j];
    }
    for (std::size_t r = 0; r < t.rows.size(); ++r) {
      const std::size_t b = t.basis[r];
      if (b >= t.num_structural || problem.objective[b].is_zero()) continue;
      const Rational f = problem.objective[b];
      for (std::size_t k = 0; k < t.num_cols; ++k) {
        t.cost[k] = t.cost[k] - f * t.rows[r][k];
      }
      t.cost_rhs = t.cost_rhs - f * t.rhs[r];
    }
    s = run_simplex(t, max_pivots, out.pivots);
    if (s != Status::Optimal) {
      out.status = s;
      return out;
    }

    out.status = Status::Optimal;
    out.values.assign(problem.num_vars, Rational(0));
    for (std::size_t r = 0; r < t.rows.size(); ++r) {
      if (t.basis[r] < t.num_structural) out.values[t.basis[r]] = t.rhs[r];
    }
    Rational obj;
    for (std::size_t j = 0; j < problem.num_vars; ++j) {
      obj = obj + problem.objective[j] * out.values[j];
    }
    out.objective_value = obj;
    return out;
  } catch (const OverflowError&) {
    out.status = Status::NumericOverflow;
    out.values.clear();
    out.certificate.clear();
    return out;
  }
}

bool verify_infeasibility(const Problem& problem,
                          const std::vector<Rational>& y) {
  if (y.size() != problem.rows.size()) return false;
  try {
    const Rational zero(0);
    for (std::size_t i = 0; i < y.size(); ++i) {
      if (problem.rows[i].sense == Sense::Ge && y[i] < zero) return false;
      if (problem.rows[i].sense == Sense::Le && y[i] > zero) return false;
    }
    Rational rhs_sum;
    std::vector<Rational> combo(problem.num_vars, zero);
    for (std::size_t i = 0; i < y.size(); ++i) {
      if (y[i].is_zero()) continue;
      for (std::size_t j = 0; j < problem.num_vars; ++j) {
        combo[j] = combo[j] + y[i] * problem.rows[i].coeffs[j];
      }
      rhs_sum = rhs_sum + y[i] * problem.rows[i].rhs;
    }
    for (const Rational& v : combo) {
      if (v > zero) return false;
    }
    return rhs_sum > zero;
  } catch (const OverflowError&) {
    return false;
  }
}

}  // namespace buffy::lp
