// SDF buffer-bound models over the exact LP core (DESIGN.md §13).
//
// This layer turns an SDF graph plus its repetition vector into analytic
// statements about the storage/throughput trade-off, consumed by the DSE
// engines in src/buffer/:
//
//  * channel_floor     — the paper's per-channel minimal capacity,
//                        re-derived here so the LP layer is self-contained
//                        (property tests pin it against buffer/bounds).
//  * ThroughputCuts    — necessary conditions. Every directed cycle of the
//                        capacity-extended single-rate subgraph yields
//                        theta_target <= q_target * D(x) / (Sum_e * max_q),
//                        linear in the capacities x. Candidates whose cut
//                        bound cannot beat the incumbent are skipped before
//                        any simulation; cuts through exactly one capacity
//                        edge yield per-channel floors every deadlock-free
//                        distribution must satisfy.
//  * min_buffers_for_throughput
//                      — a sufficient condition. A strictly periodic
//                        schedule at period T = q_target / theta is encoded
//                        as an LP over start offsets and capacity slack;
//                        any feasible point is a real, achievable buffer
//                        distribution (the self-timed engine can only do
//                        better), which powers buffyd's quality=fast tier.
//
// The repetition vector is passed in as a plain vector<i64>: lp/ depends
// only on base/ and sdf/ (enforced by tools/layer_lint), so the caller
// (src/buffer/) runs the analysis and hands the counts down.
//
// Soundness fine print lives with the implementation and DESIGN.md §13;
// the derivations assume the state/ engine's semantics (space claimed at
// firing start, tokens consumed and space released at firing end, no
// auto-concurrency).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/checked_math.hpp"
#include "base/rational.hpp"
#include "lp/simplex.hpp"
#include "sdf/graph.hpp"
#include "sdf/ids.hpp"

namespace buffy::lp {

/// A structural defect the LP models must reject up front (instead of
/// dividing by zero or encoding an unsatisfiable row).
struct ModelDiagnostic {
  enum class Code : std::uint8_t {
    /// A self-loop whose initial tokens are below its consumption rate:
    /// the actor can never fire, the graph deadlocks at every capacity.
    DeadSelfLoop = 0,
  };
  Code code = Code::DeadSelfLoop;
  sdf::ChannelId channel{0};
  std::string message;
};

/// All model-layer diagnostics for the graph, in channel order; empty
/// means every LP model below is well-formed for this graph.
[[nodiscard]] std::vector<ModelDiagnostic> model_diagnostics(
    const sdf::Graph& graph);

/// The paper's per-channel minimal capacity below which the channel alone
/// deadlocks the graph (re-derivation of buffer/bounds.cpp; the property
/// suite pins the two against each other).
[[nodiscard]] i64 channel_floor(const sdf::Graph& graph, sdf::ChannelId c);

/// One cycle cut: theta_target <= q_target * D(x) / (exec_sum * max_q)
/// with D(x) = token_base + sum of x_c over `backward`. Cuts are derived
/// only from cycles with at least one backward (capacity) edge — cuts
/// without one bound the graph's unbounded-buffer throughput and can never
/// beat a simulated incumbent.
struct ThroughputCut {
  std::vector<sdf::ChannelId> backward;
  i64 token_base = 0;
  i64 exec_sum = 0;
  i64 max_q = 1;
};

/// Cycle cuts for one graph/target pair, valid for any capacities at or
/// above the channel floors.
class ThroughputCuts {
 public:
  /// Derives cuts from the directed cycles of the capacity-extended
  /// single-rate subgraph of the target's weakly connected component.
  /// `repetitions` is the repetition vector in actor-id order. At most
  /// max_cuts cuts are kept (shortest cycles first, deterministically).
  [[nodiscard]] static ThroughputCuts derive(const sdf::Graph& graph,
                                             const std::vector<i64>& repetitions,
                                             sdf::ActorId target,
                                             std::size_t max_cuts = 128);

  /// Least cut bound on the target's throughput at the given capacities
  /// (one entry per channel), clamped at zero; nullopt when no cut applies
  /// or the exact arithmetic would overflow (never guesses).
  [[nodiscard]] std::optional<Rational> upper_bound(
      std::span<const i64> caps) const noexcept;

  /// True when some cut proves the target's throughput at `caps` is
  /// <= threshold (< when strict). Overflow is conservative: false.
  [[nodiscard]] bool bounds_below(std::span<const i64> caps,
                                  const Rational& threshold,
                                  bool strict) const noexcept;

  /// Per-channel capacities (one entry per channel, 0 where no cut bites)
  /// that every distribution with non-zero target throughput must meet;
  /// derived from single-backward-edge cuts, so valid independently of the
  /// rest of the distribution.
  [[nodiscard]] const std::vector<i64>& necessary_floors() const noexcept {
    return floors_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return cuts_.size(); }
  [[nodiscard]] bool empty() const noexcept { return cuts_.empty(); }
  [[nodiscard]] const std::vector<ThroughputCut>& cuts() const noexcept {
    return cuts_;
  }

 private:
  i64 q_target_ = 1;
  std::vector<ThroughputCut> cuts_;
  std::vector<i64> floors_;
};

/// Result of the periodic-schedule sufficiency LP.
struct PeriodicSolveResult {
  Status status = Status::Infeasible;
  /// Integer capacities, one per channel, >= the channel floors; set when
  /// status == Optimal. Simulating them yields target throughput >= the
  /// requested one (the periodic schedule is a witness; self-timed
  /// execution dominates it).
  std::vector<i64> capacities;
  /// Simplex pivots spent.
  u64 pivots = 0;
};

/// Minimises total buffering subject to a strictly periodic schedule at
/// period T = q_target / throughput existing. `repetitions` is the
/// repetition vector in actor-id order; `floor_caps` the per-channel
/// minimal capacities (channel_floor, possibly raised by cut floors).
/// Requires throughput > 0. Returns Infeasible when no periodic schedule
/// meets the rate (the graph may still reach it self-timed: this is a
/// sufficient condition only) and when model_diagnostics is non-empty.
[[nodiscard]] PeriodicSolveResult min_buffers_for_throughput(
    const sdf::Graph& graph, const std::vector<i64>& repetitions,
    sdf::ActorId target, const Rational& throughput,
    const std::vector<i64>& floor_caps);

}  // namespace buffy::lp
