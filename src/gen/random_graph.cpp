#include "gen/random_graph.hpp"

#include <string>
#include <vector>

#include "base/diagnostics.hpp"
#include "base/rng.hpp"
#include "sdf/validate.hpp"

namespace buffy::gen {

namespace {

// True when `to` is reachable from `from` along existing channels.
bool reaches(const sdf::Graph& graph, sdf::ActorId from, sdf::ActorId to) {
  std::vector<bool> seen(graph.num_actors(), false);
  std::vector<std::size_t> stack{from.index()};
  seen[from.index()] = true;
  while (!stack.empty()) {
    const sdf::ActorId cur(stack.back());
    stack.pop_back();
    if (cur == to) return true;
    for (const sdf::ChannelId c : graph.out_channels(cur)) {
      const sdf::ActorId next = graph.channel(c).dst;
      if (!seen[next.index()]) {
        seen[next.index()] = true;
        stack.push_back(next.index());
      }
    }
  }
  return false;
}

}  // namespace

sdf::Graph random_graph(const RandomGraphOptions& options) {
  BUFFY_REQUIRE(options.num_actors >= 1, "need at least one actor");
  BUFFY_REQUIRE(options.max_repetition >= 1, "max_repetition must be >= 1");
  Rng rng(options.seed);

  // String names here are built via += throughout: GCC 12's -Wrestrict
  // emits a false positive (PR105651) for literal + to_string temporaries
  // once inlined at -O3.
  std::string graph_name = "random_";
  graph_name += std::to_string(options.seed);
  sdf::Graph graph(graph_name);
  std::vector<i64> q(options.num_actors);
  std::vector<sdf::ActorId> actors;
  for (std::size_t i = 0; i < options.num_actors; ++i) {
    q[i] = rng.uniform(1, options.max_repetition);
    std::string actor_name = "a";
    actor_name += std::to_string(i);
    actors.push_back(graph.add_actor(sdf::Actor{
        .name = std::move(actor_name),
        .execution_time = rng.uniform(1, options.max_execution_time),
    }));
  }

  i64 channel_seq = 0;
  const auto add_channel = [&](sdf::ActorId src, sdf::ActorId dst) {
    const i64 g = gcd(q[src.index()], q[dst.index()]);
    const i64 scale = rng.uniform(1, options.max_rate_scale);
    const i64 production = checked_mul(q[dst.index()] / g, scale);
    const i64 consumption = checked_mul(q[src.index()] / g, scale);
    // One full iteration's worth of input for the consumer whenever the
    // edge closes a cycle: every HSDF dependency derived from the edge then
    // carries at least one iteration of delay, so no token-free cycle can
    // arise and the graph stays live.
    i64 tokens = 0;
    if (src == dst || reaches(graph, dst, src)) {
      tokens = checked_mul(consumption, q[dst.index()]);
    }
    std::string name = "c";
    name += std::to_string(channel_seq++);
    std::string src_port = name;
    src_port += "_out";
    std::string dst_port = name;
    dst_port += "_in";
    graph.add_channel(sdf::Channel{
        .name = name,
        .src = src,
        .dst = dst,
        .production = production,
        .consumption = consumption,
        .initial_tokens = tokens,
        .src_port = std::move(src_port),
        .dst_port = std::move(dst_port),
    });
  };

  if (options.strongly_connected) {
    // Ring backbone: a_0 -> a_1 -> ... -> a_{n-1} -> a_0; the closing edge
    // receives an iteration of tokens via the cycle rule in add_channel.
    for (std::size_t i = 0; i < options.num_actors; ++i) {
      add_channel(actors[i], actors[(i + 1) % options.num_actors]);
    }
  } else {
    // Spanning tree: each actor beyond the first connects to an earlier
    // one, in a random direction (forward only for acyclic graphs).
    for (std::size_t i = 1; i < options.num_actors; ++i) {
      const std::size_t j = rng.index(i);
      const bool forward = options.allow_cycles ? rng.chance(0.5) : true;
      if (forward) {
        add_channel(actors[j], actors[i]);
      } else {
        add_channel(actors[i], actors[j]);
      }
    }
  }

  const auto extra = static_cast<std::size_t>(
      options.extra_edge_fraction * static_cast<double>(options.num_actors));
  for (std::size_t e = 0; e < extra; ++e) {
    const std::size_t u = rng.index(options.num_actors);
    std::size_t v = rng.index(options.num_actors);
    if (!options.allow_cycles) {
      if (u == v) continue;
      // Keep the graph acyclic: only edges from lower to higher index are
      // added (the spanning tree used the same orientation).
      const auto [lo, hi] = std::minmax(u, v);
      add_channel(actors[lo], actors[hi]);
      continue;
    }
    add_channel(actors[u], actors[v]);
  }

  sdf::validate(graph);
  return graph;
}

}  // namespace buffy::gen
