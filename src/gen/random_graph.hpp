// Random consistent SDF graph generation (the SDF3 tool family ships a
// similar generator; here it powers the property-test sweeps and stress
// benches).
//
// Construction is repetition-vector-first: the vector q is drawn, then every
// channel's rates are derived from q so the balance equations hold by
// construction. Edges that close a directed cycle receive one iteration's
// worth of initial tokens for the consumer, which guarantees the graph is
// deadlock-free under unbounded buffers.
#pragma once

#include "base/checked_math.hpp"
#include "sdf/graph.hpp"

namespace buffy::gen {

/// Parameters of a random graph draw.
struct RandomGraphOptions {
  std::size_t num_actors = 5;
  /// Repetition-vector entries are drawn uniformly from [1, max_repetition].
  i64 max_repetition = 4;
  /// Execution times are drawn uniformly from [1, max_execution_time].
  i64 max_execution_time = 5;
  /// Rate scale factor drawn from [1, max_rate_scale] per channel
  /// (multiplies both port rates, preserving consistency).
  i64 max_rate_scale = 2;
  /// Extra channels beyond the spanning tree, as a fraction of num_actors.
  double extra_edge_fraction = 0.6;
  /// When false, only forward edges are added (the graph is acyclic).
  bool allow_cycles = true;
  /// When true, the backbone is a directed ring (tokens on the wrap edge),
  /// making the graph strongly connected; self-timed execution is then
  /// eventually periodic even with unbounded buffers. Implies allow_cycles.
  bool strongly_connected = false;
  u64 seed = 1;
};

/// Draws a graph; always consistent, weakly connected, and deadlock-free
/// under unbounded buffers.
[[nodiscard]] sdf::Graph random_graph(const RandomGraphOptions& options);

}  // namespace buffy::gen
