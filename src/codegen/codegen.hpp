// Generation of the specialised exploration program (paper Sec. 10, Fig. 8).
//
// The buffy tool of the paper does not interpret the graph at exploration
// time: it emits a C++ program whose execSDFgraph() has the firing rules of
// each actor unrolled into straight-line checks (CHECK_TOKENS / CHECK_SPACE
// / CONSUME / PRODUCE directives). This module reproduces that program
// generator; the emitted source is self-contained C++17 and computes the
// throughput of the target actor for a storage distribution given on the
// command line (defaulting to the per-channel lower bounds).
//
// A second generator emits the lane-parallel twin (DESIGN.md §15): the
// same graph specialised into a structure-of-arrays explorer that steps
// `lanes` candidate distributions in lockstep with whole-word masks —
// constant-folded rates, flattened channel rows, unrolled actor loops —
// and batch-evaluates whole same-size waves in `--dse` mode. Its stdout is
// byte-identical to the scalar explorer's in both modes; the differential
// test in tests/test_codegen.cpp compiles both and compares.
#pragma once

#include <cstddef>
#include <string>

#include "sdf/graph.hpp"

namespace buffy::codegen {

/// \brief Returns the full source text of the specialised exploration
/// program (scalar, paper Fig. 8 style).
///
/// \param graph  The SDF graph to specialise the program for.
/// \param target The actor whose firing rate the program measures.
/// \return Self-contained C++17 source; build with `c++ -std=c++17`.
/// \throws Error when \p target is not an actor of \p graph.
[[nodiscard]] std::string generate_explorer_source(const sdf::Graph& graph,
                                                   sdf::ActorId target);

/// \brief Writes the scalar explorer source to a file.
/// \throws Error on IO failure or an invalid \p target.
void write_explorer_source(const sdf::Graph& graph, sdf::ActorId target,
                           const std::string& path);

/// \brief Returns the source text of the lane-parallel (vectorized)
/// exploration program.
///
/// The emitted program holds the state of `lanes` simultaneous executions
/// in structure-of-arrays rows (`laneClk[kActors][kLanes]`, flattened
/// channel arrays) and advances them in lockstep with whole-word lane
/// masks, retiring each lane the moment its cycle closes or deadlock is
/// proven and refilling it from the candidate queue — the generated twin
/// of the runtime lane kernel (DESIGN.md §15). Rates and execution times
/// are constant-folded into unrolled per-actor lane loops that the
/// compiler can auto-vectorize. In `--dse` mode the frontier is popped
/// one whole same-size wave at a time and batch-evaluated, folding
/// results in pop order, so stdout is byte-identical to the scalar
/// explorer emitted by generate_explorer_source() at every lane width.
///
/// \param graph  The SDF graph to specialise the program for.
/// \param target The actor whose firing rate the program measures.
/// \param lanes  Lockstep lane count baked in as `constexpr kLanes`;
///               clamped range [1, 64].
/// \return Self-contained C++17 source; build with `c++ -std=c++17`.
/// \throws Error when \p target is invalid or \p lanes is out of range.
[[nodiscard]] std::string generate_vectorized_explorer_source(
    const sdf::Graph& graph, sdf::ActorId target, std::size_t lanes);

/// \brief Writes the vectorized explorer source to a file.
/// \throws Error on IO failure, an invalid \p target, or out-of-range
/// \p lanes.
void write_vectorized_explorer_source(const sdf::Graph& graph,
                                      sdf::ActorId target, std::size_t lanes,
                                      const std::string& path);

}  // namespace buffy::codegen
