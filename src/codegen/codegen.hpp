// Generation of the specialised exploration program (paper Sec. 10, Fig. 8).
//
// The buffy tool of the paper does not interpret the graph at exploration
// time: it emits a C++ program whose execSDFgraph() has the firing rules of
// each actor unrolled into straight-line checks (CHECK_TOKENS / CHECK_SPACE
// / CONSUME / PRODUCE directives). This module reproduces that program
// generator; the emitted source is self-contained C++17 and computes the
// throughput of the target actor for a storage distribution given on the
// command line (defaulting to the per-channel lower bounds).
//
// A second generator emits the lane-parallel twin (DESIGN.md §15): the
// same graph specialised into a structure-of-arrays explorer that steps
// `lanes` candidate distributions in lockstep with whole-word masks —
// constant-folded rates, flattened channel rows, unrolled actor loops —
// and batch-evaluates whole same-size waves in `--dse` mode. Its stdout is
// byte-identical to the scalar explorer's in both modes; the differential
// test in tests/test_codegen.cpp compiles both and compares.
//
// A third pair consumes a static magnitude certificate (DESIGN.md §16):
// the checked scalar explorer guards every token/occupancy/time update
// with overflow checks and clamps its exploration to the certified
// storage budget, while the statically-narrow vectorized explorer runs
// the same clamped exploration on 32-bit lane rows with no per-step
// checks at all — the certificate's envelopes prove they cannot fire.
// The two programs print byte-identical output; the differential test
// pins narrow-without-checks against checked-with-guards, so a wrong
// certificate shows up as either a diff or a guarded abort.
#pragma once

#include <cstddef>
#include <string>

#include "analysis/bounds.hpp"
#include "sdf/graph.hpp"

namespace buffy::codegen {

/// \brief Returns the full source text of the specialised exploration
/// program (scalar, paper Fig. 8 style).
///
/// \param graph  The SDF graph to specialise the program for.
/// \param target The actor whose firing rate the program measures.
/// \return Self-contained C++17 source; build with `c++ -std=c++17`.
/// \throws Error when \p target is not an actor of \p graph.
[[nodiscard]] std::string generate_explorer_source(const sdf::Graph& graph,
                                                   sdf::ActorId target);

/// \brief Writes the scalar explorer source to a file.
/// \throws Error on IO failure or an invalid \p target.
void write_explorer_source(const sdf::Graph& graph, sdf::ActorId target,
                           const std::string& path);

/// \brief Returns the source text of the lane-parallel (vectorized)
/// exploration program.
///
/// The emitted program holds the state of `lanes` simultaneous executions
/// in structure-of-arrays rows (`laneClk[kActors][kLanes]`, flattened
/// channel arrays) and advances them in lockstep with whole-word lane
/// masks, retiring each lane the moment its cycle closes or deadlock is
/// proven and refilling it from the candidate queue — the generated twin
/// of the runtime lane kernel (DESIGN.md §15). Rates and execution times
/// are constant-folded into unrolled per-actor lane loops that the
/// compiler can auto-vectorize. In `--dse` mode the frontier is popped
/// one whole same-size wave at a time and batch-evaluated, folding
/// results in pop order, so stdout is byte-identical to the scalar
/// explorer emitted by generate_explorer_source() at every lane width.
///
/// \param graph  The SDF graph to specialise the program for.
/// \param target The actor whose firing rate the program measures.
/// \param lanes  Lockstep lane count baked in as `constexpr kLanes`;
///               clamped range [1, 64].
/// \return Self-contained C++17 source; build with `c++ -std=c++17`.
/// \throws Error when \p target is invalid or \p lanes is out of range.
[[nodiscard]] std::string generate_vectorized_explorer_source(
    const sdf::Graph& graph, sdf::ActorId target, std::size_t lanes);

/// \brief Writes the vectorized explorer source to a file.
/// \throws Error on IO failure, an invalid \p target, or out-of-range
/// \p lanes.
void write_vectorized_explorer_source(const sdf::Graph& graph,
                                      sdf::ActorId target, std::size_t lanes,
                                      const std::string& path);

/// \brief Returns the overflow-checked scalar explorer: the Fig. 8
/// program with every token, occupancy and timestamp update routed
/// through __builtin overflow guards (aborting with an "overflow"
/// diagnostic if one fires) and its exploration clamped to the
/// certificate's storage budget — the doubling estimation saturates at
/// the budget and children beyond it are never enqueued. This is the
/// reference half of the narrow differential: its stdout is
/// byte-identical to generate_narrow_explorer_source()'s program on the
/// same certificate, and a violated envelope aborts loudly instead of
/// wrapping silently.
///
/// \throws Error when \p target is invalid or \p certificate does not
/// match \p graph (shape, consistency, one budget entry per channel).
[[nodiscard]] std::string generate_checked_explorer_source(
    const sdf::Graph& graph, sdf::ActorId target,
    const analysis::BoundsCertificate& certificate);

/// \brief Writes the checked scalar explorer source to a file.
void write_checked_explorer_source(const sdf::Graph& graph,
                                   sdf::ActorId target,
                                   const analysis::BoundsCertificate& cert,
                                   const std::string& path);

/// \brief Returns the statically-narrow vectorized explorer: the
/// lane-parallel program specialised to 32-bit lane rows with no
/// per-step overflow checks — the certificate proves every rate,
/// execution time, capacity and per-step sum stays far inside i32, so
/// the checks are elided at generation time rather than at run time.
/// Exploration is clamped to the certified budget exactly like the
/// checked scalar program, keeping the pair byte-identical on stdout.
/// Absolute timestamps stay 64-bit (they are bounded by the step
/// horizon, not the budget).
///
/// \throws Error when \p target or \p lanes is invalid, or the
/// certificate does not match the graph, is inexact (!fits_i64), or its
/// magnitude_bound exceeds the narrow kernel limit
/// (state::kNarrowLimit).
[[nodiscard]] std::string generate_narrow_explorer_source(
    const sdf::Graph& graph, sdf::ActorId target, std::size_t lanes,
    const analysis::BoundsCertificate& certificate);

/// \brief Writes the narrow vectorized explorer source to a file.
void write_narrow_explorer_source(const sdf::Graph& graph, sdf::ActorId target,
                                  std::size_t lanes,
                                  const analysis::BoundsCertificate& cert,
                                  const std::string& path);

}  // namespace buffy::codegen
