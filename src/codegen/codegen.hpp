// Generation of the specialised exploration program (paper Sec. 10, Fig. 8).
//
// The buffy tool of the paper does not interpret the graph at exploration
// time: it emits a C++ program whose execSDFgraph() has the firing rules of
// each actor unrolled into straight-line checks (CHECK_TOKENS / CHECK_SPACE
// / CONSUME / PRODUCE directives). This module reproduces that program
// generator; the emitted source is self-contained C++17 and computes the
// throughput of the target actor for a storage distribution given on the
// command line (defaulting to the per-channel lower bounds).
#pragma once

#include <string>

#include "sdf/graph.hpp"

namespace buffy::codegen {

/// Returns the full source text of the specialised exploration program.
[[nodiscard]] std::string generate_explorer_source(const sdf::Graph& graph,
                                                   sdf::ActorId target);

/// Writes the source to a file; throws Error on IO failure.
void write_explorer_source(const sdf::Graph& graph, sdf::ActorId target,
                           const std::string& path);

}  // namespace buffy::codegen
