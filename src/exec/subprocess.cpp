#include "exec/subprocess.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "base/diagnostics.hpp"

namespace buffy::exec {

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)) {}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  pid_ = std::exchange(other.pid_, -1);
  return *this;
}

Subprocess Subprocess::spawn(const std::vector<std::string>& argv) {
  BUFFY_REQUIRE(!argv.empty(), "spawn needs at least argv[0]");
  std::vector<char*> args;
  args.reserve(argv.size() + 1);
  for (const std::string& a : argv) args.push_back(const_cast<char*>(a.c_str()));
  args.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw Error(std::string("fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: drop every inherited descriptor above stderr (listening
    // sockets, sibling connections), reset the signal mask the parent may
    // have blocked for its own sigwait loop, then exec.
    const long max_fd = ::sysconf(_SC_OPEN_MAX);
    for (int fd = 3; fd < (max_fd > 0 ? static_cast<int>(max_fd) : 1024);
         ++fd) {
      ::close(fd);
    }
    sigset_t none;
    sigemptyset(&none);
    pthread_sigmask(SIG_SETMASK, &none, nullptr);
    ::execvp(args[0], args.data());
    ::_exit(127);
  }
  return Subprocess(pid);
}

std::optional<int> Subprocess::try_wait() {
  if (pid_ <= 0) return std::nullopt;
  int status = 0;
  const pid_t reaped = ::waitpid(pid_, &status, WNOHANG);
  if (reaped == pid_) {
    pid_ = -1;
    return status;
  }
  return std::nullopt;
}

int Subprocess::wait() {
  if (pid_ <= 0) return 0;
  int status = 0;
  while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
  }
  pid_ = -1;
  return status;
}

void Subprocess::kill(int sig) const {
  if (pid_ > 0) ::kill(pid_, sig);
}

}  // namespace buffy::exec
