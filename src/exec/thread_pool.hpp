// Work-stealing thread pool (DESIGN.md, exec/).
//
// N workers, each with its own double-ended task queue. A worker pops from
// the back of its own queue (LIFO: hot caches, bounded memory on recursive
// fan-out) and, when empty, steals from the front of a sibling's queue
// (FIFO: steals the oldest — typically largest — piece of work). External
// submissions round-robin across the worker queues. The pool never spins:
// idle workers sleep on a condition variable and are woken per submission.
//
// Tasks are plain `void()` callables; composition (waiting, results,
// exceptions) lives in parallel.hpp, which is the interface the engines
// use. Task exceptions never escape a worker thread — they are captured
// into the submitting wait-group (see parallel.hpp) — so a throwing task
// cannot terminate the process.
//
// A ThreadPool with zero workers is valid and means "caller runs inline";
// parallel.hpp uses it to keep one code path for the sequential case.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/checked_math.hpp"

namespace buffy::exec {

/// Work-stealing pool; see file comment.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = inline execution; see file comment).
  explicit ThreadPool(unsigned threads);

  /// Drains nothing: outstanding tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Begins shutdown: outstanding tasks complete, workers join. Idempotent;
  /// the destructor calls it. After stop() the pool is still a valid
  /// object — submit() runs tasks inline (see below) — which makes the
  /// shutdown window well-defined instead of a race.
  void stop();

  /// Enqueues a task. The task must not block waiting for another pool
  /// task (the pool does not grow); fan-out/fan-in belongs in
  /// parallel.hpp. With zero workers — or once shutdown has begun — the
  /// task runs inline, here: enqueueing after the workers decided to exit
  /// would drop the task and hang any WaitGroup counting on it.
  void submit(std::function<void()> task);

  [[nodiscard]] unsigned num_workers() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// A sensible worker count for this machine: hardware concurrency,
  /// falling back to 1 when unknown.
  [[nodiscard]] static unsigned default_concurrency();

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  [[nodiscard]] bool try_pop(std::size_t self, std::function<void()>& task);

  std::vector<std::unique_ptr<Queue>> queues_;  // one per worker
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::size_t next_queue_ = 0;  // round-robin cursor for submissions
  std::size_t pending_ = 0;     // queued, not-yet-popped tasks
  bool stopping_ = false;       // all three guarded by sleep_mutex_
};

}  // namespace buffy::exec
