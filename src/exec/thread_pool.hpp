// Work-stealing thread pool (DESIGN.md, exec/).
//
// N workers, each with its own double-ended task queue. A worker pops from
// the back of its own queue (LIFO: hot caches, bounded memory on recursive
// fan-out) and, when empty, steals from the front of a sibling's queue
// (FIFO: steals the oldest — typically largest — piece of work). External
// submissions round-robin across the worker queues. The pool never spins:
// idle workers sleep on a condition variable and are woken per submission.
//
// Tasks are plain `void()` callables; composition (waiting, results,
// exceptions) lives in parallel.hpp, which is the interface the engines
// use. Task exceptions never escape a worker thread — they are captured
// into the submitting wait-group (see parallel.hpp) — so a throwing task
// cannot terminate the process.
//
// A ThreadPool with zero workers is valid and means "caller runs inline";
// parallel.hpp uses it to keep one code path for the sequential case.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "base/checked_math.hpp"

namespace buffy::exec {

/// Work-stealing pool; see file comment.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = inline execution; see file comment).
  explicit ThreadPool(unsigned threads);

  /// Drains nothing: outstanding tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Begins shutdown: outstanding tasks complete, workers join. Idempotent;
  /// the destructor calls it. After stop() the pool is still a valid
  /// object — submit() runs tasks inline (see below) — which makes the
  /// shutdown window well-defined instead of a race.
  void stop();

  /// Enqueues a task. The task must not block waiting for another pool
  /// task (the pool does not grow); fan-out/fan-in belongs in
  /// parallel.hpp. With zero workers — or once shutdown has begun — the
  /// task runs inline, here: enqueueing after the workers decided to exit
  /// would drop the task and hang any WaitGroup counting on it.
  void submit(std::function<void()> task);

  [[nodiscard]] unsigned num_workers() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Slot index of the calling thread with respect to THIS pool: worker
  /// threads occupy [0, num_workers()), every other thread — including the
  /// submitter when a task runs inline — maps to num_workers(). Stable for
  /// the lifetime of a worker, so callers can key per-thread scratch state
  /// (solver leases, cache deltas) by slot without any locking: a slot is
  /// only ever touched by one thread at a time.
  [[nodiscard]] unsigned current_slot() const;

  /// Number of distinct values current_slot() can return: the workers plus
  /// one shared slot for all non-worker threads.
  [[nodiscard]] unsigned num_slots() const { return num_workers() + 1; }

  /// A sensible worker count for this machine: hardware concurrency,
  /// falling back to 1 when unknown.
  [[nodiscard]] static unsigned default_concurrency();

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  [[nodiscard]] bool try_pop(std::size_t self, std::function<void()>& task);

  std::vector<std::unique_ptr<Queue>> queues_;  // one per worker
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::size_t next_queue_ = 0;  // round-robin cursor for submissions
  std::size_t pending_ = 0;     // queued, not-yet-popped tasks
  bool stopping_ = false;       // all three guarded by sleep_mutex_
};

/// A ThreadPool whose workers are spawned on first use instead of at
/// construction. Spawning N threads costs hundreds of microseconds — more
/// than an entire small exploration — so an engine that MIGHT go parallel
/// must not pay for workers it never dispatches to. The engines construct
/// a LazyThreadPool up front, size their per-slot state from num_slots(),
/// and only call pool() once a wave is estimated expensive enough to fan
/// out (DESIGN.md §14).
///
/// Not thread-safe: pool() must be called from the owning (coordinator)
/// thread before the reference is shared with workers. With a configured
/// count of 0 or 1 the pool never spawns anything and pool() returns an
/// inline-executing zero-worker pool.
class LazyThreadPool {
 public:
  /// `threads` as the engines receive it: <= 1 means sequential.
  explicit LazyThreadPool(unsigned threads)
      : workers_(threads > 1 ? threads : 0) {}

  /// The real pool; first call spawns the workers (when configured > 1).
  [[nodiscard]] ThreadPool& pool() {
    if (!pool_.has_value()) pool_.emplace(workers_);
    return *pool_;
  }

  /// True once pool() has spawned the workers.
  [[nodiscard]] bool started() const { return pool_.has_value(); }

  /// Workers the pool will have once started (0 = inline-only).
  [[nodiscard]] unsigned configured_workers() const { return workers_; }

  /// Slot count matching ThreadPool::num_slots() of the eventual pool:
  /// callers may size slot-indexed state before any worker exists.
  [[nodiscard]] unsigned num_slots() const { return workers_ + 1; }

  /// The slot a non-worker thread (the coordinator running a sequential
  /// wave inline) occupies; equals ThreadPool::current_slot() off-pool.
  [[nodiscard]] unsigned caller_slot() const { return workers_; }

 private:
  unsigned workers_;
  std::optional<ThreadPool> pool_;
};

}  // namespace buffy::exec
