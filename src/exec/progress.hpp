// Counter metrics for long-running explorations (DESIGN.md, exec/).
//
// A Progress is a thread-safe sink of monotonic counters that the engines
// bump as they work: storage distributions whose throughput was computed,
// reduced states stored across all runs, candidates pruned by a bound
// (constraint ceilings, size limits, divide-and-conquer interval
// collapses), Pareto points emitted and evaluation waves completed. A
// consistent point-in-time copy is taken with snapshot(); the snapshot
// renders itself as a single JSON object for machine consumption
// (explore_cli --stats, bench_parallel_dse).
//
// Counters use relaxed atomics: they steer no control flow, so the only
// requirement is that concurrent bumps are not lost.
#pragma once

#include <atomic>
#include <chrono>
#include <string>

#include "base/checked_math.hpp"

namespace buffy::exec {

/// Point-in-time copy of a Progress sink's counters.
struct ProgressSnapshot {
  /// Storage distributions whose throughput was computed.
  u64 points_explored = 0;
  /// Reduced states stored, summed over every state-space run.
  u64 states_visited = 0;
  /// Candidates discarded by a bound before evaluation (constraint
  /// ceilings, max_distribution_size, collapsed size intervals).
  u64 pruned_by_bound = 0;
  /// Pareto points emitted so far.
  u64 pareto_points = 0;
  /// Evaluation waves (batches) completed by the incremental engine.
  u64 waves = 0;
  /// Full state-space simulations executed (one per throughput run).
  u64 simulations = 0;
  /// Candidates answered from the cross-distribution cache (exact repeat).
  u64 cache_hits = 0;
  /// Candidates answered by Sec. 8 monotone dominance without simulation.
  u64 dominance_skips = 0;
  /// Candidates or subtree envelopes answered by an LP cycle-cut bound
  /// without simulation (DESIGN.md §13).
  u64 lp_prunes = 0;
  /// Simulations the hot-path machinery avoided relative to the one-run-
  /// per-candidate baseline: cache hits, dominance skips, LP cut answers
  /// and storage-dependency collections fused into the throughput run.
  u64 sims_avoided = 0;
  /// Peak footprint of any visited-state arena, in bytes.
  u64 arena_bytes = 0;
  /// Trace events recorded by an attached trace::Collector (0 when the
  /// run was not traced; wired up by the caller that owns the collector).
  u64 trace_events = 0;
  /// Wall-clock seconds since the sink was created (or last reset).
  double seconds = 0.0;
  /// True when the exploration stopped on a deadline or explicit cancel.
  bool cancelled = false;

  /// One JSON object, keys as named above; suitable for log scraping.
  [[nodiscard]] std::string json() const;
};

/// Thread-safe sink of the counters above; see file comment.
class Progress {
 public:
  Progress();

  void add_points(u64 n) { add(points_explored_, n); }
  void add_states(u64 n) { add(states_visited_, n); }
  void add_pruned(u64 n) { add(pruned_by_bound_, n); }
  void add_pareto_points(u64 n) { add(pareto_points_, n); }
  void add_wave() { add(waves_, 1); }
  void add_simulations(u64 n) { add(simulations_, n); }
  void add_cache_hits(u64 n) { add(cache_hits_, n); }
  void add_dominance_skips(u64 n) { add(dominance_skips_, n); }
  void add_lp_prunes(u64 n) { add(lp_prunes_, n); }
  void add_sims_avoided(u64 n) { add(sims_avoided_, n); }
  void add_trace_events(u64 n) { add(trace_events_, n); }
  /// Raises the peak-arena-bytes gauge to at least `bytes`.
  void note_arena_bytes(u64 bytes) {
    u64 seen = arena_bytes_.v.load(std::memory_order_relaxed);
    while (bytes > seen && !arena_bytes_.v.compare_exchange_weak(
                               seen, bytes, std::memory_order_relaxed)) {
    }
  }
  void mark_cancelled() { cancelled_.v.store(1, std::memory_order_relaxed); }

  /// Consistent-enough copy for reporting (individual counters are exact;
  /// cross-counter skew is bounded by whatever is in flight).
  [[nodiscard]] ProgressSnapshot snapshot() const;

  /// Zeroes every counter and restarts the wall clock.
  void reset();

 private:
  /// One counter per cache line. Every worker of a parallel wave bumps
  /// several of these on every candidate; packed adjacently (the previous
  /// layout) they false-share, and the resulting coherence traffic is paid
  /// on the DSE hot path. The alignas(64) keeps each atomic alone on its
  /// line — do not repack these into an array or struct without preserving
  /// per-counter line isolation.
  struct alignas(64) Counter {
    std::atomic<u64> v{0};
  };

  static void add(Counter& counter, u64 n) {
    counter.v.fetch_add(n, std::memory_order_relaxed);
  }

  Counter points_explored_;
  Counter states_visited_;
  Counter pruned_by_bound_;
  Counter pareto_points_;
  Counter waves_;
  Counter simulations_;
  Counter cache_hits_;
  Counter dominance_skips_;
  Counter lp_prunes_;
  Counter sims_avoided_;
  Counter arena_bytes_;
  Counter trace_events_;
  Counter cancelled_;  // 0 or 1; same padding discipline as the counters
  std::chrono::steady_clock::time_point start_;
};

}  // namespace buffy::exec
