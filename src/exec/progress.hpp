// Counter metrics for long-running explorations (DESIGN.md, exec/).
//
// A Progress is a thread-safe sink of monotonic counters that the engines
// bump as they work: storage distributions whose throughput was computed,
// reduced states stored across all runs, candidates pruned by a bound
// (constraint ceilings, size limits, divide-and-conquer interval
// collapses), Pareto points emitted and evaluation waves completed. A
// consistent point-in-time copy is taken with snapshot(); the snapshot
// renders itself as a single JSON object for machine consumption
// (explore_cli --stats, bench_parallel_dse).
//
// Counters use relaxed atomics: they steer no control flow, so the only
// requirement is that concurrent bumps are not lost.
#pragma once

#include <atomic>
#include <chrono>
#include <string>

#include "base/checked_math.hpp"

namespace buffy::exec {

/// Point-in-time copy of a Progress sink's counters.
struct ProgressSnapshot {
  /// Storage distributions whose throughput was computed.
  u64 points_explored = 0;
  /// Reduced states stored, summed over every state-space run.
  u64 states_visited = 0;
  /// Candidates discarded by a bound before evaluation (constraint
  /// ceilings, max_distribution_size, collapsed size intervals).
  u64 pruned_by_bound = 0;
  /// Pareto points emitted so far.
  u64 pareto_points = 0;
  /// Evaluation waves (batches) completed by the incremental engine.
  u64 waves = 0;
  /// Wall-clock seconds since the sink was created (or last reset).
  double seconds = 0.0;
  /// True when the exploration stopped on a deadline or explicit cancel.
  bool cancelled = false;

  /// One JSON object, keys as named above; suitable for log scraping.
  [[nodiscard]] std::string json() const;
};

/// Thread-safe sink of the counters above; see file comment.
class Progress {
 public:
  Progress();

  void add_points(u64 n) { add(points_explored_, n); }
  void add_states(u64 n) { add(states_visited_, n); }
  void add_pruned(u64 n) { add(pruned_by_bound_, n); }
  void add_pareto_points(u64 n) { add(pareto_points_, n); }
  void add_wave() { add(waves_, 1); }
  void mark_cancelled() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Consistent-enough copy for reporting (individual counters are exact;
  /// cross-counter skew is bounded by whatever is in flight).
  [[nodiscard]] ProgressSnapshot snapshot() const;

  /// Zeroes every counter and restarts the wall clock.
  void reset();

 private:
  static void add(std::atomic<u64>& counter, u64 n) {
    counter.fetch_add(n, std::memory_order_relaxed);
  }

  std::atomic<u64> points_explored_{0};
  std::atomic<u64> states_visited_{0};
  std::atomic<u64> pruned_by_bound_{0};
  std::atomic<u64> pareto_points_{0};
  std::atomic<u64> waves_{0};
  std::atomic<bool> cancelled_{false};
  std::chrono::steady_clock::time_point start_;
};

}  // namespace buffy::exec
