#include "exec/cancellation.hpp"

#include <atomic>
#include <optional>

namespace buffy::exec {

struct CancellationToken::State {
  std::atomic<bool> flag{false};
  std::optional<std::chrono::steady_clock::time_point> deadline;
  std::shared_ptr<State> parent;  // cancelled when any ancestor is

  [[nodiscard]] bool cancelled() const {
    for (const State* s = this; s != nullptr; s = s->parent.get()) {
      // Acquire pairs with the release in cancel(): a worker that observes
      // the flag also observes everything the cancelling thread wrote
      // before cancelling (e.g. the partial results it expects the worker
      // to stop touching). `deadline`/`parent` are immutable after
      // construction, so shared_ptr publication alone covers them.
      if (s->flag.load(std::memory_order_acquire)) return true;
      if (s->deadline.has_value() &&
          std::chrono::steady_clock::now() >= *s->deadline) {
        return true;
      }
    }
    return false;
  }
};

CancellationToken CancellationToken::cancellable() {
  return CancellationToken(std::make_shared<State>());
}

CancellationToken CancellationToken::with_deadline(i64 ms) const {
  auto state = std::make_shared<State>();
  state->deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  state->parent = state_;
  return CancellationToken(std::move(state));
}

void CancellationToken::cancel() const {
  // Release pairs with the acquire load in State::cancelled() — see there.
  // The flag lives in shared State kept alive by every token copy, so
  // cancelling (or polling) remains valid even while a ThreadPool that ran
  // the cancelled work is mid-destruction or already gone.
  if (state_ != nullptr) state_->flag.store(true, std::memory_order_release);
}

bool CancellationToken::cancelled() const {
  return state_ != nullptr && state_->cancelled();
}

}  // namespace buffy::exec
