#include "exec/progress.hpp"

#include <cstdio>

namespace buffy::exec {

std::string ProgressSnapshot::json() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "{\"points_explored\": %llu, \"states_visited\": %llu, "
      "\"pruned_by_bound\": %llu, \"pareto_points\": %llu, \"waves\": %llu, "
      "\"simulations\": %llu, \"cache_hits\": %llu, "
      "\"dominance_skips\": %llu, \"lp_prunes\": %llu, "
      "\"sims_avoided\": %llu, "
      "\"arena_bytes\": %llu, \"trace_events\": %llu, "
      "\"seconds\": %.6f, \"cancelled\": %s}",
      static_cast<unsigned long long>(points_explored),
      static_cast<unsigned long long>(states_visited),
      static_cast<unsigned long long>(pruned_by_bound),
      static_cast<unsigned long long>(pareto_points),
      static_cast<unsigned long long>(waves),
      static_cast<unsigned long long>(simulations),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(dominance_skips),
      static_cast<unsigned long long>(lp_prunes),
      static_cast<unsigned long long>(sims_avoided),
      static_cast<unsigned long long>(arena_bytes),
      static_cast<unsigned long long>(trace_events), seconds,
      cancelled ? "true" : "false");
  return buf;
}

Progress::Progress() : start_(std::chrono::steady_clock::now()) {}

ProgressSnapshot Progress::snapshot() const {
  ProgressSnapshot s;
  s.points_explored = points_explored_.v.load(std::memory_order_relaxed);
  s.states_visited = states_visited_.v.load(std::memory_order_relaxed);
  s.pruned_by_bound = pruned_by_bound_.v.load(std::memory_order_relaxed);
  s.pareto_points = pareto_points_.v.load(std::memory_order_relaxed);
  s.waves = waves_.v.load(std::memory_order_relaxed);
  s.simulations = simulations_.v.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.v.load(std::memory_order_relaxed);
  s.dominance_skips = dominance_skips_.v.load(std::memory_order_relaxed);
  s.lp_prunes = lp_prunes_.v.load(std::memory_order_relaxed);
  s.sims_avoided = sims_avoided_.v.load(std::memory_order_relaxed);
  s.arena_bytes = arena_bytes_.v.load(std::memory_order_relaxed);
  s.trace_events = trace_events_.v.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.v.load(std::memory_order_relaxed) != 0;
  s.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  return s;
}

void Progress::reset() {
  points_explored_.v.store(0, std::memory_order_relaxed);
  states_visited_.v.store(0, std::memory_order_relaxed);
  pruned_by_bound_.v.store(0, std::memory_order_relaxed);
  pareto_points_.v.store(0, std::memory_order_relaxed);
  waves_.v.store(0, std::memory_order_relaxed);
  simulations_.v.store(0, std::memory_order_relaxed);
  cache_hits_.v.store(0, std::memory_order_relaxed);
  dominance_skips_.v.store(0, std::memory_order_relaxed);
  lp_prunes_.v.store(0, std::memory_order_relaxed);
  sims_avoided_.v.store(0, std::memory_order_relaxed);
  arena_bytes_.v.store(0, std::memory_order_relaxed);
  trace_events_.v.store(0, std::memory_order_relaxed);
  cancelled_.v.store(0, std::memory_order_relaxed);
  start_ = std::chrono::steady_clock::now();
}

}  // namespace buffy::exec
