#include "exec/thread_pool.hpp"

namespace buffy::exec {

namespace {

// Which pool (if any) the current thread is a worker of, and its slot
// there. Written once at worker_loop entry, read by current_slot(); a
// thread can only ever be a worker of one pool, so a single pair is
// enough, and threads that are workers of a DIFFERENT pool fall through
// to the shared non-worker slot of the queried pool.
struct WorkerIdentity {
  const void* pool = nullptr;
  unsigned slot = 0;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  queues_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i]() { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { stop(); }

void ThreadPool::stop() {
  {
    std::lock_guard lock(sleep_mutex_);
    if (stopping_) return;  // idempotent: second caller has nothing to join
    stopping_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // inline mode: the caller is the worker
    return;
  }
  std::size_t target;
  {
    std::lock_guard lock(sleep_mutex_);
    if (stopping_) {
      // Shutdown has begun: a worker that already observed
      // `pending_ == 0 && stopping_` will never re-check its queue, so a
      // task enqueued now could be dropped without running and a WaitGroup
      // counting on it would hang. Running it inline (outside the lock,
      // below) keeps submit() lossless through the whole shutdown window
      // and preserves the invariant that pending_ never grows once
      // stopping_ is set.
      target = queues_.size();
    } else {
      target = next_queue_;
      next_queue_ = (next_queue_ + 1) % queues_.size();
      ++pending_;
    }
  }
  if (target == queues_.size()) {
    task();
    return;
  }
  {
    std::lock_guard lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  sleep_cv_.notify_one();
}

unsigned ThreadPool::current_slot() const {
  if (tls_worker.pool == this) return tls_worker.slot;
  return num_workers();
}

unsigned ThreadPool::default_concurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& task) {
  // Own queue first, newest task (LIFO)...
  {
    Queue& q = *queues_[self];
    std::lock_guard lock(q.mutex);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
      std::lock_guard sleep_lock(sleep_mutex_);
      --pending_;
      return true;
    }
  }
  // ...then steal the oldest task of a sibling (FIFO).
  for (std::size_t i = 1; i < queues_.size(); ++i) {
    Queue& q = *queues_[(self + i) % queues_.size()];
    std::lock_guard lock(q.mutex);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      std::lock_guard sleep_lock(sleep_mutex_);
      --pending_;
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_worker = WorkerIdentity{this, static_cast<unsigned>(self)};
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      task();  // exceptions are captured by the wait-group, never escape
      continue;
    }
    std::unique_lock lock(sleep_mutex_);
    sleep_cv_.wait(lock, [&]() { return stopping_ || pending_ > 0; });
    if (pending_ == 0 && stopping_) return;
  }
}

}  // namespace buffy::exec
