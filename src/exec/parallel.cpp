#include "exec/parallel.hpp"

#include <algorithm>
#include <condition_variable>
#include <limits>
#include <mutex>

namespace buffy::exec::detail {

std::size_t default_chunk(std::size_t n, unsigned workers) {
  if (workers == 0) return n;
  return std::max<std::size_t>(1, n / (static_cast<std::size_t>(workers) * 4));
}

void for_each_index(ThreadPool& pool, std::size_t n, std::size_t chunk_size,
                    const std::function<void(std::size_t)>& body) {
  if (pool.num_workers() == 0 || n <= chunk_size) {
    // Inline: a plain loop, which already throws at the lowest index.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Fan-out/fan-in rendezvous shared by all chunks of this call.
  struct WaitGroup {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
  } wg;
  const std::size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  wg.remaining = num_chunks;

  for (std::size_t c = 0; c < num_chunks; ++c) {
    pool.submit([&wg, &body, c, chunk_size, n]() {
      const std::size_t begin = c * chunk_size;
      const std::size_t end = std::min(n, begin + chunk_size);
      std::size_t i = begin;
      std::exception_ptr caught;
      try {
        for (; i < end; ++i) body(i);
      } catch (...) {
        caught = std::current_exception();
      }
      std::lock_guard lock(wg.mutex);
      if (caught != nullptr && i < wg.error_index) {
        wg.error_index = i;  // keep the lowest-index failure
        wg.error = caught;
      }
      if (--wg.remaining == 0) wg.done.notify_all();
    });
  }

  std::unique_lock lock(wg.mutex);
  wg.done.wait(lock, [&]() { return wg.remaining == 0; });
  if (wg.error != nullptr) std::rethrow_exception(wg.error);
}

}  // namespace buffy::exec::detail
