// Cooperative cancellation for bounded explorations (DESIGN.md, exec/).
//
// A CancellationToken is a cheap, copyable handle onto shared cancellation
// state: an explicit flag (set by cancel()) and an optional wall-clock
// deadline. Long-running engines poll `cancelled()` (or call `checkpoint()`,
// which throws Cancelled) at natural safepoints — between state-space steps,
// between candidate distributions, between waves — and unwind with whatever
// verified partial result they have. Tokens form a chain: a child derived
// via `with_deadline` is cancelled when its own deadline passes OR any
// ancestor is cancelled, so a user-supplied token composes with the
// engine-imposed `--deadline-ms` budget.
//
// A default-constructed token is "none": it never cancels and costs one
// null-pointer check to poll, so hot loops need no separate code path.
#pragma once

#include <chrono>
#include <memory>

#include "base/checked_math.hpp"
#include "base/diagnostics.hpp"

namespace buffy::exec {

/// Thrown by CancellationToken::checkpoint() once the token is cancelled.
/// Derives from buffy::Error so existing catch sites contain it.
class Cancelled : public Error {
 public:
  Cancelled() : Error("operation cancelled (deadline or explicit cancel)") {}
};

/// Copyable handle on shared cancellation state; see file comment.
class CancellationToken {
 public:
  /// The "none" token: never cancelled, free to poll.
  CancellationToken() = default;

  /// A fresh cancellable token (no deadline until derived).
  [[nodiscard]] static CancellationToken cancellable();

  /// A token that auto-cancels `ms` milliseconds from now. Also cancelled
  /// whenever this (parent) token is — deadlines compose with explicit
  /// cancellation. Works on the "none" token (pure deadline).
  [[nodiscard]] CancellationToken with_deadline(i64 ms) const;

  /// Requests cancellation; all copies and children observe it. No-op on
  /// the "none" token.
  void cancel() const;

  /// True once cancel() was called on this token or an ancestor, or a
  /// deadline on the chain has passed.
  [[nodiscard]] bool cancelled() const;

  /// Throws Cancelled when cancelled(); the hot-loop safepoint.
  void checkpoint() const {
    if (cancelled()) throw Cancelled();
  }

  /// True for tokens that can actually cancel (not the "none" token).
  [[nodiscard]] bool can_cancel() const { return state_ != nullptr; }

 private:
  struct State;
  explicit CancellationToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;  // null = the "none" token
};

}  // namespace buffy::exec
