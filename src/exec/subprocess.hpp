// Child-process supervision primitives for the fleet router.
//
// Subprocess wraps fork/exec of one worker binary: non-blocking reaping
// (try_wait) for the supervisor's health loop, blocking wait for drains,
// and signal delivery for fault injection and stall recovery. Ownership is
// move-only; destroying a still-running handle deliberately leaks the pid
// to the caller's wait discipline rather than killing silently — the
// router always reaps explicitly.
//
// ExponentialBackoff paces crash-loop restarts: next_ms() doubles from the
// base toward the cap, reset() on a healthy run.
#pragma once

#include <sys/types.h>

#include <optional>
#include <string>
#include <vector>

#include "base/checked_math.hpp"

namespace buffy::exec {

class Subprocess {
 public:
  Subprocess() = default;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  ~Subprocess() = default;

  /// Forks and execs `argv` (argv[0] is the binary path, resolved via
  /// PATH when relative). Inherited descriptors above stderr are closed
  /// in the child. Throws Error when the fork fails; a failed exec makes
  /// the child exit 127 (observed by wait).
  [[nodiscard]] static Subprocess spawn(const std::vector<std::string>& argv);

  [[nodiscard]] pid_t pid() const { return pid_; }
  [[nodiscard]] bool valid() const { return pid_ > 0; }

  /// Non-blocking reap: the raw wait status when the child has exited
  /// (the handle becomes invalid), nullopt while it is still running.
  [[nodiscard]] std::optional<int> try_wait();

  /// Blocking reap; returns the raw wait status (0 when already reaped).
  int wait();

  /// Delivers `sig` (no-op on an invalid handle).
  void kill(int sig) const;

 private:
  explicit Subprocess(pid_t pid) : pid_(pid) {}

  pid_t pid_ = -1;
};

class ExponentialBackoff {
 public:
  ExponentialBackoff(i64 base_ms, i64 max_ms)
      : base_ms_(base_ms), max_ms_(max_ms), next_(base_ms) {}

  /// The delay to apply before the next restart; doubles per call up to
  /// the cap.
  [[nodiscard]] i64 next_ms() {
    const i64 delay = next_;
    next_ = next_ > max_ms_ / 2 ? max_ms_ : next_ * 2;
    return delay;
  }

  /// Back to the base delay (call after a healthy run).
  void reset() { next_ = base_ms_; }

 private:
  i64 base_ms_;
  i64 max_ms_;
  i64 next_;
};

}  // namespace buffy::exec
