// Structured parallel algorithms over a ThreadPool (DESIGN.md, exec/).
//
// parallel_for_each(pool, n, fn) runs fn(0..n-1) across the pool and blocks
// until every index finished. Exceptions thrown by fn are captured; after
// the barrier the exception of the LOWEST throwing index is rethrown in the
// caller — a deterministic choice, so a parallel run fails with the same
// error as the equivalent sequential loop. parallel_transform additionally
// collects fn's return values in index order.
//
// Chunking: indices are dealt out in contiguous chunks (at least one, at
// most ~4 chunks per worker) so per-task overhead stays negligible even
// for cheap bodies; a caller whose items have wildly uneven cost should
// pass chunk_size = 1.
//
// With a zero-worker pool (or n small) everything runs inline on the
// calling thread — same code path, no spawning — which is what makes
// `threads = 1` explorations bit-identical to pre-exec sequential code.
#pragma once

#include <exception>
#include <vector>

#include "exec/thread_pool.hpp"

namespace buffy::exec {

namespace detail {

/// Fan-out/fan-in rendezvous: runs `body(index)` for n indices on the pool
/// in chunks, waits for all, rethrows the lowest-index exception.
void for_each_index(ThreadPool& pool, std::size_t n, std::size_t chunk_size,
                    const std::function<void(std::size_t)>& body);

/// Chunk size used when the caller does not pick one.
[[nodiscard]] std::size_t default_chunk(std::size_t n, unsigned workers);

}  // namespace detail

/// Runs fn(i) for every i in [0, n); see file comment.
template <typename Fn>
void parallel_for_each(ThreadPool& pool, std::size_t n, Fn&& fn,
                       std::size_t chunk_size = 0) {
  if (n == 0) return;
  if (chunk_size == 0) {
    chunk_size = detail::default_chunk(n, pool.num_workers());
  }
  const std::function<void(std::size_t)> body = std::ref(fn);
  detail::for_each_index(pool, n, chunk_size, body);
}

/// Runs fn(i) for every i in [0, n) and returns the results in index
/// order. Results are default-constructed first, so T must be
/// default-constructible (all engine uses are aggregates).
template <typename T, typename Fn>
std::vector<T> parallel_transform(ThreadPool& pool, std::size_t n, Fn&& fn,
                                  std::size_t chunk_size = 0) {
  std::vector<T> results(n);
  parallel_for_each(
      pool, n, [&](std::size_t i) { results[i] = fn(i); }, chunk_size);
  return results;
}

}  // namespace buffy::exec
