// Schedules of timed SDF graphs (paper Def. 3 and Sec. 4).
//
// A schedule maps the i-th firing of every actor to its start time. The
// self-timed schedules produced by the state-space engine consist of a
// finite transient prefix followed by a periodic phase that repeats forever
// (Theorem 1), so the whole infinite schedule is represented finitely by
// the transient starts, one period of starts, and the period length.
#pragma once

#include <vector>

#include "base/checked_math.hpp"
#include "base/rational.hpp"
#include "sdf/graph.hpp"

namespace buffy::sched {

/// Periodic schedule: sigma(a, i) for every actor a and firing index i.
class Schedule {
 public:
  /// Starts of one actor, split at the beginning of the periodic phase.
  struct ActorStarts {
    /// Start times before cycle_start, ascending.
    std::vector<i64> transient;
    /// Start times within [cycle_start, cycle_start + period), ascending.
    std::vector<i64> periodic;
  };

  Schedule() = default;

  /// A deadlocked (finite) schedule has period 0 and empty periodic parts.
  Schedule(std::vector<ActorStarts> starts, i64 cycle_start, i64 period);

  [[nodiscard]] std::size_t num_actors() const { return starts_.size(); }
  [[nodiscard]] i64 cycle_start() const { return cycle_start_; }
  [[nodiscard]] i64 period() const { return period_; }
  [[nodiscard]] bool finite() const { return period_ == 0; }

  [[nodiscard]] const ActorStarts& of(sdf::ActorId a) const;

  /// Firings of the actor in one period (0 for finite schedules).
  [[nodiscard]] i64 firings_per_period(sdf::ActorId a) const;

  /// Total firings with start time < t.
  [[nodiscard]] i64 firings_before(sdf::ActorId a, i64 t) const;

  /// sigma(a, i): the start time of the i-th firing (0-indexed), extending
  /// the periodic phase indefinitely. Throws Error when the schedule is
  /// finite and i is beyond the recorded firings.
  [[nodiscard]] i64 start_time(sdf::ActorId a, i64 firing) const;

  /// Long-run throughput of the actor under this schedule: firings per
  /// period over the period length (Def. 4); zero for finite schedules.
  [[nodiscard]] Rational throughput(sdf::ActorId a) const;

 private:
  std::vector<ActorStarts> starts_;
  i64 cycle_start_ = 0;
  i64 period_ = 0;
};

}  // namespace buffy::sched
