#include "sched/schedule.hpp"

#include <algorithm>

#include "base/diagnostics.hpp"

namespace buffy::sched {

Schedule::Schedule(std::vector<ActorStarts> starts, i64 cycle_start,
                   i64 period)
    : starts_(std::move(starts)), cycle_start_(cycle_start), period_(period) {
  BUFFY_REQUIRE(period_ >= 0, "negative schedule period");
  for (const ActorStarts& a : starts_) {
    BUFFY_REQUIRE(std::is_sorted(a.transient.begin(), a.transient.end()),
                  "transient starts must be ascending");
    BUFFY_REQUIRE(std::is_sorted(a.periodic.begin(), a.periodic.end()),
                  "periodic starts must be ascending");
    if (period_ == 0) {
      BUFFY_REQUIRE(a.periodic.empty(),
                    "finite schedule with periodic firings");
    }
  }
}

const Schedule::ActorStarts& Schedule::of(sdf::ActorId a) const {
  BUFFY_REQUIRE(a.valid() && a.index() < starts_.size(),
                "actor id outside schedule");
  return starts_[a.index()];
}

i64 Schedule::firings_per_period(sdf::ActorId a) const {
  return static_cast<i64>(of(a).periodic.size());
}

i64 Schedule::firings_before(sdf::ActorId a, i64 t) const {
  const ActorStarts& s = of(a);
  i64 count = static_cast<i64>(
      std::lower_bound(s.transient.begin(), s.transient.end(), t) -
      s.transient.begin());
  if (period_ == 0 || s.periodic.empty() || t <= cycle_start_) return count;
  const i64 laps = (t - cycle_start_) / period_;
  const i64 rem = cycle_start_ + (t - cycle_start_) % period_;
  count += laps * static_cast<i64>(s.periodic.size());
  count += static_cast<i64>(
      std::lower_bound(s.periodic.begin(), s.periodic.end(), rem) -
      s.periodic.begin());
  return count;
}

Rational Schedule::throughput(sdf::ActorId a) const {
  if (period_ == 0) return Rational(0);
  return Rational(firings_per_period(a), period_);
}

i64 Schedule::start_time(sdf::ActorId a, i64 firing) const {
  BUFFY_REQUIRE(firing >= 0, "negative firing index");
  const ActorStarts& s = of(a);
  const i64 trans = static_cast<i64>(s.transient.size());
  if (firing < trans) return s.transient[firing];
  BUFFY_REQUIRE(!s.periodic.empty(),
                "firing index beyond a finite (deadlocked) schedule");
  const i64 per = static_cast<i64>(s.periodic.size());
  const i64 lap = (firing - trans) / per;
  const i64 pos = (firing - trans) % per;
  return checked_add(s.periodic[pos], checked_mul(lap, period_));
}

}  // namespace buffy::sched
