// Human-readable schedule rendering (the paper's Table 1).
#pragma once

#include <string>

#include "sched/schedule.hpp"
#include "sdf/graph.hpp"

namespace buffy::sched {

/// Gantt chart: one row per actor, one column per time step from 0 to
/// `until` (exclusive). The first character of a firing is the actor's
/// initial; continuation steps use '*' (the paper's bullet). The periodic
/// phase is marked in the header row with '|' at its start.
[[nodiscard]] std::string render_gantt(const sdf::Graph& graph,
                                       const Schedule& schedule, i64 until);

/// Table-1-style rendering: like render_gantt but with one extra row per
/// channel showing stored tokens at the end of each time step requires
/// replaying; provided by render_gantt_with_tokens.
[[nodiscard]] std::string render_gantt_with_tokens(const sdf::Graph& graph,
                                                   const Schedule& schedule,
                                                   i64 until);

/// "actor,firing,start,end" CSV of all firings with start < until.
[[nodiscard]] std::string schedule_csv(const sdf::Graph& graph,
                                       const Schedule& schedule, i64 until);

}  // namespace buffy::sched
