#include "sched/render.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "base/diagnostics.hpp"
#include "base/string_util.hpp"

namespace buffy::sched {

namespace {

// Per-actor occupancy rows: first char of each firing is the actor's
// initial, continuations are '*'.
std::vector<std::string> actor_rows(const sdf::Graph& graph,
                                    const Schedule& schedule, i64 until) {
  std::vector<std::string> rows(graph.num_actors(),
                                std::string(static_cast<std::size_t>(until),
                                            '.'));
  for (const sdf::ActorId a : graph.actor_ids()) {
    const i64 exec = graph.actor(a).execution_time;
    const char initial = graph.actor(a).name.empty()
                             ? '?'
                             : graph.actor(a).name[0];
    for (i64 i = 0;; ++i) {
      i64 start = 0;
      try {
        start = schedule.start_time(a, i);
      } catch (const Error&) {
        break;  // finite schedule exhausted
      }
      if (start >= until) break;
      for (i64 t = start; t < std::min(start + exec, until); ++t) {
        rows[a.index()][static_cast<std::size_t>(t)] =
            (t == start) ? initial : '*';
      }
    }
  }
  return rows;
}

std::string header(const Schedule& schedule, i64 until,
                   std::size_t label_width) {
  std::string h(label_width, ' ');
  for (i64 t = 0; t < until; ++t) {
    if (!schedule.finite() && t == schedule.cycle_start()) {
      h += '|';
    } else {
      h += (t % 10 == 0) ? ('0' + static_cast<char>((t / 10) % 10)) : ' ';
    }
  }
  return h;
}

}  // namespace

std::string render_gantt(const sdf::Graph& graph, const Schedule& schedule,
                         i64 until) {
  BUFFY_REQUIRE(until >= 0, "negative rendering horizon");
  std::size_t width = 0;
  for (const sdf::ActorId a : graph.actor_ids()) {
    width = std::max(width, graph.actor(a).name.size());
  }
  width += 2;
  std::ostringstream os;
  os << header(schedule, until, width) << '\n';
  const auto rows = actor_rows(graph, schedule, until);
  for (const sdf::ActorId a : graph.actor_ids()) {
    os << pad_right(graph.actor(a).name, width) << rows[a.index()] << '\n';
  }
  return os.str();
}

std::string render_gantt_with_tokens(const sdf::Graph& graph,
                                     const Schedule& schedule, i64 until) {
  std::ostringstream os;
  os << render_gantt(graph, schedule, until);

  // Replay token counts; matches the engine's semantics (consume/produce at
  // firing end).
  std::vector<std::vector<i64>> fill(
      graph.num_channels(), std::vector<i64>(static_cast<std::size_t>(until),
                                             0));
  std::vector<i64> tokens;
  for (const sdf::ChannelId c : graph.channel_ids()) {
    tokens.push_back(graph.channel(c).initial_tokens);
  }
  for (i64 t = 0; t < until; ++t) {
    for (const sdf::ActorId a : graph.actor_ids()) {
      const i64 exec = graph.actor(a).execution_time;
      // A firing of a completes at time t when it started at t - exec.
      const i64 started =
          schedule.firings_before(a, t - exec + 1) -
          schedule.firings_before(a, t - exec);
      if (t - exec >= 0 && started > 0) {
        for (const sdf::ChannelId c : graph.in_channels(a)) {
          tokens[c.index()] -= graph.channel(c).consumption;
        }
        for (const sdf::ChannelId c : graph.out_channels(a)) {
          tokens[c.index()] += graph.channel(c).production;
        }
      }
    }
    for (const sdf::ChannelId c : graph.channel_ids()) {
      fill[c.index()][static_cast<std::size_t>(t)] = tokens[c.index()];
    }
  }

  std::size_t width = 0;
  for (const sdf::ActorId a : graph.actor_ids()) {
    width = std::max(width, graph.actor(a).name.size());
  }
  for (const sdf::ChannelId c : graph.channel_ids()) {
    width = std::max(width, graph.channel(c).name.size());
  }
  width += 2;
  for (const sdf::ChannelId c : graph.channel_ids()) {
    os << pad_right(graph.channel(c).name, width);
    for (i64 t = 0; t < until; ++t) {
      const i64 v = fill[c.index()][static_cast<std::size_t>(t)];
      os << (v <= 9 ? static_cast<char>('0' + v) : '+');
    }
    os << '\n';
  }
  return os.str();
}

std::string schedule_csv(const sdf::Graph& graph, const Schedule& schedule,
                         i64 until) {
  std::ostringstream os;
  os << "actor,firing,start,end\n";
  for (const sdf::ActorId a : graph.actor_ids()) {
    const i64 exec = graph.actor(a).execution_time;
    for (i64 i = 0;; ++i) {
      i64 start = 0;
      try {
        start = schedule.start_time(a, i);
      } catch (const Error&) {
        break;
      }
      if (start >= until) break;
      os << graph.actor(a).name << ',' << i << ',' << start << ','
         << start + exec << '\n';
    }
  }
  return os.str();
}

}  // namespace buffy::sched
