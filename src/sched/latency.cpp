#include "sched/latency.hpp"

#include "base/diagnostics.hpp"
#include "state/engine.hpp"
#include "state/throughput.hpp"

namespace buffy::sched {

LatencyResult latency(const sdf::Graph& graph,
                      const state::Capacities& capacities, sdf::ActorId actor,
                      u64 max_steps) {
  LatencyResult result;

  // First output: run until the actor completes once (or deadlock).
  {
    state::Engine engine(graph, capacities);
    engine.reset();
    bool found = false;
    for (u64 steps = 0; steps < max_steps && !found; ++steps) {
      const bool alive = engine.advance();
      for (const sdf::ActorId a : engine.completed()) {
        if (a == actor) {
          result.first_output = engine.now();
          found = true;
          break;
        }
      }
      if (!alive) break;
    }
    if (!found) {
      result.deadlocked = true;
      return result;
    }
  }

  const auto run = state::compute_throughput(
      graph, capacities,
      state::ThroughputOptions{.target = actor, .max_steps = max_steps});
  if (run.deadlocked) {
    // The target produced at least one output and the graph then stalled;
    // report the finite part and flag the deadlock.
    result.deadlocked = true;
    return result;
  }
  result.period = run.period;
  result.firings_per_period = run.firings_on_cycle;
  return result;
}

}  // namespace buffy::sched
