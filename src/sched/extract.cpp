#include "sched/extract.hpp"

#include "base/diagnostics.hpp"
#include "state/throughput.hpp"

namespace buffy::sched {

ExtractedSchedule extract_schedule(const sdf::Graph& graph,
                                   const state::Capacities& caps,
                                   sdf::ActorId target, u64 max_steps) {
  state::FiringRecorder recorder;
  state::ThroughputOptions opts{.target = target, .max_steps = max_steps};
  opts.recorder = &recorder;
  const auto run = state::compute_throughput(graph, caps, opts);

  std::vector<Schedule::ActorStarts> starts(graph.num_actors());
  const i64 cycle_start = run.deadlocked ? 0 : run.cycle_start_time;
  const i64 cycle_end = cycle_start + run.period;
  for (const state::Firing& f : recorder.firings()) {
    Schedule::ActorStarts& a = starts[f.actor.index()];
    if (run.deadlocked || f.start < cycle_start) {
      a.transient.push_back(f.start);
    } else if (f.start < cycle_end) {
      a.periodic.push_back(f.start);
    }
    // Firings recorded past cycle_end (the run stops at the completion that
    // closes the cycle, which can lie after later starts) are duplicates of
    // periodic behaviour and are dropped.
  }
  ExtractedSchedule out{
      .schedule = Schedule(std::move(starts), cycle_start,
                           run.deadlocked ? 0 : run.period),
      .throughput = run.throughput,
      .deadlocked = run.deadlocked,
  };
  return out;
}

}  // namespace buffy::sched
