#include "sched/validate_schedule.hpp"

#include <sstream>
#include <vector>

namespace buffy::sched {

namespace {

struct Replay {
  const sdf::Graph& graph;
  const state::Capacities& caps;
  std::vector<i64> tokens;    // stored tokens per channel
  std::vector<i64> occupied;  // tokens + space claimed by running firings
  std::vector<i64> busy_until;  // per actor: end time of the current firing
  std::vector<i64> next_firing;  // per actor: next firing index to start

  explicit Replay(const sdf::Graph& g, const state::Capacities& c)
      : graph(g), caps(c) {
    tokens.reserve(g.num_channels());
    for (const sdf::ChannelId ch : g.channel_ids()) {
      tokens.push_back(g.channel(ch).initial_tokens);
    }
    occupied = tokens;
    busy_until.assign(g.num_actors(), 0);
    next_firing.assign(g.num_actors(), 0);
  }

  [[nodiscard]] bool enabled(sdf::ActorId a, i64 t) const {
    if (busy_until[a.index()] > t) return false;
    for (const sdf::ChannelId ch : graph.in_channels(a)) {
      if (tokens[ch.index()] < graph.channel(ch).consumption) return false;
    }
    for (const sdf::ChannelId ch : graph.out_channels(a)) {
      const auto& c = graph.channel(ch);
      if (caps.is_bounded(ch.index()) &&
          occupied[ch.index()] + c.production > caps.capacity(ch.index())) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace

std::optional<std::string> check_schedule(const sdf::Graph& graph,
                                          const state::Capacities& capacities,
                                          const Schedule& schedule,
                                          i64 horizon) {
  Replay replay(graph, capacities);
  // Completion events: (time, actor) — processed before starts at each t.
  std::vector<std::vector<std::size_t>> completions;  // indexed by time
  completions.resize(static_cast<std::size_t>(horizon) + 1);

  for (i64 t = 0; t < horizon; ++t) {
    for (const std::size_t a : completions[static_cast<std::size_t>(t)]) {
      for (const sdf::ChannelId ch : graph.in_channels(sdf::ActorId(a))) {
        replay.tokens[ch.index()] -= graph.channel(ch).consumption;
        replay.occupied[ch.index()] -= graph.channel(ch).consumption;
        if (replay.tokens[ch.index()] < 0) {
          return "channel '" + graph.channel(ch).name +
                 "' drops below zero tokens at time " + std::to_string(t);
        }
      }
      for (const sdf::ChannelId ch : graph.out_channels(sdf::ActorId(a))) {
        replay.tokens[ch.index()] += graph.channel(ch).production;
      }
    }

    for (const sdf::ActorId a : graph.actor_ids()) {
      const bool scheduled =
          schedule.firings_before(a, t + 1) - schedule.firings_before(a, t) >
          0;
      if (scheduled) {
        if (replay.busy_until[a.index()] > t) {
          return "actor '" + graph.actor(a).name +
                 "' starts at time " + std::to_string(t) +
                 " while its previous firing is still running";
        }
        for (const sdf::ChannelId ch : graph.in_channels(a)) {
          if (replay.tokens[ch.index()] < graph.channel(ch).consumption) {
            return "actor '" + graph.actor(a).name + "' starts at time " +
                   std::to_string(t) + " without enough tokens on '" +
                   graph.channel(ch).name + "'";
          }
        }
        for (const sdf::ChannelId ch : graph.out_channels(a)) {
          const auto& c = graph.channel(ch);
          if (capacities.is_bounded(ch.index()) &&
              replay.occupied[ch.index()] + c.production >
                  capacities.capacity(ch.index())) {
            return "actor '" + graph.actor(a).name + "' starts at time " +
                   std::to_string(t) + " without enough space on '" +
                   graph.channel(ch).name + "'";
          }
        }
        for (const sdf::ChannelId ch : graph.out_channels(a)) {
          replay.occupied[ch.index()] += graph.channel(ch).production;
        }
        const i64 end = t + graph.actor(a).execution_time;
        replay.busy_until[a.index()] = end;
        if (end <= horizon) {
          completions[static_cast<std::size_t>(end)].push_back(a.index());
        }
        ++replay.next_firing[a.index()];
      } else if (replay.enabled(a, t)) {
        // Def. 3 requires self-timed behaviour: an enabled actor must fire.
        // Deadlocked (finite) schedules stop firing an actor only when it
        // is genuinely disabled, so this check applies there too.
        std::ostringstream os;
        os << "actor '" << graph.actor(a).name << "' is enabled at time " << t
           << " but the schedule does not fire it";
        return os.str();
      }
    }
  }
  return std::nullopt;
}

}  // namespace buffy::sched
