// Latency metrics derived from the self-timed execution.
//
// The paper focuses on throughput, but mentions latency as the other common
// timing constraint (Sec. 1). These helpers expose the two quantities a
// designer reads off the schedule: the time until the first output and the
// steady-state spacing of outputs.
#pragma once

#include "base/rational.hpp"
#include "sdf/graph.hpp"
#include "state/state.hpp"

namespace buffy::sched {

/// Latency summary of one (graph, distribution) pair.
struct LatencyResult {
  /// The graph deadlocks before the actor ever completes.
  bool deadlocked = false;
  /// Completion time of the actor's first firing.
  i64 first_output = 0;
  /// Steady-state period of the schedule (time per state-space cycle).
  i64 period = 0;
  /// Firings of the actor per period.
  i64 firings_per_period = 0;
};

/// Computes first-output latency and steady-state period of the given actor
/// under the given capacities.
[[nodiscard]] LatencyResult latency(const sdf::Graph& graph,
                                    const state::Capacities& capacities,
                                    sdf::ActorId actor,
                                    u64 max_steps = 100'000'000);

}  // namespace buffy::sched
