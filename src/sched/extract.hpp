// Extraction of the throughput-optimal schedule realised by a storage
// distribution (paper Sec. 7: "it is straightforward to ... construct the
// schedule that yields the computed throughput").
#pragma once

#include "base/rational.hpp"
#include "sched/schedule.hpp"
#include "sdf/graph.hpp"
#include "state/state.hpp"

namespace buffy::sched {

/// A schedule together with the throughput it realises.
struct ExtractedSchedule {
  Schedule schedule;
  /// Throughput of the target actor under this schedule (0 = deadlock; the
  /// schedule is then finite).
  Rational throughput;
  bool deadlocked = false;
};

/// Runs self-timed execution under the given capacities until the periodic
/// phase closes (or deadlock) and returns the schedule sigma. Every firing
/// of the transient phase plus one full period is recorded.
[[nodiscard]] ExtractedSchedule extract_schedule(const sdf::Graph& graph,
                                                 const state::Capacities& caps,
                                                 sdf::ActorId target,
                                                 u64 max_steps = 100'000'000);

}  // namespace buffy::sched
