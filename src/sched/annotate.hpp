// Latency annotation of Pareto fronts.
//
// The paper's Pareto space is two-dimensional (storage, throughput);
// designers usually also read off the latency of each operating point
// before choosing one (Sec. 1 names latency as the other common timing
// constraint). This helper runs each Pareto distribution once and attaches
// first-output latency and steady-state period.
#pragma once

#include <vector>

#include "buffer/pareto.hpp"
#include "sched/latency.hpp"
#include "sdf/graph.hpp"

namespace buffy::sched {

/// A Pareto point together with its timing.
struct AnnotatedPoint {
  buffer::ParetoPoint point;
  LatencyResult timing;
};

/// Runs latency() for every point of the set (cheap: one state-space run
/// per point).
[[nodiscard]] std::vector<AnnotatedPoint> annotate_latencies(
    const sdf::Graph& graph, const buffer::ParetoSet& pareto,
    sdf::ActorId target, u64 max_steps = 100'000'000);

/// Smallest annotated point whose first output is no later than the
/// deadline; nullptr when none qualifies.
[[nodiscard]] const AnnotatedPoint* earliest_within_deadline(
    const std::vector<AnnotatedPoint>& points, i64 deadline);

}  // namespace buffy::sched
