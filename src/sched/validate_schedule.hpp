// Independent schedule checker (test oracle for Def. 3).
//
// Replays a schedule over a finite horizon with its own bookkeeping
// (deliberately not sharing code with state::Engine) and checks that every
// firing is feasible — enough input tokens, enough output space under the
// claim-at-start model, the previous firing finished — and that the
// schedule is self-timed: an enabled actor is never left idle.
#pragma once

#include <optional>
#include <string>

#include "sched/schedule.hpp"
#include "sdf/graph.hpp"
#include "state/state.hpp"

namespace buffy::sched {

/// Replays the schedule up to (and excluding) time `horizon`.
/// Returns std::nullopt when the schedule is valid over the horizon, or a
/// description of the first violation found.
[[nodiscard]] std::optional<std::string> check_schedule(
    const sdf::Graph& graph, const state::Capacities& capacities,
    const Schedule& schedule, i64 horizon);

}  // namespace buffy::sched
