#include "sched/annotate.hpp"

namespace buffy::sched {

std::vector<AnnotatedPoint> annotate_latencies(const sdf::Graph& graph,
                                               const buffer::ParetoSet& pareto,
                                               sdf::ActorId target,
                                               u64 max_steps) {
  std::vector<AnnotatedPoint> out;
  out.reserve(pareto.size());
  for (const buffer::ParetoPoint& p : pareto.points()) {
    out.push_back(AnnotatedPoint{
        .point = p,
        .timing = latency(graph,
                          state::Capacities::bounded(
                              p.distribution.capacities()),
                          target, max_steps),
    });
  }
  return out;
}

const AnnotatedPoint* earliest_within_deadline(
    const std::vector<AnnotatedPoint>& points, i64 deadline) {
  for (const AnnotatedPoint& p : points) {
    if (!p.timing.deadlocked && p.timing.first_output <= deadline) return &p;
  }
  return nullptr;
}

}  // namespace buffy::sched
