#include "csdf/analysis.hpp"

#include <queue>

#include "base/diagnostics.hpp"
#include "base/rational.hpp"

namespace buffy::csdf {

RepetitionVector repetition_vector(const Graph& graph) {
  const std::size_t n = graph.num_actors();
  BUFFY_REQUIRE(n > 0, "repetition vector of an empty graph");

  std::vector<Rational> fraction(n);
  std::vector<bool> assigned(n, false);
  std::vector<std::size_t> component(n, 0);
  std::size_t num_components = 0;

  for (std::size_t root = 0; root < n; ++root) {
    if (assigned[root]) continue;
    const std::size_t comp = num_components++;
    fraction[root] = Rational(1);
    assigned[root] = true;
    component[root] = comp;
    std::queue<std::size_t> frontier;
    frontier.push(root);
    while (!frontier.empty()) {
      const ActorId cur(frontier.front());
      frontier.pop();
      auto propagate = [&](const Channel& ch, ActorId from, ActorId to,
                           const Rational& ratio) {
        const Rational expected = fraction[from.index()] * ratio;
        if (!assigned[to.index()]) {
          fraction[to.index()] = expected;
          assigned[to.index()] = true;
          component[to.index()] = comp;
          frontier.push(to.index());
        } else if (fraction[to.index()] != expected) {
          throw ConsistencyError("CSDF graph '" + graph.name() +
                                 "' is inconsistent at channel '" + ch.name +
                                 "'");
        }
      };
      for (const ChannelId cid : graph.out_channels(cur)) {
        const Channel& ch = graph.channel(cid);
        propagate(ch, ch.src, ch.dst,
                  Rational(ch.total_production(), ch.total_consumption()));
      }
      for (const ChannelId cid : graph.in_channels(cur)) {
        const Channel& ch = graph.channel(cid);
        propagate(ch, ch.dst, ch.src,
                  Rational(ch.total_consumption(), ch.total_production()));
      }
    }
  }

  std::vector<i64> comp_lcm(num_components, 1);
  for (std::size_t i = 0; i < n; ++i) {
    comp_lcm[component[i]] = lcm(comp_lcm[component[i]], fraction[i].den());
  }
  RepetitionVector result;
  result.cycles.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.cycles[i] = checked_mul(fraction[i].num(),
                                   comp_lcm[component[i]] / fraction[i].den());
  }
  std::vector<i64> comp_gcd(num_components, 0);
  for (std::size_t i = 0; i < n; ++i) {
    comp_gcd[component[i]] = gcd(comp_gcd[component[i]], result.cycles[i]);
  }
  result.firings.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.cycles[i] /= comp_gcd[component[i]];
    result.firings[i] = checked_mul(
        result.cycles[i],
        static_cast<i64>(graph.actor(ActorId(i)).num_phases()));
  }
  return result;
}

bool is_consistent(const Graph& graph) {
  if (graph.num_actors() == 0) return true;
  try {
    (void)repetition_vector(graph);
    return true;
  } catch (const ConsistencyError&) {
    return false;
  }
}

}  // namespace buffy::csdf
