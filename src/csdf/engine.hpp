// Self-timed execution of CSDF graphs under a storage distribution.
//
// Identical semantics to state::Engine (claim space at firing start,
// consume/produce at firing end, no auto-concurrency, every enabled actor
// fires immediately), generalised with a phase counter per actor: phase p
// of actor a takes execution_times[p] steps and uses the p-th entry of
// every connected rate vector; completing a firing advances the phase
// cyclically. The timed state gains the phase dimensions.
#pragma once

#include <vector>

#include "csdf/graph.hpp"
#include "state/state.hpp"
#include "state/trace.hpp"

namespace buffy::csdf {

/// Deterministic self-timed CSDF executor.
class Engine {
 public:
  Engine(const Graph& graph, state::Capacities capacities);

  /// Back to time 0 (initial tokens, phase 0 everywhere) and runs the
  /// time-0 start phase.
  void reset();

  /// Advances to the next firing completion; returns false on deadlock.
  bool advance();

  [[nodiscard]] i64 now() const { return now_; }
  [[nodiscard]] bool deadlocked() const { return deadlocked_; }

  /// Actors whose firing completed in the most recent advance.
  [[nodiscard]] const std::vector<ActorId>& completed() const {
    return completed_;
  }

  [[nodiscard]] i64 clock(ActorId a) const { return clocks_[a.index()]; }
  /// Phase of the next (or currently running) firing.
  [[nodiscard]] i64 phase(ActorId a) const { return phases_[a.index()]; }
  [[nodiscard]] i64 tokens(ChannelId c) const { return tokens_[c.index()]; }
  [[nodiscard]] i64 occupancy(ChannelId c) const {
    return occupied_[c.index()];
  }

  /// Timed state including the phase dimensions:
  /// (clocks..., phases..., tokens...).
  [[nodiscard]] state::TimedState snapshot() const;

  /// Channels whose space check fails for an idle, token-ready actor in its
  /// current phase (storage dependencies).
  [[nodiscard]] std::vector<ChannelId> space_blocked_channels() const;

  /// Optional recorder notified of every firing start (set before reset()
  /// to capture the time-0 start phase).
  void set_recorder(state::FiringRecorder* recorder) { recorder_ = recorder; }

  [[nodiscard]] const Graph& graph() const { return graph_; }

 private:
  struct PortRef {
    std::size_t channel;
    const std::vector<i64>* rates;  // per-phase rates of this endpoint
  };

  [[nodiscard]] bool can_start(std::size_t actor) const;
  void start_phase();

  const Graph& graph_;
  state::Capacities capacities_;

  std::vector<std::vector<i64>> exec_times_;
  std::vector<std::vector<PortRef>> inputs_;
  std::vector<std::vector<PortRef>> outputs_;
  std::vector<i64> initial_tokens_;

  std::vector<i64> clocks_;
  std::vector<i64> phases_;
  std::vector<i64> tokens_;
  std::vector<i64> occupied_;
  std::vector<ActorId> completed_;
  i64 now_ = 0;
  bool deadlocked_ = false;
  state::FiringRecorder* recorder_ = nullptr;
};

}  // namespace buffy::csdf
