// Storage/throughput design-space exploration for CSDF graphs.
//
// The incremental strategy of the SDF case carries over unchanged: start
// from per-channel capacity floors, bump only the channels whose lack of
// space delays a firing, pop candidates in size order, and record every
// throughput improvement as a Pareto point. The maximal throughput is
// established by growing all capacities geometrically until the state-space
// throughput stops improving (CSDF lacks the simple HSDF/MCM route used for
// SDF).
#pragma once

#include <optional>

#include "base/rational.hpp"
#include "buffer/pareto.hpp"
#include "csdf/graph.hpp"

namespace buffy::csdf {

/// Options for a CSDF design-space exploration.
struct DseOptions {
  ActorId target;
  std::optional<Rational> quantization;
  std::optional<i64> max_distribution_size;
  u64 max_distributions = 1'000'000;
  u64 max_steps_per_run = 100'000'000;
};

/// Result of a CSDF design-space exploration.
struct DseResult {
  buffer::ParetoSet pareto;
  /// Maximal throughput of the target actor over all finite distributions.
  Rational max_throughput;
  /// Per-channel capacity floors the search started from.
  buffer::StorageDistribution floors;
  /// True when the graph deadlocks under every distribution.
  bool deadlock = false;
  u64 distributions_explored = 0;
  u64 max_states_stored = 0;
};

/// Necessary capacity floor of a channel: it must hold the initial tokens
/// and admit the largest single-phase production claim.
[[nodiscard]] i64 channel_floor(const Channel& channel);

/// Explores the design space. Throws ConsistencyError when inconsistent.
[[nodiscard]] DseResult explore(const Graph& graph, const DseOptions& options);

}  // namespace buffy::csdf
