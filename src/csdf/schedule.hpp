// Schedule extraction and rendering for CSDF graphs.
//
// The extracted object is the same sched::Schedule used for SDF (actor ids
// plus start times with a transient/periodic split); only the rendering
// differs, because a CSDF firing's duration depends on its phase.
#pragma once

#include <string>

#include "base/rational.hpp"
#include "csdf/graph.hpp"
#include "sched/schedule.hpp"
#include "state/state.hpp"

namespace buffy::csdf {

/// A CSDF schedule with the throughput it realises.
struct ExtractedSchedule {
  sched::Schedule schedule;
  Rational throughput;
  bool deadlocked = false;
};

/// Runs self-timed execution under the capacities until the periodic phase
/// closes (or deadlock) and returns sigma.
[[nodiscard]] ExtractedSchedule extract_schedule(
    const Graph& graph, const state::Capacities& capacities, ActorId target,
    u64 max_steps = 100'000'000);

/// Gantt chart with per-phase firing durations; the digit after each firing
/// start marks the phase ('a' then '*' continuations as in the SDF
/// renderer).
[[nodiscard]] std::string render_gantt(const Graph& graph,
                                       const sched::Schedule& schedule,
                                       i64 until);

}  // namespace buffy::csdf
