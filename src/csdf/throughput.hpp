// Throughput of a CSDF graph under a storage distribution, via the same
// reduced state-space construction as the SDF case (Sec. 7 of the paper,
// with the actor phases added to the state).
#pragma once

#include "base/rational.hpp"
#include "csdf/engine.hpp"
#include "csdf/graph.hpp"

namespace buffy::csdf {

/// Outcome of a CSDF throughput computation.
struct ThroughputResult {
  bool deadlocked = false;
  /// Firings of the target actor (any phase) per time step.
  Rational throughput;
  u64 states_stored = 0;
  i64 cycle_start_time = 0;
  i64 period = 0;
  i64 firings_on_cycle = 0;
  i64 time_steps = 0;
};

/// Runs self-timed execution until the reduced state space closes or the
/// graph deadlocks; throws Error past max_steps events.
[[nodiscard]] ThroughputResult compute_throughput(
    const Graph& graph, const state::Capacities& capacities, ActorId target,
    u64 max_steps = 100'000'000);

}  // namespace buffy::csdf
