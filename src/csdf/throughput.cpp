#include "csdf/throughput.hpp"

#include <unordered_map>

#include "base/diagnostics.hpp"
#include "base/hash.hpp"

namespace buffy::csdf {

namespace {

struct ReducedKey {
  state::TimedState timed;
  i64 dist;
  friend bool operator==(const ReducedKey&, const ReducedKey&) = default;
};

struct ReducedKeyHash {
  std::size_t operator()(const ReducedKey& k) const noexcept {
    return static_cast<std::size_t>(
        hash_combine(k.timed.hash(), static_cast<u64>(k.dist)));
  }
};

}  // namespace

ThroughputResult compute_throughput(const Graph& graph,
                                    const state::Capacities& capacities,
                                    ActorId target, u64 max_steps) {
  BUFFY_REQUIRE(target.valid() && target.index() < graph.num_actors(),
                "throughput target actor is not part of the graph");
  Engine engine(graph, capacities);
  engine.reset();

  ThroughputResult result;
  struct Entry {
    i64 firing_index;
    i64 time;
  };
  std::unordered_map<ReducedKey, Entry, ReducedKeyHash> seen;
  i64 firings = 0;
  i64 last_completion = 0;

  for (u64 steps = 0; steps < max_steps; ++steps) {
    const bool alive = engine.advance();
    bool target_completed = false;
    for (const ActorId a : engine.completed()) {
      if (a == target) target_completed = true;
    }
    if (target_completed) {
      ++firings;
      const i64 dist = engine.now() - last_completion;
      last_completion = engine.now();
      const ReducedKey key{engine.snapshot(), dist};
      const auto it = seen.find(key);
      if (it != seen.end()) {
        result.firings_on_cycle = firings - it->second.firing_index;
        result.period = engine.now() - it->second.time;
        result.cycle_start_time = it->second.time;
        result.throughput = Rational(result.firings_on_cycle, result.period);
        result.states_stored = seen.size();
        result.time_steps = engine.now();
        return result;
      }
      seen.emplace(key, Entry{firings, engine.now()});
    }
    if (!alive) {
      result.deadlocked = true;
      result.throughput = Rational(0);
      result.states_stored = seen.size();
      result.time_steps = engine.now();
      return result;
    }
  }
  throw Error("CSDF throughput computation exceeded max_steps on graph '" +
              graph.name() + "'");
}

}  // namespace buffy::csdf
