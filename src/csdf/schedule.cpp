#include "csdf/schedule.hpp"

#include <algorithm>
#include <sstream>

#include "base/diagnostics.hpp"
#include "base/string_util.hpp"
#include "csdf/engine.hpp"
#include "csdf/throughput.hpp"

namespace buffy::csdf {

ExtractedSchedule extract_schedule(const Graph& graph,
                                   const state::Capacities& capacities,
                                   ActorId target, u64 max_steps) {
  // First locate the cycle, then re-run with a recorder (the throughput
  // helper does not expose one for CSDF).
  const auto run = compute_throughput(graph, capacities, target, max_steps);

  state::FiringRecorder recorder;
  Engine engine(graph, capacities);
  engine.set_recorder(&recorder);
  engine.reset();
  const i64 end_time =
      run.deadlocked ? run.time_steps : run.cycle_start_time + run.period;
  while (engine.now() < end_time && engine.advance()) {
  }

  std::vector<sched::Schedule::ActorStarts> starts(graph.num_actors());
  const i64 cycle_start = run.deadlocked ? 0 : run.cycle_start_time;
  const i64 cycle_end = cycle_start + run.period;
  for (const state::Firing& f : recorder.firings()) {
    sched::Schedule::ActorStarts& a = starts[f.actor.index()];
    if (run.deadlocked || f.start < cycle_start) {
      a.transient.push_back(f.start);
    } else if (f.start < cycle_end) {
      a.periodic.push_back(f.start);
    }
  }
  return ExtractedSchedule{
      .schedule = sched::Schedule(std::move(starts), cycle_start,
                                  run.deadlocked ? 0 : run.period),
      .throughput = run.throughput,
      .deadlocked = run.deadlocked,
  };
}

std::string render_gantt(const Graph& graph, const sched::Schedule& schedule,
                         i64 until) {
  BUFFY_REQUIRE(until >= 0, "negative rendering horizon");
  std::size_t width = 0;
  for (const ActorId a : graph.actor_ids()) {
    width = std::max(width, graph.actor(a).name.size());
  }
  width += 2;

  std::ostringstream os;
  std::string header(width, ' ');
  for (i64 t = 0; t < until; ++t) {
    if (!schedule.finite() && t == schedule.cycle_start()) {
      header += '|';
    } else {
      header += (t % 10 == 0) ? ('0' + static_cast<char>((t / 10) % 10)) : ' ';
    }
  }
  os << header << '\n';

  for (const ActorId a : graph.actor_ids()) {
    const Actor& actor = graph.actor(a);
    std::string row(static_cast<std::size_t>(until), '.');
    const char initial = actor.name.empty() ? '?' : actor.name[0];
    const std::size_t phases = actor.num_phases();
    for (i64 i = 0;; ++i) {
      i64 start = 0;
      try {
        start = schedule.start_time(a, i);
      } catch (const Error&) {
        break;
      }
      if (start >= until) break;
      // The i-th firing runs phase i mod P.
      const i64 exec = actor.execution_times[static_cast<std::size_t>(i) %
                                             phases];
      for (i64 t = start; t < std::min(start + exec, until); ++t) {
        row[static_cast<std::size_t>(t)] = (t == start) ? initial : '*';
      }
    }
    os << pad_right(actor.name, width) << row << '\n';
  }
  return os.str();
}

}  // namespace buffy::csdf
