// Cyclo-static dataflow graphs (CSDF).
//
// The paper's conclusion names generalisation to richer dataflow models as
// future work; CSDF is the canonical first step (and the one the SDF3 tool
// family took). A CSDF actor cycles deterministically through a fixed
// sequence of phases; every phase has its own execution time and its own
// port rates, and rates of 0 are allowed. SDF is the one-phase special
// case (see from_sdf), which the test-suite exploits as a differential
// oracle against the SDF engine.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/checked_math.hpp"
#include "sdf/graph.hpp"
#include "sdf/ids.hpp"

namespace buffy::csdf {

/// Identifies actors/channels of a CsdfGraph (same dense-id scheme as SDF).
using ActorId = sdf::ActorId;
using ChannelId = sdf::ChannelId;

/// A cyclo-static actor: one execution time per phase.
struct Actor {
  std::string name;
  /// Discrete time steps per firing, one entry per phase; each >= 1.
  std::vector<i64> execution_times;

  [[nodiscard]] std::size_t num_phases() const {
    return execution_times.size();
  }
};

/// A channel with phase-dependent rates.
struct Channel {
  std::string name;
  ActorId src;
  ActorId dst;
  /// Tokens produced in each phase of src; entries >= 0, sum >= 1.
  std::vector<i64> production;
  /// Tokens consumed in each phase of dst; entries >= 0, sum >= 1.
  std::vector<i64> consumption;
  i64 initial_tokens = 0;

  [[nodiscard]] bool is_self_loop() const { return src == dst; }
  [[nodiscard]] i64 total_production() const;
  [[nodiscard]] i64 total_consumption() const;
  [[nodiscard]] i64 max_production() const;
  [[nodiscard]] i64 max_consumption() const;
};

/// A CSDF graph; value type like sdf::Graph.
class Graph {
 public:
  explicit Graph(std::string name = "csdf");

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  ActorId add_actor(Actor actor);
  ChannelId add_channel(Channel channel);

  /// Mutable access (used by IO when properties arrive after the actors).
  [[nodiscard]] Actor& actor_mutable(ActorId id);

  [[nodiscard]] std::size_t num_actors() const { return actors_.size(); }
  [[nodiscard]] std::size_t num_channels() const { return channels_.size(); }

  [[nodiscard]] const Actor& actor(ActorId id) const;
  [[nodiscard]] const Channel& channel(ChannelId id) const;

  [[nodiscard]] std::span<const ChannelId> out_channels(ActorId id) const;
  [[nodiscard]] std::span<const ChannelId> in_channels(ActorId id) const;

  [[nodiscard]] std::optional<ActorId> find_actor(
      const std::string& name) const;

  [[nodiscard]] std::vector<ActorId> actor_ids() const;
  [[nodiscard]] std::vector<ChannelId> channel_ids() const;

 private:
  std::string name_;
  std::vector<Actor> actors_;
  std::vector<Channel> channels_;
  std::vector<std::vector<ChannelId>> out_;
  std::vector<std::vector<ChannelId>> in_;
};

/// Structural validation: unique non-empty names, phase-vector lengths
/// matching the endpoint actors, execution times >= 1, rates >= 0 with
/// positive sums, non-negative initial tokens. Throws GraphError.
void validate(const Graph& graph);

/// Embeds an SDF graph as single-phase CSDF (exact semantics match).
[[nodiscard]] Graph from_sdf(const sdf::Graph& graph);

}  // namespace buffy::csdf
