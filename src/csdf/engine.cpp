#include "csdf/engine.hpp"

#include <algorithm>

#include "base/diagnostics.hpp"

namespace buffy::csdf {

Engine::Engine(const Graph& graph, state::Capacities capacities)
    : graph_(graph), capacities_(std::move(capacities)) {
  BUFFY_REQUIRE(capacities_.size() == graph.num_channels(),
                "capacities must cover every channel of the graph");
  const std::size_t n = graph.num_actors();
  exec_times_.resize(n);
  inputs_.resize(n);
  outputs_.resize(n);
  for (const ActorId a : graph.actor_ids()) {
    exec_times_[a.index()] = graph.actor(a).execution_times;
    for (const ChannelId c : graph.in_channels(a)) {
      inputs_[a.index()].push_back(
          PortRef{c.index(), &graph.channel(c).consumption});
    }
    for (const ChannelId c : graph.out_channels(a)) {
      outputs_[a.index()].push_back(
          PortRef{c.index(), &graph.channel(c).production});
    }
  }
  initial_tokens_.resize(graph.num_channels());
  for (const ChannelId c : graph.channel_ids()) {
    initial_tokens_[c.index()] = graph.channel(c).initial_tokens;
  }
  reset();
}

bool Engine::can_start(std::size_t actor) const {
  if (clocks_[actor] != 0) return false;
  const std::size_t p = static_cast<std::size_t>(phases_[actor]);
  for (const PortRef& in : inputs_[actor]) {
    if (tokens_[in.channel] < (*in.rates)[p]) return false;
  }
  for (const PortRef& out : outputs_[actor]) {
    const i64 rate = (*out.rates)[p];
    if (rate > 0 && capacities_.is_bounded(out.channel) &&
        occupied_[out.channel] + rate > capacities_.capacity(out.channel)) {
      return false;
    }
  }
  return true;
}

void Engine::start_phase() {
  for (std::size_t a = 0; a < clocks_.size(); ++a) {
    if (!can_start(a)) continue;
    const std::size_t p = static_cast<std::size_t>(phases_[a]);
    clocks_[a] = exec_times_[a][p];
    for (const PortRef& out : outputs_[a]) {
      occupied_[out.channel] += (*out.rates)[p];
    }
    if (recorder_ != nullptr) recorder_->record(ActorId(a), now_);
  }
}

void Engine::reset() {
  clocks_.assign(graph_.num_actors(), 0);
  phases_.assign(graph_.num_actors(), 0);
  tokens_ = initial_tokens_;
  occupied_ = initial_tokens_;
  completed_.clear();
  now_ = 0;
  deadlocked_ = false;
  for (std::size_t c = 0; c < tokens_.size(); ++c) {
    if (capacities_.is_bounded(c) && tokens_[c] > capacities_.capacity(c)) {
      throw GraphError("channel '" + graph_.channel(ChannelId(c)).name +
                       "' has more initial tokens than its capacity");
    }
  }
  start_phase();
  deadlocked_ = std::all_of(clocks_.begin(), clocks_.end(),
                            [](i64 c) { return c == 0; });
}

bool Engine::advance() {
  if (deadlocked_) return false;
  i64 delta = 0;
  for (const i64 c : clocks_) {
    if (c > 0 && (delta == 0 || c < delta)) delta = c;
  }
  BUFFY_ASSERT(delta > 0, "live CSDF engine without a running firing");
  now_ += delta;
  completed_.clear();

  for (std::size_t a = 0; a < clocks_.size(); ++a) {
    if (clocks_[a] == 0) continue;
    clocks_[a] -= delta;
    if (clocks_[a] != 0) continue;
    const std::size_t p = static_cast<std::size_t>(phases_[a]);
    for (const PortRef& in : inputs_[a]) {
      const i64 rate = (*in.rates)[p];
      tokens_[in.channel] -= rate;
      occupied_[in.channel] -= rate;
      BUFFY_ASSERT(tokens_[in.channel] >= 0, "negative channel fill");
    }
    for (const PortRef& out : outputs_[a]) {
      tokens_[out.channel] += (*out.rates)[p];
    }
    phases_[a] = (phases_[a] + 1) %
                 static_cast<i64>(exec_times_[a].size());
    completed_.emplace_back(a);
  }

  start_phase();
  deadlocked_ = std::all_of(clocks_.begin(), clocks_.end(),
                            [](i64 c) { return c == 0; });
  return !deadlocked_;
}

state::TimedState Engine::snapshot() const {
  std::vector<i64> words;
  words.reserve(clocks_.size() + phases_.size());
  words.insert(words.end(), clocks_.begin(), clocks_.end());
  words.insert(words.end(), phases_.begin(), phases_.end());
  return state::TimedState(words, tokens_);
}

std::vector<ChannelId> Engine::space_blocked_channels() const {
  std::vector<bool> blocked(tokens_.size(), false);
  for (std::size_t a = 0; a < clocks_.size(); ++a) {
    if (clocks_[a] != 0) continue;
    const std::size_t p = static_cast<std::size_t>(phases_[a]);
    bool tokens_ok = true;
    for (const PortRef& in : inputs_[a]) {
      if (tokens_[in.channel] < (*in.rates)[p]) {
        tokens_ok = false;
        break;
      }
    }
    if (!tokens_ok) continue;
    for (const PortRef& out : outputs_[a]) {
      const i64 rate = (*out.rates)[p];
      if (rate > 0 && capacities_.is_bounded(out.channel) &&
          occupied_[out.channel] + rate >
              capacities_.capacity(out.channel)) {
        blocked[out.channel] = true;
      }
    }
  }
  std::vector<ChannelId> result;
  for (std::size_t c = 0; c < blocked.size(); ++c) {
    if (blocked[c]) result.emplace_back(c);
  }
  return result;
}

}  // namespace buffy::csdf
