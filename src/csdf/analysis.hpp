// Consistency and repetition vectors for CSDF graphs.
//
// The balance equations operate on whole phase cycles: with r(a) complete
// cycles of actor a per iteration, every channel must satisfy
// total_production * r(src) == total_consumption * r(dst). The firing-level
// repetition vector is then q(a) = r(a) * phases(a).
#pragma once

#include <vector>

#include "csdf/graph.hpp"

namespace buffy::csdf {

/// Repetition counts of a consistent CSDF graph.
struct RepetitionVector {
  /// Complete phase cycles per iteration, per actor.
  std::vector<i64> cycles;
  /// Firings per iteration, per actor (cycles * phases).
  std::vector<i64> firings;

  [[nodiscard]] i64 cycles_of(ActorId a) const { return cycles[a.index()]; }
  [[nodiscard]] i64 firings_of(ActorId a) const { return firings[a.index()]; }
};

/// Computes the repetition vector; throws ConsistencyError when none exists.
[[nodiscard]] RepetitionVector repetition_vector(const Graph& graph);

/// True when a repetition vector exists.
[[nodiscard]] bool is_consistent(const Graph& graph);

}  // namespace buffy::csdf
