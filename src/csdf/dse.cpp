#include "csdf/dse.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "base/diagnostics.hpp"
#include "buffer/dse.hpp"
#include "csdf/analysis.hpp"
#include "csdf/engine.hpp"
#include "csdf/throughput.hpp"

namespace buffy::csdf {

namespace {

// Self-loops keep their consumed tokens while firing, like in the SDF case.
i64 self_loop_extra(const Channel& ch) {
  return ch.is_self_loop() ? ch.max_production() : 0;
}

// Storage dependencies of one bounded run (deadlock state, or the union
// over one period of the cycle).
std::vector<ChannelId> storage_dependencies(const Graph& graph,
                                            const state::Capacities& caps,
                                            i64 cycle_start, i64 period) {
  Engine engine(graph, caps);
  engine.reset();
  std::vector<bool> blocked(graph.num_channels(), false);
  auto absorb = [&]() {
    for (const ChannelId c : engine.space_blocked_channels()) {
      blocked[c.index()] = true;
    }
  };
  if (period == 0) {
    // Deadlocked execution: union over the whole run.
    absorb();
    while (engine.advance()) absorb();
    absorb();
  } else {
    while (engine.now() < cycle_start) {
      BUFFY_ASSERT(engine.advance(), "deadlock before the reported cycle");
    }
    absorb();
    while (engine.now() < cycle_start + period) {
      BUFFY_ASSERT(engine.advance(), "deadlock inside the reported cycle");
      absorb();
    }
  }
  std::vector<ChannelId> result;
  for (std::size_t c = 0; c < blocked.size(); ++c) {
    if (blocked[c]) result.emplace_back(c);
  }
  return result;
}

// Maximal throughput over all finite distributions: grow every capacity
// geometrically from the floors until the throughput stops improving twice
// in a row (monotonicity makes a plateau final once the execution no longer
// ever blocks on space).
struct MaxTputOutcome {
  bool deadlock = false;
  Rational value;
};

MaxTputOutcome maximal_throughput(const Graph& graph,
                                  const std::vector<i64>& floors,
                                  ActorId target, u64 max_steps) {
  std::vector<i64> caps = floors;
  for (i64& c : caps) c = std::max<i64>(c * 2, c + 4);
  MaxTputOutcome out;
  int plateau = 0;
  for (int round = 0; round < 24; ++round) {
    const auto run = compute_throughput(
        graph, state::Capacities::bounded(caps), target, max_steps);
    const auto deps = storage_dependencies(
        graph, state::Capacities::bounded(caps),
        run.deadlocked ? 0 : run.cycle_start_time,
        run.deadlocked ? 0 : run.period);
    if (run.deadlocked && deps.empty()) {
      // Stuck with no firing waiting for space: the deadlock is structural
      // and no finite (or infinite) buffering can resolve it.
      out.deadlock = true;
      return out;
    }
    if (!run.deadlocked && deps.empty()) {
      // No firing is ever delayed by space: larger buffers change nothing.
      out.value = run.throughput;
      return out;
    }
    if (!run.deadlocked) {
      // Sources that outpace their consumers stay space-blocked at every
      // finite capacity, so the dependency test above never fires; detect
      // convergence through the (monotone) throughput plateauing instead.
      if (run.throughput == out.value) {
        if (++plateau >= 2) return out;
      } else {
        out.value = run.throughput;
        plateau = 0;
      }
    }
    for (i64& c : caps) c = checked_mul(c, 2);
  }
  throw Error("CSDF maximal-throughput search did not stabilise");
}

}  // namespace

i64 channel_floor(const Channel& channel) {
  return std::max(channel.initial_tokens + self_loop_extra(channel),
                  channel.max_production());
}

DseResult explore(const Graph& graph, const DseOptions& options) {
  BUFFY_REQUIRE(options.target.valid() &&
                    options.target.index() < graph.num_actors(),
                "DSE target actor is not part of the graph");
  validate(graph);
  (void)repetition_vector(graph);  // throws when inconsistent

  DseResult result;
  std::vector<i64> floors;
  for (const ChannelId c : graph.channel_ids()) {
    floors.push_back(channel_floor(graph.channel(c)));
  }
  result.floors = buffer::StorageDistribution(floors);

  // Establish the maximal throughput; a deadlock that survives arbitrarily
  // large buffers is structural.
  const MaxTputOutcome max = maximal_throughput(
      graph, floors, options.target, options.max_steps_per_run);
  if (max.deadlock) {
    result.deadlock = true;
    return result;
  }
  result.max_throughput = max.value;

  std::set<std::pair<i64, std::vector<i64>>> frontier;
  std::unordered_set<buffer::StorageDistribution,
                     buffer::StorageDistributionHash>
      visited;
  const buffer::StorageDistribution start(floors);
  if (!options.max_distribution_size.has_value() ||
      start.size() <= *options.max_distribution_size) {
    frontier.emplace(start.size(), start.capacities());
    visited.insert(start);
  }

  Rational best_seen(0);
  while (!frontier.empty()) {
    const auto [size, caps] = *frontier.begin();
    frontier.erase(frontier.begin());
    if (++result.distributions_explored > options.max_distributions) {
      throw Error("CSDF DSE exceeded max_distributions");
    }
    const state::Capacities capacities = state::Capacities::bounded(caps);
    const auto run = compute_throughput(graph, capacities, options.target,
                                        options.max_steps_per_run);
    result.max_states_stored =
        std::max(result.max_states_stored, run.states_stored);
    const Rational quantized =
        buffer::quantize_down(run.throughput, options.quantization);
    if (quantized > best_seen) {
      result.pareto.add(
          buffer::ParetoPoint{buffer::StorageDistribution(caps), quantized});
      best_seen = quantized;
    }
    if (!run.throughput.is_zero() &&
        run.throughput >= result.max_throughput) {
      break;  // size-ordered pop: the front is complete
    }
    const auto deps = storage_dependencies(graph, capacities,
                                           run.cycle_start_time,
                                           run.deadlocked ? 0 : run.period);
    // An empty set means larger buffers change nothing: branch exhausted.
    for (const ChannelId c : deps) {
      buffer::StorageDistribution child =
          buffer::StorageDistribution(caps).with(c.index(),
                                                 caps[c.index()] + 1);
      if (options.max_distribution_size.has_value() &&
          child.size() > *options.max_distribution_size) {
        continue;
      }
      if (visited.insert(child).second) {
        frontier.emplace(child.size(), child.capacities());
      }
    }
  }
  return result;
}

}  // namespace buffy::csdf
