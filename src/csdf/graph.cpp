#include "csdf/graph.hpp"

#include <algorithm>
#include <unordered_set>

#include "base/diagnostics.hpp"

namespace buffy::csdf {

namespace {

i64 sum_of(const std::vector<i64>& v) {
  i64 total = 0;
  for (const i64 x : v) total = checked_add(total, x);
  return total;
}

i64 max_of(const std::vector<i64>& v) {
  i64 best = 0;
  for (const i64 x : v) best = std::max(best, x);
  return best;
}

}  // namespace

i64 Channel::total_production() const { return sum_of(production); }
i64 Channel::total_consumption() const { return sum_of(consumption); }
i64 Channel::max_production() const { return max_of(production); }
i64 Channel::max_consumption() const { return max_of(consumption); }

Graph::Graph(std::string name) : name_(std::move(name)) {}

ActorId Graph::add_actor(Actor actor) {
  const ActorId id(actors_.size());
  actors_.push_back(std::move(actor));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

ChannelId Graph::add_channel(Channel channel) {
  BUFFY_REQUIRE(channel.src.valid() && channel.src.index() < actors_.size(),
                "channel '" + channel.name + "' has an invalid source actor");
  BUFFY_REQUIRE(channel.dst.valid() && channel.dst.index() < actors_.size(),
                "channel '" + channel.name +
                    "' has an invalid destination actor");
  const ChannelId id(channels_.size());
  out_[channel.src.index()].push_back(id);
  in_[channel.dst.index()].push_back(id);
  channels_.push_back(std::move(channel));
  return id;
}

const Actor& Graph::actor(ActorId id) const {
  BUFFY_REQUIRE(id.valid() && id.index() < actors_.size(), "invalid actor id");
  return actors_[id.index()];
}

Actor& Graph::actor_mutable(ActorId id) {
  BUFFY_REQUIRE(id.valid() && id.index() < actors_.size(), "invalid actor id");
  return actors_[id.index()];
}

const Channel& Graph::channel(ChannelId id) const {
  BUFFY_REQUIRE(id.valid() && id.index() < channels_.size(),
                "invalid channel id");
  return channels_[id.index()];
}

std::span<const ChannelId> Graph::out_channels(ActorId id) const {
  BUFFY_REQUIRE(id.valid() && id.index() < actors_.size(), "invalid actor id");
  return out_[id.index()];
}

std::span<const ChannelId> Graph::in_channels(ActorId id) const {
  BUFFY_REQUIRE(id.valid() && id.index() < actors_.size(), "invalid actor id");
  return in_[id.index()];
}

std::optional<ActorId> Graph::find_actor(const std::string& name) const {
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    if (actors_[i].name == name) return ActorId(i);
  }
  return std::nullopt;
}

std::vector<ActorId> Graph::actor_ids() const {
  std::vector<ActorId> ids;
  ids.reserve(actors_.size());
  for (std::size_t i = 0; i < actors_.size(); ++i) ids.emplace_back(i);
  return ids;
}

std::vector<ChannelId> Graph::channel_ids() const {
  std::vector<ChannelId> ids;
  ids.reserve(channels_.size());
  for (std::size_t i = 0; i < channels_.size(); ++i) ids.emplace_back(i);
  return ids;
}

void validate(const Graph& graph) {
  std::unordered_set<std::string> actor_names;
  for (const ActorId id : graph.actor_ids()) {
    const Actor& a = graph.actor(id);
    if (a.name.empty()) throw GraphError("actor with empty name");
    if (!actor_names.insert(a.name).second) {
      throw GraphError("duplicate actor name '" + a.name + "'");
    }
    if (a.execution_times.empty()) {
      throw GraphError("actor '" + a.name + "' has no phases");
    }
    for (const i64 e : a.execution_times) {
      if (e < 1) {
        throw GraphError("actor '" + a.name +
                         "': every phase execution time must be >= 1");
      }
    }
  }
  std::unordered_set<std::string> channel_names;
  for (const ChannelId id : graph.channel_ids()) {
    const Channel& c = graph.channel(id);
    if (c.name.empty()) throw GraphError("channel with empty name");
    if (!channel_names.insert(c.name).second) {
      throw GraphError("duplicate channel name '" + c.name + "'");
    }
    if (c.production.size() != graph.actor(c.src).num_phases()) {
      throw GraphError("channel '" + c.name +
                       "': production vector length differs from the "
                       "source actor's phase count");
    }
    if (c.consumption.size() != graph.actor(c.dst).num_phases()) {
      throw GraphError("channel '" + c.name +
                       "': consumption vector length differs from the "
                       "destination actor's phase count");
    }
    for (const i64 r : c.production) {
      if (r < 0) throw GraphError("channel '" + c.name + "': negative rate");
    }
    for (const i64 r : c.consumption) {
      if (r < 0) throw GraphError("channel '" + c.name + "': negative rate");
    }
    if (c.total_production() < 1 || c.total_consumption() < 1) {
      throw GraphError("channel '" + c.name +
                       "': rates must be positive over a full phase cycle");
    }
    if (c.initial_tokens < 0) {
      throw GraphError("channel '" + c.name + "': initial tokens must be >= 0");
    }
  }
}

Graph from_sdf(const sdf::Graph& graph) {
  Graph out(graph.name() + "_csdf");
  for (const sdf::ActorId a : graph.actor_ids()) {
    out.add_actor(Actor{.name = graph.actor(a).name,
                        .execution_times = {graph.actor(a).execution_time}});
  }
  for (const sdf::ChannelId c : graph.channel_ids()) {
    const sdf::Channel& ch = graph.channel(c);
    out.add_channel(Channel{
        .name = ch.name,
        .src = ch.src,
        .dst = ch.dst,
        .production = {ch.production},
        .consumption = {ch.consumption},
        .initial_tokens = ch.initial_tokens,
    });
  }
  return out;
}

}  // namespace buffy::csdf
