#include "service/paged_buffer.hpp"

#include <sys/socket.h>
#include <sys/uio.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "base/diagnostics.hpp"

namespace buffy::service {

PagedBuffer::Page& PagedBuffer::writable_tail(std::size_t min_free) {
  if (!pages_.empty()) {
    Page& tail = pages_.back();
    if (tail.data.size() - tail.end >= min_free) return tail;
  }
  Page page;
  page.data.resize(std::max(kPageSize, min_free));
  pages_.push_back(std::move(page));
  return pages_.back();
}

void PagedBuffer::append(const void* data, std::size_t n) {
  const char* src = static_cast<const char*>(data);
  while (n > 0) {
    Page& tail = writable_tail(1);
    const std::size_t take = std::min(n, tail.data.size() - tail.end);
    std::memcpy(tail.data.data() + tail.end, src, take);
    tail.end += take;
    size_ += take;
    src += take;
    n -= take;
  }
}

void PagedBuffer::add_reference(std::string&& text) {
  if (text.empty()) return;
  Page page;
  page.end = text.size();
  page.data = std::move(text);
  size_ += page.end;
  pages_.push_back(std::move(page));
}

std::span<char> PagedBuffer::peek_space(std::size_t min_bytes) {
  BUFFY_ASSERT(min_bytes > 0, "peek_space needs a positive request");
  Page& tail = writable_tail(min_bytes);
  return {tail.data.data() + tail.end, tail.data.size() - tail.end};
}

void PagedBuffer::commit_space(std::size_t n) {
  if (n == 0) return;
  BUFFY_ASSERT(!pages_.empty(), "commit_space without peek_space");
  Page& tail = pages_.back();
  BUFFY_ASSERT(n <= tail.data.size() - tail.end,
               "commit_space beyond the peeked span");
  tail.end += n;
  size_ += n;
}

void PagedBuffer::drain(std::size_t n) {
  BUFFY_ASSERT(n <= size_, "drain beyond buffer size");
  size_ -= n;
  while (n > 0) {
    Page& head = pages_.front();
    const std::size_t live = head.end - head.begin;
    if (n < live) {
      head.begin += n;
      return;
    }
    n -= live;
    pages_.pop_front();
  }
}

std::ptrdiff_t PagedBuffer::find(char needle, std::size_t from) const {
  std::size_t offset = 0;
  for (const Page& page : pages_) {
    const std::size_t live = page.end - page.begin;
    if (from < live) {
      const char* base = page.data.data() + page.begin + from;
      const void* hit = std::memchr(base, needle, live - from);
      if (hit != nullptr) {
        return static_cast<std::ptrdiff_t>(
            offset + from +
            static_cast<std::size_t>(static_cast<const char*>(hit) - base));
      }
      from = 0;
    } else {
      from -= live;
    }
    offset += live;
  }
  return -1;
}

std::string PagedBuffer::copy_out(std::size_t n) const {
  BUFFY_ASSERT(n <= size_, "copy_out beyond buffer size");
  std::string out;
  out.reserve(n);
  for (const Page& page : pages_) {
    if (n == 0) break;
    const std::size_t take = std::min(n, page.end - page.begin);
    out.append(page.data.data() + page.begin, take);
    n -= take;
  }
  return out;
}

std::ptrdiff_t PagedBuffer::flush_to(int fd) {
  if (size_ == 0) return 0;
  iovec iov[kMaxIov];
  std::size_t count = 0;
  for (const Page& page : pages_) {
    if (count == kMaxIov) break;
    const std::size_t live = page.end - page.begin;
    if (live == 0) continue;
    iov[count].iov_base =
        const_cast<char*>(page.data.data()) + page.begin;
    iov[count].iov_len = live;
    ++count;
  }
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = count;
  ssize_t written = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
  if (written < 0 && errno == ENOTSOCK) {
    // Pipes and regular files reject sendmsg; writev cannot suppress
    // SIGPIPE, but non-socket fds only appear in tests and tools that
    // ignore it process-wide.
    written = ::writev(fd, iov, static_cast<int>(count));
  }
  if (written < 0) return -1;
  drain(static_cast<std::size_t>(written));
  return written;
}

LineFramer::Status LineFramer::next_line(std::string& line) {
  const std::ptrdiff_t pos = buf_.find('\n', scanned_);
  if (pos < 0) {
    scanned_ = buf_.size();
    return scanned_ > max_line_bytes_ ? Status::Overflow : Status::NeedMore;
  }
  const std::size_t len = static_cast<std::size_t>(pos);
  if (len > max_line_bytes_) {
    scanned_ = buf_.size();
    return Status::Overflow;
  }
  line = buf_.copy_out(len);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  buf_.drain(len + 1);
  scanned_ = 0;
  return Status::Line;
}

}  // namespace buffy::service
