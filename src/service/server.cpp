#include "service/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "analysis/bounds.hpp"
#include "analysis/max_throughput.hpp"
#include "base/diagnostics.hpp"
#include "buffer/dse.hpp"
#include "buffer/dse_exact.hpp"
#include "buffer/fast_front.hpp"
#include "io/dsl.hpp"
#include "io/sdf_xml.hpp"
#include "service/paged_buffer.hpp"
#include "state/throughput.hpp"

namespace buffy::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

/// Decodes the request's graph payload with the existing io/ readers
/// (Auto sniffs: XML starts with '<' after whitespace, everything else is
/// the DSL). Reader diagnostics surface as parse_error responses.
sdf::Graph parse_graph(const Request& req) {
  GraphFormat format = req.format;
  if (format == GraphFormat::Auto) {
    format = GraphFormat::Dsl;
    for (const char c : req.graph_text) {
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') continue;
      if (c == '<') format = GraphFormat::Xml;
      break;
    }
  }
  return format == GraphFormat::Xml ? io::read_sdf_xml(req.graph_text)
                                    : io::read_dsl(req.graph_text);
}

sdf::ActorId resolve_target(const sdf::Graph& graph, const std::string& name) {
  if (graph.num_actors() == 0) {
    throw ProtocolError(ErrorCode::GraphInvalid, "the graph has no actors");
  }
  if (name.empty()) return sdf::ActorId(graph.num_actors() - 1);
  const std::optional<sdf::ActorId> id = graph.find_actor(name);
  if (!id.has_value()) {
    throw ProtocolError(ErrorCode::GraphInvalid,
                        "no actor named '" + name + "'");
  }
  return *id;
}

/// Magnitude admission (DESIGN.md §16): derives the graph's static
/// magnitude certificate under the structural default budget and rejects
/// graphs whose envelopes leave i64 — every engine downstream would only
/// reach an OverflowError mid-analysis, so the daemon answers the
/// structured magnitude_overflow code up front instead. Inconsistent
/// graphs pass through untouched: the analysis entry points diagnose them
/// with their richer graph_error messages. (Quality downgrade is NOT
/// decided here: the certificate's lp_coeff_bound envelope covers every
/// LP the budget box could build and routinely exceeds the stamped bound
/// of the problems the fast tier actually solves — handle_explore judges
/// the solves' outcome instead.)
void admit_magnitudes(const sdf::Graph& graph) {
  const analysis::BoundsCertificate cert = analysis::derive_bounds(graph);
  if (cert.consistent && !cert.fits_i64) {
    throw ProtocolError(ErrorCode::MagnitudeOverflow,
                        "graph '" + graph.name() +
                            "' rejected at admission: " +
                            cert.overflow_detail);
  }
}

/// Best-effort id recovery for error responses to requests that failed
/// request-level validation: a client that sent `{"id":7,...}` with a bad
/// member still gets its id echoed so it can correlate the error.
std::optional<i64> try_extract_id(const std::string& line) {
  try {
    const JsonValue doc = JsonValue::parse(line);
    const JsonValue* id = doc.find("id");
    if (id != nullptr && id->is_int()) return id->as_int();
  } catch (const std::exception&) {
  }
  return std::nullopt;
}

}  // namespace

// One accepted client. The reader thread owns the receive side; the send
// side is shared between the reader (inline responses) and pool workers
// (job responses) under write_mu. `jobs` counts pool jobs still holding
// this connection — a connection is reclaimed only when its reader exited
// AND no job references it, so a worker never writes into a recycled fd.
struct Server::Connection {
  int fd = -1;
  std::thread reader;
  std::mutex write_mu;
  std::mutex inflight_mu;
  std::unordered_map<i64, exec::CancellationToken> inflight;
  std::atomic<bool> open{true};
  std::atomic<bool> done{false};
  std::atomic<u64> jobs{0};
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      pool_(std::make_unique<exec::ThreadPool>(
          options_.threads == 0 ? exec::ThreadPool::default_concurrency()
                                : options_.threads)),
      registry_(options_.cache_graphs, options_.cache_entries_per_graph),
      started_at_(std::chrono::steady_clock::now()) {
  BUFFY_REQUIRE(options_.queue_capacity > 0,
                "ServerOptions::queue_capacity must be >= 1");
}

Server::~Server() {
  shutdown();
  wait();
}

void Server::start() {
  BUFFY_REQUIRE(!started_.exchange(true), "Server::start() called twice");
  BUFFY_REQUIRE(
      !options_.unix_socket_path.empty() || options_.tcp_port.has_value(),
      "no listener configured: set unix_socket_path and/or tcp_port");
  try {
    if (!options_.unix_socket_path.empty()) {
      const std::string& path = options_.unix_socket_path;
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (path.size() >= sizeof(addr.sun_path)) {
        throw Error("unix socket path too long: '" + path + "'");
      }
      std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
      unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (unix_fd_ < 0) throw_errno("socket(AF_UNIX)");
      ::unlink(path.c_str());
      if (::bind(unix_fd_, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        throw_errno("bind('" + path + "')");
      }
      if (::listen(unix_fd_, 128) != 0) throw_errno("listen('" + path + "')");
    }
    if (options_.tcp_port.has_value()) {
      BUFFY_REQUIRE(*options_.tcp_port >= 0 && *options_.tcp_port <= 65535,
                    "tcp_port must be in [0, 65535]");
      tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      if (tcp_fd_ < 0) throw_errno("socket(AF_INET)");
      const int one = 1;
      ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<std::uint16_t>(*options_.tcp_port));
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (::bind(tcp_fd_, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        throw_errno("bind(tcp port " + std::to_string(*options_.tcp_port) +
                    ")");
      }
      if (::listen(tcp_fd_, 128) != 0) throw_errno("listen(tcp)");
      socklen_t len = sizeof(addr);
      if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
          0) {
        throw_errno("getsockname(tcp)");
      }
      tcp_port_ = ntohs(addr.sin_port);
    }
  } catch (...) {
    if (unix_fd_ >= 0) ::close(unix_fd_);
    if (tcp_fd_ >= 0) ::close(tcp_fd_);
    unix_fd_ = tcp_fd_ = -1;
    throw;
  }
  if (unix_fd_ >= 0) {
    accept_threads_.emplace_back([this] { accept_loop(unix_fd_); });
  }
  if (tcp_fd_ >= 0) {
    accept_threads_.emplace_back([this] { accept_loop(tcp_fd_); });
  }
}

void Server::shutdown() {
  if (!draining_.exchange(true)) {
    // SHUT_RDWR unblocks accept() in the listener threads; the fds are
    // closed in wait(), after those threads joined.
    if (unix_fd_ >= 0) ::shutdown(unix_fd_, SHUT_RDWR);
    if (tcp_fd_ >= 0) ::shutdown(tcp_fd_, SHUT_RDWR);
  }
  jobs_cv_.notify_all();
}

void Server::wait() {
  if (!started_.load(std::memory_order_acquire)) return;
  {
    std::unique_lock<std::mutex> lock(jobs_mu_);
    jobs_cv_.wait(lock, [this] {
      return draining_.load(std::memory_order_relaxed) &&
             jobs_in_system_ == 0 && inline_shutdowns_ == 0;
    });
  }
  if (reaped_.exchange(true)) return;
  for (std::thread& t : accept_threads_) t.join();
  accept_threads_.clear();
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    ::unlink(options_.unix_socket_path.c_str());
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  {
    const std::lock_guard<std::mutex> lock(conns_mu_);
    // Every job has drained, so the readers are the only users left:
    // unblock them, join them, then the fds can close.
    for (const std::unique_ptr<Connection>& c : conns_) {
      c->open.store(false, std::memory_order_relaxed);
      ::shutdown(c->fd, SHUT_RDWR);
    }
    for (const std::unique_ptr<Connection>& c : conns_) {
      if (c->reader.joinable()) c->reader.join();
      ::close(c->fd);
    }
    conns_.clear();
  }
  pool_->stop();
}

void Server::accept_loop(int listen_fd) {
  for (;;) {
    const int client_fd = ::accept(listen_fd, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or a hard error): stop accepting
    }
    if (draining_.load(std::memory_order_relaxed)) {
      ::close(client_fd);
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_open_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Connection>();
    conn->fd = client_fd;
    Connection* raw = conn.get();
    {
      const std::lock_guard<std::mutex> lock(conns_mu_);
      reap_finished_locked();
      conns_.push_back(std::move(conn));
      raw->reader = std::thread([this, raw] { reader_loop(raw); });
    }
  }
}

void Server::reap_finished_locked() {
  for (std::size_t i = 0; i < conns_.size();) {
    Connection& c = *conns_[i];
    if (c.done.load(std::memory_order_acquire) &&
        c.jobs.load(std::memory_order_acquire) == 0) {
      c.reader.join();
      ::close(c.fd);
      conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void Server::reader_loop(Connection* conn) {
  // Paged inbound path: recv() lands directly in the framer's tail page
  // (peek_space/commit_space), and line extraction drains pages instead
  // of erasing a contiguous string's front — O(new bytes) per read
  // regardless of how many requests are pipelined on the connection.
  LineFramer framer(options_.max_request_bytes);
  std::string line;
  bool overflowed = false;
  while (!overflowed) {
    const std::span<char> space = framer.buffer().peek_space(4096);
    const ssize_t n = ::recv(conn->fd, space.data(), space.size(), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    framer.buffer().commit_space(static_cast<std::size_t>(n));
    for (;;) {
      const LineFramer::Status status = framer.next_line(line);
      if (status == LineFramer::Status::NeedMore) break;
      if (status == LineFramer::Status::Overflow) {
        respond(conn,
                error_response(std::nullopt, ErrorCode::BadRequest,
                               "request line exceeds " +
                                   std::to_string(options_.max_request_bytes) +
                                   " bytes"),
                /*ok=*/false);
        overflowed = true;
        break;
      }
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      handle_line(conn, line);
    }
  }
  conn->open.store(false, std::memory_order_relaxed);
  ::shutdown(conn->fd, SHUT_RDWR);
  {
    // A disconnected client cannot receive results: cancel whatever it
    // still has in flight so workers stop burning time on it.
    const std::lock_guard<std::mutex> lock(conn->inflight_mu);
    for (const auto& [id, token] : conn->inflight) token.cancel();
  }
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
  conn->done.store(true, std::memory_order_release);
}

void Server::respond(Connection* conn, std::string line, bool ok) {
  (ok ? responses_ok_ : responses_error_)
      .fetch_add(1, std::memory_order_relaxed);
  if (!conn->open.load(std::memory_order_relaxed)) return;
  const std::lock_guard<std::mutex> lock(conn->write_mu);
  // Zero-copy outbound path: the already-materialised response line is
  // adopted as a page (add_reference) and the newline rides in the page
  // chain's tail — no per-message reassembly into a fresh string.
  PagedBuffer out;
  out.add_reference(std::move(line));
  out.append("\n");
  while (!out.empty()) {
    if (out.flush_to(conn->fd) < 0) {
      if (errno == EINTR) continue;
      conn->open.store(false, std::memory_order_relaxed);
      return;
    }
  }
}

void Server::handle_line(Connection* conn, const std::string& line) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  Request req;
  try {
    req = parse_request(line);
  } catch (const ProtocolError& e) {
    respond(conn, error_response(try_extract_id(line), e.code(), e.what()),
            /*ok=*/false);
    return;
  }

  switch (req.method) {
    case Method::Status: {
      status_requests_.fetch_add(1, std::memory_order_relaxed);
      respond(conn, ok_response(req.id, status().json()), /*ok=*/true);
      return;
    }
    case Method::Cancel: {
      cancel_requests_.fetch_add(1, std::memory_order_relaxed);
      bool found = false;
      {
        const std::lock_guard<std::mutex> lock(conn->inflight_mu);
        const auto it = conn->inflight.find(*req.cancel_id);
        if (it != conn->inflight.end()) {
          it->second.cancel();
          found = true;
        }
      }
      JsonValue result = JsonValue::object();
      result.set("cancelled", JsonValue::boolean(found));
      respond(conn, ok_response(req.id, result), /*ok=*/true);
      return;
    }
    case Method::Shutdown: {
      shutdown_requests_.fetch_add(1, std::memory_order_relaxed);
      {
        const std::lock_guard<std::mutex> lock(jobs_mu_);
        ++inline_shutdowns_;
      }
      shutdown();
      {
        // Drain barrier: every admitted job completes (running ones
        // finish their analysis, queued ones answer shutting_down) before
        // the confirmation goes out. inline_shutdowns_ keeps wait() from
        // closing this connection under the response.
        std::unique_lock<std::mutex> lock(jobs_mu_);
        jobs_cv_.wait(lock, [this] { return jobs_in_system_ == 0; });
      }
      JsonValue result = JsonValue::object();
      result.set("drained", JsonValue::boolean(true));
      respond(conn, ok_response(req.id, result), /*ok=*/true);
      {
        const std::lock_guard<std::mutex> lock(jobs_mu_);
        --inline_shutdowns_;
      }
      jobs_cv_.notify_all();
      return;
    }
    case Method::AnalyzeThroughput:
    case Method::ExplorePareto:
    case Method::ExploreSlice:
      break;
  }

  (req.method == Method::AnalyzeThroughput
       ? analyze_requests_
       : req.method == Method::ExploreSlice ? slice_requests_
                                            : explore_requests_)
      .fetch_add(1, std::memory_order_relaxed);

  // Admission control: bounded jobs in the system; over the bound the
  // client hears `overloaded` immediately instead of queueing unbounded
  // work (and never a silent drop). During a drain nothing is admitted.
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    if (draining_.load(std::memory_order_relaxed)) {
      shutting_down_rejections_.fetch_add(1, std::memory_order_relaxed);
      respond(conn,
              error_response(req.id, ErrorCode::ShuttingDown,
                             "the daemon is draining"),
              /*ok=*/false);
      return;
    }
    if (jobs_in_system_ >= options_.queue_capacity) {
      overloaded_.fetch_add(1, std::memory_order_relaxed);
      respond(conn,
              error_response(req.id, ErrorCode::Overloaded,
                             "job queue at capacity (" +
                                 std::to_string(options_.queue_capacity) +
                                 "); retry later"),
              /*ok=*/false);
      return;
    }
    ++jobs_in_system_;
  }
  jobs_queued_.fetch_add(1, std::memory_order_relaxed);
  conn->jobs.fetch_add(1, std::memory_order_relaxed);

  // `parent` is the explicit-cancellation root: a `cancel` request or a
  // client disconnect fires it. Deadlines are layered on top inside
  // run_job, so run_job can tell the two apart afterwards.
  const exec::CancellationToken parent = exec::CancellationToken::cancellable();
  if (req.id.has_value()) {
    const std::lock_guard<std::mutex> lock(conn->inflight_mu);
    conn->inflight[*req.id] = parent;
  }
  pool_->submit([this, conn, req, parent] { run_job(conn, req, parent); });
}

void Server::run_job(Connection* conn, const Request& req,
                     const exec::CancellationToken& parent) {
  jobs_queued_.fetch_sub(1, std::memory_order_relaxed);
  jobs_running_.fetch_add(1, std::memory_order_relaxed);

  std::string response;
  bool ok = false;
  if (draining_.load(std::memory_order_relaxed)) {
    // Start gate: the job was queued before the drain began but never
    // started — the protocol's promise is shutting_down, not a result.
    shutting_down_rejections_.fetch_add(1, std::memory_order_relaxed);
    response = error_response(req.id, ErrorCode::ShuttingDown,
                              "the daemon began draining before this "
                              "request started");
  } else {
    exec::CancellationToken token = parent;
    if (req.deadline_ms.has_value()) {
      token = parent.with_deadline(*req.deadline_ms);
    } else if (options_.default_deadline_ms > 0) {
      token = parent.with_deadline(options_.default_deadline_ms);
    }
    try {
      const JsonValue result =
          req.method == Method::AnalyzeThroughput
              ? handle_analyze(req, token)
              : req.method == Method::ExploreSlice
                    ? handle_explore_slice(req, token)
                    : handle_explore(req, token);
      response = ok_response(req.id, result);
      ok = true;
    } catch (const exec::Cancelled&) {
      // The parent only ever fires on an explicit cancel / disconnect;
      // anything else on the chain is the deadline.
      const ErrorCode code = parent.cancelled() ? ErrorCode::Cancelled
                                                : ErrorCode::DeadlineExceeded;
      response = error_response(req.id, code,
                                code == ErrorCode::Cancelled
                                    ? "the request was cancelled"
                                    : "the deadline expired before the "
                                      "analysis finished");
    } catch (const ProtocolError& e) {
      response = error_response(req.id, e.code(), e.what());
    } catch (const ParseError& e) {
      response = error_response(req.id, ErrorCode::GraphParseError, e.what());
    } catch (const GraphError& e) {
      response = error_response(req.id, ErrorCode::GraphInvalid, e.what());
    } catch (const InternalError& e) {
      response = error_response(req.id, ErrorCode::InternalError, e.what());
    } catch (const Error& e) {
      // Remaining library preconditions are request-induced (capacities
      // below initial tokens, safety bounds exceeded): the graph/request
      // combination is invalid, the daemon is fine.
      response = error_response(req.id, ErrorCode::GraphInvalid, e.what());
    } catch (const std::exception& e) {
      response = error_response(req.id, ErrorCode::InternalError, e.what());
    }
  }
  respond(conn, response, ok);

  if (req.id.has_value()) {
    const std::lock_guard<std::mutex> lock(conn->inflight_mu);
    conn->inflight.erase(*req.id);
  }
  jobs_running_.fetch_sub(1, std::memory_order_relaxed);
  // Last touch of conn. This must precede the jobs_in_system_ decrement:
  // once that hits zero the drain in wait() may join readers and destroy
  // every Connection, so no statement after this line may reference conn.
  conn->jobs.fetch_sub(1, std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    --jobs_in_system_;
  }
  jobs_cv_.notify_all();
}

JsonValue Server::handle_analyze(const Request& req,
                                 const exec::CancellationToken& token) {
  token.checkpoint();
  const sdf::Graph graph = parse_graph(req);
  const sdf::ActorId target = resolve_target(graph, req.target);
  admit_magnitudes(graph);
  token.checkpoint();

  JsonValue result = JsonValue::object();
  result.set("target", JsonValue::string(graph.actor(target).name));
  if (req.capacities.empty()) {
    // Maximal achievable throughput: the MCM route (HSDF expansion), the
    // reference the state-space engines are differentially tested against.
    const analysis::MaxThroughput mt = analysis::max_throughput(graph);
    result.set("deadlock", JsonValue::boolean(mt.deadlock));
    result.set("throughput",
               JsonValue::string(mt.actor_throughput(target).str()));
    if (!mt.deadlock) {
      result.set("iteration_period",
                 JsonValue::string(mt.iteration_period.str()));
    }
  } else {
    if (req.capacities.size() != graph.num_channels()) {
      throw ProtocolError(
          ErrorCode::GraphInvalid,
          "'capacities' has " + std::to_string(req.capacities.size()) +
              " entries but the graph has " +
              std::to_string(graph.num_channels()) + " channels");
    }
    state::ThroughputOptions opts;
    opts.target = target;
    opts.cancel = token;
    opts.progress = &progress_;
    const state::ThroughputResult run = state::compute_throughput(
        graph, state::Capacities::bounded(req.capacities), opts);
    result.set("deadlock", JsonValue::boolean(run.deadlocked));
    result.set("throughput", JsonValue::string(run.throughput.str()));
    result.set("states_stored",
               JsonValue::integer(static_cast<i64>(run.states_stored)));
    result.set("period", JsonValue::integer(run.period));
  }
  return result;
}

JsonValue Server::handle_explore(const Request& req,
                                 const exec::CancellationToken& token) {
  token.checkpoint();
  const sdf::Graph graph = parse_graph(req);
  const sdf::ActorId target = resolve_target(graph, req.target);
  admit_magnitudes(graph);

  // quality=fast: the LP-only front (buffer/fast_front) — sound but
  // approximate, answered without per-candidate simulation, and without
  // touching the warm cache registry (fast answers must never displace or
  // seed exact warm state; a later quality=exact query builds it).
  //
  // The fast tier rides on the LP models, whose exact rational arithmetic
  // the simplex pre-sizes from the stamped coefficient bound (DESIGN.md
  // §16): a graph whose coefficients exceed the safe pivot envelope gets
  // numeric_overflow back per solve instead of a grid point. When *every*
  // grid solve overflows, the fast front has degenerated to the bare
  // max-throughput anchor — sound but useless — so the request is
  // downgraded to the exact (simulation) engine, which only needs the i64
  // envelopes admission already verified, and the response is marked.
  // The daemon judges the outcome rather than the certificate's
  // lp_coeff_bound: the envelope covers every LP the budget box could
  // build and routinely exceeds the stamped bound of the problems the
  // grid actually solves (h263 clears the pivot gate by 300x under it).
  bool downgraded = false;
  bool want_fast = req.quality == std::optional<std::string>("fast");
  if (want_fast) {
    token.checkpoint();
    const buffer::FastFrontResult fast = buffer::fast_front(
        graph, target, req.levels.value_or(8));
    token.checkpoint();
    if (fast.lp_solves > 0 && fast.lp_overflows == fast.lp_solves) {
      want_fast = false;
      downgraded = true;
    } else {
      JsonValue res = JsonValue::object();
      res.set("target", JsonValue::string(graph.actor(target).name));
      res.set("quality", JsonValue::string("fast"));
      res.set("deadlock", JsonValue::boolean(fast.bounds.deadlock));
      if (!fast.bounds.deadlock) {
        JsonValue bounds = JsonValue::object();
        bounds.set("lb_size", JsonValue::integer(fast.bounds.lb_size));
        bounds.set("ub_size", JsonValue::integer(fast.bounds.ub_size));
        bounds.set("max_throughput",
                   JsonValue::string(fast.bounds.max_throughput.str()));
        res.set("bounds", bounds);
      }
      res.set("front", JsonValue::string(fast.pareto.str()));
      JsonValue points = JsonValue::array();
      for (const buffer::ParetoPoint& p : fast.pareto.points()) {
        JsonValue point = JsonValue::object();
        point.set("size", JsonValue::integer(p.size()));
        point.set("throughput", JsonValue::string(p.throughput.str()));
        JsonValue caps = JsonValue::array();
        for (const i64 c : p.distribution.capacities()) {
          caps.push_back(JsonValue::integer(c));
        }
        point.set("capacities", caps);
        points.push_back(point);
      }
      res.set("points", points);
      res.set("lp_solves",
              JsonValue::integer(static_cast<i64>(fast.lp_solves)));
      res.set("lp_pivots",
              JsonValue::integer(static_cast<i64>(fast.lp_pivots)));
      res.set("lp_cuts", JsonValue::integer(static_cast<i64>(fast.lp_cuts)));
      res.set("seconds", JsonValue::number(fast.seconds));
      return res;
    }
  }

  buffer::DseOptions opts;
  opts.target = target;
  opts.engine = req.engine == std::optional<std::string>("exh")
                    ? buffer::DseEngine::Exhaustive
                    : buffer::DseEngine::Incremental;
  opts.quantization_levels = req.levels;
  opts.max_distribution_size = req.max_size;
  opts.throughput_goal = req.goal;
  opts.min_throughput = req.min_throughput;
  {
    const unsigned cap = options_.max_threads_per_request == 0
                             ? 1
                             : options_.max_threads_per_request;
    // Requests that don't ask for threads get the full per-request grant:
    // the engines spawn workers lazily and keep cheap slices sequential
    // (adaptive granularity), so the grant costs nothing on small
    // explorations, and the front is byte-identical at any thread count.
    opts.threads = req.threads.has_value()
                       ? static_cast<unsigned>(std::min<i64>(
                             *req.threads, static_cast<i64>(cap)))
                       : cap;
  }
  opts.use_throughput_cache = req.use_cache;
  opts.cancel = token;
  opts.progress = &progress_;

  // The warm-state machinery: repeated queries on the same (graph, target)
  // share one ThroughputCache through the registry. Soundness rests on
  // throughput being a pure function of (graph, target, capacities) — see
  // cache_registry.hpp — and the front is byte-identical warm or cold.
  CacheRegistry::Lease lease;  // keeps an evicted cache alive while used
  bool warm = false;
  if (req.use_cache) {
    token.checkpoint();
    const analysis::MaxThroughput mt = analysis::max_throughput(graph);
    if (!mt.deadlock) {
      const u64 fingerprint =
          graph_fingerprint(graph, graph.actor(target).name);
      lease = registry_.get_or_create(fingerprint, mt.actor_throughput(target));
      opts.shared_cache = lease.cache.get();
      warm = lease.warm;
    }
  }

  const buffer::DseResult result = buffer::explore(graph, opts);
  if (result.cancelled) {
    // The engines return a verified partial front on a deadline; the
    // protocol's contract is an error code, so the partial result is
    // dropped and the cause reported (run_job picks the code).
    throw exec::Cancelled();
  }

  JsonValue res = JsonValue::object();
  res.set("target", JsonValue::string(graph.actor(target).name));
  res.set("quality", JsonValue::string("exact"));
  if (downgraded) res.set("downgraded", JsonValue::boolean(true));
  res.set("deadlock", JsonValue::boolean(result.bounds.deadlock));
  if (!result.bounds.deadlock) {
    JsonValue bounds = JsonValue::object();
    bounds.set("lb_size", JsonValue::integer(result.bounds.lb_size));
    bounds.set("ub_size", JsonValue::integer(result.bounds.ub_size));
    bounds.set("max_throughput",
               JsonValue::string(result.bounds.max_throughput.str()));
    res.set("bounds", bounds);
  }
  // `front` is the exact text explore_cli prints: the service tests
  // compare it byte-for-byte against the CLI on the same graph.
  res.set("front", JsonValue::string(result.pareto.str()));
  JsonValue points = JsonValue::array();
  for (const buffer::ParetoPoint& p : result.pareto.points()) {
    JsonValue point = JsonValue::object();
    point.set("size", JsonValue::integer(p.size()));
    point.set("throughput", JsonValue::string(p.throughput.str()));
    JsonValue caps = JsonValue::array();
    for (const i64 c : p.distribution.capacities()) {
      caps.push_back(JsonValue::integer(c));
    }
    point.set("capacities", caps);
    points.push_back(point);
  }
  res.set("points", points);
  res.set("distributions_explored",
          JsonValue::integer(static_cast<i64>(result.distributions_explored)));
  res.set("simulations_run",
          JsonValue::integer(static_cast<i64>(result.simulations_run)));
  res.set("cache_hits",
          JsonValue::integer(static_cast<i64>(result.cache_hits)));
  res.set("dominance_skips",
          JsonValue::integer(static_cast<i64>(result.dominance_skips)));
  res.set("lp_prunes",
          JsonValue::integer(static_cast<i64>(result.lp_prunes)));
  res.set("lp_cuts", JsonValue::integer(static_cast<i64>(result.lp_cuts)));
  res.set("static_narrow", JsonValue::boolean(result.static_narrow));
  res.set("max_states_stored",
          JsonValue::integer(static_cast<i64>(result.max_states_stored)));
  res.set("seconds", JsonValue::number(result.seconds));
  res.set("cached_graph", JsonValue::boolean(warm));
  return res;
}

JsonValue Server::handle_explore_slice(const Request& req,
                                       const exec::CancellationToken& token) {
  token.checkpoint();
  const sdf::Graph graph = parse_graph(req);
  const sdf::ActorId target = resolve_target(graph, req.target);
  admit_magnitudes(graph);
  token.checkpoint();

  buffer::DseOptions opts;
  opts.target = target;
  opts.engine = buffer::DseEngine::Exhaustive;
  opts.quantization_levels = req.levels;
  opts.max_distribution_size = req.max_size;
  opts.throughput_goal = req.goal;
  {
    const unsigned cap = options_.max_threads_per_request == 0
                             ? 1
                             : options_.max_threads_per_request;
    opts.threads = req.threads.has_value()
                       ? static_cast<unsigned>(std::min<i64>(
                             *req.threads, static_cast<i64>(cap)))
                       : cap;
  }
  opts.use_throughput_cache = req.use_cache;
  opts.cancel = token;
  opts.progress = &progress_;

  std::optional<state::ThroughputSolver> setup_solver;
  if (opts.reuse_engines) setup_solver.emplace(graph);
  const buffer::DesignSpaceBounds bounds = buffer::design_space_bounds(
      graph, target, opts.max_steps_per_run,
      setup_solver.has_value() ? &*setup_solver : nullptr);
  if (bounds.deadlock) {
    throw ProtocolError(ErrorCode::GraphInvalid,
                        "the graph deadlocks for every storage "
                        "distribution; there is no slice to evaluate");
  }
  // The router replicates this exact preprocessing before planning the
  // d&c, so both sides evaluate the slice under identical engine-effective
  // options — the byte-identity contract of the scattered front.
  buffer::apply_quantization_levels(opts, bounds);

  // Fingerprint-affine warm state: the router routes every slice of a
  // graph to its home shard, so repeated waves hit this lease warm.
  CacheRegistry::Lease lease;
  if (req.use_cache) {
    token.checkpoint();
    const u64 fingerprint =
        graph_fingerprint(graph, graph.actor(target).name);
    lease = registry_.get_or_create(fingerprint, bounds.max_throughput);
    opts.shared_cache = lease.cache.get();
  }

  buffer::SliceRequest slice;
  slice.size = *req.slice_size;
  if (!req.slice_seed.empty()) slice.seed = req.slice_seed;
  slice.slice_goal = *req.slice_goal;
  const buffer::SliceOutcome outcome =
      buffer::explore_size_slice(graph, opts, bounds, slice);

  JsonValue res = JsonValue::object();
  res.set("target", JsonValue::string(graph.actor(target).name));
  res.set("size", JsonValue::integer(slice.size));
  res.set("throughput", JsonValue::string(outcome.throughput.str()));
  JsonValue caps = JsonValue::array();
  for (const i64 c : outcome.witness.capacities()) {
    caps.push_back(JsonValue::integer(c));
  }
  res.set("capacities", caps);
  res.set("distributions_explored",
          JsonValue::integer(static_cast<i64>(outcome.distributions_explored)));
  res.set("simulations_run",
          JsonValue::integer(static_cast<i64>(outcome.simulations_run)));
  res.set("cache_hits",
          JsonValue::integer(static_cast<i64>(outcome.cache_hits)));
  res.set("dominance_skips",
          JsonValue::integer(static_cast<i64>(outcome.dominance_skips)));
  res.set("lp_prunes",
          JsonValue::integer(static_cast<i64>(outcome.lp_prunes)));
  res.set("lp_cuts", JsonValue::integer(static_cast<i64>(outcome.lp_cuts)));
  res.set("static_narrow", JsonValue::boolean(outcome.static_narrow));
  res.set("max_states_stored",
          JsonValue::integer(static_cast<i64>(outcome.max_states_stored)));
  res.set("cached_graph", JsonValue::boolean(lease.warm));
  return res;
}

ServerStatus Server::status() const {
  ServerStatus s;
  s.draining = draining_.load(std::memory_order_relaxed);
  s.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();
  s.requests_total = requests_total_.load(std::memory_order_relaxed);
  s.analyze_requests = analyze_requests_.load(std::memory_order_relaxed);
  s.explore_requests = explore_requests_.load(std::memory_order_relaxed);
  s.slice_requests = slice_requests_.load(std::memory_order_relaxed);
  s.status_requests = status_requests_.load(std::memory_order_relaxed);
  s.cancel_requests = cancel_requests_.load(std::memory_order_relaxed);
  s.shutdown_requests = shutdown_requests_.load(std::memory_order_relaxed);
  s.responses_ok = responses_ok_.load(std::memory_order_relaxed);
  s.responses_error = responses_error_.load(std::memory_order_relaxed);
  s.overloaded = overloaded_.load(std::memory_order_relaxed);
  s.shutting_down_rejections =
      shutting_down_rejections_.load(std::memory_order_relaxed);
  s.jobs_queued = jobs_queued_.load(std::memory_order_relaxed);
  s.jobs_running = jobs_running_.load(std::memory_order_relaxed);
  s.queue_capacity = options_.queue_capacity;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_open = connections_open_.load(std::memory_order_relaxed);
  s.cache_graphs_resident = registry_.resident();
  s.cache_graph_capacity = registry_.max_graphs();
  s.cache_warm_hits = registry_.warm_hits();
  s.cache_graph_evictions = registry_.evictions();
  s.cache_totals = registry_.totals();
  s.progress = progress_.snapshot();
  return s;
}

JsonValue ServerStatus::json() const {
  const auto u = [](u64 v) { return JsonValue::integer(static_cast<i64>(v)); };
  JsonValue o = JsonValue::object();
  o.set("draining", JsonValue::boolean(draining));
  o.set("uptime_seconds", JsonValue::number(uptime_seconds));

  JsonValue requests = JsonValue::object();
  requests.set("total", u(requests_total));
  requests.set("analyze_throughput", u(analyze_requests));
  requests.set("explore_pareto", u(explore_requests));
  requests.set("explore_slice", u(slice_requests));
  requests.set("status", u(status_requests));
  requests.set("cancel", u(cancel_requests));
  requests.set("shutdown", u(shutdown_requests));
  o.set("requests", requests);

  JsonValue responses = JsonValue::object();
  responses.set("ok", u(responses_ok));
  responses.set("error", u(responses_error));
  responses.set("overloaded", u(overloaded));
  responses.set("shutting_down", u(shutting_down_rejections));
  o.set("responses", responses);

  JsonValue jobs = JsonValue::object();
  jobs.set("queued", u(jobs_queued));
  jobs.set("running", u(jobs_running));
  jobs.set("capacity", u(queue_capacity));
  o.set("jobs", jobs);

  JsonValue connections = JsonValue::object();
  connections.set("accepted", u(connections_accepted));
  connections.set("open", u(connections_open));
  o.set("connections", connections);

  JsonValue cache = JsonValue::object();
  cache.set("graphs_resident", u(cache_graphs_resident));
  cache.set("graph_capacity", u(cache_graph_capacity));
  cache.set("warm_hits", u(cache_warm_hits));
  cache.set("graph_evictions", u(cache_graph_evictions));
  cache.set("exact_hits", u(cache_totals.exact_hits));
  cache.set("dominance_hits", u(cache_totals.dominance_hits));
  cache.set("entries_stored", u(cache_totals.entries_stored));
  cache.set("entries_resident", u(cache_totals.entries_resident));
  cache.set("entries_evicted", u(cache_totals.entries_evicted));
  o.set("cache", cache);

  o.set("progress", JsonValue::parse(progress.json()));
  return o;
}

}  // namespace buffy::service
