#include "service/cache_registry.hpp"

#include <algorithm>

#include "base/diagnostics.hpp"
#include "base/hash.hpp"
#include "io/dsl.hpp"

namespace buffy::service {

u64 graph_fingerprint(const sdf::Graph& graph,
                      const std::string& target_name) {
  const std::string canonical = io::write_dsl(graph);
  u64 h = kFnvOffset;
  for (const char c : canonical) {
    h = hash_step(h, static_cast<u64>(static_cast<unsigned char>(c)));
  }
  // A separator no DSL byte can be (words are hashed, not bytes), then
  // the target: the same graph explored for two actors must not share
  // warm state — their throughputs differ.
  h = hash_step(h, 0x1F1F1F1F1F1F1F1FULL);
  for (const char c : target_name) {
    h = hash_step(h, static_cast<u64>(static_cast<unsigned char>(c)));
  }
  return mix64(h);
}

CacheRegistry::CacheRegistry(std::size_t max_graphs, u64 entries_per_graph)
    : max_graphs_(std::max<std::size_t>(1, max_graphs)),
      entries_per_graph_(entries_per_graph) {}

CacheRegistry::Lease CacheRegistry::get_or_create(
    u64 fingerprint, const Rational& max_throughput) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(fingerprint);
  if (it != slots_.end()) {
    if (it->second.cache->max_throughput() == max_throughput) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      ++warm_hits_;
      return {it->second.cache, /*warm=*/true};
    }
    // Fingerprint collision between distinct graphs: replace rather than
    // serve a cache whose values belong to another graph.
    lru_.erase(it->second.lru_it);
    slots_.erase(it);
  }
  lru_.push_front(fingerprint);
  Slot slot{std::make_shared<buffer::ThroughputCache>(max_throughput,
                                                      entries_per_graph_),
            lru_.begin()};
  auto cache = slot.cache;
  slots_.emplace(fingerprint, std::move(slot));
  if (slots_.size() > max_graphs_) {
    const u64 victim = lru_.back();
    lru_.pop_back();
    slots_.erase(victim);
    ++evictions_;
  }
  return {std::move(cache), /*warm=*/false};
}

bool CacheRegistry::contains(u64 fingerprint) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return slots_.count(fingerprint) > 0;
}

std::size_t CacheRegistry::resident() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

u64 CacheRegistry::warm_hits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return warm_hits_;
}

u64 CacheRegistry::evictions() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

CacheRegistry::Totals CacheRegistry::totals() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Totals t;
  for (const auto& [fp, slot] : slots_) {
    t.exact_hits += slot.cache->exact_hits();
    t.dominance_hits += slot.cache->dominance_hits();
    t.entries_stored += slot.cache->entries_stored();
    t.entries_resident += slot.cache->entries_resident();
    t.entries_evicted += slot.cache->entries_evicted();
  }
  return t;
}

}  // namespace buffy::service
