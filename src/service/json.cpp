#include "service/json.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

namespace buffy::service {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue run() {
    skip_ws();
    JsonValue v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after the JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("JSON: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char take() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  JsonValue value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
    skip_ws();
    switch (peek()) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"':
        return JsonValue::string(string_body());
      case 't':
        literal("true");
        return JsonValue::boolean(true);
      case 'f':
        literal("false");
        return JsonValue::boolean(false);
      case 'n':
        literal("null");
        return JsonValue();
      default:
        return number();
    }
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        fail(std::string("expected '") + word + "'");
      }
      ++pos_;
    }
  }

  JsonValue object(int depth) {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected a member name");
      std::string key = string_body();
      skip_ws();
      expect(':');
      obj.set(key, value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == '}') return obj;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
  }

  JsonValue array(int depth) {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == ']') return arr;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
  }

  // Appends one Unicode code point as UTF-8.
  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        --pos_;
        fail("invalid \\u escape digit");
      }
    }
    return v;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = take();
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (take() != '\\' || take() != 'u') {
              fail("unpaired surrogate in \\u escape");
            }
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) {
              fail("invalid low surrogate in \\u escape");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("stray low surrogate in \\u escape");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          --pos_;
          fail("unknown escape character");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (peek() < '0' || peek() > '9') {
      pos_ = start;
      fail("expected a value");
    }
    // Leading zeros are invalid JSON ("01"), a lone zero is fine.
    if (peek() == '0') {
      ++pos_;
      if (peek() >= '0' && peek() <= '9') fail("leading zero in number");
    } else {
      while (peek() >= '0' && peek() <= '9') ++pos_;
    }
    bool integral = true;
    if (peek() == '.') {
      integral = false;
      ++pos_;
      if (peek() < '0' || peek() > '9') fail("digits must follow '.'");
      while (peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      integral = false;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (peek() < '0' || peek() > '9') fail("digits must follow exponent");
      while (peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      // Exact i64 when it fits; out-of-range integers are a diagnostic,
      // not a silent precision loss (capacities and deadlines are i64).
      try {
        std::size_t consumed = 0;
        const long long v = std::stoll(token, &consumed);
        if (consumed == token.size()) return JsonValue::integer(v);
      } catch (const std::out_of_range&) {
        fail("integer out of 64-bit range");
      } catch (const std::invalid_argument&) {
        // fall through to the double path below
      }
    }
    try {
      return JsonValue::number(std::stod(token));
    } catch (const std::exception&) {
      fail("malformed number");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void dump_double(double d, std::string& out) {
  if (!std::isfinite(d)) {
    // JSON has no Infinity/NaN; null is the conventional substitute.
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

}  // namespace

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::integer(i64 value) {
  JsonValue v;
  v.kind_ = Kind::Int;
  v.int_ = value;
  return v;
}

JsonValue JsonValue::number(double value) {
  JsonValue v;
  v.kind_ = Kind::Double;
  v.double_ = value;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::Array;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::Object;
  return v;
}

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).run();
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) throw ParseError("JSON: expected a boolean");
  return bool_;
}

i64 JsonValue::as_int() const {
  if (kind_ != Kind::Int) throw ParseError("JSON: expected an integer");
  return int_;
}

double JsonValue::as_double() const {
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  if (kind_ != Kind::Double) throw ParseError("JSON: expected a number");
  return double_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) throw ParseError("JSON: expected a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::Array) throw ParseError("JSON: expected an array");
  return array_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ != Kind::Array) throw ParseError("JSON: push_back on non-array");
  array_.push_back(std::move(v));
}

void JsonValue::set(const std::string& key, JsonValue v) {
  if (kind_ != Kind::Object) throw ParseError("JSON: set on non-object");
  for (auto& [name, value] : members_) {
    if (name == key) {
      value = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

std::string JsonValue::dump() const {
  std::string out;
  switch (kind_) {
    case Kind::Null:
      out = "null";
      break;
    case Kind::Bool:
      out = bool_ ? "true" : "false";
      break;
    case Kind::Int:
      out = std::to_string(int_);
      break;
    case Kind::Double:
      dump_double(double_, out);
      break;
    case Kind::String:
      out = json_quote(string_);
      break;
    case Kind::Array: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& item : array_) {
        if (!first) out.push_back(',');
        first = false;
        out += item.dump();
      }
      out.push_back(']');
      break;
    }
    case Kind::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [name, value] : members_) {
        if (!first) out.push_back(',');
        first = false;
        out += json_quote(name);
        out.push_back(':');
        out += value.dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace buffy::service
