// Process-wide registry of warm throughput caches for the buffyd daemon.
//
// The throughput of a storage distribution is a pure function of (graph,
// target actor, capacity vector), so a resident service can answer
// repeated queries on the same graph from warm state: the registry maps a
// stable fingerprint of (graph, target) to a shared ThroughputCache that
// every request on that graph feeds and consults (DseOptions::
// shared_cache). Entries within a cache are LRU-bounded (ThroughputCache
// capacity) and the registry itself is LRU-bounded by graph fingerprint,
// so a daemon serving an unbounded stream of distinct graphs cannot grow
// without limit — the least-recently-queried graph's cache is dropped
// first.
//
// Caches are handed out as shared_ptr: an eviction never invalidates a
// cache an in-flight exploration still holds, it only stops future
// requests from finding it.
#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/checked_math.hpp"
#include "base/rational.hpp"
#include "buffer/throughput_cache.hpp"
#include "sdf/graph.hpp"

namespace buffy::service {

/// Stable fingerprint of (graph, target actor): FNV-1a over the canonical
/// DSL serialisation (io::write_dsl round-trips every semantic field:
/// actor names, execution times, rates, initial tokens) combined with the
/// target actor's name. Two graphs share a fingerprint exactly when their
/// canonical forms are byte-identical.
[[nodiscard]] u64 graph_fingerprint(const sdf::Graph& graph,
                                    const std::string& target_name);

/// LRU registry of shared throughput caches; see file comment.
/// Thread-safe: all members may be called concurrently.
class CacheRegistry {
 public:
  /// At most `max_graphs` resident caches (>= 1), each bounded to
  /// `entries_per_graph` exact entries (0 = unbounded entries).
  CacheRegistry(std::size_t max_graphs, u64 entries_per_graph);

  struct Lease {
    std::shared_ptr<buffer::ThroughputCache> cache;
    /// True when the cache already existed — the request is served from
    /// warm state (the status endpoint's cache_warm_hits counter).
    bool warm = false;
  };

  /// Returns the cache for `fingerprint`, creating it (cold) with the
  /// given maximal throughput when absent. A hit refreshes LRU recency.
  /// If a resident cache's maximal throughput differs (fingerprint
  /// collision between distinct graphs), it is replaced by a fresh cache
  /// rather than poisoning results — correctness never depends on the
  /// fingerprint being collision-free.
  [[nodiscard]] Lease get_or_create(u64 fingerprint,
                                    const Rational& max_throughput);

  /// True when the fingerprint currently has a resident cache (test and
  /// metrics hook; does not refresh recency).
  [[nodiscard]] bool contains(u64 fingerprint) const;

  [[nodiscard]] std::size_t resident() const;
  [[nodiscard]] std::size_t max_graphs() const { return max_graphs_; }
  [[nodiscard]] u64 warm_hits() const;
  [[nodiscard]] u64 evictions() const;

  /// Aggregated counters over the resident caches (status endpoint).
  struct Totals {
    u64 exact_hits = 0;
    u64 dominance_hits = 0;
    u64 entries_stored = 0;
    u64 entries_resident = 0;
    u64 entries_evicted = 0;
  };
  [[nodiscard]] Totals totals() const;

 private:
  struct Slot {
    std::shared_ptr<buffer::ThroughputCache> cache;
    std::list<u64>::iterator lru_it;
  };

  const std::size_t max_graphs_;
  const u64 entries_per_graph_;
  mutable std::mutex mu_;
  std::list<u64> lru_;  // front = most recently used fingerprint
  std::unordered_map<u64, Slot> slots_;
  u64 warm_hits_ = 0;
  u64 evictions_ = 0;
};

}  // namespace buffy::service
