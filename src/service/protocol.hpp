// buffyd wire protocol: newline-delimited JSON requests and responses
// (DESIGN.md §10).
//
// One request per line, one response per line. Every request is a JSON
// object with a "method" member; analysis methods carry the graph inline
// (XML or DSL payload, parsed by the existing io/ readers) so the daemon
// holds no filesystem state. Responses echo the request's "id" (when one
// was given) and are either
//
//   {"id":N,"ok":true,"result":{...}}
//   {"id":N,"ok":false,"error":{"code":"...","message":"..."}}
//
// Error codes are a closed set (error_code_name below); clients dispatch
// on the code, the message is for humans. Responses to pool-dispatched
// methods (analyze_throughput, explore_pareto) may arrive out of request
// order — clients correlate by id.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "base/checked_math.hpp"
#include "base/diagnostics.hpp"
#include "base/rational.hpp"
#include "service/json.hpp"

namespace buffy::service {

/// The closed set of protocol error codes (DESIGN.md §10).
enum class ErrorCode {
  /// Request line is not valid JSON, not an object, or missing/mistyped
  /// members.
  BadRequest,
  /// The graph payload failed to parse (XML or DSL diagnostics).
  GraphParseError,
  /// The graph parsed but is structurally or semantically invalid
  /// (inconsistent rates, unknown target actor, bad capacities).
  GraphInvalid,
  /// Backpressure: the job queue is at capacity; retry later.
  Overloaded,
  /// The request's deadline expired before the analysis finished.
  DeadlineExceeded,
  /// The request was cancelled (a "cancel" request or client disconnect).
  Cancelled,
  /// The daemon is draining: the request was queued but never started.
  ShuttingDown,
  /// The graph is consistent but its static magnitude envelopes leave
  /// signed 64-bit range (analysis::derive_bounds, DESIGN.md §16): no
  /// engine can analyse it without overflowing, so admission rejects it
  /// up front with the offending envelope named in the message.
  MagnitudeOverflow,
  /// A bug in the daemon (invariant violation); reported, never crashes
  /// the process.
  InternalError,
};

/// Stable wire name of an error code ("bad_request", "overloaded", ...).
[[nodiscard]] const char* error_code_name(ErrorCode code);

/// Thrown by request handling; the server turns it into an error
/// response with the carried code.
class ProtocolError : public Error {
 public:
  ProtocolError(ErrorCode code, const std::string& what)
      : Error(what), code_(code) {}
  [[nodiscard]] ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// Request methods.
enum class Method {
  /// Maximal throughput of the graph (MCM reference), or — with
  /// "capacities" — the simulated throughput under that distribution.
  AnalyzeThroughput,
  /// Full storage/throughput design-space exploration (the Pareto front).
  ExplorePareto,
  /// One per-size evaluation of the exhaustive engine's divide and
  /// conquer (buffer::explore_size_slice) — the unit the fleet router
  /// scatters across worker processes (DESIGN.md §17). Carries the graph
  /// plus the engine-effective exploration options so the outcome is a
  /// pure function of the request.
  ExploreSlice,
  /// Daemon metrics: request counters, job queue, cache state.
  Status,
  /// Cancels an in-flight request of this connection by id.
  Cancel,
  /// Graceful drain: in-flight requests complete, queued ones are
  /// rejected with shutting_down, then the daemon exits.
  Shutdown,
};

/// Graph payload encodings.
enum class GraphFormat {
  Auto,  ///< XML when the payload starts with '<', DSL otherwise.
  Dsl,
  Xml,
};

/// One parsed request (the union of all methods' fields).
struct Request {
  std::optional<i64> id;
  Method method = Method::Status;

  // analyze_throughput / explore_pareto
  std::string graph_text;
  GraphFormat format = GraphFormat::Auto;
  std::string target;  ///< Actor name; empty = last actor of the graph.

  // analyze_throughput
  std::vector<i64> capacities;  ///< Empty = maximal throughput.

  // explore_pareto
  std::optional<std::string> engine;  ///< "inc" (default) or "exh".
  /// "exact" (default): full engine exploration. "fast": the LP-only
  /// front (buffer/fast_front) — every point sound but approximate,
  /// answered without per-candidate simulation.
  std::optional<std::string> quality;
  std::optional<i64> levels;
  std::optional<i64> max_size;
  std::optional<Rational> goal;
  std::optional<Rational> min_throughput;
  std::optional<i64> threads;
  bool use_cache = true;
  /// Router-only hint on explore_pareto: scatter the exhaustive d&c
  /// across the worker fleet instead of routing the whole request to the
  /// graph's home shard. Workers ignore it.
  bool scatter = false;

  // explore_slice
  std::optional<i64> slice_size;
  std::optional<Rational> slice_goal;
  std::vector<i64> slice_seed;  ///< Empty = unseeded slice.

  // analyze_throughput / explore_pareto / explore_slice
  std::optional<i64> deadline_ms;

  // cancel
  std::optional<i64> cancel_id;
};

/// Parses one request line. Throws ProtocolError(BadRequest) on malformed
/// JSON, unknown methods, or mistyped members — the graph payload itself
/// is NOT parsed here (that happens in the worker, under the request's
/// deadline).
[[nodiscard]] Request parse_request(const std::string& line);

/// Renders a success response line (no trailing newline).
[[nodiscard]] std::string ok_response(std::optional<i64> id,
                                      const JsonValue& result);

/// Renders an error response line (no trailing newline).
[[nodiscard]] std::string error_response(std::optional<i64> id,
                                         ErrorCode code,
                                         const std::string& message);

}  // namespace buffy::service
