#include "service/protocol.hpp"

namespace buffy::service {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw ProtocolError(ErrorCode::BadRequest, what);
}

// Typed member extraction: each accessor reports the member name in its
// diagnostic so clients can fix the request without reading daemon code.
std::optional<i64> opt_int(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->is_null()) return std::nullopt;
  if (!v->is_int()) bad(std::string("member '") + key + "' must be an integer");
  return v->as_int();
}

std::optional<std::string> opt_string(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->is_null()) return std::nullopt;
  if (!v->is_string()) bad(std::string("member '") + key + "' must be a string");
  return v->as_string();
}

std::optional<bool> opt_bool(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->is_null()) return std::nullopt;
  if (!v->is_bool()) bad(std::string("member '") + key + "' must be a boolean");
  return v->as_bool();
}

std::optional<Rational> opt_rational(const JsonValue& obj, const char* key) {
  const std::optional<std::string> text = opt_string(obj, key);
  if (!text.has_value()) return std::nullopt;
  try {
    return parse_rational(*text);
  } catch (const Error& e) {
    bad(std::string("member '") + key + "': " + e.what());
  }
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::BadRequest:
      return "bad_request";
    case ErrorCode::GraphParseError:
      return "parse_error";
    case ErrorCode::GraphInvalid:
      return "graph_error";
    case ErrorCode::Overloaded:
      return "overloaded";
    case ErrorCode::DeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::Cancelled:
      return "cancelled";
    case ErrorCode::ShuttingDown:
      return "shutting_down";
    case ErrorCode::MagnitudeOverflow:
      return "magnitude_overflow";
    case ErrorCode::InternalError:
      return "internal_error";
  }
  return "internal_error";
}

Request parse_request(const std::string& line) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(line);
  } catch (const Error& e) {
    bad(e.what());
  }
  if (!doc.is_object()) bad("a request must be a JSON object");

  Request req;
  req.id = opt_int(doc, "id");

  const std::optional<std::string> method = opt_string(doc, "method");
  if (!method.has_value()) bad("missing member 'method'");
  if (*method == "analyze_throughput") {
    req.method = Method::AnalyzeThroughput;
  } else if (*method == "explore_pareto") {
    req.method = Method::ExplorePareto;
  } else if (*method == "explore_slice") {
    req.method = Method::ExploreSlice;
  } else if (*method == "status") {
    req.method = Method::Status;
  } else if (*method == "cancel") {
    req.method = Method::Cancel;
  } else if (*method == "shutdown") {
    req.method = Method::Shutdown;
  } else {
    bad("unknown method '" + *method + "'");
  }

  if (req.method == Method::AnalyzeThroughput ||
      req.method == Method::ExplorePareto ||
      req.method == Method::ExploreSlice) {
    const std::optional<std::string> graph = opt_string(doc, "graph");
    if (!graph.has_value() || graph->empty()) {
      bad("missing member 'graph' (inline XML or DSL payload)");
    }
    req.graph_text = *graph;
    if (const std::optional<std::string> fmt = opt_string(doc, "format")) {
      if (*fmt == "dsl") {
        req.format = GraphFormat::Dsl;
      } else if (*fmt == "xml") {
        req.format = GraphFormat::Xml;
      } else if (*fmt == "auto") {
        req.format = GraphFormat::Auto;
      } else {
        bad("member 'format' must be \"dsl\", \"xml\" or \"auto\"");
      }
    }
    req.target = opt_string(doc, "target").value_or("");
    req.deadline_ms = opt_int(doc, "deadline_ms");
    if (req.deadline_ms.has_value() && *req.deadline_ms < 0) {
      bad("member 'deadline_ms' must be >= 0");
    }
  }

  if (req.method == Method::AnalyzeThroughput) {
    if (const JsonValue* caps = doc.find("capacities")) {
      if (!caps->is_array()) bad("member 'capacities' must be an array");
      for (const JsonValue& c : caps->as_array()) {
        if (!c.is_int()) bad("member 'capacities' must hold integers");
        req.capacities.push_back(c.as_int());
      }
      if (req.capacities.empty()) {
        bad("member 'capacities' must not be an empty array");
      }
    }
  }

  if (req.method == Method::ExplorePareto ||
      req.method == Method::ExploreSlice) {
    req.engine = opt_string(doc, "engine");
    if (req.engine.has_value() && *req.engine != "inc" &&
        *req.engine != "exh") {
      bad("member 'engine' must be \"inc\" or \"exh\"");
    }
    req.quality = opt_string(doc, "quality");
    if (req.quality.has_value() && *req.quality != "fast" &&
        *req.quality != "exact") {
      bad("member 'quality' must be \"fast\" or \"exact\"");
    }
    req.levels = opt_int(doc, "levels");
    if (req.levels.has_value() && *req.levels < 1) {
      bad("member 'levels' must be >= 1");
    }
    req.max_size = opt_int(doc, "max_size");
    req.goal = opt_rational(doc, "goal");
    req.min_throughput = opt_rational(doc, "min_throughput");
    req.threads = opt_int(doc, "threads");
    if (req.threads.has_value() && *req.threads < 1) {
      bad("member 'threads' must be >= 1");
    }
    req.use_cache = opt_bool(doc, "cache").value_or(true);
  }

  if (req.method == Method::ExplorePareto) {
    req.scatter = opt_bool(doc, "scatter").value_or(false);
  }

  if (req.method == Method::ExploreSlice) {
    req.slice_size = opt_int(doc, "size");
    if (!req.slice_size.has_value()) {
      bad("explore_slice requires member 'size'");
    }
    req.slice_goal = opt_rational(doc, "slice_goal");
    if (!req.slice_goal.has_value()) {
      bad("explore_slice requires member 'slice_goal'");
    }
    if (const JsonValue* seed = doc.find("seed")) {
      if (!seed->is_array()) bad("member 'seed' must be an array");
      for (const JsonValue& c : seed->as_array()) {
        if (!c.is_int()) bad("member 'seed' must hold integers");
        req.slice_seed.push_back(c.as_int());
      }
      if (req.slice_seed.empty()) {
        bad("member 'seed' must not be an empty array");
      }
    }
  }

  if (req.method == Method::Cancel) {
    req.cancel_id = opt_int(doc, "target_id");
    if (!req.cancel_id.has_value()) {
      bad("cancel requires member 'target_id'");
    }
  }

  return req;
}

std::string ok_response(std::optional<i64> id, const JsonValue& result) {
  JsonValue resp = JsonValue::object();
  if (id.has_value()) resp.set("id", JsonValue::integer(*id));
  resp.set("ok", JsonValue::boolean(true));
  resp.set("result", result);
  return resp.dump();
}

std::string error_response(std::optional<i64> id, ErrorCode code,
                           const std::string& message) {
  JsonValue err = JsonValue::object();
  err.set("code", JsonValue::string(error_code_name(code)));
  err.set("message", JsonValue::string(message));
  JsonValue resp = JsonValue::object();
  if (id.has_value()) resp.set("id", JsonValue::integer(*id));
  resp.set("ok", JsonValue::boolean(false));
  resp.set("error", err);
  return resp.dump();
}

}  // namespace buffy::service
