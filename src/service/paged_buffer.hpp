// evbuffer-style paged byte queue for the service wire path.
//
// The seed wire path assembled every outbound message into one contiguous
// std::string (copy the payload, append the newline, loop over send()) and
// accumulated inbound bytes into a second string that was erased from the
// front after every parsed line — both O(message) copies per message, per
// connection. PagedBuffer replaces that with a chain of fixed-size pages:
//
//  * append()       copies into the tail page's free space (bounded copy,
//                   no reallocation of earlier bytes);
//  * add_reference  adopts an existing std::string as a page of its own —
//                   the zero-copy path for responses, which the JSON dumper
//                   already materialised as one string;
//  * peek_space / commit_space expose the tail page's free space directly
//                   to recv(), so reads land in place;
//  * flush_to()     gathers up to kMaxIov leading pages into one vectored
//                   sendmsg(MSG_NOSIGNAL) (writev when the fd is not a
//                   socket), draining exactly the bytes the kernel took;
//  * drain()/find() give the line framer O(new bytes) scanning without
//                   front erasure.
//
// LineFramer sits on top for the newline-delimited protocol: feed bytes
// into buffer(), then pull complete lines; a line that exceeds the
// configured bound reports Overflow instead of growing without bound.
//
// Single-owner, externally synchronised (connections guard their outbound
// buffer with the existing per-connection write mutex).
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <string>
#include <string_view>

#include "base/checked_math.hpp"

namespace buffy::service {

class PagedBuffer {
 public:
  /// Default page granularity; append() never copies more than a page at a
  /// time and flush_to() gathers whole pages.
  static constexpr std::size_t kPageSize = 4096;
  /// Pages gathered into one vectored flush.
  static constexpr std::size_t kMaxIov = 64;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Copies `n` bytes onto the tail of the chain.
  void append(const void* data, std::size_t n);
  void append(std::string_view text) { append(text.data(), text.size()); }

  /// Adopts `text` as one page of its own — no copy. The zero-copy path
  /// for already-materialised payloads (response JSON).
  void add_reference(std::string&& text);

  /// Exposes at least `min_bytes` of writable tail space (growing the
  /// chain if needed) without committing it; pair with commit_space()
  /// after the bytes were produced (recv() into the span).
  [[nodiscard]] std::span<char> peek_space(std::size_t min_bytes);

  /// Commits `n` bytes previously obtained from peek_space().
  void commit_space(std::size_t n);

  /// Drops the first `n` bytes.
  void drain(std::size_t n);

  /// Offset of the first `needle` at or after `from`, or -1. O(bytes
  /// scanned), memchr per page.
  [[nodiscard]] std::ptrdiff_t find(char needle, std::size_t from) const;

  /// Copies the first `n` bytes out (the framer's line extraction).
  [[nodiscard]] std::string copy_out(std::size_t n) const;

  /// Copies the whole contents (tests / diagnostics).
  [[nodiscard]] std::string str() const { return copy_out(size_); }

  /// One vectored write of the leading pages to `fd`: sendmsg with
  /// MSG_NOSIGNAL, falling back to writev when `fd` is not a socket
  /// (pipes/files in tests). Drains exactly the bytes written. Returns
  /// the byte count (0 when empty), or -1 with errno set.
  std::ptrdiff_t flush_to(int fd);

 private:
  struct Page {
    std::string data;        // storage; capacity fixed at creation
    std::size_t begin = 0;   // first live byte
    std::size_t end = 0;     // one past the last live byte
  };

  Page& writable_tail(std::size_t min_free);

  std::deque<Page> pages_;
  std::size_t size_ = 0;
};

/// Newline-delimited framing over a PagedBuffer with a hard line bound.
class LineFramer {
 public:
  enum class Status {
    Line,      ///< a complete line was extracted
    NeedMore,  ///< no newline yet; feed more bytes
    Overflow,  ///< the unterminated prefix exceeds max_line_bytes
  };

  explicit LineFramer(std::size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  /// The underlying buffer; feed inbound bytes via peek_space/commit_space
  /// or append.
  [[nodiscard]] PagedBuffer& buffer() { return buf_; }

  /// Extracts the next complete line (newline stripped, plus one trailing
  /// '\r' if present) into `line`. Scanning resumes where the previous
  /// call stopped, so repeated NeedMore feeds stay O(new bytes).
  [[nodiscard]] Status next_line(std::string& line);

 private:
  PagedBuffer buf_;
  std::size_t scanned_ = 0;  // prefix known to hold no newline
  std::size_t max_line_bytes_;
};

}  // namespace buffy::service
