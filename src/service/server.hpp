// buffyd — the resident analysis daemon (DESIGN.md §10).
//
// A Server owns one or two listening sockets (Unix-domain and/or TCP on
// the loopback-reachable wildcard), a work-stealing exec::ThreadPool the
// analysis requests run on, and a CacheRegistry of warm per-graph
// throughput caches shared by every request. Each accepted connection
// gets a reader thread that splits the byte stream into newline-delimited
// JSON requests:
//
//  * status / cancel / shutdown are answered inline on the reader thread
//    (they are cheap and must work even when the pool is saturated);
//  * analyze_throughput / explore_pareto are admission-checked against a
//    bounded in-system job count — at capacity the daemon answers
//    `overloaded` immediately, it never drops a request silently — and
//    then submitted to the pool with a per-request CancellationToken
//    (deadline_ms composes with explicit cancel and client disconnect).
//
// Shutdown drains: the listeners close, requests already running complete
// and deliver their responses, submitted-but-not-started jobs answer
// `shutting_down`, then the reader threads are joined and the pool stops.
// wait() returns only after that point, so `buffyd` can simply
// start(); wait(); return.
//
// Thread-safety: start() must be called once; shutdown() may be called
// from any thread (including a reader thread handling a shutdown
// request); wait() must be called from the owning thread (it joins).
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "base/checked_math.hpp"
#include "exec/cancellation.hpp"
#include "exec/progress.hpp"
#include "exec/thread_pool.hpp"
#include "service/cache_registry.hpp"
#include "service/protocol.hpp"

namespace buffy::service {

/// Everything a Server can be configured with.
struct ServerOptions {
  /// Path for the Unix-domain listener; empty = no Unix socket. An
  /// existing socket file at the path is replaced.
  std::string unix_socket_path;
  /// TCP listener port on the loopback interface; nullopt = no TCP
  /// socket, 0 = ephemeral (read the bound port back via
  /// Server::tcp_port()).
  std::optional<int> tcp_port;
  /// Worker threads of the analysis pool (0 = hardware concurrency).
  unsigned threads = 0;
  /// Bound on jobs in the system (queued + running); beyond it new
  /// analysis requests are answered `overloaded`.
  u64 queue_capacity = 64;
  /// Max resident per-graph caches (LRU by graph fingerprint).
  std::size_t cache_graphs = 64;
  /// Exact-entry bound per graph cache (0 = unbounded).
  u64 cache_entries_per_graph = 1u << 18;
  /// Deadline applied to requests that do not carry their own (0 = none).
  i64 default_deadline_ms = 0;
  /// Upper bound on one request line (graph payloads included).
  u64 max_request_bytes = 8u << 20;
  /// Worker threads granted to a single exploration: requests asking for
  /// "threads" are clamped to this, and requests that don't ask get it as
  /// their default grant (the engines spawn workers lazily and keep cheap
  /// slices sequential, so an unused grant costs nothing). 1 = explorations
  /// are sequential and concurrency comes from serving many requests at
  /// once.
  unsigned max_threads_per_request = 1;
};

/// Point-in-time copy of the daemon's counters (the status endpoint).
struct ServerStatus {
  bool draining = false;
  double uptime_seconds = 0.0;
  u64 requests_total = 0;
  u64 analyze_requests = 0;
  u64 explore_requests = 0;
  u64 slice_requests = 0;
  u64 status_requests = 0;
  u64 cancel_requests = 0;
  u64 shutdown_requests = 0;
  u64 responses_ok = 0;
  u64 responses_error = 0;
  u64 overloaded = 0;
  u64 shutting_down_rejections = 0;
  u64 jobs_queued = 0;
  u64 jobs_running = 0;
  u64 queue_capacity = 0;
  u64 connections_accepted = 0;
  u64 connections_open = 0;
  u64 cache_graphs_resident = 0;
  u64 cache_graph_capacity = 0;
  u64 cache_warm_hits = 0;
  u64 cache_graph_evictions = 0;
  CacheRegistry::Totals cache_totals;
  exec::ProgressSnapshot progress;

  /// The status endpoint's "result" object.
  [[nodiscard]] JsonValue json() const;
};

/// The daemon; see file comment.
class Server {
 public:
  explicit Server(ServerOptions options);
  /// Initiates shutdown and waits for the drain if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners and starts accepting. Throws Error
  /// when no listener is configured or a bind fails.
  void start();

  /// Begins the graceful drain (idempotent, any thread): listeners
  /// close, running jobs finish, queued jobs answer shutting_down.
  void shutdown();

  /// Blocks until a drain completes (shutdown() here or via a request),
  /// then reaps reader threads and stops the pool.
  void wait();

  /// Port the TCP listener actually bound (0 when TCP is off); useful
  /// with an ephemeral `tcp_port = 0`.
  [[nodiscard]] int tcp_port() const { return tcp_port_; }

  [[nodiscard]] ServerStatus status() const;

 private:
  struct Connection;

  void accept_loop(int listen_fd);
  void reap_finished_locked();  // requires conns_mu_ held
  void reader_loop(Connection* conn);
  void handle_line(Connection* conn, const std::string& line);
  void run_job(Connection* conn, const Request& req,
               const exec::CancellationToken& parent);
  void respond(Connection* conn, std::string line, bool ok);

  // Request handlers (worker threads). Each returns the "result" object
  // or throws ProtocolError / buffy errors mapped by run_job.
  [[nodiscard]] JsonValue handle_analyze(const Request& req,
                                         const exec::CancellationToken& tok);
  [[nodiscard]] JsonValue handle_explore(const Request& req,
                                         const exec::CancellationToken& tok);
  [[nodiscard]] JsonValue handle_explore_slice(
      const Request& req, const exec::CancellationToken& tok);

  ServerOptions options_;
  std::unique_ptr<exec::ThreadPool> pool_;
  CacheRegistry registry_;
  exec::Progress progress_;
  std::chrono::steady_clock::time_point started_at_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int tcp_port_ = 0;
  std::vector<std::thread> accept_threads_;

  mutable std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> reaped_{false};

  // Jobs in the system (admission control + drain barrier).
  mutable std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  u64 jobs_in_system_ = 0;   // guarded by jobs_mu_
  u64 inline_shutdowns_ = 0;  // shutdown handlers awaiting their response,
                              // guarded by jobs_mu_ (see handle_line)

  // Counters (relaxed; metrics only).
  std::atomic<u64> requests_total_{0};
  std::atomic<u64> analyze_requests_{0};
  std::atomic<u64> explore_requests_{0};
  std::atomic<u64> slice_requests_{0};
  std::atomic<u64> status_requests_{0};
  std::atomic<u64> cancel_requests_{0};
  std::atomic<u64> shutdown_requests_{0};
  std::atomic<u64> responses_ok_{0};
  std::atomic<u64> responses_error_{0};
  std::atomic<u64> overloaded_{0};
  std::atomic<u64> shutting_down_rejections_{0};
  std::atomic<u64> jobs_queued_{0};
  std::atomic<u64> jobs_running_{0};
  std::atomic<u64> connections_accepted_{0};
  std::atomic<u64> connections_open_{0};
};

}  // namespace buffy::service
