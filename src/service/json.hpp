// Minimal JSON document model for the buffyd wire protocol (DESIGN.md §10).
//
// The daemon speaks newline-delimited JSON, so it needs a real parser (the
// trace/ and exec/ layers only ever *write* JSON). This one covers the
// full grammar — objects, arrays, strings with escapes (including \uXXXX
// with surrogate pairs), numbers, true/false/null — builds a value tree,
// and enforces a nesting-depth bound so hostile inputs cannot overflow the
// stack. Numbers that are integral and fit in i64 are kept exact (request
// fields like deadlines and capacities are integers); everything else is a
// double.
//
// Serialisation is deterministic: object members keep insertion order and
// the writer emits no insignificant whitespace, so a value round-trips
// byte-identically through dump() and responses are stable for golden
// tests.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "base/checked_math.hpp"
#include "base/diagnostics.hpp"

namespace buffy::service {

/// One JSON value (tree of nested values). Cheap to move, expensive to
/// copy (copies the whole subtree).
class JsonValue {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  /// The null value.
  JsonValue() = default;

  [[nodiscard]] static JsonValue boolean(bool b);
  [[nodiscard]] static JsonValue integer(i64 v);
  [[nodiscard]] static JsonValue number(double v);
  [[nodiscard]] static JsonValue string(std::string s);
  [[nodiscard]] static JsonValue array();
  [[nodiscard]] static JsonValue object();

  /// Parses exactly one JSON value (plus surrounding whitespace); throws
  /// ParseError with an offset on any deviation from the grammar, on
  /// trailing bytes, and on nesting deeper than 64 levels.
  [[nodiscard]] static JsonValue parse(const std::string& text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_int() const { return kind_ == Kind::Int; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::Int || kind_ == Kind::Double;
  }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  /// Typed accessors; each throws ParseError when the kind differs (the
  /// protocol layer turns that into a bad_request diagnostic).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] i64 as_int() const;
  [[nodiscard]] double as_double() const;  // Int widens to double
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Appends to an array value (throws ParseError on non-arrays).
  void push_back(JsonValue v);
  /// Sets an object member, replacing any existing one (throws ParseError
  /// on non-objects). Insertion order is preserved by dump().
  void set(const std::string& key, JsonValue v);

  /// Compact serialisation (no whitespace); parse(dump()) round-trips.
  [[nodiscard]] std::string dump() const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  i64 int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escapes a string as a JSON string literal including the quotes.
[[nodiscard]] std::string json_quote(const std::string& s);

}  // namespace buffy::service
