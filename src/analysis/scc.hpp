// Strongly connected components (Tarjan).
//
// Self-timed execution with unbounded buffers is eventually periodic only
// for graphs whose actors are all throttled by feedback; SCC structure
// tells an analysis up front whether a source can run away (tokens grow
// without bound). The DSE itself never needs this — bounded capacities
// create back-pressure — but diagnostics and the graph generator do.
#pragma once

#include <vector>

#include "sdf/graph.hpp"

namespace buffy::analysis {

/// Partition of the actors into strongly connected components.
struct SccResult {
  /// Component index per actor (indexed by actor index); components are
  /// numbered in reverse topological order (an edge u -> v across
  /// components has component(u) >= component(v)).
  std::vector<std::size_t> component;
  /// Actors of each component.
  std::vector<std::vector<sdf::ActorId>> members;

  [[nodiscard]] std::size_t count() const { return members.size(); }
};

/// Tarjan's algorithm; linear in actors + channels.
[[nodiscard]] SccResult strongly_connected_components(const sdf::Graph& graph);

/// True when the whole graph is one strongly connected component.
[[nodiscard]] bool is_strongly_connected(const sdf::Graph& graph);

}  // namespace buffy::analysis
