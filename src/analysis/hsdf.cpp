#include "analysis/hsdf.hpp"

#include <map>
#include <string>

#include "base/diagnostics.hpp"

namespace buffy::analysis {

bool is_homogeneous(const sdf::Graph& graph) {
  for (const sdf::ChannelId c : graph.channel_ids()) {
    const sdf::Channel& ch = graph.channel(c);
    if (ch.production != 1 || ch.consumption != 1) return false;
  }
  return true;
}

HsdfResult to_hsdf(const sdf::Graph& graph) {
  const RepetitionVector q = repetition_vector(graph);

  HsdfResult result{sdf::Graph(graph.name() + "_hsdf"), {}, {}, {}};
  result.copies.resize(graph.num_actors());

  for (const sdf::ActorId a : graph.actor_ids()) {
    const sdf::Actor& actor = graph.actor(a);
    for (i64 k = 0; k < q[a]; ++k) {
      const sdf::ActorId node = result.graph.add_actor(sdf::Actor{
          .name = actor.name + "_" + std::to_string(k),
          .execution_time = actor.execution_time,
      });
      result.source_actor.push_back(a);
      result.copy_index.push_back(k);
      result.copies[a.index()].push_back(node);
    }
  }

  // No-auto-concurrency chain: a_k -> a_{k+1}, wrap-around with one token.
  for (const sdf::ActorId a : graph.actor_ids()) {
    const auto& copies = result.copies[a.index()];
    const i64 count = static_cast<i64>(copies.size());
    for (i64 k = 0; k < count; ++k) {
      const i64 next = (k + 1) % count;
      result.graph.add_channel(sdf::Channel{
          .name = graph.actor(a).name + "_seq_" + std::to_string(k),
          .src = copies[k],
          .dst = copies[next],
          .production = 1,
          .consumption = 1,
          .initial_tokens = next == 0 ? 1 : 0,
      });
    }
  }

  // Data dependencies. For consumer firing J, token l of channel (p, c, d):
  // the n-th token overall (n = J*c + l) was produced by global firing
  // F = floor((n - d) / p) of the producer; F < 0 means an initial token
  // produced "before time". The producing copy is F mod q(src) and the
  // delay is the iteration distance.
  for (const sdf::ChannelId cid : graph.channel_ids()) {
    const sdf::Channel& ch = graph.channel(cid);
    const i64 q_src = q[ch.src];
    const i64 q_dst = q[ch.dst];
    // Tightest (minimum) delay per (producer copy, consumer copy) pair.
    std::map<std::pair<i64, i64>, i64> min_delay;
    for (i64 j = 0; j < q_dst; ++j) {
      for (i64 l = 0; l < ch.consumption; ++l) {
        const i64 n = checked_add(checked_mul(j, ch.consumption), l);
        const i64 f = floor_div(checked_sub(n, ch.initial_tokens),
                                ch.production);
        const i64 copy = positive_mod(f, q_src);
        const i64 delay = (copy - f) / q_src;
        BUFFY_ASSERT(delay >= 0, "negative HSDF delay");
        const auto key = std::make_pair(copy, j);
        const auto it = min_delay.find(key);
        if (it == min_delay.end() || delay < it->second) {
          min_delay[key] = delay;
        }
      }
    }
    i64 edge_seq = 0;
    for (const auto& [key, delay] : min_delay) {
      const auto [src_copy, dst_copy] = key;
      result.graph.add_channel(sdf::Channel{
          .name = ch.name + "_" + std::to_string(edge_seq++),
          .src = result.copies[ch.src.index()][src_copy],
          .dst = result.copies[ch.dst.index()][dst_copy],
          .production = 1,
          .consumption = 1,
          .initial_tokens = delay,
      });
    }
  }

  return result;
}

}  // namespace buffy::analysis
