// Maximal achievable throughput of an SDF graph (paper Sec. 8/9, via the
// [GG93] route: HSDF expansion + maximum cycle ratio).
//
// The result is the throughput the graph attains under self-timed execution
// with sufficiently large buffers; it is the upper bound of the throughput
// dimension of the storage/throughput design space.
#pragma once

#include <optional>

#include "analysis/mcm.hpp"
#include "analysis/repetition_vector.hpp"
#include "base/rational.hpp"
#include "sdf/graph.hpp"

namespace buffy::analysis {

/// Maximal-throughput summary of a consistent graph.
struct MaxThroughput {
  /// True when the graph deadlocks regardless of buffering (a dependency
  /// cycle without initial tokens).
  bool deadlock = false;
  /// Iteration period: time per graph iteration in the periodic phase.
  /// Meaningful only when !deadlock.
  Rational iteration_period;
  /// Repetition vector used for per-actor throughput.
  RepetitionVector repetitions;

  /// Firings of the given actor per time step: q(a) / iteration_period,
  /// or 0 on deadlock.
  [[nodiscard]] Rational actor_throughput(sdf::ActorId a) const;
};

/// Computes the maximal achievable throughput via HSDF + max cycle ratio.
/// Intended for graphs whose repetition-vector sum is moderate (the HSDF
/// expansion has sum(q) nodes). Throws ConsistencyError when inconsistent.
[[nodiscard]] MaxThroughput max_throughput(const sdf::Graph& graph);

}  // namespace buffy::analysis
