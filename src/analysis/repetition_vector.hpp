// Repetition vectors (paper Sec. 5, [Buc93]).
//
// A consistent SDF graph has a smallest non-trivial integer vector q such
// that for every channel c: production(c) * q(src) == consumption(c) * q(dst).
// One "iteration" of the graph fires every actor a exactly q(a) times and
// returns every channel to its initial token count.
#pragma once

#include <vector>

#include "base/checked_math.hpp"
#include "sdf/graph.hpp"

namespace buffy::analysis {

/// The repetition vector of a consistent graph.
class RepetitionVector {
 public:
  explicit RepetitionVector(std::vector<i64> counts);

  /// Firings of the given actor per iteration.
  [[nodiscard]] i64 operator[](sdf::ActorId a) const;

  /// Total firings per iteration (sum of all entries).
  [[nodiscard]] i64 sum() const;

  /// Tokens crossing the given channel per iteration
  /// (production * q(src) == consumption * q(dst)).
  [[nodiscard]] i64 tokens_per_iteration(const sdf::Graph& graph,
                                         sdf::ChannelId c) const;

  [[nodiscard]] std::size_t size() const { return counts_.size(); }
  [[nodiscard]] const std::vector<i64>& counts() const { return counts_; }

 private:
  std::vector<i64> counts_;
};

/// Computes the repetition vector; throws ConsistencyError when none exists.
/// Disconnected graphs are handled per weakly-connected component, each
/// component minimally scaled.
[[nodiscard]] RepetitionVector repetition_vector(const sdf::Graph& graph);

}  // namespace buffy::analysis
