#include "analysis/repetition_vector.hpp"

#include <queue>

#include "base/diagnostics.hpp"
#include "base/rational.hpp"

namespace buffy::analysis {

RepetitionVector::RepetitionVector(std::vector<i64> counts)
    : counts_(std::move(counts)) {
  for (const i64 c : counts_) {
    BUFFY_ASSERT(c > 0, "repetition vector entries must be positive");
  }
}

i64 RepetitionVector::operator[](sdf::ActorId a) const {
  BUFFY_REQUIRE(a.valid() && a.index() < counts_.size(),
                "actor id outside repetition vector");
  return counts_[a.index()];
}

i64 RepetitionVector::sum() const {
  i64 total = 0;
  for (const i64 c : counts_) total = checked_add(total, c);
  return total;
}

i64 RepetitionVector::tokens_per_iteration(const sdf::Graph& graph,
                                           sdf::ChannelId c) const {
  const sdf::Channel& ch = graph.channel(c);
  return checked_mul(ch.production, (*this)[ch.src]);
}

RepetitionVector repetition_vector(const sdf::Graph& graph) {
  const std::size_t n = graph.num_actors();
  BUFFY_REQUIRE(n > 0, "repetition vector of an empty graph");

  // Firing fractions per actor, propagated over the balance equations
  // f(dst) = f(src) * production / consumption along every channel.
  std::vector<Rational> fraction(n);
  std::vector<bool> assigned(n, false);
  std::vector<std::size_t> component(n, 0);
  std::size_t num_components = 0;

  for (std::size_t root = 0; root < n; ++root) {
    if (assigned[root]) continue;
    const std::size_t comp = num_components++;
    fraction[root] = Rational(1);
    assigned[root] = true;
    component[root] = comp;
    std::queue<std::size_t> frontier;
    frontier.push(root);
    while (!frontier.empty()) {
      const sdf::ActorId cur(frontier.front());
      frontier.pop();
      auto propagate = [&](const sdf::Channel& ch, sdf::ActorId from,
                           sdf::ActorId to, const Rational& ratio) {
        const Rational expected = fraction[from.index()] * ratio;
        if (!assigned[to.index()]) {
          fraction[to.index()] = expected;
          assigned[to.index()] = true;
          component[to.index()] = comp;
          frontier.push(to.index());
        } else if (fraction[to.index()] != expected) {
          throw ConsistencyError(
              "graph '" + graph.name() + "' is inconsistent: channel '" +
              ch.name + "' requires firing ratio " + expected.str() +
              " for actor '" + graph.actor(to).name + "' but " +
              fraction[to.index()].str() + " is already implied");
        }
      };
      for (const sdf::ChannelId cid : graph.out_channels(cur)) {
        const sdf::Channel& ch = graph.channel(cid);
        propagate(ch, ch.src, ch.dst, Rational(ch.production, ch.consumption));
      }
      for (const sdf::ChannelId cid : graph.in_channels(cur)) {
        const sdf::Channel& ch = graph.channel(cid);
        propagate(ch, ch.dst, ch.src, Rational(ch.consumption, ch.production));
      }
    }
  }

  // Scale each component minimally: multiply by the lcm of denominators,
  // then divide by the gcd of the resulting integers.
  std::vector<i64> comp_lcm(num_components, 1);
  for (std::size_t i = 0; i < n; ++i) {
    comp_lcm[component[i]] = lcm(comp_lcm[component[i]], fraction[i].den());
  }
  std::vector<i64> counts(n);
  for (std::size_t i = 0; i < n; ++i) {
    counts[i] = checked_mul(fraction[i].num(),
                            comp_lcm[component[i]] / fraction[i].den());
  }
  std::vector<i64> comp_gcd(num_components, 0);
  for (std::size_t i = 0; i < n; ++i) {
    comp_gcd[component[i]] = gcd(comp_gcd[component[i]], counts[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    counts[i] /= comp_gcd[component[i]];
  }
  return RepetitionVector(std::move(counts));
}

}  // namespace buffy::analysis
