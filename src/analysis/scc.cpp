#include "analysis/scc.hpp"

#include <algorithm>
#include <limits>

namespace buffy::analysis {

namespace {

constexpr std::size_t kUnvisited = std::numeric_limits<std::size_t>::max();

// Iterative Tarjan: explicit stack of (node, next-out-channel position).
struct Tarjan {
  const sdf::Graph& graph;
  std::vector<std::size_t> index;
  std::vector<std::size_t> lowlink;
  std::vector<bool> on_stack;
  std::vector<std::size_t> stack;
  std::size_t next_index = 0;
  SccResult result;

  explicit Tarjan(const sdf::Graph& g)
      : graph(g),
        index(g.num_actors(), kUnvisited),
        lowlink(g.num_actors(), 0),
        on_stack(g.num_actors(), false) {
    result.component.resize(g.num_actors(), 0);
  }

  void run(std::size_t root) {
    std::vector<std::pair<std::size_t, std::size_t>> work{{root, 0}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!work.empty()) {
      auto& [node, pos] = work.back();
      const auto outs = graph.out_channels(sdf::ActorId(node));
      if (pos < outs.size()) {
        const std::size_t next = graph.channel(outs[pos]).dst.index();
        ++pos;
        if (index[next] == kUnvisited) {
          index[next] = lowlink[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = true;
          work.emplace_back(next, 0);
        } else if (on_stack[next]) {
          lowlink[node] = std::min(lowlink[node], index[next]);
        }
        continue;
      }
      if (lowlink[node] == index[node]) {
        std::vector<sdf::ActorId> members;
        for (;;) {
          const std::size_t top = stack.back();
          stack.pop_back();
          on_stack[top] = false;
          result.component[top] = result.members.size();
          members.emplace_back(top);
          if (top == node) break;
        }
        std::reverse(members.begin(), members.end());
        result.members.push_back(std::move(members));
      }
      const std::size_t finished = node;
      work.pop_back();
      if (!work.empty()) {
        lowlink[work.back().first] =
            std::min(lowlink[work.back().first], lowlink[finished]);
      }
    }
  }
};

}  // namespace

SccResult strongly_connected_components(const sdf::Graph& graph) {
  Tarjan tarjan(graph);
  for (std::size_t a = 0; a < graph.num_actors(); ++a) {
    if (tarjan.index[a] == kUnvisited) tarjan.run(a);
  }
  return std::move(tarjan.result);
}

bool is_strongly_connected(const sdf::Graph& graph) {
  if (graph.num_actors() == 0) return true;
  return strongly_connected_components(graph).count() == 1;
}

}  // namespace buffy::analysis
