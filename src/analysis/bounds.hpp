// Static magnitude certificates (DESIGN.md §16).
//
// Every quantity the engines manipulate at runtime — channel occupancy,
// actor clocks, absolute timestamps, LP tableau coefficients — is bounded
// by expressions over static graph data: port rates, execution times,
// initial tokens, the repetition vector and the storage budget the
// exploration is allowed to spend. derive_bounds() evaluates those
// expressions once, in saturating arithmetic, and packages the result as a
// BoundsCertificate: a machine-checkable statement of the form
//
//   "for every bounded self-timed execution of this graph whose channel
//    capacities stay within `storage_budget`, every magnitude of the
//    listed kind stays within the listed envelope".
//
// Soundness rests on engine invariants that are themselves audited at
// runtime (BUFFY_AUDIT, DESIGN.md §9): stored tokens are non-negative and
// occupancy never exceeds the capacity (`lane-capacity-bound`), so the
// per-channel peak is the capacity budget itself; one kernel step only
// ever forms sums `occupied + production_rate`, so the per-step sum bound
// is budget + rate; absolute time advances by at most one execution time
// per step, so the timestamp envelope is max_steps * max_execution_time.
//
// Consumers compare the envelopes against their own limits — the analysis
// layer deliberately knows nothing about kernel lane widths or simplex
// word sizes:
//   * state::LaneThroughputSolver selects the narrow (i32) kernel per
//     graph when magnitude_bound fits its kNarrowLimit gate,
//   * codegen emits statically-narrow explorers without per-step overflow
//     checks when the certificate covers them,
//   * buffyd admission rejects graphs whose envelopes leave i64
//     (fits_i64 == false) with a structured diagnostic,
//   * lp pre-sizes exact rational arithmetic from lp_coeff_bound.
//
// A certificate never claims anything about executions outside its
// budget; callers must check covers() (or enforce the budget by
// construction, as the DSE engines do) before relying on one.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "base/checked_math.hpp"
#include "sdf/graph.hpp"

namespace buffy::analysis {

/// Inputs of derive_bounds beyond the graph itself.
struct BoundsOptions {
  /// Per-channel capacity budget the certificate is asked to cover, in
  /// channel-index order. Empty selects the structural default
  /// t_c + q_src * p_c + q_dst * c_c per channel (initial tokens plus one
  /// full iteration of production and consumption slack), which contains
  /// every classical per-channel lower bound.
  std::vector<i64> storage_budget;
  /// Simulation-step horizon of the timestamp envelope; matches the
  /// engines' max_steps safety bound (state::ThroughputOptions).
  u64 max_steps = 100'000'000;
};

/// The magnitude envelopes derive_bounds() proves for one graph under one
/// storage budget. Every `*_bound` field is a sound upper bound; when a
/// saturating evaluation left the signed-64-bit range the field is pinned
/// at INT64_MAX, fits_i64 is false and overflow_detail names the first
/// envelope that escaped.
struct BoundsCertificate {
  /// Identity of the certified graph (shape check; see matches()).
  std::string graph_name;
  std::size_t num_actors = 0;
  std::size_t num_channels = 0;

  /// False when no repetition vector exists; no envelope then holds for
  /// any finite storage distribution (token counts diverge), so
  /// fits_i64 is false as well and overflow_detail explains.
  bool consistent = false;
  /// True when every envelope below is exact (nothing saturated).
  bool fits_i64 = false;
  /// Names the first envelope that left i64 (empty when fits_i64).
  std::string overflow_detail;

  /// The repetition vector (empty when !consistent).
  std::vector<i64> repetitions;
  /// The per-channel capacity budget this certificate covers.
  std::vector<i64> storage_budget;
  /// Per-channel peak occupancy under the budget. Equal to the budget
  /// entry: the engines' audited occupancy invariant (occupied <= cap)
  /// makes the capacity itself the reachable peak envelope.
  std::vector<i64> channel_peak;

  /// Maxima of the raw graph magnitudes.
  i64 max_execution_time = 0;
  i64 max_rate = 0;
  i64 max_initial_tokens = 0;
  /// Sum of all initial tokens (LP right-hand sides, period denominators).
  i64 total_initial_tokens = 0;

  /// max over {execution times, port rates, initial tokens, budget
  /// entries}: the single number kernel-width gates compare against
  /// (every value a kernel lane stores is bounded by it).
  i64 magnitude_bound = 0;
  /// max_c (budget_c + production rate of c): the largest sum one kernel
  /// step can form (`occupied + rate` during a start phase).
  i64 step_sum_bound = 0;
  /// Sum of repetitions[a] * execution_time[a]: the busy time of one
  /// graph iteration, the building block of period and MCM arithmetic.
  i64 period_work = 0;
  /// The simulation-step horizon the timestamp envelope was derived for
  /// (BoundsOptions::max_steps, recorded so the verifier can recompute
  /// timestamp_bound without trusting the derivation).
  u64 max_steps = 0;
  /// max_steps * max_execution_time: envelope of every absolute
  /// timestamp after max_steps simulation steps (each step advances time
  /// by at most one execution time).
  i64 timestamp_bound = 0;
  /// Envelope on |numerator| and denominator of every coefficient and
  /// right-hand side of the lp/ SDF models (cycle cuts and the periodic
  /// sizing LP) built for this graph within the budget, before pivoting.
  i64 lp_coeff_bound = 0;

  /// True when `caps` (channel-index order) lies inside the certified
  /// budget — the precondition for applying any envelope to a run.
  [[nodiscard]] bool covers(std::span<const i64> caps) const;

  /// True when the certificate was derived from a graph of this name and
  /// shape (cheap identity check for banks that outlive one graph).
  [[nodiscard]] bool matches(const sdf::Graph& graph) const;
};

/// Computes the certificate for `graph` under `options`. Never throws on
/// magnitude overflow — envelopes saturate and the certificate reports
/// fits_i64 == false instead, so admission layers can diagnose oversized
/// graphs without tripping the exception paths they guard.
[[nodiscard]] BoundsCertificate derive_bounds(const sdf::Graph& graph,
                                              const BoundsOptions& options = {});

/// Independently re-checks a certificate against the graph: shape
/// identity, repetition-vector balance equations, budget/peak agreement,
/// and every envelope re-derived in overflow-checked arithmetic. Returns
/// one human-readable violation per failed check; empty means the
/// certificate is valid. This is the machine-checkable half of the
/// certificate story: a verifier that shares no code with derive_bounds'
/// saturating evaluation.
[[nodiscard]] std::vector<std::string> verify_certificate(
    const sdf::Graph& graph, const BoundsCertificate& certificate);

}  // namespace buffy::analysis
