#include "analysis/consistency.hpp"

#include "analysis/repetition_vector.hpp"
#include "base/diagnostics.hpp"

namespace buffy::analysis {

bool is_consistent(const sdf::Graph& graph) {
  if (graph.num_actors() == 0) return true;
  try {
    (void)repetition_vector(graph);
    return true;
  } catch (const ConsistencyError&) {
    return false;
  }
}

void require_consistent(const sdf::Graph& graph) {
  if (graph.num_actors() == 0) return;
  (void)repetition_vector(graph);
}

std::string explain_inconsistency(const sdf::Graph& graph) {
  if (graph.num_actors() == 0) return "";
  try {
    (void)repetition_vector(graph);
    return "";
  } catch (const ConsistencyError& e) {
    return e.what();
  }
}

}  // namespace buffy::analysis
