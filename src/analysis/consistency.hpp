// Consistency checking (paper Sec. 3, [Lee91]).
//
// Consistent graphs are exactly those that admit a deadlock-free execution
// in bounded memory; the buffer-sizing problem is trivial for inconsistent
// graphs (throughput is 0 for every finite storage distribution or token
// counts grow without bound), so every analysis in buffy requires
// consistency up front.
#pragma once

#include <string>

#include "sdf/graph.hpp"

namespace buffy::analysis {

/// True when a repetition vector exists.
[[nodiscard]] bool is_consistent(const sdf::Graph& graph);

/// Throws ConsistencyError (with the offending channel named) when the
/// graph is inconsistent; no-op otherwise.
void require_consistent(const sdf::Graph& graph);

/// Human-readable explanation of the inconsistency; empty string when the
/// graph is consistent.
[[nodiscard]] std::string explain_inconsistency(const sdf::Graph& graph);

}  // namespace buffy::analysis
