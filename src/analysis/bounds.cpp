#include "analysis/bounds.hpp"

#include <algorithm>

#include "analysis/consistency.hpp"
#include "analysis/repetition_vector.hpp"
#include "base/diagnostics.hpp"

namespace buffy::analysis {
namespace {

/// Saturating accumulator: arithmetic clamps at INT64_MAX and remembers
/// the first expression that left the range. Derivation must never throw
/// on oversized graphs — reporting the overflow *is* the result.
class Sat {
 public:
  explicit Sat(std::string* detail) : detail_(detail) {}

  i64 add(i64 a, i64 b, const char* what) {
    i64 r = 0;
    if (__builtin_add_overflow(a, b, &r)) return saturate(what);
    return r;
  }

  i64 mul(i64 a, i64 b, const char* what) {
    i64 r = 0;
    if (__builtin_mul_overflow(a, b, &r)) return saturate(what);
    return r;
  }

  [[nodiscard]] bool exact() const { return exact_; }

 private:
  i64 saturate(const char* what) {
    if (exact_ && detail_->empty()) {
      *detail_ = std::string(what) + " envelope exceeds i64";
    }
    exact_ = false;
    return INT64_MAX;
  }

  std::string* detail_;
  bool exact_ = true;
};

i64 clamp_u64_to_i64(u64 v) {
  return v > static_cast<u64>(INT64_MAX) ? INT64_MAX : static_cast<i64>(v);
}

}  // namespace

bool BoundsCertificate::covers(std::span<const i64> caps) const {
  if (caps.size() != storage_budget.size()) return false;
  for (std::size_t c = 0; c < caps.size(); ++c) {
    if (caps[c] > storage_budget[c]) return false;
  }
  return true;
}

bool BoundsCertificate::matches(const sdf::Graph& graph) const {
  return graph_name == graph.name() && num_actors == graph.num_actors() &&
         num_channels == graph.num_channels();
}

BoundsCertificate derive_bounds(const sdf::Graph& graph,
                                const BoundsOptions& options) {
  BoundsCertificate cert;
  cert.graph_name = graph.name();
  cert.num_actors = graph.num_actors();
  cert.num_channels = graph.num_channels();

  // Raw graph maxima exist for any graph, consistent or not.
  for (const sdf::ActorId a : graph.actor_ids()) {
    cert.max_execution_time =
        std::max(cert.max_execution_time, graph.actor(a).execution_time);
  }
  Sat sat(&cert.overflow_detail);
  for (const sdf::ChannelId c : graph.channel_ids()) {
    const sdf::Channel& ch = graph.channel(c);
    cert.max_rate = std::max({cert.max_rate, ch.production, ch.consumption});
    cert.max_initial_tokens =
        std::max(cert.max_initial_tokens, ch.initial_tokens);
    cert.total_initial_tokens = sat.add(cert.total_initial_tokens,
                                        ch.initial_tokens, "initial-tokens");
  }

  // The repetition vector is where oversized multirate graphs first
  // escape i64; report that as a magnitude overflow, not an exception.
  try {
    cert.repetitions = repetition_vector(graph).counts();
    cert.consistent = true;
  } catch (const OverflowError&) {
    cert.consistent = true;  // balance equations hold, the vector does not fit
    cert.overflow_detail = "repetition-vector envelope exceeds i64";
    cert.fits_i64 = false;
    return cert;
  } catch (const Error& e) {
    cert.consistent = false;
    cert.overflow_detail = e.what();
    cert.fits_i64 = false;
    return cert;
  }

  // Storage budget: caller-provided, or the structural default
  // t + q_src * p + q_dst * c (one full iteration of slack on both ports;
  // this dominates the classical lower bound p + c - gcd + t mod gcd, so
  // the certified box always contains the feasible floor).
  if (!options.storage_budget.empty()) {
    BUFFY_REQUIRE(options.storage_budget.size() == graph.num_channels(),
                  "storage budget must cover every channel of '" +
                      graph.name() + "'");
    cert.storage_budget = options.storage_budget;
  } else {
    cert.storage_budget.reserve(graph.num_channels());
    for (const sdf::ChannelId c : graph.channel_ids()) {
      const sdf::Channel& ch = graph.channel(c);
      const i64 produced = sat.mul(cert.repetitions[ch.src.index()],
                                   ch.production, "storage-budget");
      const i64 consumed = sat.mul(cert.repetitions[ch.dst.index()],
                                   ch.consumption, "storage-budget");
      cert.storage_budget.push_back(
          sat.add(ch.initial_tokens, sat.add(produced, consumed,
                                             "storage-budget"),
                  "storage-budget"));
    }
  }
  // Peak occupancy equals the budget: the engines' audited invariant
  // occupied <= cap makes the capacity the reachable envelope, and it is
  // attained (a channel can fill to its capacity).
  cert.channel_peak = cert.storage_budget;

  i64 max_budget = 0;
  for (std::size_t c = 0; c < cert.storage_budget.size(); ++c) {
    max_budget = std::max(max_budget, cert.storage_budget[c]);
    const i64 production =
        graph.channel(sdf::ChannelId(c)).production;
    cert.step_sum_bound =
        std::max(cert.step_sum_bound,
                 sat.add(cert.channel_peak[c], production, "step-sum"));
  }
  cert.magnitude_bound =
      std::max({cert.max_execution_time, cert.max_rate,
                cert.max_initial_tokens, max_budget});

  i64 max_q = 0;
  for (const sdf::ActorId a : graph.actor_ids()) {
    max_q = std::max(max_q, cert.repetitions[a.index()]);
    cert.period_work =
        sat.add(cert.period_work,
                sat.mul(cert.repetitions[a.index()],
                        graph.actor(a).execution_time, "period-work"),
                "period-work");
  }

  cert.max_steps = options.max_steps;
  cert.timestamp_bound = sat.mul(clamp_u64_to_i64(options.max_steps),
                                 cert.max_execution_time, "timestamp");

  // LP coefficient envelope, following the coefficient families of
  // lp/sdf_model.cpp before any pivot:
  //   * rate products f = rate * q            (tableau entries),
  //   * the period rational T = q_target / throughput, whose numerator
  //     divides q * period_work and denominator q * total initial tokens
  //     (MCM throughput is a ratio of cycle exec-time to cycle tokens),
  //   * right-hand sides f * exec + (rate + tokens + budget + 1) * T.
  // The envelope is the max of those cross products; pivoting growth is
  // the simplex layer's concern (it pre-sizes from this base bound).
  const i64 rate_product = sat.mul(max_q, cert.max_rate, "lp-coefficient");
  const i64 period_bound =
      sat.mul(max_q, std::max({cert.period_work, cert.total_initial_tokens,
                               i64{1}}),
              "lp-coefficient");
  const i64 constant_term =
      sat.add(sat.add(cert.max_rate, cert.max_initial_tokens,
                      "lp-coefficient"),
              sat.add(max_budget, i64{1}, "lp-coefficient"),
              "lp-coefficient");
  cert.lp_coeff_bound =
      std::max({rate_product, period_bound,
                sat.mul(rate_product, cert.max_execution_time,
                        "lp-coefficient"),
                sat.mul(constant_term, period_bound, "lp-coefficient")});

  cert.fits_i64 = sat.exact();
  return cert;
}

std::vector<std::string> verify_certificate(
    const sdf::Graph& graph, const BoundsCertificate& certificate) {
  std::vector<std::string> violations;
  const auto flag = [&](const std::string& what) {
    violations.push_back(what);
  };

  if (!certificate.matches(graph)) {
    flag("certificate identity does not match the graph (name or shape)");
    return violations;
  }
  if (!certificate.consistent) {
    if (is_consistent(graph)) {
      flag("certificate claims inconsistency but a repetition vector exists");
    }
    if (certificate.fits_i64) {
      flag("an inconsistent graph admits no finite envelopes");
    }
    return violations;
  }
  if (!is_consistent(graph)) {
    flag("certificate claims consistency but the balance equations have "
         "no solution");
    return violations;
  }
  if (!certificate.fits_i64 && certificate.overflow_detail.empty()) {
    flag("fits_i64 is false but overflow_detail is empty");
  }

  // Full re-derivation in overflow-checked arithmetic: every envelope is
  // recomputed from the graph; the first checked operation that leaves
  // i64 throws and lands in the catch below. An exact certificate must
  // agree with (or dominate, for envelope fields) the recomputation; an
  // inexact one must actually overflow somewhere — fits_i64 == false on
  // a graph whose envelopes all fit is a forgery.
  try {
    const std::vector<i64> q = repetition_vector(graph).counts();

    i64 max_exec = 0;
    i64 max_q = 0;
    i64 period_work = 0;
    for (const sdf::ActorId a : graph.actor_ids()) {
      const i64 t = graph.actor(a).execution_time;
      max_exec = std::max(max_exec, t);
      max_q = std::max(max_q, q[a.index()]);
      period_work = checked_add(period_work, checked_mul(q[a.index()], t));
    }
    i64 max_rate = 0;
    i64 max_tokens = 0;
    i64 total_initial = 0;
    for (const sdf::ChannelId c : graph.channel_ids()) {
      const sdf::Channel& ch = graph.channel(c);
      max_rate = std::max({max_rate, ch.production, ch.consumption});
      max_tokens = std::max(max_tokens, ch.initial_tokens);
      total_initial = checked_add(total_initial, ch.initial_tokens);
    }

    // Budget: the certificate's own box when it covers the graph (the
    // usual case), else the structural default — saturated certificates
    // return before a budget is stored, and their default-budget products
    // are often exactly what overflowed.
    std::vector<i64> budget = certificate.storage_budget;
    if (budget.size() != graph.num_channels()) {
      if (certificate.fits_i64) {
        flag("storage budget does not cover every channel");
        return violations;
      }
      budget.clear();
      for (const sdf::ChannelId c : graph.channel_ids()) {
        const sdf::Channel& ch = graph.channel(c);
        budget.push_back(checked_add(
            ch.initial_tokens,
            checked_add(checked_mul(q[ch.src.index()], ch.production),
                        checked_mul(q[ch.dst.index()], ch.consumption))));
      }
    }
    i64 max_budget = 0;
    i64 step_sum = 0;
    for (const sdf::ChannelId c : graph.channel_ids()) {
      max_budget = std::max(max_budget, budget[c.index()]);
      step_sum = std::max(step_sum, checked_add(budget[c.index()],
                                                graph.channel(c).production));
    }

    const i64 timestamp =
        checked_mul(clamp_u64_to_i64(certificate.max_steps), max_exec);

    // The LP coefficient families of lp/sdf_model.cpp (see derive_bounds).
    const i64 rate_product = checked_mul(max_q, max_rate);
    const i64 period_bound =
        checked_mul(max_q, std::max({period_work, total_initial, i64{1}}));
    const i64 constant_term =
        checked_add(checked_add(max_rate, max_tokens),
                    checked_add(max_budget, i64{1}));
    const i64 lp_bound =
        std::max({rate_product, period_bound,
                  checked_mul(rate_product, max_exec),
                  checked_mul(constant_term, period_bound)});

    if (!certificate.fits_i64) {
      flag("fits_i64 is false but every envelope fits i64 on "
           "recomputation");
      return violations;
    }

    // Balance equations on the certificate's own repetition vector:
    // production * q_src == consumption * q_dst per channel, checked
    // independently of how the vector was found.
    if (certificate.repetitions.size() != graph.num_actors()) {
      flag("repetition vector does not cover every actor");
      return violations;
    }
    for (const sdf::ActorId a : graph.actor_ids()) {
      if (certificate.repetitions[a.index()] < 1) {
        flag("repetition count of actor '" + graph.actor(a).name +
             "' is not positive");
      }
    }
    for (const sdf::ChannelId c : graph.channel_ids()) {
      const sdf::Channel& ch = graph.channel(c);
      if (checked_mul(ch.production,
                      certificate.repetitions[ch.src.index()]) !=
          checked_mul(ch.consumption,
                      certificate.repetitions[ch.dst.index()])) {
        flag("balance equation fails on channel '" + ch.name + "'");
      }
    }

    if (certificate.channel_peak.size() != graph.num_channels()) {
      flag("channel peaks do not cover every channel");
      return violations;
    }
    for (const sdf::ChannelId c : graph.channel_ids()) {
      const sdf::Channel& ch = graph.channel(c);
      const std::size_t i = c.index();
      if (certificate.channel_peak[i] != certificate.storage_budget[i]) {
        flag("peak of channel '" + ch.name +
             "' does not equal its capacity budget");
      }
      if (certificate.storage_budget[i] < ch.initial_tokens) {
        flag("budget of channel '" + ch.name +
             "' cannot hold its initial tokens");
      }
      if (certificate.magnitude_bound < certificate.storage_budget[i]) {
        flag("magnitude bound misses the budget of channel '" + ch.name +
             "'");
      }
      if (certificate.magnitude_bound <
          std::max({ch.production, ch.consumption, ch.initial_tokens})) {
        flag("magnitude bound misses a magnitude of channel '" + ch.name +
             "'");
      }
    }
    for (const sdf::ActorId a : graph.actor_ids()) {
      if (certificate.magnitude_bound < graph.actor(a).execution_time) {
        flag("magnitude bound misses the execution time of actor '" +
             graph.actor(a).name + "'");
      }
    }

    // Exact statistics must agree; envelope fields must dominate.
    if (certificate.max_execution_time != max_exec) {
      flag("max execution time disagrees with recomputation");
    }
    if (certificate.max_rate != max_rate) {
      flag("max rate disagrees with recomputation");
    }
    if (certificate.max_initial_tokens != max_tokens) {
      flag("max initial tokens disagrees with recomputation");
    }
    if (certificate.total_initial_tokens != total_initial) {
      flag("total initial tokens disagrees with recomputation");
    }
    if (certificate.period_work != period_work) {
      flag("period work disagrees with recomputation");
    }
    if (step_sum > certificate.step_sum_bound) {
      flag("step-sum bound is below an occupancy + production sum");
    }
    if (certificate.timestamp_bound < timestamp) {
      flag("timestamp envelope is below max_steps * max execution time");
    }
    if (certificate.lp_coeff_bound < lp_bound) {
      flag("LP coefficient envelope is below the recomputed coefficient "
           "families");
    }
  } catch (const OverflowError&) {
    if (certificate.fits_i64) {
      flag("an envelope claimed exact by fits_i64 overflows on "
           "recomputation");
    }
  }
  return violations;
}

}  // namespace buffy::analysis
