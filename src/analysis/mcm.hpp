// Maximum cycle ratio analysis (the [GG93] role in the paper).
//
// For a homogeneous (single-rate) graph with execution times w and edge
// token counts t, the iteration period of self-timed execution equals the
// maximum over all directed cycles of (sum of execution times on the cycle)
// divided by (sum of tokens on the cycle). A cycle with positive execution
// time and zero tokens can never fire: deadlock.
//
// Two implementations are provided:
//   * max_cycle_ratio        — cycle-improvement iteration with an exact
//                              Bellman-Ford certificate (production use);
//   * max_cycle_ratio_bruteforce — Johnson-style enumeration of all simple
//                              cycles (exponential; test oracle only).
#pragma once

#include <cstddef>
#include <vector>

#include "base/rational.hpp"
#include "sdf/graph.hpp"

namespace buffy::analysis {

/// Edge of a cycle-ratio problem.
struct RatioEdge {
  std::size_t src = 0;
  std::size_t dst = 0;
  /// Numerator contribution (execution time of src in the HSDF reading).
  i64 weight = 0;
  /// Denominator contribution (initial tokens / iteration delay).
  i64 tokens = 0;
};

/// A directed multigraph with weights and token counts on its edges.
struct RatioProblem {
  std::size_t num_nodes = 0;
  std::vector<RatioEdge> edges;
};

/// Outcome of a cycle-ratio computation.
struct CycleRatioResult {
  /// False when the graph has no directed cycle at all (ratio undefined).
  bool has_cycle = false;
  /// True when some cycle has positive weight but zero tokens.
  bool deadlock = false;
  /// Max cycle ratio; meaningful only when has_cycle && !deadlock.
  Rational ratio;
  /// Node indices of one critical cycle (first node not repeated).
  std::vector<std::size_t> critical_cycle;
};

/// Builds the cycle-ratio problem of a homogeneous graph: edge weight is the
/// execution time of the producing actor, edge tokens are the channel's
/// initial tokens. Throws GraphError when the graph is not homogeneous.
[[nodiscard]] RatioProblem ratio_problem_from_hsdf(const sdf::Graph& hsdf);

/// Exact maximum cycle ratio (production algorithm).
[[nodiscard]] CycleRatioResult max_cycle_ratio(const RatioProblem& problem);

/// Exact maximum cycle ratio by enumerating all simple cycles (test oracle).
[[nodiscard]] CycleRatioResult max_cycle_ratio_bruteforce(
    const RatioProblem& problem);

/// Third independent implementation: generalised Karp. Per strongly
/// connected component, a DP over (token count, node) longest path weights
/// yields the ratio via Karp's formula; zero-token edges are resolved in
/// topological order (they form a DAG once deadlock is excluded).
/// O(T * (n + m)) per component, T = component's token count.
/// The critical_cycle field is not populated by this implementation.
[[nodiscard]] CycleRatioResult max_cycle_ratio_karp(
    const RatioProblem& problem);

}  // namespace buffy::analysis
