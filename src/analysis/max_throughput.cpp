#include "analysis/max_throughput.hpp"

#include "analysis/hsdf.hpp"
#include "base/diagnostics.hpp"

namespace buffy::analysis {

Rational MaxThroughput::actor_throughput(sdf::ActorId a) const {
  if (deadlock) return Rational(0);
  return Rational(repetitions[a]) / iteration_period;
}

MaxThroughput max_throughput(const sdf::Graph& graph) {
  BUFFY_REQUIRE(graph.num_actors() > 0, "max throughput of an empty graph");
  const HsdfResult hsdf = to_hsdf(graph);
  const RatioProblem problem = ratio_problem_from_hsdf(hsdf.graph);
  const CycleRatioResult mcr = max_cycle_ratio(problem);
  // The no-auto-concurrency chains guarantee at least one cycle per actor.
  BUFFY_ASSERT(mcr.has_cycle, "HSDF expansion without cycles");
  MaxThroughput out{
      .deadlock = mcr.deadlock,
      .iteration_period = mcr.deadlock ? Rational(0) : mcr.ratio,
      .repetitions = repetition_vector(graph),
  };
  return out;
}

}  // namespace buffy::analysis
