// SDF to HSDF (homogeneous SDF) expansion.
//
// Each actor a is replaced by q(a) copies, one per firing in an iteration;
// each token consumption is turned into a single-rate dependency edge whose
// initial tokens equal the iteration distance between producing and
// consuming firing. The paper uses this expansion (via [GG93]) to obtain the
// maximal achievable throughput of a graph, which frames the throughput
// dimension of the design space (Sec. 8/9).
//
// The expansion also encodes the paper's no-auto-concurrency rule: the
// firings a_0 .. a_{q-1} of an actor are chained, with a wrap-around edge
// carrying one initial token from the last copy back to the first.
#pragma once

#include <vector>

#include "analysis/repetition_vector.hpp"
#include "sdf/graph.hpp"

namespace buffy::analysis {

/// Result of the expansion. `graph` is single-rate: every port rate is 1 and
/// the initial tokens of an edge are its iteration delay.
struct HsdfResult {
  sdf::Graph graph;
  /// Original actor for each HSDF node (indexed by HSDF actor index).
  std::vector<sdf::ActorId> source_actor;
  /// Firing index within the iteration for each HSDF node.
  std::vector<i64> copy_index;
  /// HSDF copies of each original actor (indexed by original actor index).
  std::vector<std::vector<sdf::ActorId>> copies;
};

/// Expands a consistent graph; size of the result is sum(q) nodes.
/// Throws ConsistencyError for inconsistent graphs.
[[nodiscard]] HsdfResult to_hsdf(const sdf::Graph& graph);

/// True when every rate in the graph is 1 (the graph is homogeneous).
[[nodiscard]] bool is_homogeneous(const sdf::Graph& graph);

}  // namespace buffy::analysis
