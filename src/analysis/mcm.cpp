#include "analysis/mcm.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "base/diagnostics.hpp"

namespace buffy::analysis {

RatioProblem ratio_problem_from_hsdf(const sdf::Graph& hsdf) {
  RatioProblem problem;
  problem.num_nodes = hsdf.num_actors();
  problem.edges.reserve(hsdf.num_channels());
  for (const sdf::ChannelId c : hsdf.channel_ids()) {
    const sdf::Channel& ch = hsdf.channel(c);
    if (ch.production != 1 || ch.consumption != 1) {
      throw GraphError("cycle-ratio problem requires a homogeneous graph; "
                       "channel '" + ch.name + "' is multirate");
    }
    problem.edges.push_back(RatioEdge{
        .src = ch.src.index(),
        .dst = ch.dst.index(),
        .weight = hsdf.actor(ch.src).execution_time,
        .tokens = ch.initial_tokens,
    });
  }
  return problem;
}

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

// Detects a directed cycle using only edges satisfying the filter; returns
// one such cycle (node indices, first node not repeated) or empty.
template <typename EdgeFilter>
std::vector<std::size_t> find_cycle(const RatioProblem& problem,
                                    EdgeFilter include) {
  // Adjacency restricted to the filtered edges.
  std::vector<std::vector<std::size_t>> adj(problem.num_nodes);
  for (std::size_t e = 0; e < problem.edges.size(); ++e) {
    if (include(problem.edges[e])) {
      adj[problem.edges[e].src].push_back(problem.edges[e].dst);
    }
  }
  enum class Colour { White, Grey, Black };
  std::vector<Colour> colour(problem.num_nodes, Colour::White);
  std::vector<std::size_t> parent(problem.num_nodes, kNone);
  // Iterative DFS storing (node, next-neighbour position).
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  for (std::size_t root = 0; root < problem.num_nodes; ++root) {
    if (colour[root] != Colour::White) continue;
    colour[root] = Colour::Grey;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [node, pos] = stack.back();
      if (pos == adj[node].size()) {
        colour[node] = Colour::Black;
        stack.pop_back();
        continue;
      }
      const std::size_t next = adj[node][pos];
      ++pos;
      if (colour[next] == Colour::Grey) {
        // Back edge node -> next closes a cycle next -> ... -> node.
        std::vector<std::size_t> cycle{next};
        for (std::size_t cur = node; cur != next; cur = parent[cur]) {
          cycle.push_back(cur);
        }
        std::reverse(cycle.begin() + 1, cycle.end());
        return cycle;
      }
      if (colour[next] == Colour::White) {
        colour[next] = Colour::Grey;
        parent[next] = node;
        stack.emplace_back(next, 0);
      }
    }
  }
  return {};
}

struct BellmanFordOutcome {
  bool positive_cycle = false;
  // Node sequence of a (simple) cycle whose transformed weight is positive.
  std::vector<std::size_t> cycle;
};

// Longest-path Bellman-Ford on edge values w*den - num*t; reports a cycle
// with strictly positive transformed weight when one exists.
BellmanFordOutcome positive_cycle(const RatioProblem& problem,
                                  const Rational& lambda) {
  const std::size_t n = problem.num_nodes;
  std::vector<i64> value(problem.edges.size());
  for (std::size_t e = 0; e < problem.edges.size(); ++e) {
    value[e] = checked_sub(checked_mul(problem.edges[e].weight, lambda.den()),
                           checked_mul(lambda.num(), problem.edges[e].tokens));
  }
  // Virtual source: every node starts at distance zero.
  std::vector<i64> dist(n, 0);
  std::vector<std::size_t> pred(n, kNone);
  std::size_t last_updated = kNone;
  for (std::size_t round = 0; round <= n; ++round) {
    last_updated = kNone;
    for (std::size_t e = 0; e < problem.edges.size(); ++e) {
      const RatioEdge& edge = problem.edges[e];
      const i64 candidate = checked_add(dist[edge.src], value[e]);
      if (candidate > dist[edge.dst]) {
        dist[edge.dst] = candidate;
        pred[edge.dst] = edge.src;
        last_updated = edge.dst;
      }
    }
    if (last_updated == kNone) return {};
  }
  // Still relaxing after n rounds: walk n predecessors to land on a cycle
  // of the predecessor graph, then collect it.
  std::size_t cur = last_updated;
  for (std::size_t i = 0; i < n; ++i) cur = pred[cur];
  BellmanFordOutcome out;
  out.positive_cycle = true;
  std::vector<bool> on_path(n, false);
  std::vector<std::size_t> path;
  while (!on_path[cur]) {
    on_path[cur] = true;
    path.push_back(cur);
    cur = pred[cur];
  }
  // path holds the walk backwards; the cycle is the suffix starting at cur.
  const auto start = std::find(path.begin(), path.end(), cur);
  out.cycle.assign(start, path.end());
  std::reverse(out.cycle.begin(), out.cycle.end());
  return out;
}

// Exact ratio of a cycle given as a node sequence: picks, for each hop, the
// parallel edge maximising the ratio contribution is ambiguous, so we use
// the edge maximising weight*den - num*tokens at the current lambda; for
// ratio computation we instead simply take, per hop, the edge with maximum
// (weight, -tokens) lexicographically among those connecting the hop. To
// stay faithful to the cycle found by Bellman-Ford we recompute using the
// best transformed value at the lambda that discovered it.
struct CycleRatio {
  i64 weight = 0;
  i64 tokens = 0;
};

CycleRatio cycle_ratio(const RatioProblem& problem,
                       const std::vector<std::size_t>& cycle,
                       const Rational& lambda) {
  CycleRatio total;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const std::size_t src = cycle[i];
    const std::size_t dst = cycle[(i + 1) % cycle.size()];
    bool found = false;
    i64 best_value = 0;
    i64 best_weight = 0;
    i64 best_tokens = 0;
    for (const RatioEdge& e : problem.edges) {
      if (e.src != src || e.dst != dst) continue;
      const i64 v = checked_sub(checked_mul(e.weight, lambda.den()),
                                checked_mul(lambda.num(), e.tokens));
      if (!found || v > best_value) {
        found = true;
        best_value = v;
        best_weight = e.weight;
        best_tokens = e.tokens;
      }
    }
    BUFFY_ASSERT(found, "cycle hop without a connecting edge");
    total.weight = checked_add(total.weight, best_weight);
    total.tokens = checked_add(total.tokens, best_tokens);
  }
  return total;
}

}  // namespace

CycleRatioResult max_cycle_ratio(const RatioProblem& problem) {
  CycleRatioResult result;

  // Deadlock: a cycle using only token-free edges can never make progress.
  const auto dead = find_cycle(
      problem, [](const RatioEdge& e) { return e.tokens == 0; });
  if (!dead.empty()) {
    result.has_cycle = true;
    result.deadlock = true;
    result.critical_cycle = dead;
    return result;
  }

  // Cycle-improvement iteration: repeatedly ask Bellman-Ford for a cycle
  // strictly better than the best ratio seen so far. Every extracted cycle
  // is simple and strictly improves the bound, so this terminates with the
  // exact maximum.
  Rational best(0);
  while (true) {
    const BellmanFordOutcome out = positive_cycle(problem, best);
    if (!out.positive_cycle) break;
    const CycleRatio cr = cycle_ratio(problem, out.cycle, best);
    BUFFY_ASSERT(cr.tokens > 0, "token-free cycle escaped deadlock check");
    const Rational ratio(cr.weight, cr.tokens);
    BUFFY_ASSERT(ratio > best, "cycle improvement did not improve");
    best = ratio;
    result.critical_cycle = out.cycle;
    result.has_cycle = true;
  }
  result.ratio = best;
  if (!result.has_cycle) {
    // No cycle with positive transformed weight at lambda = 0 means no cycle
    // at all (all weights are positive in HSDF problems) -- but for general
    // problems a zero-weight cycle could exist; report it as ratio 0.
    const auto any = find_cycle(problem, [](const RatioEdge&) { return true; });
    if (!any.empty()) {
      result.has_cycle = true;
      result.ratio = Rational(0);
      result.critical_cycle = any;
    }
  }
  return result;
}

namespace {

// Depth-first enumeration of all simple cycles that only revisit the start
// node, restricted to nodes >= start (each cycle found exactly once, at its
// minimal node). Exponential; test-oracle use only.
void enumerate_cycles(const RatioProblem& problem,
                      const std::vector<std::vector<std::size_t>>& out_edges,
                      std::size_t start, std::vector<std::size_t>& path,
                      std::vector<i64>& weight_stack,
                      std::vector<i64>& token_stack, std::vector<bool>& on_path,
                      CycleRatioResult& result) {
  const std::size_t node = path.back();
  for (const std::size_t e : out_edges[node]) {
    const RatioEdge& edge = problem.edges[e];
    if (edge.dst < start) continue;
    if (edge.dst == start) {
      i64 w = edge.weight;
      i64 t = edge.tokens;
      for (std::size_t i = 0; i < weight_stack.size(); ++i) {
        w = checked_add(w, weight_stack[i]);
        t = checked_add(t, token_stack[i]);
      }
      result.has_cycle = true;
      if (t == 0) {
        result.deadlock = true;
        result.critical_cycle = path;
        continue;
      }
      const Rational ratio(w, t);
      if (result.deadlock) continue;
      if (result.critical_cycle.empty() || ratio > result.ratio) {
        result.ratio = ratio;
        result.critical_cycle = path;
      }
      continue;
    }
    if (on_path[edge.dst]) continue;
    on_path[edge.dst] = true;
    path.push_back(edge.dst);
    weight_stack.push_back(edge.weight);
    token_stack.push_back(edge.tokens);
    enumerate_cycles(problem, out_edges, start, path, weight_stack,
                     token_stack, on_path, result);
    token_stack.pop_back();
    weight_stack.pop_back();
    path.pop_back();
    on_path[edge.dst] = false;
  }
}

}  // namespace

namespace {

// Kosaraju SCC on the problem graph; returns component index per node.
std::vector<std::size_t> components_of(const RatioProblem& problem,
                                       std::size_t& count) {
  const std::size_t n = problem.num_nodes;
  std::vector<std::vector<std::size_t>> fwd(n), rev(n);
  for (const RatioEdge& e : problem.edges) {
    fwd[e.src].push_back(e.dst);
    rev[e.dst].push_back(e.src);
  }
  std::vector<bool> seen(n, false);
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t root = 0; root < n; ++root) {
    if (seen[root]) continue;
    // Iterative post-order DFS.
    std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
    seen[root] = true;
    while (!stack.empty()) {
      auto& [node, pos] = stack.back();
      if (pos < fwd[node].size()) {
        const std::size_t next = fwd[node][pos++];
        if (!seen[next]) {
          seen[next] = true;
          stack.emplace_back(next, 0);
        }
      } else {
        order.push_back(node);
        stack.pop_back();
      }
    }
  }
  std::vector<std::size_t> component(n, 0);
  std::vector<bool> assigned(n, false);
  count = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (assigned[*it]) continue;
    std::vector<std::size_t> stack{*it};
    assigned[*it] = true;
    while (!stack.empty()) {
      const std::size_t cur = stack.back();
      stack.pop_back();
      component[cur] = count;
      for (const std::size_t next : rev[cur]) {
        if (!assigned[next]) {
          assigned[next] = true;
          stack.push_back(next);
        }
      }
    }
    ++count;
  }
  return component;
}

constexpr i64 kNegInf = std::numeric_limits<i64>::min() / 4;

// Classic Karp (unit edge lengths) on one strongly connected component of a
// unit graph: lambda = max_v min_k (D_n(v) - D_k(v)) / (n - k), with D_k(v)
// the max weight over walks of exactly k edges from an arbitrary source.
struct UnitEdge {
  std::size_t src, dst;
  i64 weight;
};

std::optional<Rational> karp_unit_component(
    const std::vector<UnitEdge>& edges, const std::vector<std::size_t>& nodes,
    std::size_t num_nodes_global) {
  std::vector<std::size_t> local(num_nodes_global,
                                 std::numeric_limits<std::size_t>::max());
  for (std::size_t i = 0; i < nodes.size(); ++i) local[nodes[i]] = i;
  const std::size_t n = nodes.size();
  std::vector<UnitEdge> inside;
  for (const UnitEdge& e : edges) {
    if (local[e.src] < n && local[e.dst] < n) {
      inside.push_back(UnitEdge{local[e.src], local[e.dst], e.weight});
    }
  }
  if (inside.empty()) return std::nullopt;

  std::vector<std::vector<i64>> d(n + 1, std::vector<i64>(n, kNegInf));
  d[0][0] = 0;
  for (std::size_t k = 1; k <= n; ++k) {
    for (const UnitEdge& e : inside) {
      if (d[k - 1][e.src] == kNegInf) continue;
      d[k][e.dst] = std::max(d[k][e.dst], d[k - 1][e.src] + e.weight);
    }
  }
  std::optional<Rational> best;
  for (std::size_t v = 0; v < n; ++v) {
    if (d[n][v] == kNegInf) continue;
    std::optional<Rational> worst;
    for (std::size_t k = 0; k < n; ++k) {
      if (d[k][v] == kNegInf) continue;
      const Rational candidate(d[n][v] - d[k][v], static_cast<i64>(n - k));
      if (!worst.has_value() || candidate < *worst) worst = candidate;
    }
    if (worst.has_value() && (!best.has_value() || *worst > *best)) {
      best = worst;
    }
  }
  return best;
}

}  // namespace

CycleRatioResult max_cycle_ratio_karp(const RatioProblem& problem) {
  CycleRatioResult result;
  const auto dead = find_cycle(
      problem, [](const RatioEdge& e) { return e.tokens == 0; });
  if (!dead.empty()) {
    result.has_cycle = true;
    result.deadlock = true;
    result.critical_cycle = dead;
    return result;
  }

  // Step 1: expand every token to one unit edge. An edge with t tokens
  // becomes a chain u ->(w) i1 ->(0) i2 ... ->(0) v of t unit edges;
  // zero-token edges stay as weighted epsilon edges for step 2.
  std::size_t next_node = problem.num_nodes;
  std::vector<UnitEdge> unit_edges;
  std::vector<UnitEdge> zero_edges;
  for (const RatioEdge& e : problem.edges) {
    if (e.tokens == 0) {
      zero_edges.push_back(UnitEdge{e.src, e.dst, e.weight});
      continue;
    }
    std::size_t cur = e.src;
    for (i64 k = 0; k < e.tokens; ++k) {
      const std::size_t nxt =
          (k == e.tokens - 1) ? e.dst : next_node++;
      unit_edges.push_back(
          UnitEdge{cur, nxt, k == 0 ? e.weight : 0});
      cur = nxt;
    }
  }
  const std::size_t num_nodes = next_node;

  // Step 2: contract the zero-token edges (a DAG after the deadlock check)
  // into the unit edges: H-edge (src -> z) with weight w + longest zero
  // path from the unit edge's head to z. Cycles of H are exactly the
  // token-carrying cycles, with unit length per token.
  std::vector<std::vector<UnitEdge>> zero_out(num_nodes);
  std::vector<std::size_t> indegree(num_nodes, 0);
  for (const UnitEdge& e : zero_edges) {
    zero_out[e.src].push_back(e);
    ++indegree[e.dst];
  }
  std::vector<std::size_t> topo;
  topo.reserve(num_nodes);
  for (std::size_t v = 0; v < num_nodes; ++v) {
    if (indegree[v] == 0) topo.push_back(v);
  }
  for (std::size_t i = 0; i < topo.size(); ++i) {
    for (const UnitEdge& e : zero_out[topo[i]]) {
      if (--indegree[e.dst] == 0) topo.push_back(e.dst);
    }
  }
  BUFFY_ASSERT(topo.size() == num_nodes,
               "zero-token cycle escaped deadlock check");

  std::vector<UnitEdge> contracted;
  std::vector<i64> dist(num_nodes, kNegInf);
  for (const UnitEdge& ue : unit_edges) {
    // Longest zero-paths from this unit edge's head.
    std::fill(dist.begin(), dist.end(), kNegInf);
    dist[ue.dst] = 0;
    for (const std::size_t v : topo) {
      if (dist[v] == kNegInf) continue;
      for (const UnitEdge& ze : zero_out[v]) {
        dist[ze.dst] = std::max(dist[ze.dst], dist[v] + ze.weight);
      }
    }
    for (std::size_t z = 0; z < num_nodes; ++z) {
      if (dist[z] == kNegInf) continue;
      contracted.push_back(UnitEdge{ue.src, z, ue.weight + dist[z]});
    }
  }

  // Step 3: classic Karp per strongly connected component of H.
  RatioProblem h;
  h.num_nodes = num_nodes;
  for (const UnitEdge& e : contracted) {
    h.edges.push_back(
        RatioEdge{.src = e.src, .dst = e.dst, .weight = e.weight, .tokens = 1});
  }
  std::size_t count = 0;
  const auto component = components_of(h, count);
  std::vector<std::vector<std::size_t>> members(count);
  for (std::size_t v = 0; v < num_nodes; ++v) {
    members[component[v]].push_back(v);
  }
  for (const auto& nodes : members) {
    if (nodes.size() == 0) continue;
    std::vector<UnitEdge> comp_edges;
    for (const UnitEdge& e : contracted) {
      if (component[e.src] == component[nodes.front()] &&
          component[e.dst] == component[nodes.front()]) {
        comp_edges.push_back(e);
      }
    }
    if (comp_edges.empty()) continue;
    const auto ratio = karp_unit_component(comp_edges, nodes, num_nodes);
    if (ratio.has_value()) {
      result.has_cycle = true;
      if (*ratio > result.ratio) result.ratio = *ratio;
    }
  }
  if (!result.has_cycle) {
    // Any cycle left after excluding token-free ones carries tokens, so
    // finding none above means the original graph is acyclic.
    const auto any = find_cycle(problem, [](const RatioEdge&) { return true; });
    if (!any.empty()) {
      result.has_cycle = true;
      result.critical_cycle = any;
    }
  }
  return result;
}

CycleRatioResult max_cycle_ratio_bruteforce(const RatioProblem& problem) {
  CycleRatioResult result;
  std::vector<std::vector<std::size_t>> out_edges(problem.num_nodes);
  for (std::size_t e = 0; e < problem.edges.size(); ++e) {
    out_edges[problem.edges[e].src].push_back(e);
  }
  for (std::size_t start = 0; start < problem.num_nodes; ++start) {
    std::vector<std::size_t> path{start};
    std::vector<i64> weights;
    std::vector<i64> tokens;
    std::vector<bool> on_path(problem.num_nodes, false);
    on_path[start] = true;
    enumerate_cycles(problem, out_edges, start, path, weights, tokens, on_path,
                     result);
  }
  return result;
}

}  // namespace buffy::analysis
