#include "io/xml.hpp"

#include <gtest/gtest.h>

#include "base/diagnostics.hpp"

namespace buffy::io {
namespace {

TEST(Xml, ParsesSimpleElement) {
  const auto doc = parse_xml("<root/>");
  EXPECT_EQ(doc.root->name(), "root");
  EXPECT_TRUE(doc.root->children().empty());
}

TEST(Xml, ParsesAttributes) {
  const auto doc = parse_xml(R"(<actor name="a" rate='2'/>)");
  EXPECT_EQ(doc.root->attribute("name"), "a");
  EXPECT_EQ(doc.root->attribute("rate"), "2");
  EXPECT_FALSE(doc.root->attribute("missing").has_value());
}

TEST(Xml, RequiredAttributeThrowsWhenMissing) {
  const auto doc = parse_xml("<a x=\"1\"/>");
  EXPECT_EQ(doc.root->required_attribute("x"), "1");
  EXPECT_THROW((void)doc.root->required_attribute("y"), ParseError);
}

TEST(Xml, ParsesNestedChildren) {
  const auto doc = parse_xml("<a><b><c/></b><b/></a>");
  EXPECT_EQ(doc.root->children().size(), 2u);
  EXPECT_EQ(doc.root->children_named("b").size(), 2u);
  ASSERT_NE(doc.root->child("b"), nullptr);
  EXPECT_NE(doc.root->child("b")->child("c"), nullptr);
  EXPECT_EQ(doc.root->child("zz"), nullptr);
  EXPECT_THROW((void)doc.root->required_child("zz"), ParseError);
}

TEST(Xml, ParsesTextContent) {
  const auto doc = parse_xml("<a>hello <b/>world</a>");
  EXPECT_EQ(doc.root->text(), "hello world");
}

TEST(Xml, DecodesEntities) {
  const auto doc = parse_xml("<a v=\"&lt;&amp;&gt;\">&quot;x&apos;&#65;</a>");
  EXPECT_EQ(doc.root->attribute("v"), "<&>");
  EXPECT_EQ(doc.root->text(), "\"x'A");
}

TEST(Xml, SkipsCommentsAndDeclarations) {
  const auto doc = parse_xml(
      "<?xml version=\"1.0\"?><!-- top --><a><!-- inner --><b/></a>");
  EXPECT_EQ(doc.root->name(), "a");
  EXPECT_EQ(doc.root->children().size(), 1u);
}

TEST(Xml, ParsesCdata) {
  const auto doc = parse_xml("<a><![CDATA[<raw & data>]]></a>");
  EXPECT_EQ(doc.root->text(), "<raw & data>");
}

TEST(Xml, RejectsMismatchedTags) {
  EXPECT_THROW((void)parse_xml("<a></b>"), ParseError);
}

TEST(Xml, RejectsUnterminatedInput) {
  EXPECT_THROW((void)parse_xml("<a>"), ParseError);
  EXPECT_THROW((void)parse_xml("<a attr=\"x/>"), ParseError);
  EXPECT_THROW((void)parse_xml("<!-- never closed"), ParseError);
}

TEST(Xml, RejectsTrailingContent) {
  EXPECT_THROW((void)parse_xml("<a/><b/>"), ParseError);
}

TEST(Xml, RejectsUnknownEntity) {
  EXPECT_THROW((void)parse_xml("<a>&nope;</a>"), ParseError);
}

TEST(Xml, ErrorMessagesCarryPosition) {
  try {
    (void)parse_xml("<a>\n  <b></c>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Xml, EscapeRoundTrip) {
  EXPECT_EQ(xml_escape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
}

TEST(Xml, WriteThenParseRoundTrips) {
  XmlElement root("sdf3");
  root.set_attribute("version", "1.0");
  XmlElement& child = root.add_child("actor");
  child.set_attribute("name", "a<b");
  child.add_child("port").set_attribute("rate", "2");
  const std::string text = write_xml(root);
  const auto doc = parse_xml(text);
  EXPECT_EQ(doc.root->name(), "sdf3");
  EXPECT_EQ(doc.root->child("actor")->attribute("name"), "a<b");
  EXPECT_EQ(doc.root->child("actor")->child("port")->attribute("rate"), "2");
}

TEST(Xml, SetAttributeOverwrites) {
  XmlElement e("x");
  e.set_attribute("k", "1");
  e.set_attribute("k", "2");
  EXPECT_EQ(e.attribute("k"), "2");
  EXPECT_EQ(e.attributes().size(), 1u);
}

}  // namespace
}  // namespace buffy::io
