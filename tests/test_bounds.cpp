#include "buffer/bounds.hpp"

#include <gtest/gtest.h>

#include "models/models.hpp"
#include "sdf/builder.hpp"
#include "state/throughput.hpp"

namespace buffy::buffer {
namespace {

sdf::Channel make_channel(i64 p, i64 c, i64 t, bool self_loop = false) {
  return sdf::Channel{.name = "ch",
                      .src = sdf::ActorId(0),
                      .dst = self_loop ? sdf::ActorId(0) : sdf::ActorId(1),
                      .production = p,
                      .consumption = c,
                      .initial_tokens = t};
}

TEST(Bounds, PaperExampleChannelBounds) {
  // Sec. 8 / Fig. 7 for the example: lb(alpha) = 4, lb(beta) = 2.
  EXPECT_EQ(channel_lower_bound(make_channel(2, 3, 0)), 4);
  EXPECT_EQ(channel_lower_bound(make_channel(1, 2, 0)), 2);
}

TEST(Bounds, ClassicFormulaCases) {
  EXPECT_EQ(channel_lower_bound(make_channel(1, 1, 0)), 1);
  EXPECT_EQ(channel_lower_bound(make_channel(3, 5, 0)), 7);   // 3+5-1
  EXPECT_EQ(channel_lower_bound(make_channel(4, 6, 0)), 8);   // 4+6-2
  EXPECT_EQ(channel_lower_bound(make_channel(4, 6, 1)), 9);   // + 1 mod 2
  EXPECT_EQ(channel_lower_bound(make_channel(594, 1, 0)), 594);
}

TEST(Bounds, ManyInitialTokensNeedTheirOwnSpace) {
  EXPECT_EQ(channel_lower_bound(make_channel(1, 1, 10)), 10);
  EXPECT_EQ(channel_lower_bound(make_channel(2, 3, 100)), 100);
}

TEST(Bounds, SelfLoopNeedsTokensPlusClaim) {
  EXPECT_EQ(channel_lower_bound(make_channel(1, 1, 1, /*self_loop=*/true)), 2);
  EXPECT_EQ(channel_lower_bound(make_channel(2, 2, 4, /*self_loop=*/true)), 6);
}

TEST(Bounds, LowerBoundDistributionOfExample) {
  const auto lb = lower_bound_distribution(models::paper_example());
  EXPECT_EQ(lb.capacities(), (std::vector<i64>{4, 2}));
  EXPECT_EQ(lb.size(), 6);
}

// Brute force: for an isolated producer/consumer pair, the formula must be
// exactly the smallest capacity whose self-timed execution does not
// deadlock, for every (p, c, t) in a grid.
struct PcCase {
  i64 p, c;
};

class BoundFormulaExact : public ::testing::TestWithParam<PcCase> {};

TEST_P(BoundFormulaExact, MatchesBruteForce) {
  const auto [p, c] = GetParam();
  for (i64 t = 0; t <= 2 * (p + c); ++t) {
    sdf::GraphBuilder b("pair");
    const auto src = b.actor("src", 1);
    const auto dst = b.actor("dst", 2);
    b.channel("ch", src, p, dst, c, t);
    const sdf::Graph g = b.build();

    const i64 formula = channel_lower_bound(g.channel(sdf::ChannelId(0)));
    // Smallest capacity >= t with positive throughput.
    i64 brute = -1;
    for (i64 cap = t; cap <= t + p + c + 2; ++cap) {
      const auto r = state::compute_throughput(g, {cap}, dst);
      if (!r.deadlocked) {
        brute = cap;
        break;
      }
    }
    ASSERT_NE(brute, -1) << "p=" << p << " c=" << c << " t=" << t;
    EXPECT_EQ(formula, brute) << "p=" << p << " c=" << c << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BoundFormulaExact,
    ::testing::Values(PcCase{1, 1}, PcCase{2, 3}, PcCase{3, 2}, PcCase{1, 4},
                      PcCase{4, 1}, PcCase{4, 6}, PcCase{6, 4}, PcCase{5, 5},
                      PcCase{8, 12}, PcCase{7, 3}));

class SelfLoopBoundExact : public ::testing::TestWithParam<i64> {};

TEST_P(SelfLoopBoundExact, MatchesBruteForce) {
  const i64 p = GetParam();
  for (i64 t = p; t <= 3 * p; ++t) {  // t >= p or the loop can never fire
    sdf::GraphBuilder b("loop");
    const auto a = b.actor("a", 1);
    b.channel("self", a, p, a, p, t);
    const sdf::Graph g = b.build();
    const i64 formula = channel_lower_bound(g.channel(sdf::ChannelId(0)));
    i64 brute = -1;
    for (i64 cap = t; cap <= t + 2 * p + 2; ++cap) {
      if (!state::compute_throughput(g, {cap}, a).deadlocked) {
        brute = cap;
        break;
      }
    }
    ASSERT_NE(brute, -1);
    EXPECT_EQ(formula, brute) << "p=" << p << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, SelfLoopBoundExact, ::testing::Values(1, 2, 3, 5));

TEST(DesignSpaceBounds, ExampleMatchesPaper) {
  const sdf::Graph g = models::paper_example();
  const auto bounds = design_space_bounds(g, *g.find_actor("c"));
  EXPECT_FALSE(bounds.deadlock);
  EXPECT_EQ(bounds.lb_size, 6);
  EXPECT_EQ(bounds.max_throughput, Rational(1, 4));
  // The max-throughput distribution must actually achieve the maximum and
  // be no smaller than the known minimal size 10.
  EXPECT_GE(bounds.ub_size, 10);
  const auto check = state::compute_throughput(
      g, bounds.max_throughput_distribution.capacities(), *g.find_actor("c"));
  EXPECT_EQ(check.throughput, Rational(1, 4));
}

TEST(DesignSpaceBounds, MaxThroughputDistributionDominatesLowerBounds) {
  for (const auto& m : models::table2_models()) {
    const sdf::ActorId target = models::reported_actor(m.graph);
    const auto bounds = design_space_bounds(m.graph, target);
    ASSERT_FALSE(bounds.deadlock) << m.display_name;
    for (std::size_t c = 0; c < m.graph.num_channels(); ++c) {
      EXPECT_GE(bounds.max_throughput_distribution[c],
                bounds.per_channel_lb[c])
          << m.display_name << " channel " << c;
    }
    EXPECT_GE(bounds.ub_size, bounds.lb_size) << m.display_name;
  }
}

TEST(DesignSpaceBounds, DeadlockedGraphFlagged) {
  sdf::GraphBuilder b("dead");
  const auto a = b.actor("a", 1);
  const auto bb = b.actor("b", 1);
  b.channel("ab", a, 1, bb, 1);
  b.channel("ba", bb, 1, a, 1);
  const sdf::Graph g = b.build();
  const auto bounds = design_space_bounds(g, a);
  EXPECT_TRUE(bounds.deadlock);
}

}  // namespace
}  // namespace buffy::buffer
