// Robustness sweeps for the parsers: mutated and truncated documents must
// either parse or raise buffy exceptions — never crash, hang or corrupt
// state. (The paper's tool reads untrusted XML graph files; Sec. 10.)
#include <gtest/gtest.h>

#include <string>

#include "base/diagnostics.hpp"
#include "base/rng.hpp"
#include "io/csdf_io.hpp"
#include "io/dsl.hpp"
#include "io/sdf_xml.hpp"
#include "io/xml.hpp"
#include "models/models.hpp"

namespace buffy::io {
namespace {

const std::string& valid_xml() {
  static const std::string text = write_sdf_xml(models::modem());
  return text;
}

const std::string& valid_dsl() {
  static const std::string text = write_dsl(models::satellite_receiver());
  return text;
}

// Every parser call below must either succeed or throw a buffy Error;
// anything else (std::bad_alloc aside) fails the test.
template <typename Fn>
void expect_contained(Fn&& parse, const std::string& input) {
  try {
    parse(input);
  } catch (const Error&) {
    // fine: diagnosed rejection
  } catch (const std::exception& e) {
    FAIL() << "non-buffy exception: " << e.what();
  }
}

class MutationSweep : public ::testing::TestWithParam<u64> {};

TEST_P(MutationSweep, XmlByteMutations) {
  Rng rng(GetParam());
  std::string text = valid_xml();
  for (int i = 0; i < 8; ++i) {
    const std::size_t pos = rng.index(text.size());
    text[pos] = static_cast<char>(rng.uniform(1, 126));
  }
  expect_contained([](const std::string& t) { (void)read_sdf_xml(t); }, text);
}

TEST_P(MutationSweep, XmlTruncations) {
  Rng rng(GetParam());
  const std::string& full = valid_xml();
  const std::string text = full.substr(0, rng.index(full.size()));
  expect_contained([](const std::string& t) { (void)read_sdf_xml(t); }, text);
}

TEST_P(MutationSweep, XmlSplices) {
  Rng rng(GetParam());
  const std::string& full = valid_xml();
  // Duplicate a random slice in place: attribute/tag soup.
  const std::size_t a = rng.index(full.size());
  const std::size_t b = a + rng.index(full.size() - a);
  const std::string text = full.substr(0, b) + full.substr(a);
  expect_contained([](const std::string& t) { (void)read_sdf_xml(t); }, text);
}

TEST_P(MutationSweep, DslMutations) {
  Rng rng(GetParam());
  std::string text = valid_dsl();
  for (int i = 0; i < 6; ++i) {
    const std::size_t pos = rng.index(text.size());
    text[pos] = static_cast<char>(rng.uniform(1, 126));
  }
  expect_contained([](const std::string& t) { (void)read_dsl(t); }, text);
}

TEST_P(MutationSweep, CsdfDslMutations) {
  Rng rng(GetParam());
  std::string text =
      "graph g\nactor a 1,2\nactor b 2\nchannel ab a 1,0 b 1 tokens 3\n";
  for (int i = 0; i < 4; ++i) {
    const std::size_t pos = rng.index(text.size());
    text[pos] = static_cast<char>(rng.uniform(1, 126));
  }
  expect_contained([](const std::string& t) { (void)read_csdf_dsl(t); },
                   text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationSweep, ::testing::Range<u64>(1, 41));

TEST(ParserRobustness, PathologicalXmlInputs) {
  for (const char* input : {
           "", "   ", "<", "<>", "< a/>", "<a b=/>", "<a 'x'/>",
           "<a><a><a></a></a>", "&amp;", "<a>&#0;</a>", "<a>&#xqq;</a>",
           "<!DOCTYPE", "<?xml", "<![CDATA[", "<a/><!--",
       }) {
    EXPECT_THROW((void)parse_xml(input), ParseError) << '"' << input << '"';
  }
}

TEST(ParserRobustness, DeepNestingRejectedNotOverflowed) {
  std::string text;
  for (int i = 0; i < 500; ++i) text += "<a>";
  EXPECT_THROW((void)parse_xml(text), ParseError);
}

TEST(ParserRobustness, HugeRateValuesDiagnosed) {
  EXPECT_THROW((void)read_dsl("graph g\nactor a 1\nactor b 1\n"
                              "channel c a 999999999999999999999 b 1\n"),
               ParseError);
}

}  // namespace
}  // namespace buffy::io
