// Minimal JSON well-formedness checker for tests: a recursive-descent
// parser over the full grammar (objects, arrays, strings with escapes,
// numbers, true/false/null) that validates without building a document
// tree. Enough to schema-check the Chrome trace and --stats output
// without a JSON library dependency.
#pragma once

#include <cctype>
#include <string>

namespace buffy::testing {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  /// True when the whole text is exactly one valid JSON value (plus
  /// whitespace). On failure, error() describes the first problem.
  bool valid() {
    pos_ = 0;
    error_.clear();
    skip_ws();
    if (!value()) return false;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after the JSON value");
    }
    return true;
  }

  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) return fail("invalid literal");
    pos_ += n;
    return true;
  }

  bool string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("dangling escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return fail("bad \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape character");
        }
      } else if (static_cast<unsigned char>(text_[pos_]) < 0x20) {
        return fail("unescaped control character in string");
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
      return fail("expected digit");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        return fail("expected fraction digits");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        return fail("expected exponent digits");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool value() {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// Convenience wrapper: true iff `text` is one valid JSON value.
inline bool is_valid_json(const std::string& text, std::string* why = nullptr) {
  JsonChecker checker(text);
  const bool ok = checker.valid();
  if (!ok && why != nullptr) *why = checker.error();
  return ok;
}

}  // namespace buffy::testing
