// The BUFFY_AUDIT self-audit layer (DESIGN.md §9): the mode flag and
// sampling policy, a clean end-to-end audited exploration, and — the core
// of the suite — tamper tests that corrupt one internal structure at a
// time and assert the audit catches each with a precise diagnostic.
#include <gtest/gtest.h>

#include "analysis/repetition_vector.hpp"
#include "base/audit.hpp"
#include "buffer/audit_checks.hpp"
#include "buffer/dse.hpp"
#include "buffer/throughput_cache.hpp"
#include "lp/sdf_model.hpp"
#include "models/models.hpp"
#include "state/engine.hpp"
#include "state/throughput.hpp"
#include "state/visited_table.hpp"

namespace buffy {
namespace {

TEST(Audit, DisabledByDefaultAndScopedRestore) {
  ASSERT_FALSE(audit::enabled());
  const u64 denominator = audit::sample_denominator();
  {
    const audit::ScopedAudit audit_on(/*denominator=*/1);
    EXPECT_TRUE(audit::enabled());
    EXPECT_EQ(audit::sample_denominator(), 1u);
    EXPECT_TRUE(audit::sample(12345));  // denominator 1 samples everything
  }
  EXPECT_FALSE(audit::enabled());
  EXPECT_EQ(audit::sample_denominator(), denominator);
}

TEST(Audit, SamplingIsDeterministic) {
  audit::set_sample_denominator(8);
  for (const u64 h : {u64{0}, u64{1}, u64{0xdeadbeef}}) {
    EXPECT_EQ(audit::sample(h), audit::sample(h));
  }
  audit::set_sample_denominator(1);
  EXPECT_TRUE(audit::sample(0xdeadbeef));
  audit::set_sample_denominator(8);
}

TEST(Audit, ErrorCarriesInvariantAndDetail) {
  try {
    audit::fail("some-invariant", "the detail");
    FAIL() << "expected AuditError";
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.invariant(), "some-invariant");
    EXPECT_STREQ(e.what(), "audit violation [some-invariant]: the detail");
  }
}

// --- end-to-end: a healthy exploration audits clean ---------------------

TEST(Audit, AuditedExplorationReportsNoViolations) {
  const audit::ScopedAudit audit_on(/*denominator=*/1);
  const u64 before = audit::checks_performed();
  const sdf::Graph g = models::samplerate_converter();
  buffer::DseOptions opts{.target = models::reported_actor(g)};
  opts.threads = 4;
  const auto r = buffer::explore(g, opts);
  EXPECT_FALSE(r.pareto.empty());
  // The run actually audited something (engine invariants, table hashes,
  // sampled cache re-simulation, front ordering), not vacuously passed.
  EXPECT_GT(audit::checks_performed(), before);
}

TEST(Audit, BothEnginesAuditCleanOnPaperExample) {
  const audit::ScopedAudit audit_on(/*denominator=*/1);
  const sdf::Graph g = models::paper_example();
  for (const auto engine :
       {buffer::DseEngine::Incremental, buffer::DseEngine::Exhaustive}) {
    buffer::DseOptions opts{.target = models::reported_actor(g),
                            .engine = engine};
    EXPECT_NO_THROW((void)buffer::explore(g, opts));
  }
}

// --- tamper: engine capacity bound --------------------------------------

TEST(AuditTamper, CorruptOccupancyTriggersCapacityDiagnostic) {
  const sdf::Graph g = models::paper_example();
  std::vector<i64> caps(g.num_channels(), 10);
  state::Engine engine(g, state::Capacities::bounded(caps));
  engine.reset();
  EXPECT_NO_THROW(engine.audit_verify_invariants());
  // Forge one channel's claimed occupancy past its capacity: exactly one
  // invariant (the capacity bound, on that channel) must fire.
  engine.corrupt_occupancy_for_test(sdf::ChannelId(0), 100);
  try {
    engine.audit_verify_invariants();
    FAIL() << "expected AuditError";
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.invariant(), "engine-capacity-bound");
    EXPECT_NE(std::string(e.what()).find("channel 0"), std::string::npos)
        << e.what();
  }
}

TEST(AuditTamper, NegativeOccupancyTriggersTokenCoverDiagnostic) {
  const sdf::Graph g = models::paper_example();
  std::vector<i64> caps(g.num_channels(), 10);
  state::Engine engine(g, state::Capacities::bounded(caps));
  engine.reset();
  // Forge occupancy BELOW the stored tokens: the claimed-space invariant
  // (not the capacity bound) must be the one that fires.
  engine.corrupt_occupancy_for_test(sdf::ChannelId(0), -100);
  try {
    engine.audit_verify_invariants();
    FAIL() << "expected AuditError";
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.invariant(), "engine-occupancy-covers-tokens");
  }
}

// --- tamper: visited-table hash ------------------------------------------

TEST(AuditTamper, CorruptVisitedHashTriggersHashDiagnostic) {
  state::VisitedTable table;
  table.reset(/*record_words=*/3);
  for (i64 base = 0; base < 4; ++base) {
    const std::span<i64> rec = table.stage();
    rec[0] = base;
    rec[1] = base + 1;
    rec[2] = base + 2;
    ASSERT_EQ(table.find_or_insert({base, base, static_cast<u64>(base)}),
              nullptr);
  }
  EXPECT_NO_THROW(table.audit_verify());
  table.corrupt_hash_for_test(2);
  try {
    table.audit_verify();
    FAIL() << "expected AuditError";
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.invariant(), "visited-table-hash");
    EXPECT_NE(std::string(e.what()).find("record 2"), std::string::npos)
        << e.what();
  }
}

// --- tamper: throughput cache entry --------------------------------------

TEST(AuditTamper, CorruptCacheEntryTriggersSimulationMismatch) {
  const sdf::Graph g = models::paper_example();
  const sdf::ActorId target = models::reported_actor(g);
  std::vector<i64> caps(g.num_channels(), 10);
  const state::ThroughputResult run = state::compute_throughput(
      g, state::Capacities::bounded(caps),
      state::ThroughputOptions{.target = target});
  ASSERT_FALSE(run.deadlocked);

  buffer::ThroughputCache cache(run.throughput);
  buffer::CachedThroughput value;
  value.throughput = run.throughput;
  cache.store(caps, value);

  // Healthy entry: the cached answer matches a fresh simulation.
  auto hit = cache.find(caps, /*require_deps=*/false);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NO_THROW(buffer::audit_check_cached_throughput(
      g, target, 100'000, {}, caps, *hit));

  // Tampered entry: the same check must report the exact mismatch.
  ASSERT_TRUE(cache.corrupt_entry_for_test(caps, Rational(1, 7)));
  hit = cache.find(caps, /*require_deps=*/false);
  ASSERT_TRUE(hit.has_value());
  try {
    buffer::audit_check_cached_throughput(g, target, 100'000, {}, caps,
                                          *hit);
    FAIL() << "expected AuditError";
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.invariant(), "cache-vs-simulation");
    EXPECT_NE(std::string(e.what()).find("fresh simulation"),
              std::string::npos)
        << e.what();
  }
}

// --- tamper: bogus dominance witness -------------------------------------

TEST(AuditTamper, BogusMaxWitnessTriggersSimulationMismatch) {
  const sdf::Graph g = models::paper_example();
  const sdf::ActorId target = models::reported_actor(g);
  // Claim an absurd maximal throughput with a tiny witness: every
  // dominance "hit" derived from it asserts a throughput the fresh
  // simulation cannot reproduce.
  buffer::ThroughputCache cache(Rational(1));
  std::vector<i64> witness(g.num_channels(), 4);
  cache.add_max_witness(witness);
  const auto hit = cache.find_max_dominated(witness);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->throughput, Rational(1));
  try {
    buffer::audit_check_cached_throughput(g, target, 100'000, {}, witness,
                                          *hit);
    FAIL() << "expected AuditError";
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.invariant(), "cache-vs-simulation");
  }
}

// --- tamper: LP cycle-cut bound ------------------------------------------

TEST(AuditTamper, LpBoundBelowSimulationTriggersLpDiagnostic) {
  // samplerate_converter: the single-rate subgraph has a token-carrying
  // cycle, so derive() actually produces a cut to tamper against.
  const sdf::Graph g = models::samplerate_converter();
  const sdf::ActorId target = models::reported_actor(g);
  const auto cuts = lp::ThroughputCuts::derive(
      g, analysis::repetition_vector(g).counts(), target);
  ASSERT_FALSE(cuts.empty());

  // Generous capacities: the LP floors plus headroom, so the multi-rate
  // graph actually runs instead of deadlocking.
  std::vector<i64> caps = cuts.necessary_floors();
  for (i64& c : caps) c += 64;
  const state::ThroughputResult run = state::compute_throughput(
      g, state::Capacities::bounded(caps),
      state::ThroughputOptions{.target = target});
  ASSERT_FALSE(run.deadlocked);

  // Healthy: the derived bound dominates what the simulation achieved.
  EXPECT_NO_THROW(buffer::audit_check_lp_bound(g, cuts, caps, run.throughput,
                                               run.deadlocked));
  // A deadlocked run satisfies any bound (throughput is zero by fiat).
  EXPECT_NO_THROW(
      buffer::audit_check_lp_bound(g, cuts, caps, Rational(0), true));

  // Tampered: claim the simulation beat the analytic bound. The check
  // must name the invariant — this is the failure mode where an unsound
  // cut silently prunes reachable Pareto points.
  try {
    buffer::audit_check_lp_bound(g, cuts, caps, Rational(1'000'000),
                                 /*deadlocked=*/false);
    FAIL() << "expected AuditError";
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.invariant(), "lp-bound-vs-simulation");
    EXPECT_NE(std::string(e.what()).find("upper bound"), std::string::npos)
        << e.what();
  }
}

// --- tamper: Pareto front ordering ---------------------------------------

TEST(AuditTamper, CorruptParetoThroughputTriggersMonotoneDiagnostic) {
  const sdf::Graph g = models::samplerate_converter();
  buffer::DseOptions opts{.target = models::reported_actor(g)};
  auto result = buffer::explore(g, opts);
  ASSERT_GE(result.pareto.size(), 2u);
  EXPECT_NO_THROW(buffer::audit_verify_monotone_front(result.pareto));
  // Drag the last point's throughput below its predecessor's: the front
  // is no longer strictly increasing and the check must name the pair.
  result.pareto.corrupt_throughput_for_test(result.pareto.size() - 1,
                                            Rational(0));
  try {
    buffer::audit_verify_monotone_front(result.pareto);
    FAIL() << "expected AuditError";
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.invariant(), "pareto-monotone");
  }
}

}  // namespace
}  // namespace buffy
