// Lane-parallel throughput kernel (DESIGN.md §15): the lane solver must
// reproduce the scalar ThroughputSolver field for field on every candidate
// — throughput, deadlock flag, states stored, cycle anatomy and storage
// dependencies — at every lane width, for both the SWAR and (when the host
// has it) AVX2 backends, under every divergence pattern the retire/refill
// machinery can encounter: mixed cycle/deadlock batches, all lanes
// deadlocking at once, single-lane batches, queues much longer than the
// lane width, and candidates that deadlock at time 0 before a single step.
#include "state/lane_throughput.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "base/audit.hpp"
#include "base/diagnostics.hpp"
#include "exec/cancellation.hpp"
#include "gen/random_graph.hpp"
#include "models/models.hpp"
#include "sdf/builder.hpp"
#include "state/simd_backend.hpp"
#include "state/throughput.hpp"

namespace buffy::state {
namespace {

std::vector<SimdBackend> lane_backends() {
  std::vector<SimdBackend> backends{SimdBackend::Swar};
  if (backend_available(SimdBackend::Avx2)) {
    backends.push_back(SimdBackend::Avx2);
  }
  return backends;
}

std::string describe(const ThroughputResult& r) {
  std::string deps;
  for (const sdf::ChannelId c : r.storage_deps) {
    deps += " " + std::to_string(c.index());
  }
  return "deadlocked=" + std::to_string(r.deadlocked) + " tput=" +
         r.throughput.str() + " states=" + std::to_string(r.states_stored) +
         " cycle_start=" + std::to_string(r.cycle_start_time) + " period=" +
         std::to_string(r.period) + " firings=" +
         std::to_string(r.firings_on_cycle) + " time=" +
         std::to_string(r.time_steps) + " deps=[" + deps + " ]";
}

void expect_same(const ThroughputResult& scalar, const ThroughputResult& lane,
                 const std::string& context) {
  EXPECT_EQ(describe(scalar), describe(lane)) << context;
}

// Scalar reference for a candidate list: one ThroughputSolver reused
// across the runs, exactly like the DSE engines use it.
std::vector<ThroughputResult> scalar_reference(
    const sdf::Graph& g, const std::vector<std::vector<i64>>& candidates,
    sdf::ActorId target, bool deps) {
  ThroughputSolver solver(g);
  ThroughputOptions opts{.target = target};
  opts.collect_storage_deps = deps;
  std::vector<ThroughputResult> results;
  results.reserve(candidates.size());
  for (const std::vector<i64>& caps : candidates) {
    results.push_back(solver.compute(Capacities::bounded(caps), opts));
  }
  return results;
}

void check_batch(const sdf::Graph& g,
                 const std::vector<std::vector<i64>>& candidates,
                 sdf::ActorId target, std::size_t lanes, SimdBackend backend,
                 bool deps) {
  const std::vector<ThroughputResult> expected =
      scalar_reference(g, candidates, target, deps);
  LaneThroughputSolver solver(g, lanes, backend);
  LaneBatchOptions opts{.target = target};
  opts.collect_storage_deps = deps;
  const std::vector<ThroughputResult> got =
      solver.compute_batch(candidates, opts);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_same(expected[i], got[i],
                "graph=" + g.name() + " candidate=" + std::to_string(i) +
                    " lanes=" + std::to_string(lanes) + " backend=" +
                    backend_name(backend) + " deps=" + std::to_string(deps));
  }
}

// A grid of candidates around the interesting region of the paper's
// example: includes deadlocking distributions ({3,2} and below), the Fig. 5
// staircase and over-provisioned ones, so a batch mixes every retirement
// kind.
std::vector<std::vector<i64>> paper_grid() {
  std::vector<std::vector<i64>> candidates;
  for (i64 a = 2; a <= 8; ++a) {
    for (i64 b = 2; b <= 5; ++b) {
      candidates.push_back({a, b});
    }
  }
  return candidates;
}

TEST(LaneKernel, MatchesScalarOnPaperGridEveryWidth) {
  const sdf::Graph g = models::paper_example();
  const sdf::ActorId target = *g.find_actor("c");
  for (const SimdBackend backend : lane_backends()) {
    for (const std::size_t lanes : {1u, 2u, 3u, 8u, 17u, 32u, 64u}) {
      check_batch(g, paper_grid(), target, lanes, backend, false);
      check_batch(g, paper_grid(), target, lanes, backend, true);
    }
  }
}

TEST(LaneKernel, MatchesScalarOnModem) {
  const sdf::Graph g = models::modem();
  const sdf::ActorId target = models::reported_actor(g);
  // Perturb a feasible distribution channel by channel: every candidate
  // bounded, many deadlock, the rest cycle at different times (maximal
  // divergence).
  std::vector<i64> base(g.num_channels());
  for (const sdf::ChannelId c : g.channel_ids()) {
    const sdf::Channel& ch = g.channel(c);
    base[c.index()] = ch.initial_tokens +
                      std::max(ch.production, ch.consumption);
  }
  std::vector<std::vector<i64>> candidates;
  candidates.push_back(base);
  for (std::size_t c = 0; c < base.size(); ++c) {
    std::vector<i64> caps = base;
    caps[c] += 1 + static_cast<i64>(c % 3);
    candidates.push_back(caps);
    caps[c] = g.channel(sdf::ChannelId(c)).initial_tokens;
    candidates.push_back(std::move(caps));
  }
  for (const SimdBackend backend : lane_backends()) {
    check_batch(g, candidates, target, 8, backend, true);
    check_batch(g, candidates, target, 32, backend, false);
  }
}

TEST(LaneKernel, AllLanesDeadlock) {
  const sdf::Graph g = models::paper_example();
  const sdf::ActorId target = *g.find_actor("c");
  const std::vector<std::vector<i64>> candidates(8, std::vector<i64>{3, 2});
  for (const SimdBackend backend : lane_backends()) {
    check_batch(g, candidates, target, 8, backend, true);
  }
}

TEST(LaneKernel, InstantDeadlockAtTimeZero) {
  // cap 0 on the only channel: the producer cannot claim space and the
  // consumer has no tokens — deadlock before any step. The lane must
  // retire at init and hand the lane to the next candidate.
  sdf::GraphBuilder b("t0");
  const sdf::ActorId a = b.actor("a", 1);
  const sdf::ActorId c = b.actor("c", 1);
  b.channel("ch", a, 1, c, 1, 0);
  const sdf::Graph g = b.build();
  const std::vector<std::vector<i64>> candidates{{0}, {1}, {0}, {2}};
  for (const SimdBackend backend : lane_backends()) {
    check_batch(g, candidates, c, 2, backend, true);
  }
}

TEST(LaneKernel, SingleLaneBatches) {
  const sdf::Graph g = models::paper_example();
  const sdf::ActorId target = *g.find_actor("c");
  for (const SimdBackend backend : lane_backends()) {
    check_batch(g, {{4, 2}}, target, 1, backend, true);
    check_batch(g, {{4, 2}}, target, 32, backend, true);
    check_batch(g, paper_grid(), target, 1, backend, true);
  }
}

TEST(LaneKernel, RefillOrderIsDeterministicAcrossWidths) {
  // The same candidate queue must produce the identical result array at
  // every lane width (refill pulls from the queue in index order and
  // retires lanes in ascending lane order), pinning the determinism the
  // DSE fold relies on.
  const sdf::Graph g = models::paper_example();
  const sdf::ActorId target = *g.find_actor("c");
  const std::vector<std::vector<i64>> candidates = paper_grid();
  for (const SimdBackend backend : lane_backends()) {
    LaneBatchOptions opts{.target = target};
    opts.collect_storage_deps = true;
    std::vector<std::string> reference;
    LaneThroughputSolver wide(g, 64, backend);
    for (const ThroughputResult& r : wide.compute_batch(candidates, opts)) {
      reference.push_back(describe(r));
    }
    for (const std::size_t lanes : {1u, 2u, 5u, 8u, 16u}) {
      LaneThroughputSolver solver(g, lanes, backend);
      const std::vector<ThroughputResult> got =
          solver.compute_batch(candidates, opts);
      ASSERT_EQ(got.size(), reference.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(describe(got[i]), reference[i])
            << "lanes=" << lanes << " candidate=" << i;
      }
    }
  }
}

TEST(LaneKernel, MatchesScalarOnRandomGraphs) {
  for (const u64 seed : {7u, 23u, 77u, 1234u, 90210u}) {
    gen::RandomGraphOptions gopts;
    gopts.num_actors = 3 + seed % 4;
    gopts.max_repetition = 3;
    gopts.max_execution_time = 4;
    gopts.seed = seed;
    const sdf::Graph g = gen::random_graph(gopts);
    const sdf::ActorId target(g.num_actors() - 1);
    std::vector<std::vector<i64>> candidates;
    for (i64 bump = 0; bump < 6; ++bump) {
      std::vector<i64> caps(g.num_channels());
      for (const sdf::ChannelId c : g.channel_ids()) {
        const sdf::Channel& ch = g.channel(c);
        caps[c.index()] = ch.initial_tokens +
                          std::max(ch.production, ch.consumption) +
                          (bump + static_cast<i64>(c.index())) % 3;
      }
      candidates.push_back(std::move(caps));
    }
    for (const SimdBackend backend : lane_backends()) {
      check_batch(g, candidates, target, 8, backend, true);
    }
  }
}

TEST(LaneKernel, WideGraphMagnitudesMatchScalar) {
  // Execution times above kNarrowLimit disqualify the graph from the
  // narrow i32 kernel; every batch must run on the full-range i64 tables
  // and still match the scalar solver field for field (including the
  // deadlock-at-zero retirement of the cap-0 candidate).
  sdf::GraphBuilder b("wide_exec");
  const sdf::ActorId a = b.actor("a", kNarrowLimit * 4);
  const sdf::ActorId c = b.actor("c", kNarrowLimit * 2 + 123);
  b.channel("ch", a, 1, c, 1, 0);
  const sdf::Graph g = b.build();
  const std::vector<std::vector<i64>> candidates{{0}, {1}, {2}, {3}, {4}};
  for (const SimdBackend backend : lane_backends()) {
    check_batch(g, candidates, c, 2, backend, true);
    check_batch(g, candidates, c, 8, backend, false);
  }
}

TEST(LaneKernel, WideCandidateCapsFallBackPerBatch) {
  // A narrow-eligible graph runs on the wide tables whenever a batch
  // carries a capacity above the envelope, and returns to the narrow
  // tables on the next batch — same solver, identical results either way.
  // The feedback loop keeps the execution short no matter how large the
  // forward capacity is, so the huge caps only flip the width election.
  sdf::GraphBuilder b("narrow_graph");
  const sdf::ActorId a = b.actor("a", 2);
  const sdf::ActorId c = b.actor("c", 3);
  b.channel("fwd", a, 1, c, 1, 0);
  b.channel("back", c, 1, a, 1, 1);
  const sdf::Graph g = b.build();
  const sdf::ActorId target = c;
  const std::vector<std::vector<i64>> wide_batch{
      {kNarrowLimit * 2, 2}, {4, 2}, {kNarrowLimit + 1, 3}};
  const auto narrow_grid = [] {
    std::vector<std::vector<i64>> grid;
    for (i64 fwd = 0; fwd <= 3; ++fwd) {
      for (i64 back = 1; back <= 2; ++back) grid.push_back({fwd, back});
    }
    return grid;
  };
  for (const SimdBackend backend : lane_backends()) {
    LaneThroughputSolver solver(g, 8, backend);
    LaneBatchOptions opts{.target = target};
    opts.collect_storage_deps = true;
    const auto check = [&](const std::vector<std::vector<i64>>& batch,
                           const std::string& label) {
      const std::vector<ThroughputResult> expected =
          scalar_reference(g, batch, target, true);
      const std::vector<ThroughputResult> got =
          solver.compute_batch(batch, opts);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        expect_same(expected[i], got[i],
                    label + " candidate=" + std::to_string(i) + " backend=" +
                        backend_name(backend));
      }
    };
    check(wide_batch, "wide");
    check(narrow_grid(), "narrow-after-wide");
    check(wide_batch, "wide-after-narrow");
  }
}

TEST(LaneKernel, MaxStepsThrowsLikeScalar) {
  const sdf::Graph g = models::paper_example();
  const sdf::ActorId target = *g.find_actor("c");
  LaneThroughputSolver solver(g, 4, SimdBackend::Swar);
  LaneBatchOptions opts{.target = target};
  opts.max_steps = 3;  // the cycle needs more than 3 completions
  const std::vector<std::vector<i64>> candidates{{7, 3}};
  EXPECT_THROW(solver.compute_batch(candidates, opts), Error);
  // The solver stays reusable after the throw.
  opts.max_steps = 100'000;
  const auto results = solver.compute_batch(candidates, opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].throughput, Rational(1, 4));
}

TEST(LaneKernel, CancellationThrows) {
  const sdf::Graph g = models::paper_example();
  const sdf::ActorId target = *g.find_actor("c");
  LaneThroughputSolver solver(g, 4, SimdBackend::Swar);
  const exec::CancellationToken token = exec::CancellationToken::cancellable();
  token.cancel();
  LaneBatchOptions opts{.target = target};
  opts.cancel = token;
  const std::vector<std::vector<i64>> candidates{{4, 2}};
  EXPECT_THROW(solver.compute_batch(candidates, opts), exec::Cancelled);
}

TEST(LaneKernel, RejectsScalarBackendAndBadLaneCounts) {
  const sdf::Graph g = models::paper_example();
  EXPECT_THROW(LaneThroughputSolver(g, 4, SimdBackend::Scalar), Error);
  EXPECT_THROW(LaneThroughputSolver(g, 0, SimdBackend::Swar), Error);
  EXPECT_THROW(LaneThroughputSolver(g, 65, SimdBackend::Swar), Error);
}

TEST(LaneKernel, BackendResolutionAndNames) {
  EXPECT_STREQ(backend_name(SimdBackend::Swar), "swar");
  EXPECT_EQ(parse_backend("avx2"), SimdBackend::Avx2);
  EXPECT_EQ(parse_backend("bogus"), std::nullopt);
  EXPECT_TRUE(backend_available(SimdBackend::Swar));
  const SimdBackend resolved = resolve_backend(SimdBackend::Auto);
  EXPECT_TRUE(resolved == SimdBackend::Swar || resolved == SimdBackend::Avx2);
  EXPECT_EQ(default_lanes(SimdBackend::Swar), default_lanes(SimdBackend::Avx2))
      << "equal defaults keep exhaustive enumeration counters "
         "backend-independent";
  EXPECT_EQ(resolve_lanes(0, SimdBackend::Swar),
            default_lanes(SimdBackend::Swar));
  EXPECT_EQ(resolve_lanes(200, SimdBackend::Swar), kMaxLanes);
}

// The feedback pair used by the narrow-boundary tests: tiny magnitudes,
// so only the candidate capacities decide the width election, and the
// back edge keeps every execution short regardless of the forward cap.
sdf::Graph feedback_pair() {
  sdf::GraphBuilder b("narrow_boundary");
  const sdf::ActorId a = b.actor("a", 2);
  const sdf::ActorId c = b.actor("c", 3);
  b.channel("fwd", a, 1, c, 1, 0);
  b.channel("back", c, 1, a, 1, 1);
  return b.build();
}

TEST(LaneKernelNarrowBoundary, CapacityAtKNarrowLimitAndNeighbours) {
  // The dynamic gate is `cap <= kNarrowLimit`: a capacity exactly at the
  // limit still runs narrow, one above falls back to the wide tables.
  // Results must match the scalar solver at the limit, one below, one
  // above, and in a mixed batch whose lanes straddle the gate.
  const sdf::Graph g = feedback_pair();
  const sdf::ActorId target(1);
  const std::vector<std::vector<i64>> straddle{{kNarrowLimit - 1, 1},
                                               {kNarrowLimit, 1},
                                               {kNarrowLimit + 1, 1},
                                               {2, 1}};
  for (const SimdBackend backend : lane_backends()) {
    for (const std::vector<i64>& caps : straddle) {
      check_batch(g, {caps}, target, 2, backend, true);
    }
    check_batch(g, straddle, target, 2, backend, true);
    check_batch(g, straddle, target, 8, backend, false);
  }
}

TEST(LaneKernelNarrowBoundary, ExecutionTimeAtGateEdgeElectsKernel) {
  // Graph magnitudes at the gate edge: execution time == kNarrowLimit is
  // still narrow-eligible, one above is not. Certificates mirror the
  // election (static_narrow), and both widths match the scalar solver.
  for (const i64 exec : {kNarrowLimit - 1, kNarrowLimit, kNarrowLimit + 1}) {
    sdf::GraphBuilder b("edge_exec");
    const sdf::ActorId a = b.actor("a", exec);
    const sdf::ActorId c = b.actor("c", 3);
    b.channel("fwd", a, 1, c, 1, 0);
    b.channel("back", c, 1, a, 1, 1);
    const sdf::Graph g = b.build();
    const analysis::BoundsCertificate cert = analysis::derive_bounds(g);
    ASSERT_TRUE(cert.fits_i64);
    EXPECT_EQ(cert.magnitude_bound >= exec, true);
    for (const SimdBackend backend : lane_backends()) {
      LaneThroughputSolver solver(g, 4, backend, &cert);
      EXPECT_EQ(solver.static_narrow(), exec <= kNarrowLimit)
          << "exec=" << exec << " backend=" << backend_name(backend);
      check_batch(g, {{1, 1}, {2, 1}, {3, 2}}, c, 4, backend, true);
    }
  }
}

TEST(LaneKernelNarrowBoundary, CertificateSkipsGateWithIdenticalResults) {
  // A certified solver running a within_certificate batch must produce
  // exactly what the uncertified solver (dynamic gate) produces on the
  // same candidates — the certificate is a pure gating shortcut.
  const sdf::Graph g = feedback_pair();
  const sdf::ActorId target(1);
  const analysis::BoundsCertificate cert = analysis::derive_bounds(g);
  ASSERT_TRUE(cert.fits_i64);
  // Candidates inside the certified budget, in channel-index order.
  std::vector<std::vector<i64>> batch;
  for (i64 fwd = 0; fwd <= std::min<i64>(3, cert.storage_budget[0]); ++fwd) {
    batch.push_back({fwd, std::min<i64>(2, cert.storage_budget[1])});
  }
  for (const SimdBackend backend : lane_backends()) {
    LaneThroughputSolver certified(g, 4, backend, &cert);
    ASSERT_TRUE(certified.static_narrow()) << backend_name(backend);
    LaneThroughputSolver dynamic(g, 4, backend);
    EXPECT_FALSE(dynamic.static_narrow());
    LaneBatchOptions opts{.target = target};
    opts.collect_storage_deps = true;
    opts.within_certificate = true;
    const std::vector<ThroughputResult> certified_results =
        certified.compute_batch(batch, opts);
    LaneBatchOptions plain{.target = target};
    plain.collect_storage_deps = true;
    const std::vector<ThroughputResult> dynamic_results =
        dynamic.compute_batch(batch, plain);
    ASSERT_EQ(certified_results.size(), dynamic_results.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      expect_same(dynamic_results[i], certified_results[i],
                  "certified vs dynamic, candidate " + std::to_string(i) +
                      " backend " + backend_name(backend));
    }
  }
}

TEST(LaneKernelNarrowBoundary, AuditCatchesFalseWithinCertificateClaims) {
  // BUFFY_AUDIT re-runs the retired dynamic gate against the caller's
  // within_certificate claim: a candidate outside the certified budget
  // (but still narrow-safe) and a candidate beyond kNarrowLimit must
  // both fail the `static-narrow-certificate` audit instead of running
  // on envelopes the certificate never proved.
  const sdf::Graph g = feedback_pair();
  const sdf::ActorId target(1);
  const analysis::BoundsCertificate cert = analysis::derive_bounds(g);
  LaneThroughputSolver solver(g, 4, SimdBackend::Swar, &cert);
  ASSERT_TRUE(solver.static_narrow());
  LaneBatchOptions opts{.target = target};
  opts.within_certificate = true;

  const audit::ScopedAudit audit_on(/*denominator=*/1);
  // Outside the budget box, inside the narrow envelope: only the
  // covers() cross-check can catch it.
  const std::vector<std::vector<i64>> outside_budget{
      {cert.storage_budget[0] + 1, 1}};
  EXPECT_THROW(solver.compute_batch(outside_budget, opts), audit::AuditError);
  // Beyond the narrow envelope itself: the width recheck catches it.
  const std::vector<std::vector<i64>> beyond_narrow{{kNarrowLimit + 1, 1}};
  EXPECT_THROW(solver.compute_batch(beyond_narrow, opts), audit::AuditError);
  // The same batches without the claim run fine (wide tables), audited.
  LaneBatchOptions honest{.target = target};
  EXPECT_NO_THROW(solver.compute_batch(outside_budget, honest));
  EXPECT_NO_THROW(solver.compute_batch(beyond_narrow, honest));
}

}  // namespace
}  // namespace buffy::state
