// Lane-parallel throughput kernel (DESIGN.md §15): the lane solver must
// reproduce the scalar ThroughputSolver field for field on every candidate
// — throughput, deadlock flag, states stored, cycle anatomy and storage
// dependencies — at every lane width, for both the SWAR and (when the host
// has it) AVX2 backends, under every divergence pattern the retire/refill
// machinery can encounter: mixed cycle/deadlock batches, all lanes
// deadlocking at once, single-lane batches, queues much longer than the
// lane width, and candidates that deadlock at time 0 before a single step.
#include "state/lane_throughput.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/diagnostics.hpp"
#include "exec/cancellation.hpp"
#include "gen/random_graph.hpp"
#include "models/models.hpp"
#include "sdf/builder.hpp"
#include "state/simd_backend.hpp"
#include "state/throughput.hpp"

namespace buffy::state {
namespace {

std::vector<SimdBackend> lane_backends() {
  std::vector<SimdBackend> backends{SimdBackend::Swar};
  if (backend_available(SimdBackend::Avx2)) {
    backends.push_back(SimdBackend::Avx2);
  }
  return backends;
}

std::string describe(const ThroughputResult& r) {
  std::string deps;
  for (const sdf::ChannelId c : r.storage_deps) {
    deps += " " + std::to_string(c.index());
  }
  return "deadlocked=" + std::to_string(r.deadlocked) + " tput=" +
         r.throughput.str() + " states=" + std::to_string(r.states_stored) +
         " cycle_start=" + std::to_string(r.cycle_start_time) + " period=" +
         std::to_string(r.period) + " firings=" +
         std::to_string(r.firings_on_cycle) + " time=" +
         std::to_string(r.time_steps) + " deps=[" + deps + " ]";
}

void expect_same(const ThroughputResult& scalar, const ThroughputResult& lane,
                 const std::string& context) {
  EXPECT_EQ(describe(scalar), describe(lane)) << context;
}

// Scalar reference for a candidate list: one ThroughputSolver reused
// across the runs, exactly like the DSE engines use it.
std::vector<ThroughputResult> scalar_reference(
    const sdf::Graph& g, const std::vector<std::vector<i64>>& candidates,
    sdf::ActorId target, bool deps) {
  ThroughputSolver solver(g);
  ThroughputOptions opts{.target = target};
  opts.collect_storage_deps = deps;
  std::vector<ThroughputResult> results;
  results.reserve(candidates.size());
  for (const std::vector<i64>& caps : candidates) {
    results.push_back(solver.compute(Capacities::bounded(caps), opts));
  }
  return results;
}

void check_batch(const sdf::Graph& g,
                 const std::vector<std::vector<i64>>& candidates,
                 sdf::ActorId target, std::size_t lanes, SimdBackend backend,
                 bool deps) {
  const std::vector<ThroughputResult> expected =
      scalar_reference(g, candidates, target, deps);
  LaneThroughputSolver solver(g, lanes, backend);
  LaneBatchOptions opts{.target = target};
  opts.collect_storage_deps = deps;
  const std::vector<ThroughputResult> got =
      solver.compute_batch(candidates, opts);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    expect_same(expected[i], got[i],
                "graph=" + g.name() + " candidate=" + std::to_string(i) +
                    " lanes=" + std::to_string(lanes) + " backend=" +
                    backend_name(backend) + " deps=" + std::to_string(deps));
  }
}

// A grid of candidates around the interesting region of the paper's
// example: includes deadlocking distributions ({3,2} and below), the Fig. 5
// staircase and over-provisioned ones, so a batch mixes every retirement
// kind.
std::vector<std::vector<i64>> paper_grid() {
  std::vector<std::vector<i64>> candidates;
  for (i64 a = 2; a <= 8; ++a) {
    for (i64 b = 2; b <= 5; ++b) {
      candidates.push_back({a, b});
    }
  }
  return candidates;
}

TEST(LaneKernel, MatchesScalarOnPaperGridEveryWidth) {
  const sdf::Graph g = models::paper_example();
  const sdf::ActorId target = *g.find_actor("c");
  for (const SimdBackend backend : lane_backends()) {
    for (const std::size_t lanes : {1u, 2u, 3u, 8u, 17u, 32u, 64u}) {
      check_batch(g, paper_grid(), target, lanes, backend, false);
      check_batch(g, paper_grid(), target, lanes, backend, true);
    }
  }
}

TEST(LaneKernel, MatchesScalarOnModem) {
  const sdf::Graph g = models::modem();
  const sdf::ActorId target = models::reported_actor(g);
  // Perturb a feasible distribution channel by channel: every candidate
  // bounded, many deadlock, the rest cycle at different times (maximal
  // divergence).
  std::vector<i64> base(g.num_channels());
  for (const sdf::ChannelId c : g.channel_ids()) {
    const sdf::Channel& ch = g.channel(c);
    base[c.index()] = ch.initial_tokens +
                      std::max(ch.production, ch.consumption);
  }
  std::vector<std::vector<i64>> candidates;
  candidates.push_back(base);
  for (std::size_t c = 0; c < base.size(); ++c) {
    std::vector<i64> caps = base;
    caps[c] += 1 + static_cast<i64>(c % 3);
    candidates.push_back(caps);
    caps[c] = g.channel(sdf::ChannelId(c)).initial_tokens;
    candidates.push_back(std::move(caps));
  }
  for (const SimdBackend backend : lane_backends()) {
    check_batch(g, candidates, target, 8, backend, true);
    check_batch(g, candidates, target, 32, backend, false);
  }
}

TEST(LaneKernel, AllLanesDeadlock) {
  const sdf::Graph g = models::paper_example();
  const sdf::ActorId target = *g.find_actor("c");
  const std::vector<std::vector<i64>> candidates(8, std::vector<i64>{3, 2});
  for (const SimdBackend backend : lane_backends()) {
    check_batch(g, candidates, target, 8, backend, true);
  }
}

TEST(LaneKernel, InstantDeadlockAtTimeZero) {
  // cap 0 on the only channel: the producer cannot claim space and the
  // consumer has no tokens — deadlock before any step. The lane must
  // retire at init and hand the lane to the next candidate.
  sdf::GraphBuilder b("t0");
  const sdf::ActorId a = b.actor("a", 1);
  const sdf::ActorId c = b.actor("c", 1);
  b.channel("ch", a, 1, c, 1, 0);
  const sdf::Graph g = b.build();
  const std::vector<std::vector<i64>> candidates{{0}, {1}, {0}, {2}};
  for (const SimdBackend backend : lane_backends()) {
    check_batch(g, candidates, c, 2, backend, true);
  }
}

TEST(LaneKernel, SingleLaneBatches) {
  const sdf::Graph g = models::paper_example();
  const sdf::ActorId target = *g.find_actor("c");
  for (const SimdBackend backend : lane_backends()) {
    check_batch(g, {{4, 2}}, target, 1, backend, true);
    check_batch(g, {{4, 2}}, target, 32, backend, true);
    check_batch(g, paper_grid(), target, 1, backend, true);
  }
}

TEST(LaneKernel, RefillOrderIsDeterministicAcrossWidths) {
  // The same candidate queue must produce the identical result array at
  // every lane width (refill pulls from the queue in index order and
  // retires lanes in ascending lane order), pinning the determinism the
  // DSE fold relies on.
  const sdf::Graph g = models::paper_example();
  const sdf::ActorId target = *g.find_actor("c");
  const std::vector<std::vector<i64>> candidates = paper_grid();
  for (const SimdBackend backend : lane_backends()) {
    LaneBatchOptions opts{.target = target};
    opts.collect_storage_deps = true;
    std::vector<std::string> reference;
    LaneThroughputSolver wide(g, 64, backend);
    for (const ThroughputResult& r : wide.compute_batch(candidates, opts)) {
      reference.push_back(describe(r));
    }
    for (const std::size_t lanes : {1u, 2u, 5u, 8u, 16u}) {
      LaneThroughputSolver solver(g, lanes, backend);
      const std::vector<ThroughputResult> got =
          solver.compute_batch(candidates, opts);
      ASSERT_EQ(got.size(), reference.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(describe(got[i]), reference[i])
            << "lanes=" << lanes << " candidate=" << i;
      }
    }
  }
}

TEST(LaneKernel, MatchesScalarOnRandomGraphs) {
  for (const u64 seed : {7u, 23u, 77u, 1234u, 90210u}) {
    gen::RandomGraphOptions gopts;
    gopts.num_actors = 3 + seed % 4;
    gopts.max_repetition = 3;
    gopts.max_execution_time = 4;
    gopts.seed = seed;
    const sdf::Graph g = gen::random_graph(gopts);
    const sdf::ActorId target(g.num_actors() - 1);
    std::vector<std::vector<i64>> candidates;
    for (i64 bump = 0; bump < 6; ++bump) {
      std::vector<i64> caps(g.num_channels());
      for (const sdf::ChannelId c : g.channel_ids()) {
        const sdf::Channel& ch = g.channel(c);
        caps[c.index()] = ch.initial_tokens +
                          std::max(ch.production, ch.consumption) +
                          (bump + static_cast<i64>(c.index())) % 3;
      }
      candidates.push_back(std::move(caps));
    }
    for (const SimdBackend backend : lane_backends()) {
      check_batch(g, candidates, target, 8, backend, true);
    }
  }
}

TEST(LaneKernel, WideGraphMagnitudesMatchScalar) {
  // Execution times above kNarrowLimit disqualify the graph from the
  // narrow i32 kernel; every batch must run on the full-range i64 tables
  // and still match the scalar solver field for field (including the
  // deadlock-at-zero retirement of the cap-0 candidate).
  sdf::GraphBuilder b("wide_exec");
  const sdf::ActorId a = b.actor("a", kNarrowLimit * 4);
  const sdf::ActorId c = b.actor("c", kNarrowLimit * 2 + 123);
  b.channel("ch", a, 1, c, 1, 0);
  const sdf::Graph g = b.build();
  const std::vector<std::vector<i64>> candidates{{0}, {1}, {2}, {3}, {4}};
  for (const SimdBackend backend : lane_backends()) {
    check_batch(g, candidates, c, 2, backend, true);
    check_batch(g, candidates, c, 8, backend, false);
  }
}

TEST(LaneKernel, WideCandidateCapsFallBackPerBatch) {
  // A narrow-eligible graph runs on the wide tables whenever a batch
  // carries a capacity above the envelope, and returns to the narrow
  // tables on the next batch — same solver, identical results either way.
  // The feedback loop keeps the execution short no matter how large the
  // forward capacity is, so the huge caps only flip the width election.
  sdf::GraphBuilder b("narrow_graph");
  const sdf::ActorId a = b.actor("a", 2);
  const sdf::ActorId c = b.actor("c", 3);
  b.channel("fwd", a, 1, c, 1, 0);
  b.channel("back", c, 1, a, 1, 1);
  const sdf::Graph g = b.build();
  const sdf::ActorId target = c;
  const std::vector<std::vector<i64>> wide_batch{
      {kNarrowLimit * 2, 2}, {4, 2}, {kNarrowLimit + 1, 3}};
  const auto narrow_grid = [] {
    std::vector<std::vector<i64>> grid;
    for (i64 fwd = 0; fwd <= 3; ++fwd) {
      for (i64 back = 1; back <= 2; ++back) grid.push_back({fwd, back});
    }
    return grid;
  };
  for (const SimdBackend backend : lane_backends()) {
    LaneThroughputSolver solver(g, 8, backend);
    LaneBatchOptions opts{.target = target};
    opts.collect_storage_deps = true;
    const auto check = [&](const std::vector<std::vector<i64>>& batch,
                           const std::string& label) {
      const std::vector<ThroughputResult> expected =
          scalar_reference(g, batch, target, true);
      const std::vector<ThroughputResult> got =
          solver.compute_batch(batch, opts);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        expect_same(expected[i], got[i],
                    label + " candidate=" + std::to_string(i) + " backend=" +
                        backend_name(backend));
      }
    };
    check(wide_batch, "wide");
    check(narrow_grid(), "narrow-after-wide");
    check(wide_batch, "wide-after-narrow");
  }
}

TEST(LaneKernel, MaxStepsThrowsLikeScalar) {
  const sdf::Graph g = models::paper_example();
  const sdf::ActorId target = *g.find_actor("c");
  LaneThroughputSolver solver(g, 4, SimdBackend::Swar);
  LaneBatchOptions opts{.target = target};
  opts.max_steps = 3;  // the cycle needs more than 3 completions
  const std::vector<std::vector<i64>> candidates{{7, 3}};
  EXPECT_THROW(solver.compute_batch(candidates, opts), Error);
  // The solver stays reusable after the throw.
  opts.max_steps = 100'000;
  const auto results = solver.compute_batch(candidates, opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].throughput, Rational(1, 4));
}

TEST(LaneKernel, CancellationThrows) {
  const sdf::Graph g = models::paper_example();
  const sdf::ActorId target = *g.find_actor("c");
  LaneThroughputSolver solver(g, 4, SimdBackend::Swar);
  const exec::CancellationToken token = exec::CancellationToken::cancellable();
  token.cancel();
  LaneBatchOptions opts{.target = target};
  opts.cancel = token;
  const std::vector<std::vector<i64>> candidates{{4, 2}};
  EXPECT_THROW(solver.compute_batch(candidates, opts), exec::Cancelled);
}

TEST(LaneKernel, RejectsScalarBackendAndBadLaneCounts) {
  const sdf::Graph g = models::paper_example();
  EXPECT_THROW(LaneThroughputSolver(g, 4, SimdBackend::Scalar), Error);
  EXPECT_THROW(LaneThroughputSolver(g, 0, SimdBackend::Swar), Error);
  EXPECT_THROW(LaneThroughputSolver(g, 65, SimdBackend::Swar), Error);
}

TEST(LaneKernel, BackendResolutionAndNames) {
  EXPECT_STREQ(backend_name(SimdBackend::Swar), "swar");
  EXPECT_EQ(parse_backend("avx2"), SimdBackend::Avx2);
  EXPECT_EQ(parse_backend("bogus"), std::nullopt);
  EXPECT_TRUE(backend_available(SimdBackend::Swar));
  const SimdBackend resolved = resolve_backend(SimdBackend::Auto);
  EXPECT_TRUE(resolved == SimdBackend::Swar || resolved == SimdBackend::Avx2);
  EXPECT_EQ(default_lanes(SimdBackend::Swar), default_lanes(SimdBackend::Avx2))
      << "equal defaults keep exhaustive enumeration counters "
         "backend-independent";
  EXPECT_EQ(resolve_lanes(0, SimdBackend::Swar),
            default_lanes(SimdBackend::Swar));
  EXPECT_EQ(resolve_lanes(200, SimdBackend::Swar), kMaxLanes);
}

}  // namespace
}  // namespace buffy::state
