#include "sched/latency.hpp"

#include <gtest/gtest.h>

#include "models/models.hpp"
#include "sdf/builder.hpp"

namespace buffy::sched {
namespace {

TEST(Latency, ExampleFirstOutputAndPeriod) {
  // Under (4,2) the first firing of c completes at time 9 and the periodic
  // phase repeats every 7 steps (paper Sec. 5/7).
  const sdf::Graph g = models::paper_example();
  const auto r = latency(g, state::Capacities::bounded({4, 2}),
                         *g.find_actor("c"));
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.first_output, 9);
  EXPECT_EQ(r.period, 7);
  EXPECT_EQ(r.firings_per_period, 1);
}

TEST(Latency, LargerBuffersImproveRateAndLatency) {
  const sdf::Graph g = models::paper_example();
  const auto small = latency(g, state::Capacities::bounded({4, 2}),
                             *g.find_actor("c"));
  const auto large = latency(g, state::Capacities::bounded({8, 4}),
                             *g.find_actor("c"));
  // Compare time per firing, not raw periods: the state-space cycle of the
  // larger distribution may span several firings of c.
  EXPECT_LT(Rational(large.period, large.firings_per_period),
            Rational(small.period, small.firings_per_period));
  // The critical path a,a,b,b,c still bounds the first output: 8 steps.
  EXPECT_GE(large.first_output, 8);
  EXPECT_LE(large.first_output, small.first_output);
}

TEST(Latency, DeadlockBeforeFirstOutput) {
  const sdf::Graph g = models::paper_example();
  const auto r = latency(g, state::Capacities::bounded({3, 2}),
                         *g.find_actor("c"));
  EXPECT_TRUE(r.deadlocked);
}

TEST(Latency, UpstreamActorHasShorterLatency) {
  const sdf::Graph g = models::paper_example();
  const auto a = latency(g, state::Capacities::bounded({4, 2}),
                         *g.find_actor("a"));
  const auto c = latency(g, state::Capacities::bounded({4, 2}),
                         *g.find_actor("c"));
  EXPECT_LT(a.first_output, c.first_output);
  EXPECT_EQ(a.first_output, 1);
}

TEST(Latency, PipelineFillTime) {
  // A three-stage single-rate pipeline: the first output appears after the
  // sum of the execution times, then one result per bottleneck stage.
  sdf::GraphBuilder b("pipe");
  const auto s1 = b.actor("s1", 2);
  const auto s2 = b.actor("s2", 5);
  const auto s3 = b.actor("s3", 3);
  b.channel("c1", s1, 1, s2, 1);
  b.channel("c2", s2, 1, s3, 1);
  const sdf::Graph g = b.build();
  const auto r = latency(g, state::Capacities::bounded({2, 2}), s3);
  EXPECT_EQ(r.first_output, 10);
  EXPECT_EQ(r.period, 5);  // s2 is the bottleneck
  EXPECT_EQ(r.firings_per_period, 1);
}

}  // namespace
}  // namespace buffy::sched
