// End-to-end tests for buffyd-router, the fleet front-end (DESIGN.md §17).
//
// Every test runs an in-process fleet::Router that fork/execs real buffyd
// worker binaries (BUFFYD_PATH) and drives it over real sockets, exactly
// as a remote client would. The load-bearing assertions are:
//
//  * fronts served through the router — forwarded or scattered across the
//    worker fleet — are byte-identical to a single-process exploration of
//    the same graph, including when a worker is SIGKILLed mid-wave (the
//    fault-injection suite);
//  * a stalled worker (SIGSTOP) turns into a structured deadline_exceeded
//    on the affected request, never a router hang;
//  * backpressure is structured: a full shard queue answers `overloaded`
//    with a retry_after_ms hint;
//  * affinity and supervision are observable through `status` (per-shard
//    queue depth, restart counts, the worker's own cache occupancy).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/diagnostics.hpp"
#include "buffer/dse.hpp"
#include "fleet/router.hpp"
#include "io/dsl.hpp"
#include "io/sdf_xml.hpp"
#include "models/models.hpp"
#include "service/cache_registry.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"

namespace buffy {
namespace {

// A small strongly-connected graph that analyses in microseconds.
constexpr const char* kTinyDsl =
    "graph tiny\n"
    "actor a 1\n"
    "actor b 2\n"
    "channel ab a 1 b 1\n"
    "channel ba b 1 a 1 tokens 2\n";

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string graph_file(const std::string& name) {
  return slurp(std::string(EXAMPLE_GRAPHS_DIR) + "/" + name);
}

// The reference front: a plain in-process exploration with the same
// effective options the daemon derives from the request (test_service
// pins daemon == library; this suite pins router == daemon == library).
std::string reference_front(const sdf::Graph& graph, buffer::DseEngine engine,
                            std::optional<i64> levels) {
  buffer::DseOptions opts;
  opts.target = sdf::ActorId(graph.num_actors() - 1);
  opts.engine = engine;
  opts.quantization_levels = levels;
  return buffer::explore(graph, opts).pareto.str();
}

sdf::Graph parse_any(const std::string& text) {
  for (const char c : text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') continue;
    if (c == '<') return io::read_sdf_xml(text);
    break;
  }
  return io::read_dsl(text);
}

// Minimal blocking line-oriented client (same shape as test_service's).
class Client {
 public:
  static Client tcp(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0)
        << std::strerror(errno);
    return Client(fd);
  }

  static Client unix_socket(const std::string& path) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      EXPECT_GE(fd, 0);
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        return Client(fd);
      }
      ::close(fd);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ADD_FAILURE() << "cannot connect to " << path;
    return Client(-1);
  }

  Client(Client&& other) noexcept
      : fd_(other.fd_), buf_(std::move(other.buf_)) {
    other.fd_ = -1;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client& operator=(Client&&) = delete;
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_line(const std::string& line) const {
    const std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n =
          ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  // Empty string on orderly EOF.
  std::string recv_line() {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      EXPECT_GE(n, 0) << std::strerror(errno);
      if (n <= 0) return std::string();
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  service::JsonValue call(const std::string& request) {
    send_line(request);
    const std::string line = recv_line();
    EXPECT_FALSE(line.empty()) << "connection closed instead of responding";
    return service::JsonValue::parse(line.empty() ? "null" : line);
  }

 private:
  explicit Client(int fd) : fd_(fd) {
    if (fd_ < 0) return;
    timeval tv{};
    tv.tv_sec = 120;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  int fd_ = -1;
  std::string buf_;
};

std::string explore_request(i64 id, const std::string& graph_text,
                            const std::string& extra = "") {
  return "{\"id\":" + std::to_string(id) +
         ",\"method\":\"explore_pareto\",\"graph\":" +
         service::json_quote(graph_text) + extra + "}";
}

bool response_ok(const service::JsonValue& resp) {
  const service::JsonValue* ok = resp.find("ok");
  EXPECT_NE(ok, nullptr) << resp.dump();
  return ok != nullptr && ok->as_bool();
}

std::string error_code(const service::JsonValue& resp) {
  EXPECT_FALSE(response_ok(resp)) << resp.dump();
  const service::JsonValue* err = resp.find("error");
  EXPECT_NE(err, nullptr) << resp.dump();
  if (err == nullptr) return std::string();
  return err->find("code")->as_string();
}

const service::JsonValue& result_of(const service::JsonValue& resp) {
  EXPECT_TRUE(response_ok(resp)) << resp.dump();
  const service::JsonValue* result = resp.find("result");
  EXPECT_NE(result, nullptr) << resp.dump();
  static const service::JsonValue null_value;
  return result != nullptr ? *result : null_value;
}

// Router options for a test fleet: real buffyd workers, an ephemeral TCP
// listener, and a per-test runtime directory for the worker sockets.
fleet::RouterOptions fleet_options(const std::string& test_name,
                                   unsigned workers) {
  fleet::RouterOptions opts;
  opts.tcp_port = 0;  // ephemeral
  opts.worker_binary = BUFFYD_PATH;
  opts.workers = workers;
  opts.runtime_dir = ::testing::TempDir() + "fleet_" + test_name + "." +
                     std::to_string(::getpid());
  return opts;
}

// Polls `status` until `workers` shards report up (workers fork/exec and
// bind their sockets asynchronously).
void wait_for_fleet_up(Client& client, u64 workers) {
  for (int attempt = 0; attempt < 400; ++attempt) {
    const service::JsonValue resp = client.call("{\"method\":\"status\"}");
    const service::JsonValue& result = result_of(resp);
    const service::JsonValue* fleet = result.find("fleet");
    ASSERT_NE(fleet, nullptr) << resp.dump();
    if (static_cast<u64>(fleet->find("up")->as_int()) >= workers) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  FAIL() << "fleet did not come up";
}

// SIGSTOPs `pid` and waits until the stop actually landed (state 'T' in
// /proc/<pid>/stat). kill() returns before the target is descheduled, so
// a fast worker can otherwise still serve one more request — racing any
// test that relies on the worker being wedged.
void stop_process(i64 pid) {
  ASSERT_EQ(::kill(static_cast<pid_t>(pid), SIGSTOP), 0);
  const std::string stat_path =
      "/proc/" + std::to_string(pid) + "/stat";
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::ifstream in(stat_path);
    std::string stat;
    std::getline(in, stat);
    // State is the first field after the parenthesised command name.
    const std::size_t paren = stat.rfind(')');
    if (paren != std::string::npos && paren + 2 < stat.size() &&
        stat[paren + 2] == 'T') {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "worker " << pid << " did not stop";
}

// ---------------------------------------------------------------------------
// Byte-identity: scattered and forwarded fronts equal single-process ones.

TEST(Fleet, ScatteredFrontsAreByteIdenticalToSingleProcess) {
  fleet::Router router(fleet_options("scatter_identity", 4));
  router.start();
  Client client = Client::tcp(router.tcp_port());
  wait_for_fleet_up(client, 4);

  const std::vector<std::pair<std::string, std::string>> graphs = {
      {"h263", graph_file("h263.xml")},
      {"mpeg4", io::write_dsl(models::mpeg4_sp_decoder())},
      {"modem", graph_file("modem.sdf")},
      {"samplerate", graph_file("samplerate.sdf")},
  };
  i64 id = 1;
  for (const auto& [name, text] : graphs) {
    const std::string reference = reference_front(
        parse_any(text), buffer::DseEngine::Exhaustive, /*levels=*/6);
    const service::JsonValue resp = client.call(explore_request(
        id++, text, ",\"engine\":\"exh\",\"levels\":6,\"scatter\":true"));
    const service::JsonValue& result = result_of(resp);
    EXPECT_EQ(result.find("front")->as_string(), reference) << name;
    EXPECT_TRUE(result.find("scattered")->as_bool()) << name;
    EXPECT_GE(result.find("waves")->as_int(), 1) << name;
    EXPECT_GE(result.find("slices")->as_int(), 2) << name;
  }

  router.shutdown();
  router.wait();
}

TEST(Fleet, UnquantizedScatterMatchesToo) {
  fleet::Router router(fleet_options("scatter_unquantized", 3));
  router.start();
  Client client = Client::tcp(router.tcp_port());
  wait_for_fleet_up(client, 3);

  const std::string text = graph_file("samplerate.sdf");
  const std::string reference = reference_front(
      parse_any(text), buffer::DseEngine::Exhaustive, std::nullopt);
  const service::JsonValue resp = client.call(
      explore_request(1, text, ",\"engine\":\"exh\",\"scatter\":true"));
  EXPECT_EQ(result_of(resp).find("front")->as_string(), reference);

  router.shutdown();
  router.wait();
}

TEST(Fleet, ForwardedExploreMatchesAndSecondHitWarmsTheHomeShard) {
  fleet::Router router(fleet_options("affinity", 3));
  router.start();
  Client client = Client::tcp(router.tcp_port());
  wait_for_fleet_up(client, 3);

  const std::string text = graph_file("h263.xml");
  const std::string reference = reference_front(
      parse_any(text), buffer::DseEngine::Incremental, std::nullopt);

  const service::JsonValue first = client.call(explore_request(1, text));
  EXPECT_EQ(result_of(first).find("front")->as_string(), reference);
  EXPECT_FALSE(result_of(first).find("cached_graph")->as_bool());

  // Affinity: the second query lands on the same worker and finds the
  // per-graph throughput cache warm. If routing were not sticky this
  // would be false for any worker count > 1.
  const service::JsonValue second = client.call(explore_request(2, text));
  EXPECT_EQ(result_of(second).find("front")->as_string(), reference);
  EXPECT_TRUE(result_of(second).find("cached_graph")->as_bool());

  router.shutdown();
  router.wait();
}

// ---------------------------------------------------------------------------
// Fault injection.

TEST(Fleet, SigkillMidWaveRedispatchesAndStaysByteIdentical) {
  fleet::RouterOptions opts = fleet_options("kill_midwave", 4);
  // Deterministic mid-wave crash: as soon as a post-endpoint wave has
  // been dispatched, SIGKILL one worker. The slices it held are
  // re-dispatched to surviving shards; the front must not change.
  fleet::Router* router_ptr = nullptr;
  std::atomic<bool> killed{false};
  opts.after_wave_dispatch = [&](unsigned wave, std::size_t) {
    if (wave >= 1 && !killed.exchange(true)) {
      const i64 pid = router_ptr->worker_pid(0);
      if (pid > 0) ::kill(static_cast<pid_t>(pid), SIGKILL);
    }
  };
  fleet::Router router(opts);
  router_ptr = &router;
  router.start();
  Client client = Client::tcp(router.tcp_port());
  wait_for_fleet_up(client, 4);

  const std::string text = graph_file("h263.xml");
  const std::string reference = reference_front(
      parse_any(text), buffer::DseEngine::Exhaustive, /*levels=*/8);
  const service::JsonValue resp = client.call(explore_request(
      1, text, ",\"engine\":\"exh\",\"levels\":8,\"scatter\":true"));
  EXPECT_EQ(result_of(resp).find("front")->as_string(), reference);
  EXPECT_TRUE(killed.load()) << "the fault was never injected";

  // The supervisor respawns the killed worker; the restart is visible in
  // the status counters.
  for (int attempt = 0; attempt < 400 && router.worker_restarts(0) == 0;
       ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  EXPECT_GE(router.worker_restarts(0), 1u);
  const service::JsonValue status = client.call("{\"method\":\"status\"}");
  EXPECT_GE(result_of(status).find("fleet")->find("restarts_total")->as_int(),
            1);

  router.shutdown();
  router.wait();
}

TEST(Fleet, SigkillDuringDrainDoesNotHangTheDrain) {
  fleet::RouterOptions opts = fleet_options("kill_drain", 3);
  std::atomic<bool> wave_seen{false};
  opts.after_wave_dispatch = [&](unsigned, std::size_t) {
    wave_seen.store(true);
  };
  fleet::Router router(opts);
  router.start();
  Client client = Client::tcp(router.tcp_port());
  wait_for_fleet_up(client, 3);

  const std::string text = graph_file("h263.xml");
  const std::string reference = reference_front(
      parse_any(text), buffer::DseEngine::Exhaustive, /*levels=*/8);

  // Scatter in flight on one connection...
  client.send_line(explore_request(
      1, text, ",\"engine\":\"exh\",\"levels\":8,\"scatter\":true"));
  while (!wave_seen.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // ...then a drain starts and a worker dies mid-drain. The drain must
  // finish the scatter (re-dispatching the dead worker's slices), answer
  // both clients, and reap the fleet — no hang, no lost response.
  Client admin = Client::tcp(router.tcp_port());
  admin.send_line("{\"id\":9,\"method\":\"shutdown\"}");
  const i64 pid = router.worker_pid(1);
  if (pid > 0) ::kill(static_cast<pid_t>(pid), SIGKILL);

  const service::JsonValue resp =
      service::JsonValue::parse(client.recv_line());
  EXPECT_EQ(result_of(resp).find("front")->as_string(), reference);
  const service::JsonValue drained =
      service::JsonValue::parse(admin.recv_line());
  EXPECT_TRUE(result_of(drained).find("drained")->as_bool());
  router.wait();
}

TEST(Fleet, StalledWorkerHitsTheRequestDeadlineNotARouterHang) {
  fleet::RouterOptions opts = fleet_options("stall_deadline", 1);
  // Keep the health-kill far away so the test pins the *deadline* path:
  // the client must get deadline_exceeded from the router's backstop, not
  // a crash-and-redispatch.
  opts.health_timeout_ms = 60'000;
  fleet::Router router(opts);
  router.start();
  Client client = Client::tcp(router.tcp_port());
  wait_for_fleet_up(client, 1);

  const i64 pid = router.worker_pid(0);
  ASSERT_GT(pid, 0);
  stop_process(pid);

  const auto t0 = std::chrono::steady_clock::now();
  const service::JsonValue resp = client.call(
      explore_request(1, kTinyDsl, ",\"deadline_ms\":300"));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(error_code(resp), "deadline_exceeded");
  EXPECT_LT(elapsed.count(), 10'000) << "deadline backstop took too long";

  ::kill(static_cast<pid_t>(pid), SIGCONT);
  router.shutdown();
  router.wait();
}

TEST(Fleet, FullShardQueueAnswersOverloadedWithRetryHint) {
  fleet::RouterOptions opts = fleet_options("backpressure", 1);
  opts.shard_queue_capacity = 1;
  opts.health_timeout_ms = 60'000;
  fleet::Router router(opts);
  router.start();
  Client first = Client::tcp(router.tcp_port());
  wait_for_fleet_up(first, 1);

  // Stop the only worker: the first request parks in its shard queue,
  // the second finds every queue full.
  const i64 pid = router.worker_pid(0);
  ASSERT_GT(pid, 0);
  stop_process(pid);

  first.send_line(explore_request(1, kTinyDsl));

  // The parked request is invisible from outside; poll status until the
  // router has dispatched it (the shard queue reports depth 1).
  Client second = Client::tcp(router.tcp_port());
  for (int attempt = 0; attempt < 200; ++attempt) {
    const service::JsonValue st = second.call("{\"method\":\"status\"}");
    const service::JsonValue* shards = result_of(st).find("shards");
    if (shards != nullptr &&
        shards->as_array()[0].find("queue_depth")->as_int() == 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const service::JsonValue rejected =
      second.call(explore_request(2, kTinyDsl));
  EXPECT_EQ(error_code(rejected), "overloaded");
  const service::JsonValue* err = rejected.find("error");
  ASSERT_NE(err, nullptr);
  const service::JsonValue* retry = err->find("retry_after_ms");
  ASSERT_NE(retry, nullptr) << rejected.dump();
  EXPECT_GT(retry->as_int(), 0);

  // Queue depth is observable while the request is parked.
  const service::JsonValue status = second.call("{\"method\":\"status\"}");
  const service::JsonValue* shards = result_of(status).find("shards");
  ASSERT_NE(shards, nullptr);
  EXPECT_EQ(shards->as_array()[0].find("queue_depth")->as_int(), 1);

  // Resume the worker: the parked request completes normally.
  ::kill(static_cast<pid_t>(pid), SIGCONT);
  const service::JsonValue resp =
      service::JsonValue::parse(first.recv_line());
  EXPECT_TRUE(response_ok(resp));

  router.shutdown();
  router.wait();
}

TEST(Fleet, CrashedIdleWorkerIsRespawnedWithBackoff) {
  fleet::Router router(fleet_options("respawn", 2));
  router.start();
  Client client = Client::tcp(router.tcp_port());
  wait_for_fleet_up(client, 2);

  const i64 pid = router.worker_pid(1);
  ASSERT_GT(pid, 0);
  ::kill(static_cast<pid_t>(pid), SIGKILL);

  // The supervisor reaps the corpse, backs off, respawns, reconnects.
  for (int attempt = 0; attempt < 400; ++attempt) {
    if (router.worker_restarts(1) >= 1 && router.worker_pid(1) > 0 &&
        router.worker_pid(1) != pid) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  EXPECT_GE(router.worker_restarts(1), 1u);
  EXPECT_NE(router.worker_pid(1), pid);

  // And the fleet still serves correct fronts afterwards.
  wait_for_fleet_up(client, 2);
  const std::string reference = reference_front(
      io::read_dsl(kTinyDsl), buffer::DseEngine::Incremental, std::nullopt);
  const service::JsonValue resp = client.call(explore_request(3, kTinyDsl));
  EXPECT_EQ(result_of(resp).find("front")->as_string(), reference);

  router.shutdown();
  router.wait();
}

// ---------------------------------------------------------------------------
// Status shape and routing metadata.

TEST(Fleet, StatusReportsPerShardSupervisionState) {
  fleet::Router router(fleet_options("status_shape", 2));
  router.start();
  Client client = Client::tcp(router.tcp_port());
  wait_for_fleet_up(client, 2);

  // Serve one request so the worker-side counters move, then give the
  // health pings one cycle to refresh the cached worker statuses.
  EXPECT_TRUE(response_ok(client.call(explore_request(1, kTinyDsl))));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  const service::JsonValue resp = client.call("{\"method\":\"status\"}");
  const service::JsonValue& result = result_of(resp);
  EXPECT_EQ(result.find("role")->as_string(), "router");
  const service::JsonValue* fleet = result.find("fleet");
  ASSERT_NE(fleet, nullptr);
  EXPECT_EQ(fleet->find("workers")->as_int(), 2);
  EXPECT_EQ(fleet->find("up")->as_int(), 2);
  EXPECT_GE(fleet->find("forwarded")->as_int(), 1);

  const service::JsonValue* shards = result.find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->as_array().size(), 2u);
  bool some_worker_served = false;
  for (const service::JsonValue& shard : shards->as_array()) {
    EXPECT_EQ(shard.find("state")->as_string(), "up");
    EXPECT_GT(shard.find("pid")->as_int(), 0);
    EXPECT_EQ(shard.find("restarts")->as_int(), 0);
    ASSERT_NE(shard.find("queue_depth"), nullptr);
    // The embedded worker status is the worker's own `status` result.
    const service::JsonValue* worker = shard.find("worker");
    ASSERT_NE(worker, nullptr);
    if (worker->is_object()) {
      const service::JsonValue* cache = worker->find("cache");
      if (cache != nullptr &&
          cache->find("graphs_resident")->as_int() >= 1) {
        some_worker_served = true;
      }
    }
  }
  // Affinity made exactly one worker own the tiny graph's cache.
  EXPECT_TRUE(some_worker_served);

  router.shutdown();
  router.wait();
}

TEST(Fleet, ShardOfIsStableAndInRange) {
  fleet::Router router(fleet_options("shard_of", 3));
  const sdf::Graph tiny = io::read_dsl(kTinyDsl);
  const u64 fp = service::graph_fingerprint(tiny, "b");
  EXPECT_EQ(router.shard_of(fp), router.shard_of(fp));
  EXPECT_LT(router.shard_of(fp), 3u);
  EXPECT_EQ(router.num_workers(), 3u);
}

// ---------------------------------------------------------------------------
// The real buffyd-router binary, over a Unix-domain socket.

TEST(Fleet, RouterBinaryServesScattersAndDrainsCleanly) {
  const std::string dir = ::testing::TempDir();
  const std::string socket_path = dir + "/buffyd_router_e2e.sock";
  const std::string runtime_dir =
      dir + "fleet_binary_e2e." + std::to_string(::getpid());
  ::unlink(socket_path.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::execl(BUFFYD_ROUTER_PATH, BUFFYD_ROUTER_PATH, "--socket",
            socket_path.c_str(), "--workers", "2", "--worker-bin",
            BUFFYD_PATH, "--runtime-dir", runtime_dir.c_str(),
            static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }

  {
    Client client = Client::unix_socket(socket_path);
    wait_for_fleet_up(client, 2);

    // Forwarded and scattered requests through the real binary.
    const std::string reference_inc = reference_front(
        io::read_dsl(kTinyDsl), buffer::DseEngine::Incremental, std::nullopt);
    EXPECT_EQ(
        result_of(client.call(explore_request(1, kTinyDsl)))
            .find("front")
            ->as_string(),
        reference_inc);

    const std::string modem = graph_file("modem.sdf");
    const std::string reference_exh = reference_front(
        parse_any(modem), buffer::DseEngine::Exhaustive, std::nullopt);
    EXPECT_EQ(result_of(client.call(explore_request(
                            2, modem, ",\"engine\":\"exh\",\"scatter\":true")))
                  .find("front")
                  ->as_string(),
              reference_exh);

    const service::JsonValue drained =
        client.call("{\"id\":3,\"method\":\"shutdown\"}");
    EXPECT_TRUE(result_of(drained).find("drained")->as_bool());
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "buffyd-router did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace buffy
