#include "analysis/scc.hpp"

#include <gtest/gtest.h>

#include "gen/random_graph.hpp"
#include "models/models.hpp"
#include "sdf/builder.hpp"

namespace buffy::analysis {
namespace {

TEST(Scc, ChainIsAllSingletons) {
  const sdf::Graph g = models::paper_example();
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.count(), 3u);
  EXPECT_FALSE(is_strongly_connected(g));
}

TEST(Scc, EmptyGraph) {
  const sdf::Graph g("empty");
  EXPECT_EQ(strongly_connected_components(g).count(), 0u);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Scc, SelfLoopIsItsOwnComponent) {
  sdf::GraphBuilder b("self");
  const auto a = b.actor("a", 1);
  b.channel("s", a, 1, a, 1, 1);
  EXPECT_TRUE(is_strongly_connected(b.build()));
}

TEST(Scc, TwoActorCycle) {
  sdf::GraphBuilder b("ring");
  const auto a = b.actor("a", 1);
  const auto bb = b.actor("b", 1);
  b.channel("ab", a, 1, bb, 1);
  b.channel("ba", bb, 1, a, 1, 1);
  EXPECT_TRUE(is_strongly_connected(b.build()));
}

TEST(Scc, ModemComponents) {
  // The modem has three local loops (eq/eqfb, decoder/sync,
  // clockrec/slicer is part of a longer path, AGC closes a long cycle);
  // actors outside every loop are singletons.
  const sdf::Graph g = models::modem();
  const SccResult r = strongly_connected_components(g);
  EXPECT_GT(r.count(), 1u);
  EXPECT_LT(r.count(), g.num_actors());
  // eq and eqfb share a component.
  EXPECT_EQ(r.component[g.find_actor("eq")->index()],
            r.component[g.find_actor("eqfb")->index()]);
  // in and out do not.
  EXPECT_NE(r.component[g.find_actor("in")->index()],
            r.component[g.find_actor("out")->index()]);
}

TEST(Scc, ComponentsAreInReverseTopologicalOrder) {
  const sdf::Graph g = models::paper_example();  // a -> b -> c
  const SccResult r = strongly_connected_components(g);
  const auto comp = [&](const char* name) {
    return r.component[g.find_actor(name)->index()];
  };
  // Edge u -> v across components implies component(u) >= component(v).
  EXPECT_GE(comp("a"), comp("b"));
  EXPECT_GE(comp("b"), comp("c"));
}

TEST(Scc, MembersPartitionTheActors) {
  const sdf::Graph g = models::satellite_receiver();
  const SccResult r = strongly_connected_components(g);
  std::size_t total = 0;
  for (const auto& members : r.members) {
    total += members.size();
    for (const sdf::ActorId a : members) {
      EXPECT_EQ(r.component[a.index()],
                r.component[members.front().index()]);
    }
  }
  EXPECT_EQ(total, g.num_actors());
}

TEST(Scc, GeneratorStronglyConnectedOptionVerified) {
  for (u64 seed = 1; seed <= 12; ++seed) {
    const sdf::Graph g = gen::random_graph(gen::RandomGraphOptions{
        .num_actors = 6, .strongly_connected = true, .seed = seed});
    EXPECT_TRUE(is_strongly_connected(g)) << "seed " << seed;
  }
}

TEST(Scc, AcyclicGraphsAreAllSingletons) {
  for (u64 seed = 1; seed <= 12; ++seed) {
    gen::RandomGraphOptions opts{.num_actors = 6, .seed = seed};
    opts.allow_cycles = false;
    const sdf::Graph g = gen::random_graph(opts);
    EXPECT_EQ(strongly_connected_components(g).count(), g.num_actors())
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace buffy::analysis
