#include "analysis/mcm.hpp"

#include <gtest/gtest.h>

#include "analysis/hsdf.hpp"
#include "base/diagnostics.hpp"
#include "base/rng.hpp"
#include "models/models.hpp"
#include "sdf/builder.hpp"

namespace buffy::analysis {
namespace {

RatioProblem simple_cycle(std::vector<i64> weights, std::vector<i64> tokens) {
  RatioProblem p;
  p.num_nodes = weights.size();
  for (std::size_t i = 0; i < weights.size(); ++i) {
    p.edges.push_back(RatioEdge{
        .src = i,
        .dst = (i + 1) % weights.size(),
        .weight = weights[i],
        .tokens = tokens[i],
    });
  }
  return p;
}

TEST(Mcm, SingleCycleRatio) {
  const auto r = max_cycle_ratio(simple_cycle({2, 3, 4}, {1, 0, 1}));
  EXPECT_TRUE(r.has_cycle);
  EXPECT_FALSE(r.deadlock);
  EXPECT_EQ(r.ratio, Rational(9, 2));
  EXPECT_EQ(r.critical_cycle.size(), 3u);
}

TEST(Mcm, SelfLoop) {
  RatioProblem p;
  p.num_nodes = 1;
  p.edges.push_back(RatioEdge{.src = 0, .dst = 0, .weight = 5, .tokens = 2});
  const auto r = max_cycle_ratio(p);
  EXPECT_EQ(r.ratio, Rational(5, 2));
}

TEST(Mcm, PicksWorstOfTwoCycles) {
  // Cycle A: ratio 3/1; cycle B: ratio 10/2 = 5 -> 5 wins.
  RatioProblem p;
  p.num_nodes = 3;
  p.edges.push_back(RatioEdge{.src = 0, .dst = 0, .weight = 3, .tokens = 1});
  p.edges.push_back(RatioEdge{.src = 1, .dst = 2, .weight = 6, .tokens = 1});
  p.edges.push_back(RatioEdge{.src = 2, .dst = 1, .weight = 4, .tokens = 1});
  const auto r = max_cycle_ratio(p);
  EXPECT_EQ(r.ratio, Rational(5));
}

TEST(Mcm, AcyclicGraphHasNoCycle) {
  RatioProblem p;
  p.num_nodes = 3;
  p.edges.push_back(RatioEdge{.src = 0, .dst = 1, .weight = 1, .tokens = 0});
  p.edges.push_back(RatioEdge{.src = 1, .dst = 2, .weight = 1, .tokens = 1});
  const auto r = max_cycle_ratio(p);
  EXPECT_FALSE(r.has_cycle);
  EXPECT_FALSE(r.deadlock);
}

TEST(Mcm, TokenFreeCycleIsDeadlock) {
  const auto r = max_cycle_ratio(simple_cycle({1, 1}, {0, 0}));
  EXPECT_TRUE(r.has_cycle);
  EXPECT_TRUE(r.deadlock);
}

// The degenerate cycle: a self-loop edge with zero tokens is a
// length-one token-free cycle. All three implementations must classify
// it as deadlock — not divide by zero, not report a ratio — even when a
// healthy token-carrying cycle runs through the same node (the LP model
// layer upstream rejects the SDF form of this with a structured
// DeadSelfLoop diagnostic; see test_lp.cpp).
TEST(Mcm, ZeroTokenSelfLoopIsDeadlockInEveryImplementation) {
  RatioProblem bare;
  bare.num_nodes = 1;
  bare.edges.push_back(RatioEdge{.src = 0, .dst = 0, .weight = 4, .tokens = 0});

  RatioProblem mixed;
  mixed.num_nodes = 2;
  mixed.edges.push_back(RatioEdge{.src = 0, .dst = 1, .weight = 1, .tokens = 1});
  mixed.edges.push_back(RatioEdge{.src = 1, .dst = 0, .weight = 1, .tokens = 1});
  mixed.edges.push_back(RatioEdge{.src = 1, .dst = 1, .weight = 3, .tokens = 0});

  for (const RatioProblem* p : {&bare, &mixed}) {
    const auto iterate = max_cycle_ratio(*p);
    EXPECT_TRUE(iterate.has_cycle);
    EXPECT_TRUE(iterate.deadlock);
    EXPECT_FALSE(iterate.critical_cycle.empty());

    const auto karp = max_cycle_ratio_karp(*p);
    EXPECT_TRUE(karp.has_cycle);
    EXPECT_TRUE(karp.deadlock);

    const auto brute = max_cycle_ratio_bruteforce(*p);
    EXPECT_TRUE(brute.has_cycle);
    EXPECT_TRUE(brute.deadlock);
  }
}

TEST(Mcm, ParallelEdgesKeepTightest) {
  // Two parallel edges 0->1: (w=1, t=0) and (w=1, t=5); back edge (w=1, t=1).
  // The tight parallel edge gives ratio 2/1.
  RatioProblem p;
  p.num_nodes = 2;
  p.edges.push_back(RatioEdge{.src = 0, .dst = 1, .weight = 1, .tokens = 0});
  p.edges.push_back(RatioEdge{.src = 0, .dst = 1, .weight = 1, .tokens = 5});
  p.edges.push_back(RatioEdge{.src = 1, .dst = 0, .weight = 1, .tokens = 1});
  const auto r = max_cycle_ratio(p);
  EXPECT_EQ(r.ratio, Rational(2));
}

TEST(Mcm, BruteforceMatchesOnKnownProblems) {
  for (const auto& p :
       {simple_cycle({2, 3, 4}, {1, 0, 1}), simple_cycle({1, 1}, {1, 1}),
        simple_cycle({7}, {3})}) {
    const auto fast = max_cycle_ratio(p);
    const auto slow = max_cycle_ratio_bruteforce(p);
    EXPECT_EQ(fast.has_cycle, slow.has_cycle);
    EXPECT_EQ(fast.deadlock, slow.deadlock);
    if (fast.has_cycle && !fast.deadlock) {
      EXPECT_EQ(fast.ratio, slow.ratio);
    }
  }
}

TEST(Mcm, RatioProblemFromHsdfRejectsMultirate) {
  EXPECT_THROW((void)ratio_problem_from_hsdf(models::paper_example()),
               GraphError);
}

TEST(Mcm, RatioProblemFromHsdfWeightsAreExecTimes) {
  const HsdfResult h = to_hsdf(models::paper_example());
  const RatioProblem p = ratio_problem_from_hsdf(h.graph);
  EXPECT_EQ(p.num_nodes, 6u);
  for (const RatioEdge& e : p.edges) {
    EXPECT_EQ(e.weight,
              h.graph.actor(sdf::ActorId(e.src)).execution_time);
  }
}

TEST(Mcm, KarpOnKnownProblems) {
  {
    const auto r = max_cycle_ratio_karp(simple_cycle({2, 3, 4}, {1, 0, 1}));
    EXPECT_TRUE(r.has_cycle);
    EXPECT_EQ(r.ratio, Rational(9, 2));
  }
  {
    const auto r = max_cycle_ratio_karp(simple_cycle({1, 1}, {0, 0}));
    EXPECT_TRUE(r.deadlock);
  }
  {
    RatioProblem p;
    p.num_nodes = 3;
    p.edges.push_back(RatioEdge{.src = 0, .dst = 1, .weight = 1, .tokens = 0});
    p.edges.push_back(RatioEdge{.src = 1, .dst = 2, .weight = 1, .tokens = 1});
    EXPECT_FALSE(max_cycle_ratio_karp(p).has_cycle);  // acyclic
  }
}

TEST(Mcm, KarpMatchesOnModelHsdfs) {
  for (const auto& m : models::table2_models()) {
    if (std::string(m.display_name) == "H.263 decoder") continue;  // size
    const HsdfResult h = to_hsdf(m.graph);
    const RatioProblem p = ratio_problem_from_hsdf(h.graph);
    const auto iterative = max_cycle_ratio(p);
    const auto karp = max_cycle_ratio_karp(p);
    ASSERT_EQ(iterative.deadlock, karp.deadlock) << m.display_name;
    if (!iterative.deadlock) {
      EXPECT_EQ(iterative.ratio, karp.ratio) << m.display_name;
    }
  }
}

// Property: all three implementations agree on random dense problems.
class McmAgainstBruteforce : public ::testing::TestWithParam<u64> {};

TEST_P(McmAgainstBruteforce, Agree) {
  Rng rng(GetParam());
  RatioProblem p;
  p.num_nodes = static_cast<std::size_t>(rng.uniform(2, 7));
  const i64 edges = rng.uniform(static_cast<i64>(p.num_nodes), 14);
  for (i64 e = 0; e < edges; ++e) {
    p.edges.push_back(RatioEdge{
        .src = rng.index(p.num_nodes),
        .dst = rng.index(p.num_nodes),
        .weight = rng.uniform(1, 9),
        .tokens = rng.uniform(0, 3),
    });
  }
  const auto fast = max_cycle_ratio(p);
  const auto slow = max_cycle_ratio_bruteforce(p);
  const auto karp = max_cycle_ratio_karp(p);
  ASSERT_EQ(fast.has_cycle, slow.has_cycle);
  ASSERT_EQ(fast.deadlock, slow.deadlock);
  ASSERT_EQ(karp.has_cycle, slow.has_cycle);
  ASSERT_EQ(karp.deadlock, slow.deadlock);
  if (fast.has_cycle && !fast.deadlock) {
    EXPECT_EQ(fast.ratio, slow.ratio) << "seed " << GetParam();
    EXPECT_EQ(karp.ratio, slow.ratio) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, McmAgainstBruteforce,
                         ::testing::Range<u64>(1, 65));

}  // namespace
}  // namespace buffy::analysis
