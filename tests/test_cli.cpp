// End-to-end checks of the explore_cli binary: flag handling must be
// strict (unknown or malformed options exit non-zero, in SDF and CSDF
// mode alike), and the runtime flags (--threads, --deadline-ms, --stats,
// --trace) must work through the real tool — including the stats/trace
// flush on every exit path (success, deadlock, expired deadline). The
// binary and graph paths are injected by CMake (EXPLORE_CLI_PATH /
// EXAMPLE_GRAPHS_DIR).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "json_check.hpp"

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

RunResult run_cli(const std::string& args) {
  const std::string command =
      std::string(EXPLORE_CLI_PATH) + " " + args + " 2>&1";
  std::FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  RunResult result;
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf;
  while (std::fgets(buf.data(), buf.size(), pipe) != nullptr) {
    result.output += buf.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string graph(const char* name) {
  return std::string(EXAMPLE_GRAPHS_DIR) + "/" + name;
}

TEST(ExploreCli, NoArgumentsIsUsageError) {
  const RunResult r = run_cli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(ExploreCli, UnknownFlagIsRejected) {
  const RunResult r = run_cli(graph("example.xml") + " --bogus");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown option '--bogus'"), std::string::npos)
      << r.output;
}

TEST(ExploreCli, UnknownFlagIsRejectedInCsdfMode) {
  // Regression: the CSDF pre-scan used to ignore unrecognised options.
  const RunResult r =
      run_cli(graph("distcol.csdf.sdf") + " --csdf --bogus");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown option '--bogus'"), std::string::npos)
      << r.output;
}

TEST(ExploreCli, UnsupportedCsdfCombinationIsRejected) {
  const RunResult r =
      run_cli(graph("distcol.csdf.sdf") + " --csdf --stats");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("not supported in --csdf mode"),
            std::string::npos)
      << r.output;
}

TEST(ExploreCli, MissingValueIsRejected) {
  const RunResult r = run_cli(graph("example.xml") + " --threads");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("missing value"), std::string::npos) << r.output;
}

TEST(ExploreCli, BadEngineIsRejected) {
  const RunResult r = run_cli(graph("example.xml") + " --engine turbo");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(ExploreCli, ZeroThreadsIsRejected) {
  const RunResult r = run_cli(graph("example.xml") + " --threads 0");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(ExploreCli, ValidRunSucceeds) {
  const RunResult r = run_cli(graph("example.xml"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("Pareto points:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("<4, 2>"), std::string::npos) << r.output;
}

TEST(ExploreCli, AuditRunReportsChecksAndNoViolations) {
  const RunResult r = run_cli(graph("example.xml") + " --audit");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("Pareto points:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("audit:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("0 violations"), std::string::npos) << r.output;
}

TEST(ExploreCli, AuditDoesNotChangeTheParetoFront) {
  const RunResult plain = run_cli(graph("example.xml"));
  const RunResult audited = run_cli(graph("example.xml") + " --audit");
  EXPECT_EQ(plain.exit_code, 0);
  EXPECT_EQ(audited.exit_code, 0);
  const auto pareto_of = [](const std::string& out) {
    const std::size_t from = out.find("Pareto points:");
    const std::size_t to = out.find("audit:");
    return from == std::string::npos
               ? std::string()
               : out.substr(from, to == std::string::npos ? std::string::npos
                                                          : to - from);
  };
  EXPECT_EQ(pareto_of(plain.output), pareto_of(audited.output));
}

TEST(ExploreCli, AuditIsRejectedInCsdfMode) {
  const RunResult r = run_cli(graph("distcol.csdf.sdf") + " --csdf --audit");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("not supported in --csdf mode"),
            std::string::npos)
      << r.output;
}

TEST(ExploreCli, ParallelRunMatchesSerialOutput) {
  const RunResult serial = run_cli(graph("example.xml") + " --engine exh");
  const RunResult parallel =
      run_cli(graph("example.xml") + " --engine exh --threads 4");
  EXPECT_EQ(serial.exit_code, 0);
  EXPECT_EQ(parallel.exit_code, 0);
  // Identical Pareto output; only the timing line may differ.
  const auto pareto_of = [](const std::string& out) {
    const std::size_t at = out.find("Pareto points:");
    return at == std::string::npos ? std::string() : out.substr(at);
  };
  EXPECT_EQ(pareto_of(serial.output), pareto_of(parallel.output));
}

TEST(ExploreCli, StatsEmitsJsonCounters) {
  const RunResult r = run_cli(graph("example.xml") + " --stats");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"points_explored\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"cancelled\": false"), std::string::npos)
      << r.output;
}

TEST(ExploreCli, StatsEmitsHotpathCounters) {
  const RunResult r = run_cli(graph("example.xml") + " --stats");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const char* key : {"\"simulations\"", "\"cache_hits\"",
                          "\"dominance_skips\"", "\"sims_avoided\"",
                          "\"arena_bytes\""}) {
    EXPECT_NE(r.output.find(key), std::string::npos) << key << "\n" << r.output;
  }
}

TEST(ExploreCli, NoCacheRunMatchesCachedOutput) {
  const RunResult cached = run_cli(graph("example.xml") + " --engine exh");
  const RunResult uncached =
      run_cli(graph("example.xml") + " --engine exh --no-cache");
  EXPECT_EQ(cached.exit_code, 0) << cached.output;
  EXPECT_EQ(uncached.exit_code, 0) << uncached.output;
  const auto pareto_of = [](const std::string& out) {
    const std::size_t at = out.find("Pareto points:");
    return at == std::string::npos ? std::string() : out.substr(at);
  };
  EXPECT_EQ(pareto_of(cached.output), pareto_of(uncached.output));
}

TEST(ExploreCli, NoCacheIsRejectedInCsdfMode) {
  const RunResult r =
      run_cli(graph("distcol.csdf.sdf") + " --csdf --no-cache");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("not supported in --csdf mode"),
            std::string::npos)
      << r.output;
}

TEST(ExploreCli, ExpiredDeadlineStillExitsCleanly) {
  const RunResult r =
      run_cli(graph("modem.sdf") + " --deadline-ms 0 --stats");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"cancelled\": true"), std::string::npos)
      << r.output;
}

TEST(ExploreCli, ExpiredDeadlineStatsKeepEveryCounter) {
  // Regression: the cancellation exit path must print the same counter
  // set as a full run — nothing dropped because the exploration stopped.
  const RunResult r =
      run_cli(graph("modem.sdf") + " --deadline-ms 0 --stats");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const char* key :
       {"\"points_explored\"", "\"simulations\"", "\"cache_hits\"",
        "\"dominance_skips\"", "\"sims_avoided\"", "\"arena_bytes\"",
        "\"trace_events\"", "\"seconds\"", "\"cancelled\""}) {
    EXPECT_NE(r.output.find(key), std::string::npos) << key << "\n"
                                                     << r.output;
  }
}

TEST(ExploreCli, DeadlockedGraphStillEmitsStats) {
  // Regression: the all-deadlock early exit used to skip the stats line.
  const RunResult r = run_cli(graph("deadlock.sdf") + " --stats");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("deadlocks under every storage distribution"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"points_explored\""), std::string::npos)
      << r.output;
}

TEST(ExploreCli, TraceMissingValueIsRejected) {
  const RunResult r = run_cli(graph("example.xml") + " --trace");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("missing value"), std::string::npos) << r.output;
}

TEST(ExploreCli, TraceIsRejectedInCsdfMode) {
  const RunResult r =
      run_cli(graph("distcol.csdf.sdf") + " --csdf --trace /tmp/t.json");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("not supported in --csdf mode"),
            std::string::npos)
      << r.output;
}

TEST(ExploreCli, TraceWritesValidChromeJson) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() / "buffy_cli_h263_trace.json";
  fs::remove(path);
  const RunResult r = run_cli(graph("h263.xml") + " --trace " +
                              path.string() + " --stats");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("trace events"), std::string::npos) << r.output;
  // The collector's event count flows into the stats JSON.
  EXPECT_NE(r.output.find("\"trace_events\""), std::string::npos)
      << r.output;

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();

  // Schema check: valid JSON overall, Chrome trace_event shape, and the
  // exploration kinds the h263 run must contain.
  std::string why;
  EXPECT_TRUE(buffy::testing::is_valid_json(json, &why)) << why;
  for (const char* needle :
       {"\"traceEvents\"", "\"displayTimeUnit\"", "\"ph\": \"X\"",
        "\"pid\"", "\"tid\"", "\"exploration\"", "\"simulation\"",
        "\"pareto_point\"", "\"args\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  fs::remove(path);
}

TEST(ExploreCli, TraceOutputMentionedInUsage) {
  const RunResult r = run_cli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--trace"), std::string::npos) << r.output;
}

}  // namespace
