#include "base/rational.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "base/diagnostics.hpp"

namespace buffy {
namespace {

TEST(Rational, DefaultIsZero) {
  const Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalisesOnConstruction) {
  const Rational r(4, 6);
  EXPECT_EQ(r.num(), 2);
  EXPECT_EQ(r.den(), 3);
}

TEST(Rational, NormalisesNegativeDenominator) {
  const Rational r(1, -7);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 7);
}

TEST(Rational, ZeroAlwaysCanonical) {
  EXPECT_EQ(Rational(0, 42), Rational(0));
  EXPECT_EQ(Rational(0, -3).den(), 1);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW((void)Rational(1, 0), Error);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 7) + Rational(1, 7), Rational(2, 7));
  EXPECT_EQ(Rational(1, 6) - Rational(1, 7), Rational(1, 42));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(-Rational(1, 4), Rational(-1, 4));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW((void)(Rational(1) / Rational(0)), Error);
  EXPECT_THROW((void)Rational(0).reciprocal(), Error);
}

TEST(Rational, ExactComparisonsCloseValues) {
  // 1/3 vs 333333333/1000000000: a double comparison would need care;
  // exact rationals must order them correctly.
  EXPECT_GT(Rational(1, 3), Rational(333333333, 1000000000));
  EXPECT_LT(Rational(1, 3), Rational(333333334, 1000000000));
  EXPECT_EQ(Rational(2, 6), Rational(1, 3));
}

TEST(Rational, OrderingOperators) {
  EXPECT_LT(Rational(1, 7), Rational(1, 6));
  EXPECT_LE(Rational(1, 7), Rational(1, 7));
  EXPECT_GE(Rational(1, 4), Rational(1, 7));
  EXPECT_NE(Rational(1, 4), Rational(1, 7));
}

TEST(Rational, CrossReductionAvoidsOverflow) {
  // (2^40 / 3) * (3 / 2^40) must not overflow despite large intermediates.
  const i64 big = i64{1} << 40;
  EXPECT_EQ(Rational(big, 3) * Rational(3, big), Rational(1));
}

TEST(Rational, AdditionReducesBeforeCrossMultiplying) {
  const i64 big = i64{1} << 40;
  EXPECT_EQ(Rational(1, big) + Rational(1, big), Rational(2, big));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(-3, 2).to_double(), -1.5);
}

TEST(Rational, StreamAndStr) {
  std::ostringstream os;
  os << Rational(3, 9);
  EXPECT_EQ(os.str(), "1/3");
  EXPECT_EQ(Rational(8, 4).str(), "2");
  EXPECT_EQ(Rational(0).str(), "0");
}

TEST(Rational, ParseInteger) { EXPECT_EQ(parse_rational("42"), Rational(42)); }

TEST(Rational, ParseFraction) {
  EXPECT_EQ(parse_rational("2/8"), Rational(1, 4));
  EXPECT_EQ(parse_rational(" 1/7 "), Rational(1, 7));
}

TEST(Rational, ParseDecimal) {
  EXPECT_EQ(parse_rational("0.25"), Rational(1, 4));
  EXPECT_EQ(parse_rational("-1.5"), Rational(-3, 2));
  EXPECT_EQ(parse_rational("10.125"), Rational(81, 8));
}

TEST(Rational, ParseMalformedThrows) {
  EXPECT_THROW((void)parse_rational(""), Error);
  EXPECT_THROW((void)parse_rational("abc"), Error);
  EXPECT_THROW((void)parse_rational("1/"), Error);
  EXPECT_THROW((void)parse_rational("1."), Error);
}

// Field axioms on a small grid of values.
class RationalAlgebra : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(RationalAlgebra, CommutativeAndAssociative) {
  const auto [n, d] = GetParam();
  const Rational a(n, d);
  const Rational b(3, 5);
  const Rational c(-2, 7);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a - a, Rational(0));
  if (!a.is_zero()) {
    EXPECT_EQ(a / a, Rational(1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RationalAlgebra,
    ::testing::Values(std::pair{1, 2}, std::pair{-4, 6}, std::pair{7, 3},
                      std::pair{0, 9}, std::pair{5, 5}, std::pair{-11, 13}));

}  // namespace
}  // namespace buffy
